//! `xtask modelcheck` — exhaustive schedule-space exploration for small
//! configurations (the *proved* tier of the determinism contract; see
//! DESIGN §12).
//!
//! `schedcheck` samples perturbed schedules; this checker **enumerates**
//! them. The observation that makes that tractable: the only
//! scheduler-visible nondeterminism in the whole stack is *which envelope
//! an any-source receive matches* — every directed receive filters by
//! `(from, tag)`, and the VM's wildcard receives all live in the sparse
//! all-to-all (`Ctx::exchange`). Two executions that match the same
//! sources in the same per-`(receiver, tag)` order are the same
//! Mazurkiewicz trace: every other event pair either commutes or is
//! already ordered by the program. So the schedule space is explored by
//! dynamic partial-order reduction over match choices:
//!
//! 1. Run the workload once, recording every wildcard accept with the
//!    sender's vector clock and the receiver's local event index
//!    (`pilut_par::sched`).
//! 2. For each recorded accept `i`, find every later accept `j` on the
//!    same `(receiver, tag)` from a different source whose *send* is
//!    causally concurrent with `i`'s *match* (`send_vc[receiver] <
//!    accept_event_i` — the same dominance test the happens-before race
//!    detector uses). Ordered pairs cannot be swapped by any legal
//!    schedule; concurrent pairs can, and are exactly the branch points.
//! 3. For each branch point, force a new run that replays the recorded
//!    match order up to `i` and then matches `j`'s source instead
//!    (receiver-side deferral of the non-forced envelopes — the same
//!    envelope-hold idea the fault layer's `Reorder` uses on the send
//!    side), leaving the suffix free and recorded.
//! 4. Recurse on every new trace until no unexplored trace remains,
//!    deduplicating by the per-`(receiver, tag)` source sequences.
//!
//! Forcing a branch can never deadlock a correct protocol: the concurrency
//! test guarantees `j`'s send depends on no receiver event at or after the
//! displaced match, so the alternative prefix is a prefix of a legal
//! execution; a protocol whose alternative *does* get stuck is diagnosed
//! by the commcheck watchdog, which is a finding, not a hang. Adjacent
//! transpositions of concurrent same-class accepts generate every
//! realizable per-class ordering, and the recursion re-branches from every
//! inequivalent trace, so the visited set covers the *entire* reduced
//! space — the run count is a completeness proof, not a sample size. A
//! per-config run cap turns state-space blowup into an explicit error
//! (never a silent truncation), keeping the "exhaustive" claim honest.
//!
//! Every explored schedule must (a) complete — no deadlock, (b) raise no
//! match-order race, and (c) produce the *bitwise-identical* fingerprint
//! of the canonical run (results + traffic totals + per-tag counters).
//! Failures are shrunk to the shortest forced prefix that still fails.
//! A mutation stage reintroduces the pre-PR 5 per-payload exchange
//! (`Ctx::exchange_per_payload`) and asserts the checker diagnoses its
//! match-order race — the regression this subsystem exists to prevent.
//!
//! Full mode explores `spmv`, `mis` (the delta-protocol MIS rounds with
//! their sparse, round-varying message shapes), `trisolve`, and `factor`
//! at p ∈ {2, 3, 4}; `--quick` (the CI stage) explores `spmv` and
//! `trisolve` at p ∈ {2, 3} plus the mutation stage.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;

use crate::sweep::{checked_builder, fold, panic_text, shrink, tiny_matrix, Fingerprint};
use pilut_par::{MachineBuilder, Payload, SchedHandle, SchedulePlan, TraceEvent};

/// One schedule-forcing op `(rank, tag, source)`, kept as an ordered list
/// (not a plan) so failing schedules can shrink by prefix truncation.
type Force = (usize, u64, usize);

/// Per-config run cap: exceeding it fails the check as *inexhaustible at
/// this size* rather than silently truncating the space. Sized an order
/// of magnitude above what the shipped workloads need (see the run report)
/// so hitting it means a protocol change genuinely exploded the space.
const RUN_CAP: usize = 20_000;

/// Builds the installable plan for an ordered forcing list.
fn plan_of(forces: &[Force]) -> SchedulePlan {
    let mut plan = SchedulePlan::new().record(true);
    for &(rank, tag, src) in forces {
        plan = plan.force(rank, tag, src);
    }
    plan
}

/// The Mazurkiewicz-trace signature: per `(receiver, tag)`, the source
/// sequence its wildcard receives matched. Two runs with equal signatures
/// are the same trace — every other event pair commutes.
fn signature(trace: &[TraceEvent]) -> BTreeMap<(usize, u64), Vec<usize>> {
    let mut sig: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
    for ev in trace {
        sig.entry((ev.rank, ev.tag)).or_default().push(ev.from);
    }
    sig
}

/// How one forced run ended.
enum RunResult {
    /// Completed: fingerprint plus the recorded wildcard-accept trace.
    Done(Fingerprint, Vec<TraceEvent>),
    /// Panicked: deadlock report, match-order race, or a rank panic.
    Died(String),
}

/// Runs `runner` once under the given forcing list, recording the trace.
fn run_forced<R>(runner: &R, forces: &[Force]) -> RunResult
where
    R: Fn(MachineBuilder) -> Fingerprint,
{
    let handle = SchedHandle::new(plan_of(forces));
    let builder = checked_builder().schedule(handle.clone());
    match std::panic::catch_unwind(AssertUnwindSafe(|| runner(builder))) {
        Ok(fp) => RunResult::Done(fp, handle.take_trace()),
        Err(payload) => RunResult::Died(panic_text(payload)),
    }
}

/// Enumerates the forcing lists for every branch point of `trace`: for
/// each accept `i` and each causally-concurrent later accept `j` of the
/// same `(receiver, tag)` class from a different source, the recorded
/// match order up to `i` followed by `j`'s source.
fn expansions(trace: &[TraceEvent]) -> Vec<Vec<Force>> {
    let mut out = Vec::new();
    for (i, ei) in trace.iter().enumerate() {
        let mut alternatives: Vec<usize> = Vec::new();
        for ej in &trace[i + 1..] {
            if ej.rank != ei.rank || ej.tag != ei.tag || ej.from == ei.from {
                continue;
            }
            if alternatives.contains(&ej.from) {
                continue;
            }
            // Ordered iff j's send already knew i's match (clock dominance
            // through the receiver's component) — then no legal schedule
            // swaps the pair and it is not a branch point.
            let knows = ej.send_vc.get(ei.rank).copied().unwrap_or(0) >= ei.accept_event;
            if knows {
                continue;
            }
            alternatives.push(ej.from);
            let mut forces: Vec<Force> =
                trace[..i].iter().map(|e| (e.rank, e.tag, e.from)).collect();
            forces.push((ei.rank, ei.tag, ej.from));
            out.push(forces);
        }
    }
    out
}

/// The proof artifact for one `(workload, p)` config.
struct SpaceReport {
    /// Distinct Mazurkiewicz traces visited — the size of the reduced
    /// schedule space, all fingerprint-identical.
    schedules: usize,
    /// Machine runs spent visiting them (forced replays included).
    runs: usize,
}

/// Explores the complete DPOR-reduced schedule space of `runner`.
/// `Ok` means every inequivalent schedule completed with the canonical
/// fingerprint; `Err` carries the diagnosis (with the failing schedule
/// shrunk to its minimal forced prefix) or the cap overflow.
fn explore<R>(runner: &R) -> Result<SpaceReport, String>
where
    R: Fn(MachineBuilder) -> Fingerprint,
{
    let mut visited: std::collections::BTreeSet<Vec<((usize, u64), Vec<usize>)>> =
        std::collections::BTreeSet::new();
    let mut tried: std::collections::BTreeSet<Vec<Force>> = std::collections::BTreeSet::new();
    let mut stack: Vec<Vec<Force>> = vec![Vec::new()];
    tried.insert(Vec::new());
    let mut canonical: Option<Fingerprint> = None;
    let mut runs = 0usize;
    while let Some(forces) = stack.pop() {
        if runs >= RUN_CAP {
            return Err(format!(
                "schedule space exceeds the {RUN_CAP}-run cap after {} distinct trace(s) — \
                 not exhaustively explorable at this size; shrink the workload matrix",
                visited.len()
            ));
        }
        runs += 1;
        match run_forced(runner, &forces) {
            RunResult::Died(msg) => {
                return Err(diagnose(runner, &forces, canonical.as_ref(), msg));
            }
            RunResult::Done(fp, trace) => {
                match &canonical {
                    None => canonical = Some(fp),
                    Some(f0) => {
                        if let Some(why) = f0.diff(&fp) {
                            let msg = format!("fingerprint diverged from canonical: {why}");
                            return Err(diagnose(runner, &forces, canonical.as_ref(), msg));
                        }
                    }
                }
                let sig: Vec<((usize, u64), Vec<usize>)> = signature(&trace).into_iter().collect();
                if !visited.insert(sig) {
                    continue; // equivalent trace already expanded
                }
                for alt in expansions(&trace) {
                    if tried.insert(alt.clone()) {
                        stack.push(alt);
                    }
                }
            }
        }
    }
    Ok(SpaceReport {
        schedules: visited.len(),
        runs,
    })
}

/// Shrinks a failing forcing list to its shortest failing prefix and
/// formats the diagnosis.
fn diagnose<R>(
    runner: &R,
    forces: &[Force],
    canonical: Option<&Fingerprint>,
    full_msg: String,
) -> String
where
    R: Fn(MachineBuilder) -> Fingerprint,
{
    let lens: Vec<usize> = (0..=forces.len()).collect();
    let failing = shrink(&lens, |len| match run_forced(runner, &forces[..len]) {
        RunResult::Died(msg) => Some(msg),
        RunResult::Done(fp, _) => canonical
            .and_then(|f0| f0.diff(&fp))
            .map(|why| format!("fingerprint diverged from canonical: {why}")),
    });
    match failing {
        Some((len, msg)) => {
            let prefix: Vec<String> = forces[..len]
                .iter()
                .map(|&(r, t, s)| format!("rank {r} tag {t:#x} <- {s}"))
                .collect();
            format!(
                "failing schedule shrunk to a {len}-entry forced prefix [{}]:\n{msg}",
                prefix.join(", ")
            )
        }
        None => format!(
            "failure did not reproduce during shrinking (flaky host interleaving?); \
             original {}-entry schedule said:\n{full_msg}",
            forces.len()
        ),
    }
}

/// A standard-workload runner over the tiny model-checking matrices.
/// `spmv` gets the 2-D grid (up to three exchange peers per receive, and
/// only one plan-build exchange, so the richer match fan-out stays
/// enumerable); `factor`/`trisolve` get 1-D chains sized to `p` — their
/// many elimination-round exchanges multiply per-receive choices, so the
/// chain's two-peer bound is what keeps the orderings product finite.
fn workload_runner(work: &'static str, p: usize) -> impl Fn(MachineBuilder) -> Fingerprint {
    let dm = tiny_matrix(p, work == "spmv");
    move |builder| crate::sweep::run_workload(work, &dm, p, builder)
}

/// The mutation runner: drives the preserved pre-packing exchange
/// (`Ctx::exchange_per_payload`) with two payloads from one source under
/// one tag — the PR 5 match-order race, reintroduced on purpose.
fn mutant_runner(p: usize) -> impl Fn(MachineBuilder) -> Fingerprint {
    move |builder| {
        let out = builder.run(p, |ctx| {
            let sends = if ctx.rank() == 0 {
                vec![
                    (p - 1, Payload::u64s(vec![1])),
                    (p - 1, Payload::u64s(vec![2])),
                ]
            } else {
                Vec::new()
            };
            let got = ctx.exchange_per_payload(sends);
            let mut h = 0x5eed_0003u64;
            for (src, payload) in got {
                fold(&mut h, src as u64);
                for v in payload.into_u64() {
                    fold(&mut h, v);
                }
            }
            h
        });
        Fingerprint {
            rank_sums: out.results,
            messages: out.stats.messages,
            bytes: out.stats.bytes,
            by_tag: out.stats.by_tag,
        }
    }
}

/// Runs the mutation stage: the checker must *fail* on the mutant, with a
/// match-order race diagnosis. Returns the human line for the report.
fn mutation_stage() -> Result<String, String> {
    let p = 2;
    match explore(&mutant_runner(p)) {
        Ok(report) => Err(format!(
            "mutant per-payload exchange survived exploration undiagnosed \
             ({} schedule(s), {} run(s)) — the checker has a hole",
            report.schedules, report.runs
        )),
        Err(msg) if msg.contains("match-order race") => Ok(format!(
            "mutation per-payload-exchange: caught (match-order race diagnosed)"
        )),
        Err(msg) => Err(format!(
            "mutant per-payload exchange failed for the wrong reason:\n{msg}"
        )),
    }
}

/// Entry point for `xtask modelcheck`. Returns `Err(message)` on bad
/// usage, any schedule-space violation, or an undetected mutant.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return Err(format!("unknown modelcheck flag {other}")),
        }
    }
    let workloads: &[&'static str] = if quick {
        &["spmv", "trisolve"]
    } else {
        &["spmv", "mis", "trisolve", "factor"]
    };
    let procs: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4] };
    let mut failures: Vec<String> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    let mut total_schedules = 0usize;
    let mut total_runs = 0usize;
    // Forced runs that fail do so by panic (race report, watchdog); keep
    // the induced backtraces out of the log like the other sweep suites.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for &work in workloads {
        for &p in procs {
            match explore(&workload_runner(work, p)) {
                Ok(report) => {
                    total_schedules += report.schedules;
                    total_runs += report.runs;
                    lines.push(format!(
                        "work={work} p={p}: {} inequivalent schedule(s) explored exhaustively, \
                         one fingerprint ({} run(s))",
                        report.schedules, report.runs
                    ));
                }
                Err(msg) => failures.push(format!("work={work} p={p}: {msg}")),
            }
        }
    }
    match mutation_stage() {
        Ok(line) => lines.push(line),
        Err(msg) => failures.push(msg),
    }
    std::panic::set_hook(default_hook);
    for line in &lines {
        println!("modelcheck: {line}");
    }
    println!(
        "modelcheck: {} config(s) proved schedule-independent — {total_schedules} schedule(s) \
         over {total_runs} run(s), {} violation(s)",
        lines.len().saturating_sub(1),
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("modelcheck FAIL: {f}");
        }
        Err(format!(
            "{} config(s) violated the schedule-independence contract",
            failures.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_par::MatchKind;

    fn ev(rank: usize, tag: u64, from: usize, send_vc: Vec<u64>, accept_event: u64) -> TraceEvent {
        TraceEvent {
            rank,
            tag,
            from,
            mode: MatchKind::AnySourceUnordered,
            send_vc,
            accept_event,
        }
    }

    #[test]
    fn signature_groups_by_receiver_and_tag() {
        let trace = vec![
            ev(0, 7, 1, vec![0, 1, 0], 1),
            ev(1, 7, 2, vec![0, 0, 1], 1),
            ev(0, 7, 2, vec![0, 0, 1], 2),
        ];
        let sig = signature(&trace);
        assert_eq!(sig[&(0, 7)], vec![1, 2]);
        assert_eq!(sig[&(1, 7)], vec![2]);
    }

    #[test]
    fn concurrent_same_class_pair_branches() {
        // Two concurrent accepts at rank 0, tag 7 from distinct sources:
        // exactly one expansion, forcing source 2 first.
        let trace = vec![
            ev(0, 7, 1, vec![0, 1, 0], 1),
            ev(0, 7, 2, vec![0, 0, 1], 2), // send_vc[0] = 0 < 1: concurrent
        ];
        let plans = expansions(&trace);
        assert_eq!(plans, vec![vec![(0, 7, 2)]]);
    }

    #[test]
    fn causally_ordered_pair_does_not_branch() {
        // The second send already knew the first match (send_vc[0] = 1 >=
        // accept_event 1): no legal schedule swaps them.
        let trace = vec![ev(0, 7, 1, vec![0, 1, 0], 1), ev(0, 7, 2, vec![1, 0, 1], 2)];
        assert!(expansions(&trace).is_empty());
    }

    #[test]
    fn cross_class_events_never_branch() {
        // Different receivers and different tags: no pairs.
        let trace = vec![
            ev(0, 7, 1, vec![0, 1], 1),
            ev(1, 7, 0, vec![1, 0], 1),
            ev(0, 9, 1, vec![0, 2], 2),
        ];
        assert!(expansions(&trace).is_empty());
    }

    #[test]
    fn quick_exploration_is_clean() {
        run(&["--quick".to_string()]).expect("quick modelcheck must pass");
    }
}
