//! Shared infrastructure for the seeded sweep suites (`xtask chaos`,
//! `xtask schedcheck`, `xtask modelcheck`): the workload table and runner,
//! result fingerprinting, the trial matrices, checksum folding, panic-text
//! extraction, and the generic first-failing shrink loop. Each suite keeps
//! only its own sweep policy (what to perturb, how to classify outcomes).

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use pilut_core::dist::op::{DistCsr, DistOperator};
use pilut_core::dist::{DistMatrix, Distribution};
use pilut_core::options::IlutOptions;
use pilut_core::parallel::dist_mis::{build_level_links, dist_mis};
use pilut_core::parallel::par_ilut;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineBuilder, MachineModel};
use pilut_solver::dist_gmres::{dist_gmres, DistIlu};
use pilut_solver::gmres::GmresOptions;
use pilut_sparse::gen;

/// splitmix64 — the same mixer the fault layer uses, so seeded parameters
/// are well spread without any external RNG crate; also the fold step of
/// the result checksums.
pub fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds one word into a running checksum (order-sensitive).
pub fn fold(h: &mut u64, v: u64) {
    *h ^= v;
    *h = mix(h);
}

/// Everything a deterministic run must reproduce bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// One checksum per rank over the rank's full result (factor entries or
    /// solution components, in deterministic order, via `f64::to_bits`).
    pub rank_sums: Vec<u64>,
    /// Total messages across all ranks.
    pub messages: u64,
    /// Total bytes across all ranks.
    pub bytes: u64,
    /// Per-tag `(messages, bytes)` totals.
    pub by_tag: BTreeMap<u64, (u64, u64)>,
}

impl Fingerprint {
    /// Describes the first component where `self` and `other` differ, or
    /// `None` when identical. One line, precise enough to aim a debugger.
    pub fn diff(&self, other: &Fingerprint) -> Option<String> {
        for (r, (a, b)) in self.rank_sums.iter().zip(&other.rank_sums).enumerate() {
            if a != b {
                return Some(format!("rank {r} checksum {a:#018x} != {b:#018x}"));
            }
        }
        if self.messages != other.messages || self.bytes != other.bytes {
            return Some(format!(
                "traffic totals ({}, {} bytes) != ({}, {} bytes)",
                self.messages, self.bytes, other.messages, other.bytes
            ));
        }
        for (tag, a) in &self.by_tag {
            let b = other.by_tag.get(tag);
            if b != Some(a) {
                return Some(format!("tag {tag:#x} counters {a:?} != {b:?}"));
            }
        }
        for tag in other.by_tag.keys() {
            if !self.by_tag.contains_key(tag) {
                return Some(format!("tag {tag:#x} present only in the perturbed run"));
            }
        }
        None
    }
}

/// The sweep matrix shared by chaos and schedcheck: big enough that every
/// rank owns interior rows at p = 8, small enough that a full sweep stays
/// in seconds.
pub fn dist_matrix(p: usize) -> DistMatrix {
    DistMatrix::from_matrix(gen::laplace_2d(12, 12), p, 17)
}

/// The model-checker matrices: tiny, block-partitioned so every rank has
/// at most two exchange peers — which is what keeps the *product* of
/// per-receive match choices (the DPOR-reduced schedule count) enumerable.
/// `grid` picks a 1-D chain Laplacian (`false`) or a small 2-D grid
/// (`true`); both are the same operator family the big sweeps factor.
pub fn tiny_matrix(p: usize, grid: bool) -> DistMatrix {
    let a = if grid {
        gen::laplace_2d(3, 3)
    } else {
        gen::laplace_2d(2 * p, 1)
    };
    let n = a.n_rows();
    DistMatrix::new(a, Distribution::block(n, p))
}

/// The drop/fill options every sweep workload factors with.
pub fn ilut_options() -> IlutOptions {
    IlutOptions::new(5, 1e-4)
}

/// The checked machine configuration every sweep trial runs under; suites
/// layer their perturbation (fault plan, schedule script) on top.
pub fn checked_builder() -> MachineBuilder {
    Machine::builder(MachineModel::cray_t3d())
        .checked(true)
        .watchdog_poll(Duration::from_millis(2))
}

/// Checksums one rank's full factorization: every retained entry of L, the
/// pivot, and every retained entry of U, in global row order.
pub fn factor_checksum(rf: &pilut_core::parallel::RankFactors) -> u64 {
    let mut rows: Vec<usize> = rf.rows.keys().copied().collect();
    rows.sort_unstable();
    let mut h = 0x5eed_0001u64;
    for g in rows {
        let row = &rf.rows[&g];
        fold(&mut h, g as u64);
        for &(c, v) in &row.l {
            fold(&mut h, c as u64);
            fold(&mut h, v.to_bits());
        }
        fold(&mut h, row.diag.to_bits());
        for &(c, v) in &row.u {
            fold(&mut h, c as u64);
            fold(&mut h, v.to_bits());
        }
    }
    h
}

/// Checksums a local vector component-wise (local-view order is
/// deterministic per rank).
pub fn vector_checksum(x: &[f64]) -> u64 {
    let mut h = 0x5eed_0002u64;
    for v in x {
        fold(&mut h, v.to_bits());
    }
    h
}

/// Extracts a printable message from a caught panic payload.
pub fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

/// Runs one fingerprinted workload on `builder`'s machine and returns its
/// fingerprint. Panics propagate to the caller for classification.
///
/// * `spmv` — plan-build plus repeated matvec replay (no factorization);
/// * `mis` — the delta-protocol MIS rounds in isolation (link build,
///   baseline exceptions, tentative/confirm/kill framing, dead-link
///   pruning), checksummed over both selection vectors;
/// * `factor` — the parallel ILUT factorization, checksummed entry-wise;
/// * `trisolve` — factor, then chained matvec + two-sweep solves;
/// * `gmres` — the preconditioned iteration with its reduction traffic.
pub fn run_workload(work: &str, dm: &DistMatrix, p: usize, builder: MachineBuilder) -> Fingerprint {
    let opts = ilut_options();
    let out = builder.run(p, |ctx| {
        let local = dm.local_view(ctx.rank());
        if work == "spmv" {
            let mut op = DistCsr::new(ctx, dm, &local);
            let mut x: Vec<f64> = (0..local.len()).map(|i| 1.0 + i as f64).collect();
            for _ in 0..3 {
                x = op.apply(ctx, &x);
            }
            return vector_checksum(&x);
        }
        if work == "mis" {
            // The MIS kernel on the raw matrix adjacency of my owned rows
            // — the same call sequence the factorization's level loop
            // makes, without the elimination around it, so schedule and
            // fault perturbations aim squarely at the delta protocol.
            let reduced_cols: HashMap<usize, Vec<usize>> = dm
                .dist()
                .rows_of(ctx.rank())
                .iter()
                .map(|&g| (g, dm.matrix().row(g).0.to_vec()))
                .collect();
            let plan = build_level_links(ctx, dm.dist(), &reduced_cols);
            let mis = dist_mis(ctx, &plan, &reduced_cols, 0x5eed, 0, 5)
                // lint: allow(unwrap): sweep frames are well-formed by construction; a protocol error here is a real bug
                .expect("sweep MIS must decode its own frames");
            let mut h = 0x5eed_0003u64;
            for v in &mis.my_in {
                fold(&mut h, *v as u64);
            }
            for v in &mis.remote_in {
                fold(&mut h, *v as u64);
            }
            return h;
        }
        // lint: allow(unwrap): the sweep matrices factor cleanly; corrupted runs die in the VM's diagnosis
        let rf = par_ilut(ctx, dm, &local, &opts).expect("sweep workload must factor");
        match work {
            "factor" => factor_checksum(&rf),
            "trisolve" => {
                let tplan = TrisolvePlan::build(ctx, dm, &local, &rf);
                let mut op = DistCsr::new(ctx, dm, &local);
                // Chain matvec + two-sweep solves so any divergence
                // compounds instead of cancelling.
                let mut x = vec![1.0; local.len()];
                for _ in 0..3 {
                    let y = op.apply(ctx, &x);
                    x = dist_solve(ctx, &local, &rf, &tplan, &y);
                }
                vector_checksum(&x)
            }
            "gmres" => {
                let mut op = DistCsr::new(ctx, dm, &local);
                let mut pre = DistIlu::new(ctx, dm, &local, rf);
                let b = vec![1.0; local.len()];
                let gopts = GmresOptions {
                    restart: 10,
                    rtol: 1e-8,
                    max_matvecs: 60,
                };
                let r = dist_gmres(ctx, &mut op, &local, &mut pre, &b, &gopts);
                let mut h = vector_checksum(&r.x_local);
                fold(&mut h, r.matvecs as u64);
                fold(&mut h, u64::from(r.converged));
                h
            }
            other => unreachable!("unknown sweep workload {other}"),
        }
    });
    Fingerprint {
        rank_sums: out.results,
        messages: out.stats.messages,
        bytes: out.stats.bytes,
        by_tag: out.stats.by_tag,
    }
}

/// The generic shrink loop every suite's minimizer is built on: tries
/// `candidates` in the given order (callers order smallest-first) and
/// returns the first one `fails` confirms, with its failure evidence.
pub fn shrink<C: Copy, T>(
    candidates: &[C],
    mut fails: impl FnMut(C) -> Option<T>,
) -> Option<(C, T)> {
    for &c in candidates {
        if let Some(t) = fails(c) {
            return Some((c, t));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_diff_locates_first_divergence() {
        let a = Fingerprint {
            rank_sums: vec![1, 2],
            messages: 10,
            bytes: 80,
            by_tag: BTreeMap::new(),
        };
        let mut b = a.clone();
        assert_eq!(a.diff(&b), None);
        b.rank_sums[1] = 3;
        assert!(a.diff(&b).expect("diff").contains("rank 1"), "rank diff");
        b.rank_sums[1] = 2;
        b.by_tag.insert(5, (1, 8));
        assert!(
            a.diff(&b).expect("diff").contains("only in the perturbed"),
            "tag diff"
        );
    }

    #[test]
    fn tiny_matrices_are_tiny_and_block_partitioned() {
        for p in [2, 3, 4] {
            let chain = tiny_matrix(p, false);
            assert_eq!(chain.n(), 2 * p);
            let grid = tiny_matrix(p, true);
            assert_eq!(grid.n(), 9);
        }
    }

    #[test]
    fn shrink_returns_first_failing_candidate() {
        let hits: Vec<usize> = vec![3, 1, 2];
        let got = shrink(&hits, |c| if c >= 2 { Some(c * 10) } else { None });
        assert_eq!(got, Some((3, 30)));
        let none: Option<(usize, usize)> = shrink(&hits, |_| None);
        assert_eq!(none, None);
    }

    #[test]
    fn spmv_workload_fingerprints_deterministically() {
        let p = 2;
        let dm = tiny_matrix(p, false);
        let a = run_workload("spmv", &dm, p, checked_builder());
        let b = run_workload("spmv", &dm, p, checked_builder());
        assert_eq!(a, b);
        assert!(a.messages > 0, "spmv must exchange halo traffic");
    }

    #[test]
    fn mis_workload_fingerprints_deterministically() {
        let p = 2;
        let dm = dist_matrix(p);
        let a = run_workload("mis", &dm, p, checked_builder());
        let b = run_workload("mis", &dm, p, checked_builder());
        assert_eq!(a, b);
        assert!(a.messages > 0, "MIS must ship cross-rank deltas");
    }
}
