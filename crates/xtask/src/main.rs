//! `xtask` — in-repo workspace automation:
//!
//! * `cargo run -p xtask -- lint` — repo-local lint (below).
//! * `cargo run -p xtask --release -- bench [--quick] [--out PATH]
//!   [--label STR] [--scenario NAME]...` — the zero-dependency benchmark
//!   harness (see [`bench`]).
//! * `cargo run -p xtask -- bench-verify PATH` — structural check of a
//!   bench JSON report (the CI smoke gate).
//! * `cargo run -p xtask -- bench-compare NEW BASELINE [--tolerance PCT] [--geomean]`
//!   — regression gate comparing two bench reports (see [`bench::compare`]).
//! * `cargo run -p xtask --release -- chaos [--quick]` — the seeded
//!   fault-injection regression suite (see [`chaos`]).
//! * `cargo run -p xtask --release -- schedcheck [--quick]` — the
//!   bitwise-determinism sanitizer: seeded workloads re-run under
//!   perturbed schedules must reproduce identical results and traffic
//!   (see [`schedcheck`]).
//!
//! The `lint` task enforces repo-local rules that `rustc` and `clippy`
//! (which is not guaranteed to exist in the offline toolchain) do not:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` are forbidden in library
//!   code. Recoverable paths must return `Result`; genuinely impossible
//!   cases carry `// lint: allow(unwrap): <why>` on the same or the
//!   previous line. Test code (`tests/`, `benches/`, `examples/`, and
//!   everything after `#[cfg(test)]` in a source file) is exempt.
//! * **no-float-eq** — comparing against a float literal with `==`/`!=`
//!   is forbidden in library code; use a tolerance or
//!   `// lint: allow(float-eq): <why>` for exact-representation cases
//!   (comparisons against zero where the value was assigned, not computed).
//! * **par-confinement** — `std::thread` and channel types are allowed
//!   only inside `crates/par`; every other crate must go through the
//!   `Machine`/`Ctx` abstraction so the cost model sees all parallelism.
//! * **no-raw-comm** — raw point-to-point traffic (`ctx.send(` /
//!   `ctx.recv(`) is allowed only inside `crates/par` (which implements
//!   it) and the planned-exchange layer under
//!   `crates/core/src/dist/exchange` (the module plus its `replay` child).
//!   Everything else must route through a `CommPlan` or a
//!   collective, so every message is scheduled, counted, and replayable.
//!   Escape hatch: `// lint: allow(raw-comm): <why>`.
//! * **no-alloc-in-hot** — allocating constructs (`Vec::new`, `vec![`,
//!   `with_capacity`, `.collect(`, `.to_vec(`, `.clone(`, `Box::new`,
//!   `format!`, `String::new`) are forbidden in the declared hot modules
//!   ([`HOT_MODULES`]): the sparse work-row and tile kernels, the blocked
//!   and serial triangular-solve functions, and the whole `CommPlan`
//!   replay half. The scan is a token walk over the blanked text — macro
//!   invocations are first-class tokens, so `vec![` in a string or
//!   comment can't fire and `Avec![` can't hide. Backed at run time by
//!   the allocation-audit regions and the `zero-steady-alloc` bench gate.
//!   Escape hatch: `// lint: allow(alloc-in-hot): <why>`.
//! * **no-reserved-tag** — building a tag with `|`/`+`/`^`/`*` on
//!   `RESERVED_TAG_BASE` is allowed only inside `crates/par`; the
//!   namespace above the base belongs to the VM's collectives and
//!   protocol traffic, and a user tag constructed there would collide
//!   with them. Comparing against the base stays legal. Escape hatch:
//!   `// lint: allow(reserved-tag): <why>`.
//! * **no-storage-poke** — reaching into sparse-storage internals
//!   (`.row_ptr()` / `.col_idx()` on CSR, `.brow_ptr()` / `.bcol_idx()` /
//!   `.tile_values()` / `.tile_masks()` on BCSR) is allowed only inside
//!   `crates/sparse`; every other crate must go through the
//!   `SparseStorage` trait or the logical accessors (`row`, `block_row`,
//!   `get`, `spmv`, …) so storage layout stays a private contract of the
//!   sparse crate. Escape hatch: `// lint: allow(storage-poke): <why>`.
//! * **dep-allowlist** — every `Cargo.toml` may depend only on in-repo
//!   `pilut-*` path crates (plus `criterion`, only in the excluded
//!   `crates/bench`). This is what keeps the tier-1 gate offline-safe.
//! * **doc-pub-fn** — every `pub fn` in `crates/*/src` carries a doc
//!   comment (`///` or `#[doc = ...]`).
//!
//! Before any source rule runs, the file goes through a small in-tree
//! lexer ([`blank_noncode`]) that blanks line comments, doc comments,
//! nested block comments, and the bodies of string / raw-string /
//! byte-string / char literals while preserving line structure — so the
//! pattern rules only ever see code, and multi-line literals cannot hide
//! or fake a violation.
//!
//! A `#[test]` at the bottom runs the lint over the live workspace, so
//! plain `cargo test` fails if a violation lands.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench;
mod chaos;
mod modelcheck;
mod schedcheck;
mod sweep;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => match bench::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask bench: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench-verify") => match bench::verify(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask bench-verify: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench-compare") => match bench::compare(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask bench-compare: {e}");
                ExitCode::FAILURE
            }
        },
        Some("chaos") => match chaos::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask chaos: {e}");
                ExitCode::FAILURE
            }
        },
        Some("schedcheck") => match schedcheck::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask schedcheck: {e}");
                ExitCode::FAILURE
            }
        },
        Some("modelcheck") => match modelcheck::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask modelcheck: {e}");
                ExitCode::FAILURE
            }
        },
        Some("lint") => {
            let root = workspace_root();
            let violations = run_lint(&root);
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint | bench [flags] | bench-verify <file> [--slack PCT] \
                 | bench-compare <new> <baseline> [--tolerance PCT] [--geomean] | chaos [--quick] \
                 | schedcheck [--quick] | modelcheck [--quick]"
            );
            ExitCode::FAILURE
        }
    }
}

/// The repo root, resolved from this crate's manifest directory so the
/// task works from any working directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        // lint: allow(unwrap): CARGO_MANIFEST_DIR is compile-time and two levels deep
        .unwrap()
        .parent()
        // lint: allow(unwrap): CARGO_MANIFEST_DIR is compile-time and two levels deep
        .unwrap()
        .to_path_buf()
}

/// One finding: file, 1-based line, rule id, and the offending text.
#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// Runs every rule over the workspace rooted at `root`.
fn run_lint(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Library source rules: the five algorithm crates, the root facade, and
    // xtask itself — tooling is held to the same unwrap/float-eq discipline
    // (its grep patterns live in string literals, which the rules blank out).
    let lib_src: &[&str] = &[
        "crates/sparse/src",
        "crates/graph/src",
        "crates/par/src",
        "crates/core/src",
        "crates/solver/src",
        "crates/xtask/src",
        "src",
    ];
    for dir in lib_src {
        let in_par = *dir == "crates/par/src";
        for file in rust_files(&root.join(dir)) {
            let label = rel_label(root, &file);
            match std::fs::read_to_string(&file) {
                Ok(content) => {
                    violations.extend(lint_source(&label, &content, in_par));
                }
                Err(e) => violations.push(Violation {
                    file: label,
                    line: 0,
                    rule: "io",
                    text: format!("unreadable: {e}"),
                }),
            }
        }
    }
    // Manifest allowlist: every Cargo.toml in the repo, including the
    // workspace-excluded bench crate.
    for file in manifest_files(root) {
        let label = rel_label(root, &file);
        let is_bench = label.starts_with("crates/bench");
        match std::fs::read_to_string(&file) {
            Ok(content) => violations.extend(lint_manifest(&label, &content, is_bench)),
            Err(e) => violations.push(Violation {
                file: label,
                line: 0,
                rule: "io",
                text: format!("unreadable: {e}"),
            }),
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    violations
}

/// All `.rs` files under `dir`, recursively.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(dir, &mut |p| {
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p.to_path_buf());
        }
    });
    out.sort();
    out
}

/// All `Cargo.toml` files in the repo, skipping `target/` and `.git/`.
fn manifest_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut |p| {
        if p.file_name().is_some_and(|n| n == "Cargo.toml") {
            out.push(p.to_path_buf());
        }
    });
    out.sort();
    out
}

fn walk(dir: &Path, visit: &mut dyn FnMut(&Path)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, visit);
        } else {
            visit(&path);
        }
    }
}

fn rel_label(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string()
        .replace('\\', "/")
}

/// True when line `i` (0-based) of `lines` carries the given allow marker
/// on itself or on the previous line.
fn allowed(lines: &[&str], i: usize, marker: &str) -> bool {
    let tag = format!("lint: allow({marker})");
    lines[i].contains(&tag) || (i > 0 && lines[i - 1].contains(&tag))
}

/// Raw storage accessors only `crates/sparse` may call: the index arrays
/// of CSR and the tile arrays of BCSR. The value arrays (`.values()`,
/// `.values_mut()`) are deliberately not matched — the names collide with
/// `HashMap` iteration — but any layout-dependent poke needs the index
/// arrays too, which these patterns do catch.
const STORAGE_POKES: &[&str] = &[
    ".row_ptr()",
    ".col_idx()",
    ".brow_ptr()",
    ".bcol_idx()",
    ".tile_values()",
    ".tile_masks()",
];

/// Source-code rules over one file. `in_par` exempts the file from the
/// thread-confinement rule.
fn lint_source(label: &str, content: &str, in_par: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    // Lex the whole file once: the pattern rules below run on the blanked
    // text, where every comment, doc comment, and literal body is spaces,
    // so prose can never trip a code rule. Allow markers and `///` doc
    // detection intentionally read the *raw* lines — they live in comments.
    let blanked = blank_noncode(content);
    let blanked_lines: Vec<&str> = blanked.lines().collect();
    let mut in_tests = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = blanked_lines.get(i).copied().unwrap_or("");
        if code.contains("#[cfg(test)]") {
            // Convention in this repo: the test module is the tail of the
            // file, so everything after the marker is test code.
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(&lines, i, "unwrap")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-unwrap",
                text: raw.to_string(),
            });
        }
        if float_literal_cmp(code) && !allowed(&lines, i, "float-eq") {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-float-eq",
                text: raw.to_string(),
            });
        }
        if !in_par
            && (code.contains("std::thread")
                || code.contains("mpsc")
                || code.contains("thread::spawn"))
            && !allowed(&lines, i, "thread")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "par-confinement",
                text: raw.to_string(),
            });
        }
        let comm_exempt = in_par || label.starts_with("crates/core/src/dist/exchange");
        if !comm_exempt
            && (code.contains("ctx.send(") || code.contains("ctx.recv("))
            && !allowed(&lines, i, "raw-comm")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-raw-comm",
                text: raw.to_string(),
            });
        }
        if !in_par && reserved_tag_arith(code) && !allowed(&lines, i, "reserved-tag") {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-reserved-tag",
                text: raw.to_string(),
            });
        }
        if !label.starts_with("crates/sparse/src")
            && STORAGE_POKES.iter().any(|p| code.contains(p))
            && !allowed(&lines, i, "storage-poke")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-storage-poke",
                text: raw.to_string(),
            });
        }
        if label.starts_with("crates/") {
            if let Some(v) = missing_doc_violation(label, &lines, i, code) {
                out.push(v);
            }
        }
    }
    // The tag-discipline rule runs over the whole blanked text rather than
    // per line: a call's argument list regularly spans lines.
    if !in_par {
        out.extend(untagged_send_violations(label, &lines, &blanked));
    }
    out.extend(alloc_in_hot_violations(label, &lines, &blanked_lines));
    out
}

/// The declared hot modules of the `no-alloc-in-hot` rule: files whose
/// steady-state functions must not allocate. `"*"` covers the whole file
/// (minus the `#[cfg(test)]` tail); otherwise only the named functions are
/// policed, so constructors and one-shot setup stay free to allocate.
/// These are exactly the paths the allocation-audit regions gate at run
/// time — the lint catches the regression at review time, the
/// `zero-steady-alloc` bench gate catches whatever the lexer cannot see.
const HOT_MODULES: &[(&str, &[&str])] = &[
    (
        "crates/sparse/src/workrow.rs",
        &[
            "occupy",
            "set_lane",
            "drop_pos",
            "drain_sorted_lanes_into",
            "drain_sorted_into",
            "axpy",
            "add",
            "set",
            "get",
            "lane",
            "contains",
            "clear",
        ],
    ),
    ("crates/sparse/src/tile.rs", &["*"]),
    (
        "crates/core/src/block_factors.rs",
        &[
            "forward_solve_padded",
            "backward_solve_padded",
            "solve_into",
            "solve_panel_into",
        ],
    ),
    (
        "crates/core/src/factors.rs",
        &["forward_solve", "backward_solve", "solve_into"],
    ),
    ("crates/core/src/dist/exchange/replay.rs", &["*"]),
];

/// Allocation tokens the hot-path rule recognizes on a blanked code line.
/// The scan is a real token walk, not a substring grep: macro invocations
/// (`vec![`, `format!`) are first-class tokens, `Type::new` requires the
/// actual `Vec`/`Box`/`String` path segment on its left, and the method
/// names only fire as calls (`.collect(`), never as bare identifiers in
/// a path or pattern.
#[derive(Debug, PartialEq)]
enum HotTok<'a> {
    Ident(&'a str),
    /// `name!` — a macro invocation, bang included in the recognition.
    Macro(&'a str),
    /// `::`
    PathSep,
    /// `.`
    Dot,
    /// Any other single punctuation character (`(`, `[`, `,`, …).
    Punct(char),
}

/// Tokenizes one blanked line for the hot-path allocation scan.
fn hot_tokens(code: &str) -> Vec<HotTok<'_>> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            if bytes.get(i) == Some(&b'!') && bytes.get(i + 1) != Some(&b'=') {
                toks.push(HotTok::Macro(&code[start..i]));
                i += 1;
            } else {
                toks.push(HotTok::Ident(&code[start..i]));
            }
            continue;
        }
        if c == ':' && bytes.get(i + 1) == Some(&b':') {
            toks.push(HotTok::PathSep);
            i += 2;
            continue;
        }
        if c == '.' {
            toks.push(HotTok::Dot);
            i += 1;
            continue;
        }
        if !c.is_ascii_whitespace() && !c.is_ascii_alphanumeric() {
            toks.push(HotTok::Punct(c));
        }
        i += 1;
    }
    toks
}

/// The first allocating construct on a blanked line, by token walk:
/// `vec![` / `format!` macros, `Vec::new` / `Box::new` / `String::new`
/// paths, and the allocating method calls `.with_capacity(` / `.collect(`
/// / `.to_vec(` / `.clone(` (also reached via `::`, as in
/// `Vec::with_capacity(`).
fn hot_alloc_token(code: &str) -> Option<&'static str> {
    const ALLOC_METHODS: &[(&str, &'static str)] = &[
        ("with_capacity", ".with_capacity("),
        ("collect", ".collect("),
        ("to_vec", ".to_vec("),
        ("clone", ".clone("),
    ];
    let toks = hot_tokens(code);
    for (k, t) in toks.iter().enumerate() {
        match t {
            HotTok::Macro("vec") => return Some("vec!["),
            HotTok::Macro("format") => return Some("format!"),
            HotTok::Ident("new")
                if k >= 2
                    && toks[k - 1] == HotTok::PathSep
                    && matches!(
                        toks[k - 2],
                        HotTok::Ident("Vec") | HotTok::Ident("Box") | HotTok::Ident("String")
                    ) =>
            {
                return Some(match toks[k - 2] {
                    HotTok::Ident("Vec") => "Vec::new",
                    HotTok::Ident("Box") => "Box::new",
                    _ => "String::new",
                });
            }
            HotTok::Ident(name) => {
                let is_call = toks.get(k + 1) == Some(&HotTok::Punct('('));
                let via_recv = k >= 1 && matches!(toks[k - 1], HotTok::Dot | HotTok::PathSep);
                if is_call && via_recv {
                    if let Some((_, tag)) = ALLOC_METHODS.iter().find(|(m, _)| m == name) {
                        return Some(tag);
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// The function name declared on a blanked line, if any.
fn fn_decl_name(code: &str) -> Option<&str> {
    let pos = code.find("fn ")?;
    // `fn` must be its own keyword, not the tail of an identifier.
    if pos > 0 && code[..pos].ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = code[pos + 3..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// The `no-alloc-in-hot` rule: allocating constructs are forbidden in the
/// declared hot modules ([`HOT_MODULES`]). Escape hatch:
/// `// lint: allow(alloc-in-hot): <why>` — for genuinely cold paths inside
/// a hot file (error formatting, build-time setup the function list could
/// not express).
fn alloc_in_hot_violations(label: &str, lines: &[&str], blanked_lines: &[&str]) -> Vec<Violation> {
    let Some((_, hot_fns)) = HOT_MODULES.iter().find(|(file, _)| *file == label) else {
        return Vec::new();
    };
    let whole_file = hot_fns.contains(&"*");
    let mut out = Vec::new();
    let mut in_hot_fn = false;
    for (i, code) in blanked_lines.iter().enumerate() {
        if code.contains("#[cfg(test)]") {
            // Same tail convention as the per-line rules.
            break;
        }
        if let Some(name) = fn_decl_name(code) {
            in_hot_fn = hot_fns.iter().any(|f| *f == name);
        }
        if !(whole_file || in_hot_fn) {
            continue;
        }
        if let Some(tok) = hot_alloc_token(code) {
            if !allowed(lines, i, "alloc-in-hot") {
                out.push(Violation {
                    file: label.to_string(),
                    line: i + 1,
                    rule: "no-alloc-in-hot",
                    text: format!("{} — {}", tok, lines.get(i).copied().unwrap_or("").trim()),
                });
            }
        }
    }
    out
}

/// The `no-untagged-send` rule: every `ctx.send` / `ctx.send_as` call site
/// outside `crates/par` must pass a *named* tag — a `tags::` constant or a
/// value derived from one — never a bare integer literal. Literal tags
/// bypass the protocol-namespace discipline the static `CommPlan` analysis
/// and the per-tag counters are built on (two protocols colliding on tag
/// `3` is exactly the class of bug the namespace scheme exists to prevent).
/// For `send_as`, both the wire tag and the stats tag are checked.
fn untagged_send_violations(label: &str, lines: &[&str], blanked: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let blanked_lines: Vec<&str> = blanked.lines().collect();
    // Same convention as the per-line rules: the test module is the tail.
    let cutoff = blanked_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(usize::MAX);
    for (call, tag_args) in [("ctx.send(", &[1usize][..]), ("ctx.send_as(", &[1, 2][..])] {
        let mut start = 0;
        while let Some(pos) = blanked[start..].find(call) {
            let at = start + pos;
            start = at + call.len();
            let line_idx = blanked[..at].bytes().filter(|&b| b == b'\n').count();
            if line_idx >= cutoff || allowed(lines, line_idx, "untagged-send") {
                continue;
            }
            let args = &blanked[at + call.len()..];
            for &k in tag_args {
                let literal = nth_top_level_arg(args, k)
                    .is_some_and(|a| a.trim().starts_with(|c: char| c.is_ascii_digit()));
                if literal {
                    out.push(Violation {
                        file: label.to_string(),
                        line: line_idx + 1,
                        rule: "no-untagged-send",
                        text: lines.get(line_idx).copied().unwrap_or("").to_string(),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// Argument `k` (0-based) of a call whose argument list starts at the
/// beginning of `s` (just past the opening paren): splits on top-level
/// commas, tracking bracket depth so nested calls and literals don't
/// confuse the count. `None` when the list ends first.
fn nth_top_level_arg(s: &str, k: usize) -> Option<&str> {
    let mut depth = 0usize;
    let mut arg_start = 0usize;
    let mut idx = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                if depth == 0 {
                    return (idx == k).then(|| &s[arg_start..i]);
                }
                depth -= 1;
            }
            ',' if depth == 0 => {
                if idx == k {
                    return Some(&s[arg_start..i]);
                }
                idx += 1;
                arg_start = i + 1;
            }
            _ => {}
        }
    }
    None
}

/// Detects arithmetic on `RESERVED_TAG_BASE` — `|`, `+`, `^`, or `*`
/// adjacent to the constant builds a tag *inside* the namespace the VM
/// keeps for its collectives and protocol traffic, which only `crates/par`
/// may do. Comparisons (`tag >= RESERVED_TAG_BASE`) stay legal: that is
/// how user code classifies tags. Escape hatch:
/// `// lint: allow(reserved-tag): <why>`.
fn reserved_tag_arith(code: &str) -> bool {
    const NAME: &str = "RESERVED_TAG_BASE";
    let mut start = 0;
    while let Some(pos) = code[start..].find(NAME) {
        let at = start + pos;
        // The character after the constant, skipping whitespace.
        let next = code[at + NAME.len()..].trim_start().chars().next();
        // The character before any path prefix (`pilut_par::Ctx::`), so
        // `Ctx::RESERVED_TAG_BASE | x` sees the `|` on its left… which is
        // nothing; and `x | Ctx::RESERVED_TAG_BASE` walks back over the
        // path to find the `|`.
        let prev = code[..at]
            .trim_end_matches(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            .trim_end()
            .chars()
            .last();
        let arith = |c: Option<char>| matches!(c, Some('|' | '+' | '^' | '*'));
        if arith(next) || arith(prev) {
            return true;
        }
        start = at + NAME.len();
    }
    false
}

/// A whole-file lexer that replaces every non-code character with a space:
/// line comments (including `///` and `//!` docs), nested block comments,
/// and the bodies of string, raw-string, byte-string, and char literals.
/// Newlines are preserved so the output lines up with the input
/// line-for-line, and literal *delimiters* are kept so the blanked text
/// still reads as shaped code. Lifetimes (`'a`) are recognized and left
/// intact rather than being mistaken for an unterminated char literal —
/// the failure mode that forced the old per-line stripper to ignore
/// multi-line constructs entirely.
fn blank_noncode(content: &str) -> String {
    let chars: Vec<char> = content.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(content.len());
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    let mut i = 0;
    while i < n {
        let c = chars[i];
        // Line comment — blank to end of line (the newline itself is kept
        // by the outer loop).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment — Rust nests them.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Identifiers are consumed whole so a trailing `r`/`b`/`br` can be
        // recognized as a literal prefix rather than the tail of some
        // longer name (`four"…"` is not a raw string).
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let prefix = matches!(ident.as_str(), "r" | "b" | "br");
            if prefix && chars.get(i).is_some_and(|&c| c == '"' || c == '#') {
                // Raw / byte string: count the hashes, then scan for the
                // matching `"##…` terminator. `b"…"` has zero hashes and no
                // raw semantics, but its body is blanked the same way —
                // escapes only matter for finding the closing quote, which
                // the non-raw branch below handles; byte strings reuse it.
                out.push_str(&ident);
                if ident == "b" && chars.get(i) == Some(&'"') {
                    i = blank_plain_string(&chars, i, &mut out);
                    continue;
                }
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    out.push('#');
                    hashes += 1;
                    i += 1;
                }
                if chars.get(i) != Some(&'"') {
                    continue; // `r#ident` raw identifier, not a string
                }
                out.push('"');
                i += 1;
                while i < n {
                    if chars[i] == '"'
                        && chars[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            } else {
                out.push_str(&ident);
            }
            continue;
        }
        // Plain string literal.
        if c == '"' {
            i = blank_plain_string(&chars, i, &mut out);
            continue;
        }
        // Char literal vs lifetime/loop label.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: `'\n'`, `'\''`, `'\u{7f}'`, …
                out.push('\'');
                i += 1;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' && i + 1 < n {
                        out.push_str("  ");
                        i += 2;
                    } else {
                        blank(&mut out, chars[i]);
                        i += 1;
                    }
                }
                if i < n {
                    out.push('\'');
                    i += 1;
                }
            } else if chars.get(i + 2) == Some(&'\'') {
                // Simple char literal `'x'` — including `'"'`, which is why
                // this case is checked before anything quote-related.
                out.push_str("' '");
                i += 3;
            } else {
                // Lifetime or loop label: plain code.
                out.push('\'');
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Blanks one `"…"` literal starting at `chars[i] == '"'`, honoring
/// backslash escapes; returns the index one past the closing quote.
fn blank_plain_string(chars: &[char], mut i: usize, out: &mut String) -> usize {
    out.push('"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' if i + 1 < chars.len() => {
                out.push(' ');
                // Keep escaped newlines (line continuations) as newlines so
                // line alignment survives.
                out.push(if chars[i + 1] == '\n' { '\n' } else { ' ' });
                i += 2;
            }
            '"' => {
                out.push('"');
                return i + 1;
            }
            c => {
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
        }
    }
    i
}

/// Detects `== <float literal>` / `!= <float literal>` (either side).
fn float_literal_cmp(code: &str) -> bool {
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(op) {
            let at = start + pos;
            // Skip `<=`, `>=`, `!=` matched inside `==` scans and pattern
            // guards like `=>`.
            let before = &code[..at];
            let after = &code[at + 2..];
            if op == "==" && before.ends_with(['<', '>', '!', '=']) {
                start = at + 2;
                continue;
            }
            if is_float_token(last_token(before)) || is_float_token(first_token(after)) {
                return true;
            }
            start = at + 2;
        }
    }
    false
}

fn last_token(s: &str) -> &str {
    let trimmed = s.trim_end();
    let cut = trimmed
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .map_or(0, |p| p + 1);
    &trimmed[cut..]
}

fn first_token(s: &str) -> &str {
    let trimmed = s.trim_start();
    let cut = trimmed
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .unwrap_or(trimmed.len());
    &trimmed[..cut]
}

/// A token "looks like a float literal" when it parses as one and is not
/// an integer literal or an identifier/path segment.
fn is_float_token(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok);
    let tok = tok.strip_suffix('_').unwrap_or(tok);
    (tok.contains('.') || tok.contains(['e', 'E'])) && tok.parse::<f64>().is_ok()
}

/// Flags a `pub fn` with no doc comment or doc attribute above it. The
/// declaration is matched on the blanked `code` line (so the phrase inside
/// a string can't fire), but the doc search walks the *raw* lines — doc
/// comments are exactly what the lexer blanks out.
fn missing_doc_violation(label: &str, lines: &[&str], i: usize, code: &str) -> Option<Violation> {
    let trimmed = code.trim_start();
    let is_pub_fn = trimmed.starts_with("pub fn ")
        || trimmed.starts_with("pub const fn ")
        || trimmed.starts_with("pub unsafe fn ");
    if !is_pub_fn {
        return None;
    }
    // Walk upward over attributes and blank lines looking for docs.
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = lines[j].trim_start();
        if above.starts_with("///") || above.starts_with("#[doc") || above.starts_with("#![doc") {
            return None;
        }
        if above.starts_with("#[") || above.starts_with("#![") || above.is_empty() {
            continue;
        }
        break;
    }
    Some(Violation {
        file: label.to_string(),
        line: i + 1,
        rule: "doc-pub-fn",
        text: lines[i].to_string(),
    })
}

/// Dependency names allowed anywhere in the workspace.
const DEP_ALLOWLIST: &[&str] = &[
    "pilut-sparse",
    "pilut-graph",
    "pilut-par",
    "pilut-core",
    "pilut-solver",
    "pilut-allocaudit",
];

/// Manifest rule: every dependency name in any `[…dependencies…]` table
/// must be on the allowlist (`criterion` additionally allowed in the
/// workspace-excluded bench crate).
fn lint_manifest(label: &str, content: &str, is_bench: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_table = false;
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
            // `[target.'…'.dependencies]`, … — anything ending in `dependencies]`.
            in_dep_table = line.trim_end_matches(']').ends_with("dependencies");
            continue;
        }
        if !in_dep_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = line
            .split(['=', '.', ' ', '\t'])
            .next()
            .unwrap_or("")
            .trim_matches('"');
        if name.is_empty() {
            continue;
        }
        let allowed = DEP_ALLOWLIST.contains(&name) || (is_bench && name == "criterion");
        if !allowed {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "dep-allowlist",
                text: raw.to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn workspace_is_clean() {
        let violations = run_lint(&workspace_root());
        assert!(
            violations.is_empty(),
            "xtask lint found {} violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| format!("  {v}\n"))
                .collect::<String>()
        );
    }

    #[test]
    fn planted_unwrap_is_caught() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"h\");\n}\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", src, false)),
            vec!["no-unwrap"; 2]
        );
    }

    #[test]
    fn allow_marker_suppresses_unwrap() {
        let same = "fn f() { g().unwrap(); } // lint: allow(unwrap): infallible\n";
        assert!(lint_source("crates/fake/src/a.rs", same, false).is_empty());
        let above = "// lint: allow(unwrap): infallible\nfn f() { g().unwrap(); }\n";
        assert!(lint_source("crates/fake/src/a.rs", above, false).is_empty());
    }

    #[test]
    fn test_module_tail_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { h().unwrap(); }\n}\n";
        assert!(lint_source("crates/fake/src/a.rs", src, false).is_empty());
    }

    #[test]
    fn planted_float_eq_is_caught() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", bad, false)),
            vec!["no-float-eq"]
        );
        let bad2 = "fn f(x: f64) -> bool { 1e-6 != x }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", bad2, false)),
            vec!["no-float-eq"]
        );
    }

    #[test]
    fn integer_and_ge_comparisons_are_fine() {
        for ok in [
            "fn f(x: usize) -> bool { x == 0 }\n",
            "fn f(x: f64) -> bool { x <= 0.5 }\n",
            "fn f(x: f64) -> bool { x >= 0.5 }\n",
        ] {
            assert!(
                lint_source("crates/fake/src/a.rs", ok, false).is_empty(),
                "{ok}"
            );
        }
    }

    #[test]
    fn thread_use_confined_to_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", src, false)),
            vec!["par-confinement"]
        );
        assert!(lint_source("crates/par/src/a.rs", src, true).is_empty());
    }

    #[test]
    fn string_and_comment_content_does_not_fire() {
        let src = "fn f() { let s = \".unwrap() == 0.0 mpsc\"; } // .unwrap() std::thread\n";
        assert!(lint_source("crates/fake/src/a.rs", src, false).is_empty());
    }

    #[test]
    fn raw_comm_confined_to_par_and_exchange() {
        let src =
            "fn f(ctx: &mut Ctx) { ctx.send(1, tags::SPMV, p); let _ = ctx.recv(0, tags::SPMV); }\n";
        assert_eq!(
            rules(&lint_source("crates/core/src/dist/spmv.rs", src, false)),
            vec!["no-raw-comm"; 1]
        );
        assert!(lint_source("crates/par/src/ctx.rs", src, true).is_empty());
        assert!(lint_source("crates/core/src/dist/exchange.rs", src, false).is_empty());
        let allowed = "// lint: allow(raw-comm): bootstrap handshake\nfn f(ctx: &mut Ctx) { ctx.send(1, tags::SPMV, p); }\n";
        assert!(lint_source("crates/core/src/a.rs", allowed, false).is_empty());
    }

    #[test]
    fn untagged_send_is_caught_outside_par() {
        // A literal tag defeats the namespace discipline even where raw
        // comm itself is legal — and the scan crosses line breaks.
        let bad = "fn f(ctx: &mut Ctx) {\n    ctx.send(peer,\n        7,\n        p);\n}\n";
        let got = lint_source("crates/core/src/dist/exchange.rs", bad, false);
        assert_eq!(rules(&got), vec!["no-untagged-send"]);
        assert_eq!(got[0].line, 2, "reported at the call line");
        // `send_as` checks the stats tag too, not just the wire tag.
        let bad_as = "fn f(ctx: &mut Ctx) { ctx.send_as(peer, wire, 42, p); }\n";
        assert_eq!(
            rules(&lint_source(
                "crates/core/src/dist/exchange.rs",
                bad_as,
                false
            )),
            vec!["no-untagged-send"]
        );
        // Named constants and tags derived from them pass; nested calls in
        // earlier arguments don't shift the argument count.
        let good = "fn f(ctx: &mut Ctx) {\n    ctx.send(peer, tags::SPMV, p);\n    ctx.send_as(dest(q, 1), base + round, tags::FWD, p);\n}\n";
        assert!(lint_source("crates/core/src/dist/exchange.rs", good, false).is_empty());
        // The VM crate is exempt; the marker and the test tail opt out.
        assert!(lint_source("crates/par/src/a.rs", bad, true).is_empty());
        let marked = "// lint: allow(untagged-send): loopback probe\nfn f(ctx: &mut Ctx) { ctx.send(peer, 7, p); }\n";
        assert!(lint_source("crates/core/src/dist/exchange.rs", marked, false).is_empty());
        let tail = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(ctx: &mut Ctx) { ctx.send(0, 9, p); }\n}\n";
        assert!(lint_source("crates/core/src/dist/exchange.rs", tail, false).is_empty());
    }

    #[test]
    fn alloc_in_hot_catches_every_construct() {
        // Whole-file hot module: each construct fires as its own violation,
        // and macro invocations are matched as tokens — `vec![` and
        // `format!` are first-class, `avec![` is some other macro.
        let hot = "crates/sparse/src/tile.rs";
        let bad = "fn k() {\n    let a = Vec::new();\n    let b = vec![0.0; 4];\n    let c = Vec::with_capacity(8);\n    let d = xs.iter().collect();\n    let e = xs.to_vec();\n    let f = xs.clone();\n    let g = Box::new(0);\n    let h = format!(\"x\");\n    let i = String::new();\n}\n";
        assert_eq!(
            rules(&lint_source(hot, bad, false)),
            vec!["no-alloc-in-hot"; 9]
        );
        // A cold file with the same body is untouched.
        assert!(lint_source("crates/fake/src/a.rs", bad, false).is_empty());
    }

    #[test]
    fn alloc_in_hot_macro_tokens_do_not_false_positive() {
        let hot = "crates/sparse/src/tile.rs";
        for ok in [
            // `vec!` inside a string or comment is blanked before the walk.
            "fn k() { let s = \"vec![0; 4]\"; } // vec![format!]\n",
            // Some other macro ending in `vec`, and `Clone` in a bound.
            "fn k<T: Clone>() { avec![1]; assert_ne!(a, b); }\n",
            // `cloned()` / `collected` are different identifiers.
            "fn k() { xs.iter().cloned().sum::<f64>(); let collected = 0; }\n",
            // A field access named `clone` without a call doesn't fire.
            "fn k() { let c = self.clone_count; }\n",
        ] {
            assert!(lint_source(hot, ok, false).is_empty(), "{ok}");
        }
    }

    #[test]
    fn alloc_in_hot_respects_function_lists() {
        // factors.rs polices only the solve functions: a constructor may
        // allocate, the hot sweep may not.
        let label = "crates/core/src/factors.rs";
        let src = "impl F {\n    /// Constructor — free to allocate.\n    pub fn from_pairs() -> Self {\n        let v: Vec<f64> = it.collect();\n        Self { v }\n    }\n    /// Hot sweep — policed.\n    pub fn forward_solve(&self, b: &mut [f64]) {\n        let tmp = b.to_vec();\n    }\n}\n";
        let got = lint_source(label, src, false);
        assert_eq!(rules(&got), vec!["no-alloc-in-hot"]);
        assert_eq!(got[0].line, 9, "only the line inside the hot fn");
    }

    #[test]
    fn alloc_in_hot_escape_and_test_tail() {
        let hot = "crates/core/src/dist/exchange/replay.rs";
        let marked = "fn k() {\n    // lint: allow(alloc-in-hot): first-round warm-up only\n    let v = Vec::with_capacity(4);\n}\n";
        assert!(lint_source(hot, marked, false).is_empty());
        let tail = "fn k() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; }\n}\n";
        assert!(lint_source(hot, tail, false).is_empty());
    }

    #[test]
    fn alloc_in_hot_sees_multi_line_calls() {
        // The allocating token is flagged on its own line even when the
        // call spans lines — the walk is per physical line of blanked code.
        let hot = "crates/sparse/src/tile.rs";
        let src = "fn k() {\n    let v: Vec<f64> = xs\n        .iter()\n        .map(|x| x * 2.0)\n        .collect();\n}\n";
        let got = lint_source(hot, src, false);
        assert_eq!(rules(&got), vec!["no-alloc-in-hot"]);
        assert_eq!(got[0].line, 5, "reported at the `.collect()` line");
    }

    #[test]
    fn lexer_blanks_block_comments_and_raw_strings() {
        // Every construct the old per-line stripper could not see.
        let src = "fn f() {\n    /* x.unwrap()\n       still comment */\n    let s = r#\"g().unwrap() == 0.0\"#;\n    let b = b\".expect(\";\n}\n";
        assert!(lint_source("crates/fake/src/a.rs", src, false).is_empty());
        // Nested block comments stay blanked to the outermost close.
        let nested = "fn f() {\n    /* a /* b.unwrap() */ c.unwrap() */\n}\n";
        assert!(lint_source("crates/fake/src/a.rs", nested, false).is_empty());
    }

    #[test]
    fn lexer_handles_char_literals_and_lifetimes() {
        // `'"'` must not open a string; lifetimes must not open a char
        // literal that swallows the rest of the file.
        let src = "fn f<'a>(x: &'a str) -> bool {\n    let q = '\"';\n    let e = '\\'';\n    x.contains(q) && g().unwrap()\n}\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", src, false)),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn lexer_preserves_line_numbers() {
        let src = "line one\n\"string\nspanning\nlines\"\nlet x = 1;\n";
        let blanked = blank_noncode(src);
        assert_eq!(src.lines().count(), blanked.lines().count());
        assert_eq!(blanked.lines().last(), Some("let x = 1;"));
    }

    #[test]
    fn cfg_test_inside_a_string_does_not_start_the_test_tail() {
        let src = "fn f() { let s = \"#[cfg(test)]\"; }\nfn g() { h().unwrap(); }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", src, false)),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn reserved_tag_construction_is_caught_outside_par() {
        let bad = "fn f() { let t = Ctx::RESERVED_TAG_BASE | 3; }\n";
        assert_eq!(
            rules(&lint_source("crates/core/src/a.rs", bad, false)),
            vec!["no-reserved-tag"]
        );
        let bad2 = "fn f() { let t = 7 + pilut_par::Ctx::RESERVED_TAG_BASE; }\n";
        assert_eq!(
            rules(&lint_source("crates/solver/src/a.rs", bad2, false)),
            vec!["no-reserved-tag"]
        );
        // crates/par implements the namespace and may build tags in it.
        assert!(lint_source("crates/par/src/ctx.rs", bad, true).is_empty());
        // Classifying a tag by comparison is how user code is meant to use
        // the constant.
        let cmp = "fn f(t: u64) -> bool { t >= Ctx::RESERVED_TAG_BASE }\n";
        assert!(lint_source("crates/core/src/a.rs", cmp, false).is_empty());
        let marked = "// lint: allow(reserved-tag): test rig builds a protocol tag\nfn f() { let t = Ctx::RESERVED_TAG_BASE | 1; }\n";
        assert!(lint_source("crates/core/src/a.rs", marked, false).is_empty());
    }

    #[test]
    fn storage_poke_confined_to_sparse() {
        let bad = "fn f(a: &CsrMatrix) { let p = a.row_ptr(); let c = a.col_idx(); }\n";
        assert_eq!(
            rules(&lint_source("crates/core/src/a.rs", bad, false)),
            vec!["no-storage-poke"]
        );
        let bad_bcsr = "fn f(a: &BcsrMatrix) { let t = a.tile_values(); }\n";
        assert_eq!(
            rules(&lint_source("crates/solver/src/a.rs", bad_bcsr, false)),
            vec!["no-storage-poke"]
        );
        // The sparse crate implements the storage and may touch its arrays.
        assert!(lint_source("crates/sparse/src/bcsr.rs", bad, false).is_empty());
        // HashMap iteration does not pattern-match the rule.
        let map = "fn f(m: &mut HashMap<usize, Vec<u8>>) { for v in m.values_mut() {} }\n";
        assert!(lint_source("crates/core/src/a.rs", map, false).is_empty());
        // Escape hatch and test tail opt out as usual.
        let marked =
            "// lint: allow(storage-poke): zero-copy serialization needs the arrays\nfn f(a: &CsrMatrix) { let p = a.row_ptr(); }\n";
        assert!(lint_source("crates/core/src/a.rs", marked, false).is_empty());
        let tail =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(a: &CsrMatrix) { a.row_ptr(); }\n}\n";
        assert!(lint_source("crates/core/src/a.rs", tail, false).is_empty());
    }

    #[test]
    fn undocumented_pub_fn_is_caught() {
        let bad = "impl A {\n    pub fn f() {}\n}\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", bad, false)),
            vec!["doc-pub-fn"]
        );
        let good = "impl A {\n    /// Does f.\n    #[inline]\n    pub fn f() {}\n}\n";
        assert!(lint_source("crates/fake/src/a.rs", good, false).is_empty());
        // The doc rule is scoped to crates/*/src.
        assert!(lint_source("src/lib.rs", bad, false).is_empty());
    }

    #[test]
    fn rogue_dependency_is_caught() {
        let bad = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1\"\n";
        assert_eq!(
            rules(&lint_manifest("crates/fake/Cargo.toml", bad, false)),
            vec!["dep-allowlist"]
        );
    }

    #[test]
    fn path_deps_and_bench_criterion_are_fine() {
        let ok =
            "[dependencies]\npilut-sparse = { workspace = true }\npilut-par.workspace = true\n";
        assert!(lint_manifest("crates/fake/Cargo.toml", ok, false).is_empty());
        let bench = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        assert!(lint_manifest("crates/bench/Cargo.toml", bench, true).is_empty());
        assert_eq!(
            rules(&lint_manifest("crates/fake/Cargo.toml", bench, false)),
            vec!["dep-allowlist"]
        );
    }
}
