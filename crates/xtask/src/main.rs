//! `xtask` — in-repo workspace automation:
//!
//! * `cargo run -p xtask -- lint` — repo-local lint (below).
//! * `cargo run -p xtask --release -- bench [--quick] [--out PATH]
//!   [--label STR] [--scenario NAME]...` — the zero-dependency benchmark
//!   harness (see [`bench`]).
//! * `cargo run -p xtask -- bench-verify PATH` — structural check of a
//!   bench JSON report (the CI smoke gate).
//! * `cargo run -p xtask -- bench-compare NEW BASELINE [--tolerance PCT] [--geomean]`
//!   — regression gate comparing two bench reports (see [`bench::compare`]).
//! * `cargo run -p xtask --release -- chaos [--quick]` — the seeded
//!   fault-injection regression suite (see [`chaos`]).
//!
//! The `lint` task enforces repo-local rules that `rustc` and `clippy`
//! (which is not guaranteed to exist in the offline toolchain) do not:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` are forbidden in library
//!   code. Recoverable paths must return `Result`; genuinely impossible
//!   cases carry `// lint: allow(unwrap): <why>` on the same or the
//!   previous line. Test code (`tests/`, `benches/`, `examples/`, and
//!   everything after `#[cfg(test)]` in a source file) is exempt.
//! * **no-float-eq** — comparing against a float literal with `==`/`!=`
//!   is forbidden in library code; use a tolerance or
//!   `// lint: allow(float-eq): <why>` for exact-representation cases
//!   (comparisons against zero where the value was assigned, not computed).
//! * **par-confinement** — `std::thread` and channel types are allowed
//!   only inside `crates/par`; every other crate must go through the
//!   `Machine`/`Ctx` abstraction so the cost model sees all parallelism.
//! * **no-raw-comm** — raw point-to-point traffic (`ctx.send(` /
//!   `ctx.recv(`) is allowed only inside `crates/par` (which implements
//!   it) and `crates/core/src/dist/exchange.rs` (the planned-exchange
//!   layer). Everything else must route through a `CommPlan` or a
//!   collective, so every message is scheduled, counted, and replayable.
//!   Escape hatch: `// lint: allow(raw-comm): <why>`.
//! * **dep-allowlist** — every `Cargo.toml` may depend only on in-repo
//!   `pilut-*` path crates (plus `criterion`, only in the excluded
//!   `crates/bench`). This is what keeps the tier-1 gate offline-safe.
//! * **doc-pub-fn** — every `pub fn` in `crates/*/src` carries a doc
//!   comment (`///` or `#[doc = ...]`).
//!
//! A `#[test]` at the bottom runs the lint over the live workspace, so
//! plain `cargo test` fails if a violation lands.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench;
mod chaos;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => match bench::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask bench: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench-verify") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cargo run -p xtask -- bench-verify <file.json>");
                return ExitCode::FAILURE;
            };
            match bench::verify(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("xtask bench-verify: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-compare") => match bench::compare(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask bench-compare: {e}");
                ExitCode::FAILURE
            }
        },
        Some("chaos") => match chaos::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xtask chaos: {e}");
                ExitCode::FAILURE
            }
        },
        Some("lint") => {
            let root = workspace_root();
            let violations = run_lint(&root);
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint | bench [flags] | bench-verify <file> \
                 | bench-compare <new> <baseline> [--tolerance PCT] [--geomean] | chaos [--quick]"
            );
            ExitCode::FAILURE
        }
    }
}

/// The repo root, resolved from this crate's manifest directory so the
/// task works from any working directory.
fn workspace_root() -> PathBuf {
    // lint: allow(unwrap): CARGO_MANIFEST_DIR is compile-time and two levels deep
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

/// One finding: file, 1-based line, rule id, and the offending text.
#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// Runs every rule over the workspace rooted at `root`.
fn run_lint(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Library source rules: the five algorithm crates, the root facade, and
    // xtask itself — tooling is held to the same unwrap/float-eq discipline
    // (its grep patterns live in string literals, which the rules blank out).
    let lib_src: &[&str] = &[
        "crates/sparse/src",
        "crates/graph/src",
        "crates/par/src",
        "crates/core/src",
        "crates/solver/src",
        "crates/xtask/src",
        "src",
    ];
    for dir in lib_src {
        let in_par = *dir == "crates/par/src";
        for file in rust_files(&root.join(dir)) {
            let label = rel_label(root, &file);
            match std::fs::read_to_string(&file) {
                Ok(content) => {
                    violations.extend(lint_source(&label, &content, in_par));
                }
                Err(e) => violations.push(Violation {
                    file: label,
                    line: 0,
                    rule: "io",
                    text: format!("unreadable: {e}"),
                }),
            }
        }
    }
    // Manifest allowlist: every Cargo.toml in the repo, including the
    // workspace-excluded bench crate.
    for file in manifest_files(root) {
        let label = rel_label(root, &file);
        let is_bench = label.starts_with("crates/bench");
        match std::fs::read_to_string(&file) {
            Ok(content) => violations.extend(lint_manifest(&label, &content, is_bench)),
            Err(e) => violations.push(Violation {
                file: label,
                line: 0,
                rule: "io",
                text: format!("unreadable: {e}"),
            }),
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    violations
}

/// All `.rs` files under `dir`, recursively.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(dir, &mut |p| {
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p.to_path_buf());
        }
    });
    out.sort();
    out
}

/// All `Cargo.toml` files in the repo, skipping `target/` and `.git/`.
fn manifest_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut |p| {
        if p.file_name().is_some_and(|n| n == "Cargo.toml") {
            out.push(p.to_path_buf());
        }
    });
    out.sort();
    out
}

fn walk(dir: &Path, visit: &mut dyn FnMut(&Path)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, visit);
        } else {
            visit(&path);
        }
    }
}

fn rel_label(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string()
        .replace('\\', "/")
}

/// True when line `i` (0-based) of `lines` carries the given allow marker
/// on itself or on the previous line.
fn allowed(lines: &[&str], i: usize, marker: &str) -> bool {
    let tag = format!("lint: allow({marker})");
    lines[i].contains(&tag) || (i > 0 && lines[i - 1].contains(&tag))
}

/// Source-code rules over one file. `in_par` exempts the file from the
/// thread-confinement rule.
fn lint_source(label: &str, content: &str, in_par: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut in_tests = false;
    for (i, raw) in lines.iter().enumerate() {
        let line = strip_comment_and_strings(raw);
        let code = line.as_str();
        if raw.contains("#[cfg(test)]") {
            // Convention in this repo: the test module is the tail of the
            // file, so everything after the marker is test code.
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(&lines, i, "unwrap")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-unwrap",
                text: raw.to_string(),
            });
        }
        if float_literal_cmp(code) && !allowed(&lines, i, "float-eq") {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-float-eq",
                text: raw.to_string(),
            });
        }
        if !in_par
            && (code.contains("std::thread")
                || code.contains("mpsc")
                || code.contains("thread::spawn"))
            && !allowed(&lines, i, "thread")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "par-confinement",
                text: raw.to_string(),
            });
        }
        let comm_exempt = in_par || label == "crates/core/src/dist/exchange.rs";
        if !comm_exempt
            && (code.contains("ctx.send(") || code.contains("ctx.recv("))
            && !allowed(&lines, i, "raw-comm")
        {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "no-raw-comm",
                text: raw.to_string(),
            });
        }
        if label.starts_with("crates/") {
            if let Some(v) = missing_doc_violation(label, &lines, i) {
                out.push(v);
            }
        }
    }
    out
}

/// Blanks out `//` comments and the contents of string literals so the
/// pattern rules do not fire on prose. Char-literal and raw-string edge
/// cases are handled well enough for this codebase's style.
fn strip_comment_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut prev = '\0';
    while let Some(c) = chars.next() {
        if in_str {
            if c == '"' && prev != '\\' {
                in_str = false;
                out.push('"');
            } else {
                out.push(' ');
            }
            // A backslash escaping a backslash must not escape the quote after.
            prev = if c == '\\' && prev == '\\' { '\0' } else { c };
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push('"');
            }
            _ => out.push(c),
        }
        prev = c;
    }
    out
}

/// Detects `== <float literal>` / `!= <float literal>` (either side).
fn float_literal_cmp(code: &str) -> bool {
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(op) {
            let at = start + pos;
            // Skip `<=`, `>=`, `!=` matched inside `==` scans and pattern
            // guards like `=>`.
            let before = &code[..at];
            let after = &code[at + 2..];
            if op == "==" && before.ends_with(['<', '>', '!', '=']) {
                start = at + 2;
                continue;
            }
            if is_float_token(last_token(before)) || is_float_token(first_token(after)) {
                return true;
            }
            start = at + 2;
        }
    }
    false
}

fn last_token(s: &str) -> &str {
    let trimmed = s.trim_end();
    let cut = trimmed
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .map_or(0, |p| p + 1);
    &trimmed[cut..]
}

fn first_token(s: &str) -> &str {
    let trimmed = s.trim_start();
    let cut = trimmed
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .unwrap_or(trimmed.len());
    &trimmed[..cut]
}

/// A token "looks like a float literal" when it parses as one and is not
/// an integer literal or an identifier/path segment.
fn is_float_token(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok);
    let tok = tok.strip_suffix('_').unwrap_or(tok);
    (tok.contains('.') || tok.contains(['e', 'E'])) && tok.parse::<f64>().is_ok()
}

/// Flags a `pub fn` with no doc comment or doc attribute above it.
fn missing_doc_violation(label: &str, lines: &[&str], i: usize) -> Option<Violation> {
    let trimmed = lines[i].trim_start();
    let is_pub_fn = trimmed.starts_with("pub fn ")
        || trimmed.starts_with("pub const fn ")
        || trimmed.starts_with("pub unsafe fn ");
    if !is_pub_fn {
        return None;
    }
    // Walk upward over attributes and blank lines looking for docs.
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = lines[j].trim_start();
        if above.starts_with("///") || above.starts_with("#[doc") || above.starts_with("#![doc") {
            return None;
        }
        if above.starts_with("#[") || above.starts_with("#![") || above.is_empty() {
            continue;
        }
        break;
    }
    Some(Violation {
        file: label.to_string(),
        line: i + 1,
        rule: "doc-pub-fn",
        text: lines[i].to_string(),
    })
}

/// Dependency names allowed anywhere in the workspace.
const DEP_ALLOWLIST: &[&str] = &[
    "pilut-sparse",
    "pilut-graph",
    "pilut-par",
    "pilut-core",
    "pilut-solver",
];

/// Manifest rule: every dependency name in any `[…dependencies…]` table
/// must be on the allowlist (`criterion` additionally allowed in the
/// workspace-excluded bench crate).
fn lint_manifest(label: &str, content: &str, is_bench: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_table = false;
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
            // `[target.'…'.dependencies]`, … — anything ending in `dependencies]`.
            in_dep_table = line.trim_end_matches(']').ends_with("dependencies");
            continue;
        }
        if !in_dep_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = line
            .split(['=', '.', ' ', '\t'])
            .next()
            .unwrap_or("")
            .trim_matches('"');
        if name.is_empty() {
            continue;
        }
        let allowed = DEP_ALLOWLIST.contains(&name) || (is_bench && name == "criterion");
        if !allowed {
            out.push(Violation {
                file: label.to_string(),
                line: i + 1,
                rule: "dep-allowlist",
                text: raw.to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn workspace_is_clean() {
        let violations = run_lint(&workspace_root());
        assert!(
            violations.is_empty(),
            "xtask lint found {} violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| format!("  {v}\n"))
                .collect::<String>()
        );
    }

    #[test]
    fn planted_unwrap_is_caught() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"h\");\n}\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", src, false)),
            vec!["no-unwrap"; 2]
        );
    }

    #[test]
    fn allow_marker_suppresses_unwrap() {
        let same = "fn f() { g().unwrap(); } // lint: allow(unwrap): infallible\n";
        assert!(lint_source("crates/fake/src/a.rs", same, false).is_empty());
        let above = "// lint: allow(unwrap): infallible\nfn f() { g().unwrap(); }\n";
        assert!(lint_source("crates/fake/src/a.rs", above, false).is_empty());
    }

    #[test]
    fn test_module_tail_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { h().unwrap(); }\n}\n";
        assert!(lint_source("crates/fake/src/a.rs", src, false).is_empty());
    }

    #[test]
    fn planted_float_eq_is_caught() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", bad, false)),
            vec!["no-float-eq"]
        );
        let bad2 = "fn f(x: f64) -> bool { 1e-6 != x }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", bad2, false)),
            vec!["no-float-eq"]
        );
    }

    #[test]
    fn integer_and_ge_comparisons_are_fine() {
        for ok in [
            "fn f(x: usize) -> bool { x == 0 }\n",
            "fn f(x: f64) -> bool { x <= 0.5 }\n",
            "fn f(x: f64) -> bool { x >= 0.5 }\n",
        ] {
            assert!(
                lint_source("crates/fake/src/a.rs", ok, false).is_empty(),
                "{ok}"
            );
        }
    }

    #[test]
    fn thread_use_confined_to_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", src, false)),
            vec!["par-confinement"]
        );
        assert!(lint_source("crates/par/src/a.rs", src, true).is_empty());
    }

    #[test]
    fn string_and_comment_content_does_not_fire() {
        let src = "fn f() { let s = \".unwrap() == 0.0 mpsc\"; } // .unwrap() std::thread\n";
        assert!(lint_source("crates/fake/src/a.rs", src, false).is_empty());
    }

    #[test]
    fn raw_comm_confined_to_par_and_exchange() {
        let src = "fn f(ctx: &mut Ctx) { ctx.send(1, 7, p); let _ = ctx.recv(0, 7); }\n";
        assert_eq!(
            rules(&lint_source("crates/core/src/dist/spmv.rs", src, false)),
            vec!["no-raw-comm"; 1]
        );
        assert!(lint_source("crates/par/src/ctx.rs", src, true).is_empty());
        assert!(lint_source("crates/core/src/dist/exchange.rs", src, false).is_empty());
        let allowed = "// lint: allow(raw-comm): bootstrap handshake\nfn f(ctx: &mut Ctx) { ctx.send(1, 7, p); }\n";
        assert!(lint_source("crates/core/src/a.rs", allowed, false).is_empty());
    }

    #[test]
    fn undocumented_pub_fn_is_caught() {
        let bad = "impl A {\n    pub fn f() {}\n}\n";
        assert_eq!(
            rules(&lint_source("crates/fake/src/a.rs", bad, false)),
            vec!["doc-pub-fn"]
        );
        let good = "impl A {\n    /// Does f.\n    #[inline]\n    pub fn f() {}\n}\n";
        assert!(lint_source("crates/fake/src/a.rs", good, false).is_empty());
        // The doc rule is scoped to crates/*/src.
        assert!(lint_source("src/lib.rs", bad, false).is_empty());
    }

    #[test]
    fn rogue_dependency_is_caught() {
        let bad = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1\"\n";
        assert_eq!(
            rules(&lint_manifest("crates/fake/Cargo.toml", bad, false)),
            vec!["dep-allowlist"]
        );
    }

    #[test]
    fn path_deps_and_bench_criterion_are_fine() {
        let ok =
            "[dependencies]\npilut-sparse = { workspace = true }\npilut-par.workspace = true\n";
        assert!(lint_manifest("crates/fake/Cargo.toml", ok, false).is_empty());
        let bench = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        assert!(lint_manifest("crates/bench/Cargo.toml", bench, true).is_empty());
        assert_eq!(
            rules(&lint_manifest("crates/fake/Cargo.toml", bench, false)),
            vec!["dep-allowlist"]
        );
    }
}
