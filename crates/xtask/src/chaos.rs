//! `xtask chaos` — the seeded chaos regression suite.
//!
//! Runs the parallel ILUT factorization on the simulated machine under a
//! battery of deterministic fault plans and checks that every injected
//! fault lands in its contract:
//!
//! * **benign** faults (`delay`, `reorder`, `stall`) must leave the run
//!   bit-identical to a clean run — the VM's `(from, tag)` matching and the
//!   commcheck watchdog absorb them;
//! * **destructive** faults (`drop`, `duplicate`, `kill`) must end in a
//!   panic whose message *names the injection* (deadlock report, message
//!   leak sweep, or the kill marker) — never a hang, never a silently
//!   wrong factorization.
//!
//! Every trial is replayable: the fault plan is derived from `(kind, seed,
//! p)` alone, and the failure line prints all three plus the workload.
//! Two workloads are swept: `factor` (the parallel ILUT factorization,
//! where faults land in plan *construction* traffic) and `replay`
//! (prebuilt SpMV and trisolve `CommPlan`s driven through repeated
//! `replay` rounds, so faults land in the steady-state data plane). Full
//! mode sweeps p ∈ {4, 8} × 20 seeds × both workloads; `--quick` runs one
//! trial per (fault class, workload) at p = 4 (the CI configuration).
//!
//! `--recover` flips the suite into its second personality: the same
//! seeded kill/drop/kill+drop plans are thrown at the full *self-healing*
//! stack — par-ILUT + distributed GMRES behind
//! [`pilut_solver::dist_solve_robust`], on a machine with reliable delivery
//! **and** rank-loss recovery enabled — and the contract inverts: every
//! trial must now **complete** with a converged residual, every fired kill
//! must be named as a recovery epoch in the per-rank report, and any panic
//! at all (watchdog abort included) is a failure. Full mode sweeps
//! p ∈ {4, 8} × 24 seeds; `--recover --quick` runs one trial per kind at
//! p = 4.

use std::panic::AssertUnwindSafe;

use crate::sweep::{checked_builder, dist_matrix, ilut_options, mix};
use pilut_core::dist::op::{DistCsr, DistOperator};
use pilut_core::dist::DistMatrix;
use pilut_core::parallel::par_ilut;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{FaultAction, FaultPlan, FaultRule, FAULT_KILL_PREFIX};
use pilut_solver::dist_solve_robust;
use pilut_solver::gmres::GmresOptions;

/// The six fault classes, cycled over seeds so every class is exercised at
/// every process count.
const KINDS: &[&str] = &["delay", "reorder", "stall", "drop", "duplicate", "kill"];

/// The two workloads every fault class is thrown at.
const WORKLOADS: &[&str] = &["factor", "replay"];

fn is_benign(kind: &str) -> bool {
    matches!(kind, "delay" | "reorder" | "stall")
}

/// Builds the deterministic plan for one trial. Destructive rules fire
/// with probability 1 at a seed-chosen victim rank and comm-op, so a
/// failure reproduces from its printed `(kind, seed, p)` triple; benign
/// rules may use probabilities — nondeterminism in *whether* they fire is
/// still seeded, and a benign fault must be harmless wherever it lands.
fn plan_for(work: &str, kind: &str, seed: u64, p: usize) -> FaultPlan {
    let mut s = seed ^ 0xc7a_5_u64.rotate_left(17);
    let victim = (mix(&mut s) % p as u64) as usize;
    // The replay workload arms its rules well past the factorization and
    // plan-build prefix, so destructive fires land inside the
    // `CommPlan::replay` rounds that workload exists to stress.
    let after = if work == "replay" {
        64 + mix(&mut s) % 192
    } else {
        1 + mix(&mut s) % 12
    };
    let rule = match kind {
        "delay" => FaultRule::new(FaultAction::Delay { seconds: 2.0 }).probability(0.3),
        "reorder" => FaultRule::new(FaultAction::Reorder)
            .rank(victim)
            .probability(0.25),
        "stall" => FaultRule::new(FaultAction::Stall { millis: 5 })
            .rank(victim)
            .after_op(after)
            .max_fires(1),
        "drop" => FaultRule::new(FaultAction::Drop)
            .rank(victim)
            .after_op(after)
            .max_fires(1),
        "duplicate" => FaultRule::new(FaultAction::Duplicate)
            .rank(victim)
            .after_op(after)
            .max_fires(1),
        "kill" => FaultRule::new(FaultAction::Kill)
            .rank(victim)
            .after_op(after),
        other => unreachable!("unknown fault kind {other}"),
    };
    FaultPlan::new(seed).with(rule)
}

/// How one trial ended.
enum Outcome {
    /// Run completed; per-rank factorization checksums matched the clean
    /// run (benign contract).
    CleanMatch,
    /// Run completed and no rule ever fired (the seed armed the rule past
    /// the program's op count) — vacuous but not a violation.
    NoFire,
    /// Run panicked with a message that names the injection.
    Diagnosed,
    /// Contract violation; the string says what went wrong.
    Fail(String),
}

/// Builds the machine for one trial, with or without a fault plan.
fn trial_machine(plan: Option<FaultPlan>) -> pilut_par::MachineBuilder {
    let mut builder = checked_builder();
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder
}

/// Dispatches one of the two chaos workloads; both reduce to one checksum
/// per rank plus a trailing fired-fault count.
fn workload(name: &str, dm: &DistMatrix, p: usize, plan: Option<FaultPlan>) -> Vec<u64> {
    match name {
        "factor" => factor_workload(dm, p, plan),
        "replay" => replay_workload(dm, p, plan),
        other => unreachable!("unknown chaos workload {other}"),
    }
}

/// The factorization workload: par_ilut over a block-partitioned Laplacian,
/// reduced to one checksum per rank (the sum of owned pivots) so benign
/// trials can be compared bit-for-bit against a clean run.
fn factor_workload(dm: &DistMatrix, p: usize, plan: Option<FaultPlan>) -> Vec<u64> {
    let opts = ilut_options();
    let out = trial_machine(plan).run(p, |ctx| {
        let local = dm.local_view(ctx.rank());
        // lint: allow(unwrap): the workload matrix factors cleanly; a corrupted run dies in the VM's diagnosis
        let rf = par_ilut(ctx, dm, &local, &opts).expect("chaos workload must factor");
        // Sum pivots in global row order: HashMap iteration order varies
        // between processes, and a different summation order would change
        // the rounding and break the bit-for-bit benign comparison.
        let mut pivots: Vec<(usize, f64)> = rf.rows.iter().map(|(&g, r)| (g, r.diag)).collect();
        pivots.sort_unstable_by_key(|&(g, _)| g);
        let sum: f64 = pivots.iter().map(|&(_, d)| d).sum();
        sum.to_bits()
    });
    // The trailing element carries the fired-fault count: completed
    // destructive runs are judged on whether anything actually fired.
    let mut sums = out.results;
    sums.push(out.injected_faults.len() as u64);
    sums
}

/// The steady-state data-plane workload: factor once, build the SpMV and
/// trisolve plans, then drive several matvec+solve rounds through
/// `CommPlan::replay` — the path every iterative solve sits on. Later
/// fault `after_op` offsets land inside the replays rather than the plan
/// builds, which is exactly the coverage the factor workload lacks.
fn replay_workload(dm: &DistMatrix, p: usize, plan: Option<FaultPlan>) -> Vec<u64> {
    let opts = ilut_options();
    let out = trial_machine(plan).run(p, |ctx| {
        let local = dm.local_view(ctx.rank());
        // lint: allow(unwrap): the workload matrix factors cleanly; a corrupted run dies in the VM's diagnosis
        let rf = par_ilut(ctx, dm, &local, &opts).expect("chaos workload must factor");
        let tplan = TrisolvePlan::build(ctx, dm, &local, &rf);
        let mut op = DistCsr::new(ctx, dm, &local);
        // Four rounds of matvec + two-sweep solve, feeding each round's
        // output into the next so a corrupted replay cannot cancel out.
        let mut x = vec![1.0; local.len()];
        for _ in 0..4 {
            let y = op.apply(ctx, &x);
            x = dist_solve(ctx, &local, &rf, &tplan, &y);
        }
        // Local-view order is deterministic per rank, so a sequential sum
        // is bit-stable for the benign comparison.
        let sum: f64 = x.iter().sum();
        sum.to_bits()
    });
    let mut sums = out.results;
    sums.push(out.injected_faults.len() as u64);
    sums
}

/// Runs one trial and classifies it against the fault-class contract.
fn run_trial(work: &str, kind: &str, seed: u64, p: usize, clean: &[u64]) -> Outcome {
    let plan = plan_for(work, kind, seed, p);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        workload(work, &dist_matrix(p), p, Some(plan))
    }));
    match result {
        Ok(sums) => {
            let fired = *sums.last().unwrap_or(&0);
            if is_benign(kind) {
                if sums[..p] == clean[..p] {
                    if fired == 0 {
                        Outcome::NoFire
                    } else {
                        Outcome::CleanMatch
                    }
                } else {
                    Outcome::Fail("benign fault changed the factorization result".into())
                }
            } else if fired == 0 {
                Outcome::NoFire
            } else {
                Outcome::Fail(format!(
                    "destructive fault fired {fired} time(s) but the run completed undiagnosed"
                ))
            }
        }
        Err(payload) => {
            let msg = crate::sweep::panic_text(payload);
            if is_benign(kind) {
                return Outcome::Fail(format!("benign fault crashed the run: {msg}"));
            }
            // A consumed fault (e.g. a duplicate read as fresh data) can
            // surface as the algorithm's own panic; the VM annotates such
            // payloads with the firing log, which also names the injection.
            let annotated = msg.contains("note: fault injection fired");
            let recognized = annotated
                || match kind {
                    "drop" => msg.contains("[injected drop]"),
                    // A duplicate can surface three ways, all naming it: the
                    // happens-before detector sees two envelopes with the
                    // same send op and flags the match-order race at the
                    // second accept; an unconsumed copy trips the leak
                    // sweep; a consumed copy starves a later receive into
                    // the deadlock report.
                    "duplicate" => {
                        msg.contains("message leak")
                            || msg.contains("deadlock")
                            || msg.contains("match-order race")
                    }
                    "kill" => {
                        msg.contains("killed by fault injection") || msg.contains(FAULT_KILL_PREFIX)
                    }
                    _ => false,
                };
            if recognized {
                Outcome::Diagnosed
            } else {
                Outcome::Fail(format!("panic does not name the injected {kind}: {msg}"))
            }
        }
    }
}

/// The fault kinds of the `--recover` sweep, cycled over seeds.
const RECOVER_KINDS: &[&str] = &["kill", "drop", "kill+drop"];

/// Builds the deterministic plan for one recovery trial: an exact kill at
/// a seed-chosen rank and comm-op, probabilistic bounded drops, or both.
fn recover_plan(kind: &str, seed: u64, p: usize) -> FaultPlan {
    let mut s = seed ^ 0x4ec0_4e4du64.rotate_left(21);
    let victim = (mix(&mut s) % p as u64) as usize;
    // Offsets span plan construction, factorization, and the GMRES
    // iteration, so recovery is exercised at every phase of the solve.
    let after = 8 + mix(&mut s) % 300;
    let drop_sender = (mix(&mut s) % p as u64) as usize;
    let mut plan = FaultPlan::new(seed);
    if kind.contains("kill") {
        plan = plan.with(
            FaultRule::new(FaultAction::Kill)
                .rank(victim)
                .after_op(after),
        );
    }
    if kind.contains("drop") {
        plan = plan.with(
            FaultRule::new(FaultAction::Drop)
                .sender(drop_sender)
                .probability(0.15)
                .max_fires(3),
        );
    }
    plan
}

/// Runs one self-healing trial: the robust distributed solve under the
/// plan, with reliable delivery and recovery enabled. The contract is the
/// inverse of the destructive sweep's — the run must *complete*, survivors
/// must converge to the known solution, and every fired kill must be named
/// as a recovery epoch.
fn recover_trial(kind: &str, seed: u64, p: usize) -> Outcome {
    let plan = recover_plan(kind, seed, p);
    let dm = dist_matrix(p);
    let a = dm.matrix().clone();
    let dist = dm.dist().clone();
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let b = a.spmv_owned(&x_true);
    let gopts = GmresOptions {
        restart: 10,
        rtol: 1e-8,
        max_matvecs: 400,
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        checked_builder()
            .reliable(true)
            .recovery(true)
            .fault_plan(plan)
            .run(p, |ctx| {
                dist_solve_robust(ctx, &a, &b, &dist, &ilut_options(), &gopts)
            })
    }));
    let out = match result {
        Ok(out) => out,
        // Zero aborts allowed: a watchdog/commcheck panic here means a
        // fault escaped the robustness layers.
        Err(payload) => {
            return Outcome::Fail(format!(
                "recovery run aborted: {}",
                crate::sweep::panic_text(payload)
            ))
        }
    };
    if out.injected_faults.is_empty() {
        return Outcome::NoFire;
    }
    let kills = out
        .injected_faults
        .iter()
        .filter(|f| f.kind == "kill")
        .count();
    let mut x = vec![f64::NAN; n];
    for (r, rep) in out.results.iter().enumerate() {
        if rep.dead {
            continue;
        }
        if !rep.converged {
            return Outcome::Fail(format!("rank {r} did not converge: {}", rep.summary()));
        }
        if kills > 0 {
            if rep.recoveries.len() != kills {
                return Outcome::Fail(format!(
                    "rank {r} records {} recovery(ies) for {kills} kill(s)",
                    rep.recoveries.len()
                ));
            }
            if !rep.summary().contains("epoch") {
                return Outcome::Fail(format!(
                    "rank {r}'s report does not name the recovery epoch: {}",
                    rep.summary()
                ));
            }
        }
        for (&g, &v) in rep.nodes.iter().zip(&rep.x_local) {
            x[g] = v;
        }
    }
    let dead = out.results.iter().filter(|r| r.dead).count();
    if dead != kills {
        return Outcome::Fail(format!("{kills} kill(s) fired but {dead} tombstone(s)"));
    }
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    if err > 1e-4 {
        return Outcome::Fail(format!("assembled solution off by {err:.1e}"));
    }
    Outcome::CleanMatch
}

/// The `--recover` sweep loop.
fn run_recover(quick: bool) -> Result<(), String> {
    let procs: &[usize] = if quick { &[4] } else { &[4, 8] };
    let seeds_per_p: u64 = if quick {
        RECOVER_KINDS.len() as u64
    } else {
        24
    };
    let mut recovered = 0usize;
    let mut no_fire = 0usize;
    let mut failures: Vec<String> = Vec::new();
    // The injected kills unwind victim threads by design; suppress the
    // induced backtraces (failures still surface via the classifier).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for &p in procs {
        for seed in 0..seeds_per_p {
            let kind = RECOVER_KINDS[(seed as usize) % RECOVER_KINDS.len()];
            match recover_trial(kind, seed, p) {
                Outcome::CleanMatch => recovered += 1,
                Outcome::NoFire => no_fire += 1,
                Outcome::Diagnosed => unreachable!("recover trials never diagnose"),
                Outcome::Fail(why) => {
                    failures.push(format!("kind={kind} seed={seed} p={p}: {why}"))
                }
            }
        }
    }
    std::panic::set_hook(default_hook);
    let total = recovered + no_fire + failures.len();
    println!(
        "chaos --recover: {total} trial(s) — {recovered} recovered+converged, \
         {no_fire} no-fire, {} failure(s)",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("chaos FAIL: {f}");
        }
        Err(format!(
            "{} trial(s) failed to recover and converge",
            failures.len()
        ))
    }
}

/// Entry point for `xtask chaos`. Returns `Err(message)` on bad usage or
/// any contract violation.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut recover = false;
    let mut seeds_per_p = 20u64;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            "--recover" => recover = true,
            other => return Err(format!("unknown chaos flag {other}")),
        }
    }
    if recover {
        return run_recover(quick);
    }
    let procs: &[usize] = if quick { &[4] } else { &[4, 8] };
    if quick {
        seeds_per_p = KINDS.len() as u64;
    }
    let mut failures: Vec<String> = Vec::new();
    let mut diagnosed = 0usize;
    let mut clean_match = 0usize;
    let mut no_fire = 0usize;
    // Destructive trials end in panics by design; the default hook would
    // spray every induced backtrace over the CI log. The messages still
    // reach the classifier through `catch_unwind`.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for &p in procs {
        for &work in WORKLOADS {
            let clean = workload(work, &dist_matrix(p), p, None);
            for seed in 0..seeds_per_p {
                let kind = KINDS[(seed as usize) % KINDS.len()];
                match run_trial(work, kind, seed, p, &clean) {
                    Outcome::CleanMatch => clean_match += 1,
                    Outcome::NoFire => no_fire += 1,
                    Outcome::Diagnosed => diagnosed += 1,
                    Outcome::Fail(why) => {
                        failures.push(format!("work={work} kind={kind} seed={seed} p={p}: {why}"))
                    }
                }
            }
        }
    }
    std::panic::set_hook(default_hook);
    let total = clean_match + no_fire + diagnosed + failures.len();
    println!(
        "chaos: {total} trial(s) — {clean_match} benign-clean, {diagnosed} diagnosed, \
         {no_fire} no-fire, {} failure(s)",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("chaos FAIL: {f}");
        }
        Err(format!(
            "{} trial(s) violated the fault contract",
            failures.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = plan_for("factor", "drop", 9, 4);
        let b = plan_for("factor", "drop", 9, 4);
        assert_eq!(a.rules()[0].rank, b.rules()[0].rank);
        assert_eq!(a.rules()[0].after_op, b.rules()[0].after_op);
    }

    #[test]
    fn every_kind_is_classified() {
        for kind in KINDS {
            let benign = is_benign(kind);
            let destructive = matches!(*kind, "drop" | "duplicate" | "kill");
            assert!(benign != destructive, "{kind} must be exactly one class");
        }
    }

    #[test]
    fn quick_suite_is_green() {
        run(&["--quick".to_string()]).expect("quick chaos suite must pass");
    }

    #[test]
    fn recover_plans_are_deterministic_per_seed() {
        let a = recover_plan("kill+drop", 5, 8);
        let b = recover_plan("kill+drop", 5, 8);
        assert_eq!(a.rules().len(), 2);
        assert_eq!(a.rules()[0].rank, b.rules()[0].rank);
        assert_eq!(a.rules()[0].after_op, b.rules()[0].after_op);
    }

    #[test]
    fn quick_recover_suite_is_green() {
        run(&["--recover".to_string(), "--quick".to_string()])
            .expect("quick recovery sweep must pass");
    }
}
