//! `xtask bench` — the in-tree, zero-registry-dependency benchmark harness.
//!
//! Times the wall-clock hot paths of the reproduction over fixed-seed
//! generated problems and writes a machine-readable JSON report so every PR
//! has a performance trajectory to compare against (`BENCH_<label>.json` at
//! the repo root by convention). Everything here is plain `std::time`
//! timing — no criterion, no registry crates — so the harness runs in the
//! same offline environment as the tier-1 gate.
//!
//! Scenarios (full mode):
//!
//! * `serial_ilut` — serial ILUT(10, 1e-4) factorization, 64×64
//!   convection–diffusion (n = 4096).
//! * `serial_ilut_unbounded` — serial ILUT(n, 0) on a 24×24 Laplacian: the
//!   exact-LU configuration, which stresses fill handling and the working
//!   row hardest per unknown.
//! * `trisolve_serial` — repeated `LuFactors::solve` on the `serial_ilut`
//!   factors (forward + backward substitution).
//! * `spmv` — serial CSR SpMV on a 200×200 Laplacian (n = 40 000).
//! * `gmres_ilut` — full right-preconditioned GMRES(30) solve, ILUT
//!   preconditioner, 48×48 convection–diffusion.
//! * `par_ilut_p4` / `par_ilut_p8` — the parallel ILUT factorization on the
//!   simulated machine at p ∈ {4, 8} (48×48 Laplacian), timed inside the
//!   ranks (max over ranks, barrier-aligned start).
//! * `par_ilut_star_p4` / `par_ilut_star_p8` — same with ILUT\*(10, 1e-4, 2).
//! * `dist_trisolve_p4` — the distributed forward/backward solves (paper
//!   §5) with a prebuilt communication plan, p = 4.
//!
//! Every scenario reports the median and minimum wall time per operation
//! over `reps` samples (each sample averages `inner` back-to-back
//! operations) plus an nnz-throughput figure where the operation has a
//! natural "entries processed" count (0 where it does not, e.g. the full
//! GMRES solve).
//!
//! `--quick` shrinks the problem sizes and runs the two cheapest scenarios
//! only — this is the CI smoke configuration, meant to prove the harness
//! and its JSON writer work, not to produce quotable numbers.

use std::path::Path;
use std::time::Instant;

use pilut_core::dist::exchange::tags;
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::precond::IluPreconditioner;
use pilut_core::serial::ilut;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel, MachineStats};
use pilut_solver::{gmres, GmresOptions};
use pilut_sparse::gen;

/// One scenario's measurement.
struct Measurement {
    name: &'static str,
    /// Problem dimension (unknowns).
    n: usize,
    /// Entries processed per operation (0 when no natural count exists).
    nnz: usize,
    reps: usize,
    inner: usize,
    median_ns: u64,
    min_ns: u64,
    /// Total messages the scenario's machine run put on the wire (0 for
    /// serial scenarios — they have no machine).
    comm_messages: u64,
    /// Total bytes behind `comm_messages`.
    comm_bytes: u64,
    /// Per-tag breakdown, `"name:messages/bytes"` space-separated (empty
    /// for serial scenarios). Names come from `tags::tag_name`.
    comm_tags: String,
    /// Per-tag *predicted* traffic from the static `CommPlan` analysis
    /// (`MachineStats::planned_by_tag`): `"name:messages/bytes"` when the
    /// byte prediction is exact, `"name:messages/~"` for producer-defined
    /// rounds that predict message counts only. `bench-verify` gates the
    /// measured counters against this.
    comm_planned: String,
}

impl Measurement {
    fn mnnz_per_s(&self) -> f64 {
        if self.nnz == 0 || self.median_ns == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.median_ns as f64 / 1e9) / 1e6
        }
    }
}

/// Harness configuration, derived from the CLI flags.
struct Cfg {
    quick: bool,
    reps: usize,
}

/// Entry point for `xtask bench`. Returns `Err(message)` on bad usage.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut out_path = String::from("BENCH.json");
    let mut label = String::from("local");
    let mut baseline = String::from("none");
    let mut only: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = it
                    .next()
                    .ok_or_else(|| "--out needs a path".to_string())?
                    .clone();
            }
            "--label" => {
                label = it
                    .next()
                    .ok_or_else(|| "--label needs a value".to_string())?
                    .clone();
            }
            "--baseline" => {
                baseline = it
                    .next()
                    .ok_or_else(|| "--baseline needs a filename".to_string())?
                    .clone();
            }
            "--scenario" => {
                only.push(
                    it.next()
                        .ok_or_else(|| "--scenario needs a name".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("unknown bench flag {other}")),
        }
    }
    let cfg = Cfg {
        quick,
        reps: if quick { 3 } else { 9 },
    };
    let all: Vec<(&'static str, fn(&Cfg) -> Measurement)> = if quick {
        vec![
            ("spmv", bench_spmv as fn(&Cfg) -> Measurement),
            ("serial_ilut", bench_serial_ilut),
        ]
    } else {
        vec![
            ("serial_ilut", bench_serial_ilut as fn(&Cfg) -> Measurement),
            ("serial_ilut_unbounded", bench_serial_ilut_unbounded),
            ("trisolve_serial", bench_trisolve_serial),
            ("spmv", bench_spmv),
            ("gmres_ilut", bench_gmres),
            ("par_ilut_p4", bench_par_ilut_p4),
            ("par_ilut_p8", bench_par_ilut_p8),
            ("par_ilut_star_p4", bench_par_ilut_star_p4),
            ("par_ilut_star_p8", bench_par_ilut_star_p8),
            ("dist_trisolve_p4", bench_dist_trisolve_p4),
        ]
    };
    let mut results = Vec::new();
    for (name, f) in all {
        if !only.is_empty() && !only.iter().any(|s| s == name) {
            continue;
        }
        eprint!("bench {name} ... ");
        let m = f(&cfg);
        eprintln!(
            "median {:.3} ms, min {:.3} ms{}",
            m.median_ns as f64 / 1e6,
            m.min_ns as f64 / 1e6,
            if m.nnz > 0 {
                format!(", {:.1} Mnnz/s", m.mnnz_per_s())
            } else {
                String::new()
            }
        );
        results.push(m);
    }
    if results.is_empty() {
        return Err("no scenario matched the --scenario filter".to_string());
    }
    let json = render_json(&label, &baseline, quick, &results);
    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("bench: wrote {} scenario(s) to {out_path}", results.len());
    Ok(())
}

/// Folds a machine run's stats into the measurement's comm fields: the
/// aggregate message/byte totals, the per-tag breakdown string, and the
/// per-tag prediction string from the static plan analysis.
fn comm_fields(stats: &MachineStats) -> (u64, u64, String, String) {
    let detail = stats
        .by_tag
        .iter()
        .map(|(&tag, &(m, b))| format!("{}:{m}/{b}", tags::tag_name(tag)))
        .collect::<Vec<_>>()
        .join(" ");
    let planned = stats
        .planned_by_tag
        .iter()
        .map(|(&tag, &(m, b, exact))| {
            if exact {
                format!("{}:{m}/{b}", tags::tag_name(tag))
            } else {
                format!("{}:{m}/~", tags::tag_name(tag))
            }
        })
        .collect::<Vec<_>>()
        .join(" ");
    (stats.messages, stats.bytes, detail, planned)
}

// ---------------------------------------------------------------------------
// Timing helpers.

/// Times `op` (`reps` samples of `inner` back-to-back calls after one
/// warmup) and returns (median, min) ns per call.
fn sample<F: FnMut()>(reps: usize, inner: usize, mut op: F) -> (u64, u64) {
    op(); // warmup
    let mut ns: Vec<u64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            op();
        }
        ns.push((t.elapsed().as_nanos() / inner as u128) as u64);
    }
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0])
}

/// Like [`sample`] but for operations that measure themselves (the
/// machine-backed scenarios report the max per-rank wall time).
fn sample_reported<F: FnMut() -> u64>(reps: usize, mut op: F) -> (u64, u64) {
    op(); // warmup
    let mut ns: Vec<u64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        ns.push(op());
    }
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0])
}

// ---------------------------------------------------------------------------
// Scenarios.

fn bench_serial_ilut(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 24 } else { 64 };
    let a = gen::convection_diffusion_2d(dim, dim, 4.0, -3.0);
    let opts = IlutOptions::new(10, 1e-4);
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let f = ilut(&a, &opts).expect("factorization failed");
        std::hint::black_box(&f);
    });
    Measurement {
        name: "serial_ilut",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
    }
}

fn bench_serial_ilut_unbounded(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 12 } else { 24 };
    let a = gen::laplace_2d(dim, dim);
    let opts = IlutOptions::new(a.n_rows(), 0.0);
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let f = ilut(&a, &opts).expect("factorization failed");
        std::hint::black_box(&f);
    });
    Measurement {
        name: "serial_ilut_unbounded",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
    }
}

fn bench_trisolve_serial(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 24 } else { 64 };
    let a = gen::convection_diffusion_2d(dim, dim, 4.0, -3.0);
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = ilut(&a, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    let fill = f.nnz();
    let b: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 13) as f64) - 6.0).collect();
    let inner = 50;
    let (median_ns, min_ns) = sample(cfg.reps, inner, || {
        let x = f.solve(&b);
        std::hint::black_box(&x);
    });
    Measurement {
        name: "trisolve_serial",
        n: a.n_rows(),
        nnz: fill,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
    }
}

fn bench_spmv(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 40 } else { 200 };
    let a = gen::laplace_2d(dim, dim);
    let x: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; a.n_rows()];
    let inner = 50;
    let (median_ns, min_ns) = sample(cfg.reps, inner, || {
        a.spmv(&x, &mut y);
        std::hint::black_box(&y);
    });
    Measurement {
        name: "spmv",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
    }
}

fn bench_gmres(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 16 } else { 48 };
    let a = gen::convection_diffusion_2d(dim, dim, 8.0, 2.0);
    let x_true = vec![1.0; a.n_rows()];
    let b = a.spmv_owned(&x_true);
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = ilut(&a, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    let pre = IluPreconditioner::new(f);
    let opts = GmresOptions {
        rtol: 1e-8,
        ..GmresOptions::default()
    };
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        let r = gmres(&a, &b, &pre, &opts);
        assert!(r.converged, "gmres bench problem must converge");
        std::hint::black_box(&r);
    });
    Measurement {
        name: "gmres_ilut",
        n: a.n_rows(),
        nnz: 0,
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
    }
}

/// Machine-backed factorization scenario: each rank times `inner`
/// collective factorizations after a barrier; the scenario reports the max
/// per-rank wall time, which is what a real machine would observe.
fn bench_par_ilut(name: &'static str, cfg: &Cfg, p: usize, opts: IlutOptions) -> Measurement {
    let dim = if cfg.quick { 16 } else { 48 };
    let a = gen::laplace_2d(dim, dim);
    let nnz = a.nnz();
    let n = a.n_rows();
    let dm = DistMatrix::from_matrix(a, p, 17);
    let inner = 2;
    let (median_ns, min_ns) = sample_reported(cfg.reps, || {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            ctx.barrier();
            let t = Instant::now();
            for _ in 0..inner {
                // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
                let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
                std::hint::black_box(&rf);
            }
            (t.elapsed().as_nanos() / inner as u128) as u64
        });
        out.results.into_iter().max().unwrap_or(0)
    });
    // One untimed run to read the comm volume of a single factorization.
    let stats = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
        std::hint::black_box(&rf);
    })
    .stats;
    let (comm_messages, comm_bytes, comm_tags, comm_planned) = comm_fields(&stats);
    Measurement {
        name,
        n,
        nnz,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages,
        comm_bytes,
        comm_tags,
        comm_planned,
    }
}

fn bench_par_ilut_p4(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_p4", cfg, 4, IlutOptions::new(10, 1e-4))
}

fn bench_par_ilut_p8(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_p8", cfg, 8, IlutOptions::new(10, 1e-4))
}

fn bench_par_ilut_star_p4(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_star_p4", cfg, 4, IlutOptions::star(10, 1e-4, 2))
}

fn bench_par_ilut_star_p8(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_star_p8", cfg, 8, IlutOptions::star(10, 1e-4, 2))
}

fn bench_dist_trisolve_p4(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 16 } else { 48 };
    let p = 4;
    let a = gen::laplace_2d(dim, dim);
    let n = a.n_rows();
    let dm = DistMatrix::from_matrix(a, p, 17);
    let opts = IlutOptions::new(10, 1e-4);
    let inner = 20;
    let (median_ns, min_ns) = sample_reported(cfg.reps, || {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| (g as f64).sin()).collect();
            ctx.barrier();
            let t = Instant::now();
            for _ in 0..inner {
                let x = dist_solve(ctx, &local, &rf, &plan, &b);
                std::hint::black_box(&x);
            }
            (t.elapsed().as_nanos() / inner as u128) as u64
        });
        out.results.into_iter().max().unwrap_or(0)
    });
    // Factor fill for the throughput figure plus the comm volume of one
    // factor + plan build + solve: rebuild once outside timing.
    let (fill, stats) = {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| (g as f64).sin()).collect();
            let x = dist_solve(ctx, &local, &rf, &plan, &b);
            std::hint::black_box(&x);
            rf.rows
                .values()
                .map(|r| r.l.len() + r.u.len() + 1)
                .sum::<usize>()
        });
        (out.results.into_iter().sum::<usize>(), out.stats)
    };
    let (comm_messages, comm_bytes, comm_tags, comm_planned) = comm_fields(&stats);
    Measurement {
        name: "dist_trisolve_p4",
        n,
        nnz: fill,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages,
        comm_bytes,
        comm_tags,
        comm_planned,
    }
}

// ---------------------------------------------------------------------------
// JSON.

fn render_json(label: &str, baseline: &str, quick: bool, results: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pilut-bench-v1\",\n");
    out.push_str(&format!("  \"label\": \"{label}\",\n"));
    out.push_str(&format!("  \"baseline\": \"{baseline}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {}, \"reps\": {}, \"inner\": {}, \
             \"median_ns\": {}, \"min_ns\": {}, \"mnnz_per_s\": {:.2}, \
             \"comm_messages\": {}, \"comm_bytes\": {}, \"comm_tags\": \"{}\", \
             \"comm_planned\": \"{}\"}}{}\n",
            m.name,
            m.n,
            m.nnz,
            m.reps,
            m.inner,
            m.median_ns,
            m.min_ns,
            m.mnnz_per_s(),
            m.comm_messages,
            m.comm_bytes,
            m.comm_tags,
            m.comm_planned,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Entry point for `xtask bench-verify <file> [--slack PCT]`: structural
/// well-formedness check of a bench JSON report plus the planned-vs-
/// measured traffic gate, used by the CI smoke run. Verifies the schema
/// marker, that at least one scenario is present, that every scenario line
/// carries the required numeric fields with positive timings — and that
/// every machine scenario's measured per-tag counters agree with the
/// static `CommPlan` predictions it recorded: message counts exactly,
/// byte counts within `--slack` percent (default 0 — the values-only wire
/// format is deterministic, so the exact predictions must hold to the
/// byte; the flag exists for future payloads with platform-dependent
/// encodings). Measured traffic on a protocol tag no plan predicted is a
/// data-plane escape and always fails.
pub fn verify(args: &[String]) -> Result<(), String> {
    let mut path: Option<&String> = None;
    let mut slack_pct = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slack" => {
                slack_pct = it
                    .next()
                    .ok_or_else(|| "--slack needs a percentage".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --slack value: {e}"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown bench-verify flag {other}"));
            }
            _ if path.is_none() => path = Some(arg),
            other => return Err(format!("unexpected bench-verify argument {other}")),
        }
    }
    let path = path.ok_or_else(|| "usage: bench-verify <file.json> [--slack PCT]".to_string())?;
    let content =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if !content.contains("\"schema\": \"pilut-bench-v1\"") {
        return Err(format!("{path}: missing pilut-bench-v1 schema marker"));
    }
    // Brace balance (the writer emits no braces inside strings).
    let opens = content.matches('{').count();
    let closes = content.matches('}').count();
    if opens != closes || opens == 0 {
        return Err(format!(
            "{path}: unbalanced JSON braces ({opens} vs {closes})"
        ));
    }
    let mut scenarios = 0usize;
    for line in content.lines() {
        let line = line.trim();
        if !line.starts_with("{\"name\":") {
            continue;
        }
        scenarios += 1;
        for key in [
            "\"n\":",
            "\"nnz\":",
            "\"reps\":",
            "\"inner\":",
            "\"mnnz_per_s\":",
            "\"comm_messages\":",
            "\"comm_bytes\":",
        ] {
            if !line.contains(key) {
                return Err(format!("{path}: scenario {scenarios} missing {key}"));
            }
        }
        let median = field_u64(line, "\"median_ns\":")
            .ok_or_else(|| format!("{path}: scenario {scenarios} missing median_ns"))?;
        let min = field_u64(line, "\"min_ns\":")
            .ok_or_else(|| format!("{path}: scenario {scenarios} missing min_ns"))?;
        if median == 0 || min == 0 || min > median {
            return Err(format!(
                "{path}: scenario {scenarios} has implausible timings (median {median}, min {min})"
            ));
        }
        let measured = field_str(line, "\"comm_tags\":").unwrap_or_default();
        let planned = field_str(line, "\"comm_planned\":").unwrap_or_default();
        check_planned(&measured, &planned, slack_pct)
            .map_err(|e| format!("{path}: scenario {scenarios}: {e}"))?;
    }
    if scenarios == 0 {
        return Err(format!("{path}: no scenarios recorded"));
    }
    println!("bench-verify: {path} ok ({scenarios} scenario(s), slack {slack_pct}%)");
    Ok(())
}

/// Parses a `"name:messages/bytes"` breakdown string into a map; a `~`
/// byte field (inexact prediction) parses as `None`.
fn parse_breakdown(s: &str) -> Result<Vec<(String, u64, Option<u64>)>, String> {
    let mut out = Vec::new();
    for entry in s.split_whitespace() {
        let (name, counts) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed breakdown entry {entry}"))?;
        let (m, b) = counts
            .split_once('/')
            .ok_or_else(|| format!("malformed breakdown entry {entry}"))?;
        let messages: u64 = m
            .parse()
            .map_err(|e| format!("bad count in {entry}: {e}"))?;
        let bytes = if b == "~" {
            None
        } else {
            Some(
                b.parse()
                    .map_err(|e| format!("bad bytes in {entry}: {e}"))?,
            )
        };
        out.push((name.to_string(), messages, bytes));
    }
    Ok(out)
}

/// The planned-vs-measured gate of `bench-verify`: every prediction the
/// scenario's plans recorded must agree with what the machine measured —
/// message counts exactly, exact byte predictions within `slack_pct`
/// percent — and every measured protocol tag must have a prediction
/// (collective traffic, which no `CommPlan` owns, is exempt). Scenarios
/// with no predictions (serial, or reports predating the analysis) pass
/// vacuously.
fn check_planned(measured: &str, planned: &str, slack_pct: f64) -> Result<(), String> {
    let planned = parse_breakdown(planned)?;
    if planned.is_empty() {
        return Ok(());
    }
    let measured = parse_breakdown(measured)?;
    for (name, pm, pb) in &planned {
        let Some((_, mm, mb)) = measured.iter().find(|(n, _, _)| n == name) else {
            return Err(format!(
                "tag {name}: planned {pm} message(s) but none measured"
            ));
        };
        if mm != pm {
            return Err(format!(
                "tag {name}: planned {pm} message(s), measured {mm}"
            ));
        }
        if let (Some(pb), Some(mb)) = (pb, mb) {
            let diverge_pct = if *pb == 0 {
                if *mb == 0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (*mb as f64 - *pb as f64).abs() * 100.0 / *pb as f64
            };
            if diverge_pct > slack_pct {
                return Err(format!(
                    "tag {name}: predicted {pb} byte(s), measured {mb} \
                     ({diverge_pct:.2}% > {slack_pct}% slack)"
                ));
            }
        }
    }
    for (name, mm, _) in &measured {
        if name == "coll" {
            continue;
        }
        if !planned.iter().any(|(n, _, _)| n == name) {
            return Err(format!(
                "tag {name}: {mm} measured message(s) bypassed the planned data plane"
            ));
        }
    }
    Ok(())
}

/// Entry point for
/// `xtask bench-compare <new> <baseline> [--tolerance PCT] [--geomean]`:
/// guards against performance regressions by comparing scenario medians
/// between two bench reports. Scenarios are matched by name and are only
/// comparable when `n` and `inner` agree (quick-mode reports shrink the
/// problems, so their numbers never cross-compare against full-mode
/// baselines). A scenario counts as regressed when **both** its median and
/// its min exceed the baseline by more than the tolerance — the min is the
/// stable floor of the measurement, requiring both keeps one noisy median
/// sample from failing CI.
///
/// With `--geomean` the pass/fail verdict is instead the geometric mean of
/// the **min**-time ratios across all compared scenarios (per-scenario
/// lines are still printed and marked). Two noise sources motivate this:
/// sub-millisecond scenarios shift by ±10–15% from harness-binary code
/// layout alone (measured here by benching an identical library source
/// from two differently-sized xtask binaries), and shared virtualized
/// hardware moves *medians* of the very same binary by ±20–30% between
/// quiet and loaded minutes. Layout noise is undirected and cancels in
/// the aggregate; the min is the contention-robust floor of each
/// measurement; a real regression moves both. Pick the tolerance for the
/// environment — on shared hardware this is a gross-regression tripwire,
/// not a precision gate.
pub fn compare(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut tolerance_pct = 5.0f64;
    let mut geomean = false;
    let mut baseline_flag: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance_pct = it
                    .next()
                    .ok_or_else(|| "--tolerance needs a percentage".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --tolerance value: {e}"))?;
            }
            "--geomean" => geomean = true,
            "--baseline" => {
                baseline_flag = Some(
                    it.next()
                        .ok_or_else(|| "--baseline needs a path".to_string())?,
                );
            }
            _ => paths.push(arg),
        }
    }
    // The baseline names itself either positionally (second path) or via
    // the explicit `--baseline <path>` flag; mixing both is ambiguous.
    let (new_path, base_path) = match (&paths[..], baseline_flag) {
        ([new], Some(base)) => (*new, base),
        ([new, base], None) => (*new, *base),
        _ => {
            return Err(
                "usage: bench-compare <new.json> [<baseline.json> | --baseline <path>] \
                 [--tolerance PCT] [--geomean]"
                    .into(),
            );
        }
    };
    let new = read_scenarios(new_path)?;
    let base = read_scenarios(base_path)?;
    let factor = 1.0 + tolerance_pct / 100.0;
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    let mut log_ratio_sum = 0.0f64;
    for s in &new {
        let Some(b) = base
            .iter()
            .find(|b| b.name == s.name && b.n == s.n && b.inner == s.inner)
        else {
            continue;
        };
        compared += 1;
        let med_ratio = s.median_ns as f64 / b.median_ns as f64;
        let min_ratio = s.min_ns as f64 / b.min_ns as f64;
        let regressed = med_ratio > factor && min_ratio > factor;
        log_ratio_sum += min_ratio.ln();
        println!(
            "bench-compare: {:<24} median {:>10} -> {:>10} ns ({:+.1}%), min {:+.1}%{}",
            s.name,
            b.median_ns,
            s.median_ns,
            (med_ratio - 1.0) * 100.0,
            (min_ratio - 1.0) * 100.0,
            if regressed { "  REGRESSION" } else { "" }
        );
        if regressed {
            regressions.push(s.name.clone());
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable scenarios between {new_path} and {base_path} \
             (names must match with equal n and inner)"
        ));
    }
    if geomean {
        let gm = (log_ratio_sum / compared as f64).exp();
        let delta = (gm - 1.0) * 100.0;
        println!(
            "bench-compare: geomean of {compared} min-time ratio(s) {:+.1}% \
             (tolerance {tolerance_pct}%)",
            delta
        );
        if gm > factor {
            return Err(format!(
                "aggregate regression: geomean {delta:+.1}% exceeds {tolerance_pct}%"
            ));
        }
        return Ok(());
    }
    if regressions.is_empty() {
        println!("bench-compare: {compared} scenario(s) within {tolerance_pct}% of baseline");
        Ok(())
    } else {
        Err(format!(
            "{} scenario(s) regressed beyond {tolerance_pct}%: {}",
            regressions.len(),
            regressions.join(", ")
        ))
    }
}

/// One scenario row parsed back out of a bench report.
struct ParsedScenario {
    name: String,
    n: u64,
    inner: u64,
    median_ns: u64,
    min_ns: u64,
}

/// Parses the scenario lines of a bench JSON report (the writer's own
/// line-oriented format; see [`render_json`]).
fn read_scenarios(path: &str) -> Result<Vec<ParsedScenario>, String> {
    let content =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if !content.contains("\"schema\": \"pilut-bench-v1\"") {
        return Err(format!("{path}: missing pilut-bench-v1 schema marker"));
    }
    let mut out = Vec::new();
    for line in content.lines() {
        let line = line.trim();
        if !line.starts_with("{\"name\":") {
            continue;
        }
        let name = field_str(line, "\"name\":")
            .ok_or_else(|| format!("{path}: scenario line missing name: {line}"))?;
        let grab = |key: &str| {
            field_u64(line, key).ok_or_else(|| format!("{path}: scenario {name} missing {key}"))
        };
        out.push(ParsedScenario {
            n: grab("\"n\":")?,
            inner: grab("\"inner\":")?,
            median_ns: grab("\"median_ns\":")?,
            min_ns: grab("\"min_ns\":")?,
            name,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no scenarios recorded"));
    }
    Ok(out)
}

/// Extracts the quoted string following `key` on `line`.
fn field_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the unsigned integer following `key` on `line`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> Vec<Measurement> {
        vec![Measurement {
            name: "spmv",
            n: 100,
            nnz: 460,
            reps: 3,
            inner: 10,
            median_ns: 1000,
            min_ns: 900,
            comm_messages: 12,
            comm_bytes: 4096,
            comm_tags: "spmv:12/4096".to_string(),
            comm_planned: "spmv:12/4096".to_string(),
        }]
    }

    fn verify_file(name: &str, json: &str) -> Result<(), String> {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, json).unwrap();
        verify(&[path.to_str().unwrap().to_string()])
    }

    #[test]
    fn json_roundtrips_through_verify() {
        let json = render_json("test", "none", true, &fake());
        assert!(json.contains("\"baseline\": \"none\""));
        verify_file("pilut_bench_test.json", &json).unwrap();
    }

    #[test]
    fn verify_rejects_garbage() {
        assert!(verify_file("pilut_bench_bad.json", "{\"schema\": \"other\"}").is_err());
    }

    #[test]
    fn verify_gates_planned_against_measured() {
        // Exact byte prediction off by one fails at zero slack, passes
        // under a generous slack; message mismatches never pass; measured
        // protocol traffic with no prediction never passes.
        let mut m = fake();
        m[0].comm_planned = "spmv:12/4000".to_string();
        let json = render_json("test", "none", true, &m);
        let err = verify_file("pilut_bench_gate.json", &json).unwrap_err();
        assert!(err.contains("slack"), "{err}");
        let path = std::env::temp_dir().join("pilut_bench_gate.json");
        verify(&[
            path.to_str().unwrap().to_string(),
            "--slack".into(),
            "5".into(),
        ])
        .unwrap();
        m[0].comm_planned = "spmv:11/~".to_string();
        let err = verify_file(
            "pilut_bench_gate2.json",
            &render_json("t", "none", true, &m),
        )
        .unwrap_err();
        assert!(err.contains("planned 11 message(s), measured 12"), "{err}");
        m[0].comm_tags = "spmv:12/4096 fwd:3/24".to_string();
        m[0].comm_planned = "spmv:12/4096".to_string();
        let err = verify_file(
            "pilut_bench_gate3.json",
            &render_json("t", "none", true, &m),
        )
        .unwrap_err();
        assert!(err.contains("bypassed the planned data plane"), "{err}");
    }

    #[test]
    fn throughput_math() {
        let m = &fake()[0];
        // 460 entries in 1000 ns = 460 Mnnz/s.
        assert!((m.mnnz_per_s() - 460.0).abs() < 1e-9);
    }

    #[test]
    fn field_extraction() {
        assert_eq!(field_u64("{\"median_ns\": 42,", "\"median_ns\":"), Some(42));
        assert_eq!(field_u64("no field", "\"median_ns\":"), None);
    }
}
