//! `xtask bench` — the in-tree, zero-registry-dependency benchmark harness.
//!
//! Times the wall-clock hot paths of the reproduction over fixed-seed
//! generated problems and writes a machine-readable JSON report so every PR
//! has a performance trajectory to compare against (`BENCH_<label>.json` at
//! the repo root by convention). Everything here is plain `std::time`
//! timing — no criterion, no registry crates — so the harness runs in the
//! same offline environment as the tier-1 gate.
//!
//! Scenarios (full mode):
//!
//! * `serial_ilut` — serial ILUT(10, 1e-4) factorization, 64×64
//!   convection–diffusion (n = 4096).
//! * `serial_ilut_unbounded` — serial ILUT(n, 0) on a 64×64 Laplacian
//!   (n = 4096): the exact-LU configuration, which stresses fill handling
//!   and the working row hardest per unknown.
//! * `trisolve_serial` — repeated `LuFactors::solve` on the `serial_ilut`
//!   factors (forward + backward substitution).
//! * `block_ilut` — blocked ILUT(10, 1e-4) at b = 4 on the `serial_ilut`
//!   matrix, BCSR in, dense 4×4 tile micro-kernels inside; the throughput
//!   denominator is the same `nnz(A)` as `serial_ilut`, so the two rows
//!   compare directly.
//! * `block_trisolve` — repeated `BlockLuFactors::solve` on the
//!   `block_ilut` factors (level-scheduled tile sweeps); the denominator is
//!   the factors' stored tile slots — the entries the kernel actually
//!   streams — comparable against `trisolve_serial`'s scalar fill.
//! * `block_trisolve_rhs8` — the same factors solved against an n × 8 RHS
//!   panel via `solve_panel`; the denominator is stored slots × 8, so the
//!   Mnnz/s figure is per-RHS throughput and the gain over `block_trisolve`
//!   is the panel amortization of the tile loads.
//! * `spmv` — serial CSR SpMV on a 200×200 Laplacian (n = 40 000).
//! * `gmres_ilut` — full right-preconditioned GMRES(30) solve, ILUT
//!   preconditioner, 48×48 convection–diffusion.
//! * `par_ilut_p4` / `par_ilut_p8` — the parallel ILUT factorization on the
//!   simulated machine at p ∈ {4, 8} (48×48 Laplacian), timed inside the
//!   ranks (max over ranks, barrier-aligned start).
//! * `par_ilut_star_p4` / `par_ilut_star_p8` — same with ILUT\*(10, 1e-4, 2).
//! * `dist_trisolve_p4` — the distributed forward/backward solves (paper
//!   §5) with a prebuilt communication plan, p = 4.
//! * `dist_solve_robust_p4` — the self-healing solve with reliable delivery
//!   *and* rank-loss recovery armed but **no faults fired**: the
//!   steady-state overhead of the robustness layers, which must be free
//!   (the protocol state machines only pay when faults fire), and whose
//!   ack/recover tags `bench-verify` gates at zero slack.
//! * `recovery_p4` — the same solve with a deterministic mid-solve kill:
//!   the wall time covers detection, world adoption, re-planning,
//!   re-factorization, and the checkpoint-warm-started re-solve — the
//!   end-to-end time-to-recover. Its planned-traffic column is
//!   deliberately blank: a killed epoch abandons planned rounds mid-
//!   flight, so planned-vs-measured is a fault-free-path contract only.
//!
//! Every scenario reports the median and minimum wall time per operation
//! over `reps` samples (each sample averages `inner` back-to-back
//! operations) plus an nnz-throughput figure with the operation's natural
//! "entries processed" count (for the full GMRES solve that is the
//! entries touched per matrix–vector product — `nnz(A) + nnz(M)` — times
//! the solve's matvec count).
//!
//! `--scaling` appends strong/weak-scaling sweeps to the report: each
//! scaling scenario factors one problem family at p ∈ {1, 2, 4, 8} on the
//! simulated machine (strong: a fixed n = 10⁶ 3-D Laplacian; weak:
//! `fem_torso` grown so the top point passes 10⁶ unknowns) and records a
//! speedup-vs-p curve against the serial ILUT time on the same matrix,
//! plus the smallest p whose speedup crosses 1 — the serial/parallel
//! crossover becomes a tracked number instead of folklore. One timed run
//! per point: these are curve samples on multi-second problems, not
//! gated microbenchmarks.
//!
//! `--profile-alloc` reads the allocation-audit region registry after
//! each scenario and records the memory-plane columns of the v2 schema:
//! total steady-region heap acquisitions (`allocs`, `alloc_bytes`) plus a
//! per-region breakdown (`alloc_regions`). The counting allocator and
//! regions are active throughout the run either way (the xtask binary
//! compiles the `audit` feature in), so profiling changes what is
//! *recorded*, not what is timed. `bench-verify` gates every
//! [`STEADY_REGIONS`] entry of a v2 report to exactly zero acquisitions.
//!
//! `--quick` shrinks the problem sizes and runs the two cheapest scenarios
//! only (and, with `--scaling`, a tiny two-point sweep) — this is the CI
//! smoke configuration, meant to prove the harness and its JSON writer
//! work, not to produce quotable numbers.

use std::path::Path;
use std::time::Instant;

use pilut_core::dist::exchange::tags;
use pilut_core::dist::{DistMatrix, Distribution};
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::precond::IluPreconditioner;
use pilut_core::serial::{block_ilut, ilut};
use pilut_core::trisolve::{dist_solve_into, SolveScratch, TrisolvePlan};
use pilut_par::{FaultAction, FaultPlan, FaultRule, Machine, MachineModel, MachineStats};
use pilut_solver::{dist_solve_robust, gmres, GmresOptions};
use pilut_sparse::{gen, BcsrMatrix};

/// Audit regions gated to **zero** steady-state heap acquisitions by
/// `bench-verify`: every one of these is a replay path whose plan, pools,
/// and workspaces are fully built before the steady state begins, so a
/// single allocation inside is a regression of the memory plane. Regions
/// outside this list (`mis_rounds`, `plan_replay`) ship content-dependent
/// frames and are *measured*, not gated.
const STEADY_REGIONS: &[&str] = &[
    "gmres_inner",
    "recv_values",
    "replay_halo",
    "send_values",
    "trisolve_replay",
];

/// One scenario's allocation profile, read out of the audit-region
/// registry after the scenario ran (`--profile-alloc`). Totals cover the
/// scenario's whole run — warmup, timed reps, and the untimed stats pass —
/// which is exactly what the zero gate wants: zero per scenario implies
/// zero per operation.
#[derive(Default)]
struct AllocProfile {
    /// Heap acquisitions (allocs + reallocs) inside steady regions.
    allocs: u64,
    /// Bytes acquired inside steady regions.
    bytes: u64,
    /// Per-region breakdown over *all* regions, `"name:allocs/bytes"`
    /// space-separated.
    regions: String,
}

impl AllocProfile {
    /// Folds the audit registry into a profile: steady-region totals plus
    /// the full breakdown string.
    fn from_registry(stats: &[pilut_allocaudit::RegionStats]) -> Self {
        let mut p = AllocProfile::default();
        let mut parts = Vec::with_capacity(stats.len());
        for r in stats {
            if STEADY_REGIONS.contains(&r.name) {
                p.allocs += r.allocs;
                p.bytes += r.bytes;
            }
            parts.push(format!("{}:{}/{}", r.name, r.allocs, r.bytes));
        }
        p.regions = parts.join(" ");
        p
    }
}

/// One scenario's measurement.
struct Measurement {
    name: &'static str,
    /// Problem dimension (unknowns).
    n: usize,
    /// Entries processed per operation (0 when no natural count exists).
    nnz: usize,
    reps: usize,
    inner: usize,
    median_ns: u64,
    min_ns: u64,
    /// Total messages the scenario's machine run put on the wire (0 for
    /// serial scenarios — they have no machine).
    comm_messages: u64,
    /// Total bytes behind `comm_messages`.
    comm_bytes: u64,
    /// Per-tag breakdown, `"name:messages/bytes"` space-separated (empty
    /// for serial scenarios). Names come from `tags::tag_name`.
    comm_tags: String,
    /// Per-tag *predicted* traffic from the static `CommPlan` analysis
    /// (`MachineStats::planned_by_tag`): `"name:messages/bytes"` when the
    /// byte prediction is exact, `"name:messages/~"` for producer-defined
    /// rounds that predict message counts only. `bench-verify` gates the
    /// measured counters against this.
    comm_planned: String,
    /// Steady-region allocation profile (`--profile-alloc`; zeros and an
    /// empty breakdown otherwise). `bench-verify` gates the
    /// [`STEADY_REGIONS`] entries of the breakdown to zero.
    alloc: AllocProfile,
}

impl Measurement {
    fn mnnz_per_s(&self) -> f64 {
        if self.nnz == 0 || self.median_ns == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.median_ns as f64 / 1e9) / 1e6
        }
    }
}

/// Harness configuration, derived from the CLI flags.
struct Cfg {
    quick: bool,
    reps: usize,
}

/// Entry point for `xtask bench`. Returns `Err(message)` on bad usage.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut scaling = false;
    let mut profile_alloc = false;
    let mut out_path = String::from("BENCH.json");
    let mut label = String::from("local");
    let mut baseline = String::from("none");
    let mut only: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--scaling" => scaling = true,
            "--profile-alloc" => profile_alloc = true,
            "--out" => {
                out_path = it
                    .next()
                    .ok_or_else(|| "--out needs a path".to_string())?
                    .clone();
            }
            "--label" => {
                label = it
                    .next()
                    .ok_or_else(|| "--label needs a value".to_string())?
                    .clone();
            }
            "--baseline" => {
                baseline = it
                    .next()
                    .ok_or_else(|| "--baseline needs a filename".to_string())?
                    .clone();
            }
            "--scenario" => {
                only.push(
                    it.next()
                        .ok_or_else(|| "--scenario needs a name".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("unknown bench flag {other}")),
        }
    }
    let cfg = Cfg {
        quick,
        reps: if quick { 3 } else { 9 },
    };
    let all: Vec<(&'static str, fn(&Cfg) -> Measurement)> = if quick {
        vec![
            ("spmv", bench_spmv as fn(&Cfg) -> Measurement),
            ("serial_ilut", bench_serial_ilut),
        ]
    } else {
        vec![
            ("serial_ilut", bench_serial_ilut as fn(&Cfg) -> Measurement),
            ("serial_ilut_unbounded", bench_serial_ilut_unbounded),
            ("trisolve_serial", bench_trisolve_serial),
            ("block_ilut", bench_block_ilut),
            ("block_trisolve", bench_block_trisolve),
            ("block_trisolve_rhs8", bench_block_trisolve_rhs8),
            ("spmv", bench_spmv),
            ("gmres_ilut", bench_gmres),
            ("par_ilut_p4", bench_par_ilut_p4),
            ("par_ilut_p8", bench_par_ilut_p8),
            ("par_ilut_star_p4", bench_par_ilut_star_p4),
            ("par_ilut_star_p8", bench_par_ilut_star_p8),
            ("dist_trisolve_p4", bench_dist_trisolve_p4),
            ("dist_solve_robust_p4", bench_dist_solve_robust_p4),
            ("recovery_p4", bench_recovery_p4),
        ]
    };
    if profile_alloc && !pilut_allocaudit::audit_enabled() {
        return Err("--profile-alloc needs the audit feature compiled in".to_string());
    }
    let mut results = Vec::new();
    for (name, f) in all {
        if !only.is_empty() && !only.iter().any(|s| s == name) {
            continue;
        }
        eprint!("bench {name} ... ");
        // Per-scenario audit window: reset the region registry, run the
        // scenario (warmup + timed reps + stats pass — the regions count
        // throughout, so the timings are the same with and without the
        // flag), then read the accumulated per-region traffic back out.
        if profile_alloc {
            pilut_allocaudit::reset_regions();
        }
        let mut m = f(&cfg);
        if profile_alloc {
            m.alloc = AllocProfile::from_registry(&pilut_allocaudit::region_stats());
        }
        eprintln!(
            "median {:.3} ms, min {:.3} ms{}{}",
            m.median_ns as f64 / 1e6,
            m.min_ns as f64 / 1e6,
            if m.nnz > 0 {
                format!(", {:.1} Mnnz/s", m.mnnz_per_s())
            } else {
                String::new()
            },
            if profile_alloc {
                format!(", steady allocs {}", m.alloc.allocs)
            } else {
                String::new()
            }
        );
        results.push(m);
    }
    if results.is_empty() {
        return Err("no scenario matched the --scenario filter".to_string());
    }
    let curves = if scaling {
        run_scaling(quick)
    } else {
        Vec::new()
    };
    let json = render_json(&label, &baseline, quick, &results, &curves);
    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "bench: wrote {} scenario(s){} to {out_path}",
        results.len(),
        if curves.is_empty() {
            String::new()
        } else {
            format!(" and {} scaling curve(s)", curves.len())
        }
    );
    Ok(())
}

/// Folds a machine run's stats into the measurement's comm fields: the
/// aggregate message/byte totals, the per-tag breakdown string, and the
/// per-tag prediction string from the static plan analysis.
fn comm_fields(stats: &MachineStats) -> (u64, u64, String, String) {
    let detail = stats
        .by_tag
        .iter()
        .map(|(&tag, &(m, b))| format!("{}:{m}/{b}", tags::tag_name(tag)))
        .collect::<Vec<_>>()
        .join(" ");
    let planned = stats
        .planned_by_tag
        .iter()
        .map(|(&tag, &(m, b, exact))| {
            if exact {
                format!("{}:{m}/{b}", tags::tag_name(tag))
            } else {
                format!("{}:{m}/~", tags::tag_name(tag))
            }
        })
        .collect::<Vec<_>>()
        .join(" ");
    (stats.messages, stats.bytes, detail, planned)
}

// ---------------------------------------------------------------------------
// Timing helpers.

/// Times `op` (`reps` samples of `inner` back-to-back calls after one
/// warmup) and returns (median, min) ns per call.
fn sample<F: FnMut()>(reps: usize, inner: usize, mut op: F) -> (u64, u64) {
    op(); // warmup
    let mut ns: Vec<u64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            op();
        }
        ns.push((t.elapsed().as_nanos() / inner as u128) as u64);
    }
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0])
}

/// Like [`sample`] but for operations that measure themselves (the
/// machine-backed scenarios report the max per-rank wall time).
fn sample_reported<F: FnMut() -> u64>(reps: usize, mut op: F) -> (u64, u64) {
    op(); // warmup
    let mut ns: Vec<u64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        ns.push(op());
    }
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0])
}

// ---------------------------------------------------------------------------
// Scenarios.

fn bench_serial_ilut(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 24 } else { 64 };
    let a = gen::convection_diffusion_2d(dim, dim, 4.0, -3.0);
    let opts = IlutOptions::new(10, 1e-4);
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let f = ilut(&a, &opts).expect("factorization failed");
        std::hint::black_box(&f);
    });
    Measurement {
        name: "serial_ilut",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

fn bench_serial_ilut_unbounded(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 12 } else { 64 };
    let a = gen::laplace_2d(dim, dim);
    let opts = IlutOptions::new(a.n_rows(), 0.0);
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let f = ilut(&a, &opts).expect("factorization failed");
        std::hint::black_box(&f);
    });
    Measurement {
        name: "serial_ilut_unbounded",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

fn bench_trisolve_serial(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 24 } else { 64 };
    let a = gen::convection_diffusion_2d(dim, dim, 4.0, -3.0);
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = ilut(&a, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    let fill = f.nnz();
    let b: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 13) as f64) - 6.0).collect();
    let mut x = vec![0.0; a.n_rows()];
    let inner = 50;
    let (median_ns, min_ns) = sample(cfg.reps, inner, || {
        f.solve_into(&b, &mut x);
        std::hint::black_box(&x);
    });
    Measurement {
        name: "trisolve_serial",
        n: a.n_rows(),
        nnz: fill,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

/// Shared setup for the blocked scenarios: the `serial_ilut` matrix
/// blocked at b = 4 (the widest tile the micro-kernels support), so every
/// blocked row in the report has a scalar row to compare against.
fn blocked_setup(cfg: &Cfg) -> (usize, BcsrMatrix) {
    let dim = if cfg.quick { 24 } else { 64 };
    let a = gen::convection_diffusion_2d(dim, dim, 4.0, -3.0);
    let nnz = a.nnz();
    (nnz, BcsrMatrix::from_csr(&a, 4))
}

fn bench_block_ilut(cfg: &Cfg) -> Measurement {
    let (nnz, ab) = blocked_setup(cfg);
    let opts = IlutOptions::new(10, 1e-4);
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let f = block_ilut(&ab, &opts).expect("factorization failed");
        std::hint::black_box(&f);
    });
    Measurement {
        name: "block_ilut",
        n: ab.n_rows(),
        nnz,
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

fn bench_block_trisolve(cfg: &Cfg) -> Measurement {
    let (_, ab) = blocked_setup(cfg);
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = block_ilut(&ab, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    let slots = f.stored_entries();
    let b: Vec<f64> = (0..ab.n_rows()).map(|i| ((i % 13) as f64) - 6.0).collect();
    let mut x = vec![0.0; f.padded_len()];
    let inner = 50;
    let (median_ns, min_ns) = sample(cfg.reps, inner, || {
        f.solve_into(&b, &mut x);
        std::hint::black_box(&x);
    });
    Measurement {
        name: "block_trisolve",
        n: ab.n_rows(),
        nnz: slots,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

fn bench_block_trisolve_rhs8(cfg: &Cfg) -> Measurement {
    let (_, ab) = blocked_setup(cfg);
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = block_ilut(&ab, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    let k = 8;
    // Per-RHS throughput: the panel streams each stored tile once for k
    // right-hand sides, so the denominator is slots × k.
    let slots = f.stored_entries() * k;
    let n = ab.n_rows();
    let rhs: Vec<f64> = (0..n * k).map(|i| ((i % 29) as f64) * 0.25 - 3.5).collect();
    let mut x = vec![0.0; f.padded_len() * k];
    let inner = 10;
    let (median_ns, min_ns) = sample(cfg.reps, inner, || {
        f.solve_panel_into(&rhs, k, &mut x);
        std::hint::black_box(&x);
    });
    Measurement {
        name: "block_trisolve_rhs8",
        n,
        nnz: slots,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

fn bench_spmv(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 40 } else { 200 };
    let a = gen::laplace_2d(dim, dim);
    let x: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; a.n_rows()];
    let inner = 50;
    let (median_ns, min_ns) = sample(cfg.reps, inner, || {
        a.spmv(&x, &mut y);
        std::hint::black_box(&y);
    });
    Measurement {
        name: "spmv",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

fn bench_gmres(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 16 } else { 48 };
    let a = gen::convection_diffusion_2d(dim, dim, 8.0, 2.0);
    let x_true = vec![1.0; a.n_rows()];
    let b = a.spmv_owned(&x_true);
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = ilut(&a, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    let fill = f.nnz();
    let pre = IluPreconditioner::new(f);
    let opts = GmresOptions {
        rtol: 1e-8,
        ..GmresOptions::default()
    };
    // One untimed solve to learn the work per solve: the solver is
    // deterministic, so every timed repetition performs the same
    // `matvecs` applications of A (`a.nnz()` entries) and of the ILU
    // preconditioner (`fill` entries). That entry count is the natural
    // throughput denominator — without it the scenario reported
    // `nnz: 0` / `0.00 Mnnz/s` and sat outside the gated trajectory.
    let probe = gmres(&a, &b, &pre, &opts);
    assert!(probe.converged, "gmres bench problem must converge");
    let nnz = (a.nnz() + fill) * probe.matvecs;
    let (median_ns, min_ns) = sample(cfg.reps, 1, || {
        let r = gmres(&a, &b, &pre, &opts);
        assert!(r.converged, "gmres bench problem must converge");
        std::hint::black_box(&r);
    });
    Measurement {
        name: "gmres_ilut",
        n: a.n_rows(),
        nnz,
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages: 0,
        comm_bytes: 0,
        comm_tags: String::new(),
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

/// Machine-backed factorization scenario: each rank times `inner`
/// collective factorizations after a barrier; the scenario reports the max
/// per-rank wall time, which is what a real machine would observe.
fn bench_par_ilut(name: &'static str, cfg: &Cfg, p: usize, opts: IlutOptions) -> Measurement {
    let dim = if cfg.quick { 16 } else { 48 };
    let a = gen::laplace_2d(dim, dim);
    let nnz = a.nnz();
    let n = a.n_rows();
    let dm = DistMatrix::from_matrix(a, p, 17);
    let inner = 2;
    let (median_ns, min_ns) = sample_reported(cfg.reps, || {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            ctx.barrier();
            let t = Instant::now();
            for _ in 0..inner {
                // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
                let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
                std::hint::black_box(&rf);
            }
            (t.elapsed().as_nanos() / inner as u128) as u64
        });
        out.results.into_iter().max().unwrap_or(0)
    });
    // One untimed run to read the comm volume of a single factorization.
    let stats = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
        std::hint::black_box(&rf);
    })
    .stats;
    let (comm_messages, comm_bytes, comm_tags, comm_planned) = comm_fields(&stats);
    Measurement {
        name,
        n,
        nnz,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages,
        comm_bytes,
        comm_tags,
        comm_planned,
        alloc: AllocProfile::default(),
    }
}

fn bench_par_ilut_p4(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_p4", cfg, 4, IlutOptions::new(10, 1e-4))
}

fn bench_par_ilut_p8(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_p8", cfg, 8, IlutOptions::new(10, 1e-4))
}

fn bench_par_ilut_star_p4(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_star_p4", cfg, 4, IlutOptions::star(10, 1e-4, 2))
}

fn bench_par_ilut_star_p8(cfg: &Cfg) -> Measurement {
    bench_par_ilut("par_ilut_star_p8", cfg, 8, IlutOptions::star(10, 1e-4, 2))
}

fn bench_dist_trisolve_p4(cfg: &Cfg) -> Measurement {
    let dim = if cfg.quick { 16 } else { 48 };
    let p = 4;
    let a = gen::laplace_2d(dim, dim);
    let n = a.n_rows();
    let dm = DistMatrix::from_matrix(a, p, 17);
    let opts = IlutOptions::new(10, 1e-4);
    let inner = 20;
    let (median_ns, min_ns) = sample_reported(cfg.reps, || {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| (g as f64).sin()).collect();
            let mut scratch = SolveScratch::build(&local, &plan);
            let mut x = vec![0.0; local.len()];
            ctx.barrier();
            let t = Instant::now();
            for _ in 0..inner {
                dist_solve_into(ctx, &local, &rf, &plan, &b, &mut scratch, &mut x);
                std::hint::black_box(&x);
            }
            (t.elapsed().as_nanos() / inner as u128) as u64
        });
        out.results.into_iter().max().unwrap_or(0)
    });
    // Factor fill for the throughput figure plus the comm volume of one
    // factor + plan build + solve: rebuild once outside timing.
    let (fill, stats) = {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| (g as f64).sin()).collect();
            let mut scratch = SolveScratch::build(&local, &plan);
            let mut x = vec![0.0; local.len()];
            dist_solve_into(ctx, &local, &rf, &plan, &b, &mut scratch, &mut x);
            std::hint::black_box(&x);
            rf.rows
                .values()
                .map(|r| r.l.len() + r.u.len() + 1)
                .sum::<usize>()
        });
        (out.results.into_iter().sum::<usize>(), out.stats)
    };
    let (comm_messages, comm_bytes, comm_tags, comm_planned) = comm_fields(&stats);
    Measurement {
        name: "dist_trisolve_p4",
        n,
        nnz: fill,
        reps: cfg.reps,
        inner,
        median_ns,
        min_ns,
        comm_messages,
        comm_bytes,
        comm_tags,
        comm_planned,
        alloc: AllocProfile::default(),
    }
}

// ---------------------------------------------------------------------------
// Robustness scenarios: the self-healing solve with and without a kill.

/// Shared setup for the robustness scenarios: matrix, known-solution RHS,
/// and partitioned distribution at p = 4.
fn robust_setup(cfg: &Cfg) -> (pilut_sparse::CsrMatrix, Vec<f64>, Distribution) {
    let dim = if cfg.quick { 12 } else { 32 };
    let a = gen::laplace_2d(dim, dim);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let b = a.spmv_owned(&x_true);
    let dist = Distribution::from_matrix(&a, 4, 17);
    (a, b, dist)
}

fn robust_gmres_opts() -> GmresOptions {
    GmresOptions {
        restart: 30,
        rtol: 1e-8,
        max_matvecs: 400,
    }
}

/// Machine with both robustness layers armed (the configuration every
/// robust production solve would run under).
fn robust_machine(plan: Option<FaultPlan>) -> pilut_par::MachineBuilder {
    let mut b = Machine::builder(MachineModel::cray_t3d())
        .reliable(true)
        .recovery(true);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b
}

/// Steady-state overhead scenario: reliable delivery and recovery armed,
/// zero faults fired. Trackable against the plain solve scenarios — the
/// robustness layers must cost nothing when nothing goes wrong, and the
/// recorded planned traffic lets `bench-verify --slack 0` prove no ack or
/// recovery frame ever hit the wire.
fn bench_dist_solve_robust_p4(cfg: &Cfg) -> Measurement {
    let p = 4;
    let (a, b, dist) = robust_setup(cfg);
    let opts = IlutOptions::new(10, 1e-4);
    let gopts = robust_gmres_opts();
    let (median_ns, min_ns) = sample_reported(cfg.reps, || {
        let out = robust_machine(None).run(p, |ctx| {
            ctx.barrier();
            let t = Instant::now();
            let rep = dist_solve_robust(ctx, &a, &b, &dist, &opts, &gopts);
            assert!(rep.converged, "bench solve must converge");
            std::hint::black_box(&rep);
            t.elapsed().as_nanos() as u64
        });
        out.results.into_iter().max().unwrap_or(0)
    });
    let stats = robust_machine(None)
        .run(p, |ctx| {
            let rep = dist_solve_robust(ctx, &a, &b, &dist, &opts, &gopts);
            std::hint::black_box(&rep);
        })
        .stats;
    let (comm_messages, comm_bytes, comm_tags, comm_planned) = comm_fields(&stats);
    Measurement {
        name: "dist_solve_robust_p4",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages,
        comm_bytes,
        comm_tags,
        comm_planned,
        alloc: AllocProfile::default(),
    }
}

/// The deterministic kill every `recovery_p4` run survives: rank 2 dies at
/// its 60th comm op — mid-factorization, after plans exist.
fn recovery_kill_plan() -> FaultPlan {
    FaultPlan::new(17).with(FaultRule::new(FaultAction::Kill).rank(2).after_op(60))
}

/// Time-to-recover scenario: the same robust solve with a mid-solve kill.
/// The measured wall time spans loss detection, world adoption, the
/// recovery agreement round, shrink-and-redistribute re-planning,
/// re-factorization, and the checkpoint-warm-started re-solve to
/// convergence.
fn bench_recovery_p4(cfg: &Cfg) -> Measurement {
    let p = 4;
    let (a, b, dist) = robust_setup(cfg);
    let opts = IlutOptions::new(10, 1e-4);
    let gopts = robust_gmres_opts();
    // Every run kills a rank by design; keep its induced backtrace out of
    // the bench log (the unwind is caught and handled inside the machine).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (median_ns, min_ns) = sample_reported(cfg.reps, || {
        let out = robust_machine(Some(recovery_kill_plan())).run(p, |ctx| {
            ctx.barrier();
            let t = Instant::now();
            let rep = dist_solve_robust(ctx, &a, &b, &dist, &opts, &gopts);
            std::hint::black_box(&rep);
            if rep.dead {
                0
            } else {
                assert!(rep.converged, "survivors must converge");
                assert!(!rep.recoveries.is_empty(), "the kill must be recovered");
                t.elapsed().as_nanos() as u64
            }
        });
        out.results.into_iter().max().unwrap_or(0)
    });
    // Untimed run for the comm totals. The planned column stays blank on
    // purpose: the killed epoch abandons its planned rounds mid-flight, so
    // planned-vs-measured agreement is a contract of the fault-free path
    // only (`dist_solve_robust_p4` carries it).
    let stats = robust_machine(Some(recovery_kill_plan()))
        .run(p, |ctx| {
            let rep = dist_solve_robust(ctx, &a, &b, &dist, &opts, &gopts);
            std::hint::black_box(&rep);
        })
        .stats;
    std::panic::set_hook(default_hook);
    let (comm_messages, comm_bytes, comm_tags, _) = comm_fields(&stats);
    Measurement {
        name: "recovery_p4",
        n: a.n_rows(),
        nnz: a.nnz(),
        reps: cfg.reps,
        inner: 1,
        median_ns,
        min_ns,
        comm_messages,
        comm_bytes,
        comm_tags,
        comm_planned: String::new(),
        alloc: AllocProfile::default(),
    }
}

// ---------------------------------------------------------------------------
// Scaling sweeps (`--scaling`).

/// One (p, time) sample on a scaling curve, with the serial reference time
/// for the same matrix alongside so the speedup is self-contained.
struct ScalingPoint {
    p: usize,
    n: usize,
    nnz: usize,
    /// Serial ILUT wall time on this point's matrix.
    serial_ns: u64,
    /// Max-over-ranks parallel factorization wall time.
    par_ns: u64,
}

impl ScalingPoint {
    fn speedup(&self) -> f64 {
        if self.par_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.par_ns as f64
        }
    }
}

/// A strong- or weak-scaling sweep over processor counts for one problem
/// family.
struct ScalingScenario {
    scenario: &'static str,
    /// `"strong"` (fixed matrix, growing p) or `"weak"` (matrix grows
    /// with p).
    mode: &'static str,
    /// Generator family, for the report reader.
    gen_name: &'static str,
    points: Vec<ScalingPoint>,
}

impl ScalingScenario {
    /// Smallest p whose speedup over serial reaches 1.0 — the
    /// serial/parallel crossover the report tracks. 0 when no point
    /// crosses.
    fn crossover_p(&self) -> usize {
        self.points
            .iter()
            .filter(|pt| pt.speedup() >= 1.0)
            .map(|pt| pt.p)
            .min()
            .unwrap_or(0)
    }
}

/// Times one serial ILUT factorization of `a`.
fn time_serial_ilut(a: &pilut_sparse::CsrMatrix, opts: &IlutOptions) -> u64 {
    let t = Instant::now();
    // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
    let f = ilut(a, opts).expect("factorization failed");
    std::hint::black_box(&f);
    t.elapsed().as_nanos() as u64
}

/// Times one parallel ILUT factorization of `dm` on `p` simulated ranks;
/// reports the max per-rank wall time after a barrier, as
/// [`bench_par_ilut`] does.
fn time_par_ilut(dm: &DistMatrix, p: usize, opts: &IlutOptions) -> u64 {
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        ctx.barrier();
        let t = Instant::now();
        // lint: allow(unwrap): bench problems factor by construction; a failure here is fatal to the measurement
        let rf = par_ilut(ctx, dm, &local, opts).expect("factorization failed");
        std::hint::black_box(&rf);
        t.elapsed().as_nanos() as u64
    });
    out.results.into_iter().max().unwrap_or(0)
}

/// Runs the strong- and weak-scaling sweeps. Single timed run per point —
/// the full-mode problems are 10–100× the gated scenarios (n ≥ 10⁶ at the
/// top), so each factorization runs for seconds and the curve shape, not
/// the last percent, is the product. Quick mode shrinks both families to
/// a two-point smoke that exercises the identical code path.
fn run_scaling(quick: bool) -> Vec<ScalingScenario> {
    let opts = IlutOptions::new(10, 1e-4);
    let mut out = Vec::new();

    // Strong scaling: one fixed 3-D Laplacian, partitioned for each p.
    let (dim, ps): (usize, &[usize]) = if quick {
        (12, &[1, 2])
    } else {
        (100, &[1, 2, 4, 8])
    };
    let a = gen::laplace_3d(dim, dim, dim);
    let (n, nnz) = (a.n_rows(), a.nnz());
    eprint!("scaling strong_laplace3d n={n} serial ... ");
    let serial_ns = time_serial_ilut(&a, &opts);
    eprintln!("{:.3} s", serial_ns as f64 / 1e9);
    let mut points = Vec::new();
    for &p in ps {
        eprint!("scaling strong_laplace3d p={p} ... ");
        let dm = DistMatrix::from_matrix(a.clone(), p, 17);
        let par_ns = time_par_ilut(&dm, p, &opts);
        let pt = ScalingPoint {
            p,
            n,
            nnz,
            serial_ns,
            par_ns,
        };
        eprintln!("{:.3} s, speedup {:.2}", par_ns as f64 / 1e9, pt.speedup());
        points.push(pt);
    }
    out.push(ScalingScenario {
        scenario: "strong_laplace3d",
        mode: "strong",
        gen_name: "laplace_3d",
        points,
    });

    // Weak scaling: fem_torso grown with p so work per rank stays near
    // constant (the ellipsoid mask keeps ~0.52·dim³ unknowns, so dims are
    // chosen for n(p) ≈ p · n(1); the top full-mode point passes 10⁶
    // unknowns). Serial reference re-timed per point since the matrix
    // changes.
    let pdims: &[(usize, usize)] = if quick {
        &[(1, 10), (2, 13)]
    } else {
        &[(1, 69), (2, 87), (4, 110), (8, 138)]
    };
    let mut points = Vec::new();
    for &(p, dim) in pdims {
        let a = gen::fem_torso(dim, 7);
        let (n, nnz) = (a.n_rows(), a.nnz());
        eprint!("scaling weak_fem_torso p={p} n={n} ... ");
        let serial_ns = time_serial_ilut(&a, &opts);
        let dm = DistMatrix::from_matrix(a, p, 17);
        let par_ns = time_par_ilut(&dm, p, &opts);
        let pt = ScalingPoint {
            p,
            n,
            nnz,
            serial_ns,
            par_ns,
        };
        eprintln!(
            "serial {:.3} s, par {:.3} s, speedup {:.2}",
            serial_ns as f64 / 1e9,
            par_ns as f64 / 1e9,
            pt.speedup()
        );
        points.push(pt);
    }
    out.push(ScalingScenario {
        scenario: "weak_fem_torso",
        mode: "weak",
        gen_name: "fem_torso",
        points,
    });
    out
}

// ---------------------------------------------------------------------------
// JSON.

fn render_json(
    label: &str,
    baseline: &str,
    quick: bool,
    results: &[Measurement],
    curves: &[ScalingScenario],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pilut-bench-v2\",\n");
    out.push_str(&format!("  \"label\": \"{label}\",\n"));
    out.push_str(&format!("  \"baseline\": \"{baseline}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {}, \"reps\": {}, \"inner\": {}, \
             \"median_ns\": {}, \"min_ns\": {}, \"mnnz_per_s\": {:.2}, \
             \"comm_messages\": {}, \"comm_bytes\": {}, \"comm_tags\": \"{}\", \
             \"comm_planned\": \"{}\", \"allocs\": {}, \"alloc_bytes\": {}, \
             \"alloc_regions\": \"{}\"}}{}\n",
            m.name,
            m.n,
            m.nnz,
            m.reps,
            m.inner,
            m.median_ns,
            m.min_ns,
            m.mnnz_per_s(),
            m.comm_messages,
            m.comm_bytes,
            m.comm_tags,
            m.comm_planned,
            m.alloc.allocs,
            m.alloc.bytes,
            m.alloc.regions,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    if curves.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n");
    out.push_str("  \"scaling\": [\n");
    for (i, c) in curves.iter().enumerate() {
        let points = c
            .points
            .iter()
            .map(|pt| {
                format!(
                    "{{\"p\": {}, \"n\": {}, \"nnz\": {}, \"serial_ns\": {}, \
                     \"par_ns\": {}, \"speedup\": {:.3}}}",
                    pt.p,
                    pt.n,
                    pt.nnz,
                    pt.serial_ns,
                    pt.par_ns,
                    pt.speedup()
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"gen\": \"{}\", \
             \"crossover_p\": {}, \"points\": [{}]}}{}\n",
            c.scenario,
            c.mode,
            c.gen_name,
            c.crossover_p(),
            points,
            if i + 1 < curves.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Entry point for `xtask bench-verify <file> [--slack PCT]`: structural
/// well-formedness check of a bench JSON report plus the planned-vs-
/// measured traffic gate, used by the CI smoke run. Verifies the schema
/// marker, that at least one scenario is present, that every scenario line
/// carries the required numeric fields with positive timings — and that
/// every machine scenario's measured per-tag counters agree with the
/// static `CommPlan` predictions it recorded: message counts exactly,
/// byte counts within `--slack` percent (default 0 — the values-only wire
/// format is deterministic, so the exact predictions must hold to the
/// byte; the flag exists for future payloads with platform-dependent
/// encodings). Measured traffic on a protocol tag no plan predicted is a
/// data-plane escape and always fails. Serial scenarios — every name
/// without a `_p<ranks>` suffix — run no machine at all, so their
/// `comm_messages` must be exactly zero: a nonzero count there means a
/// serial code path acquired a hidden machine dependency. Scaling curves,
/// when present, must each carry their mode, generator, crossover verdict,
/// and at least one fully-populated point.
///
/// v2 reports additionally carry the memory-plane columns (`allocs`,
/// `alloc_bytes`, `alloc_regions`) and are gated on them: every
/// [`STEADY_REGIONS`] entry in a scenario's region breakdown must report
/// exactly zero heap acquisitions — the zero-steady-alloc gate. v1
/// baselines predate the memory plane and verify on the comm contract
/// alone.
pub fn verify(args: &[String]) -> Result<(), String> {
    let mut path: Option<&String> = None;
    let mut slack_pct = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slack" => {
                slack_pct = it
                    .next()
                    .ok_or_else(|| "--slack needs a percentage".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --slack value: {e}"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown bench-verify flag {other}"));
            }
            _ if path.is_none() => path = Some(arg),
            other => return Err(format!("unexpected bench-verify argument {other}")),
        }
    }
    let path = path.ok_or_else(|| "usage: bench-verify <file.json> [--slack PCT]".to_string())?;
    let content =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    // v2 reports carry the allocation columns and are gated on them; v1
    // baselines from earlier PRs predate the memory plane and still verify
    // on their comm contract alone.
    let v2 = content.contains("\"schema\": \"pilut-bench-v2\"");
    if !v2 && !content.contains("\"schema\": \"pilut-bench-v1\"") {
        return Err(format!("{path}: missing pilut-bench-v1/v2 schema marker"));
    }
    // Brace balance (the writer emits no braces inside strings).
    let opens = content.matches('{').count();
    let closes = content.matches('}').count();
    if opens != closes || opens == 0 {
        return Err(format!(
            "{path}: unbalanced JSON braces ({opens} vs {closes})"
        ));
    }
    let mut scenarios = 0usize;
    let mut curves = 0usize;
    for line in content.lines() {
        let line = line.trim();
        // Scaling curves (optional — only `--scaling` reports carry them):
        // each must name its mode and generator, carry a crossover verdict,
        // and hold at least one fully-populated point.
        if line.starts_with("{\"scenario\":") {
            curves += 1;
            for key in [
                "\"mode\":",
                "\"gen\":",
                "\"crossover_p\":",
                "\"points\": [{\"p\":",
                "\"serial_ns\":",
                "\"par_ns\":",
                "\"speedup\":",
            ] {
                if !line.contains(key) {
                    return Err(format!("{path}: scaling curve {curves} missing {key}"));
                }
            }
            continue;
        }
        if !line.starts_with("{\"name\":") {
            continue;
        }
        scenarios += 1;
        for key in [
            "\"n\":",
            "\"nnz\":",
            "\"reps\":",
            "\"inner\":",
            "\"mnnz_per_s\":",
            "\"comm_messages\":",
            "\"comm_bytes\":",
        ] {
            if !line.contains(key) {
                return Err(format!("{path}: scenario {scenarios} missing {key}"));
            }
        }
        let median = field_u64(line, "\"median_ns\":")
            .ok_or_else(|| format!("{path}: scenario {scenarios} missing median_ns"))?;
        let min = field_u64(line, "\"min_ns\":")
            .ok_or_else(|| format!("{path}: scenario {scenarios} missing min_ns"))?;
        if median == 0 || min == 0 || min > median {
            return Err(format!(
                "{path}: scenario {scenarios} has implausible timings (median {median}, min {min})"
            ));
        }
        let measured = field_str(line, "\"comm_tags\":").unwrap_or_default();
        let planned = field_str(line, "\"comm_planned\":").unwrap_or_default();
        check_planned(&measured, &planned, slack_pct)
            .map_err(|e| format!("{path}: scenario {scenarios}: {e}"))?;
        let name = field_str(line, "\"name\":")
            .ok_or_else(|| format!("{path}: scenario {scenarios} missing name"))?;
        let comm = field_u64(line, "\"comm_messages\":")
            .ok_or_else(|| format!("{path}: scenario {scenarios} missing comm_messages"))?;
        if !is_machine_scenario(&name) && comm != 0 {
            return Err(format!(
                "{path}: serial scenario {name} reports {comm} comm message(s); \
                 a serial path must put nothing on the wire"
            ));
        }
        if v2 {
            // The zero-steady-alloc gate: a v2 scenario must carry the
            // allocation columns, and every steady region in its breakdown
            // must report exactly zero heap acquisitions. Scenarios
            // profiled without `--profile-alloc` carry an empty breakdown
            // and pass vacuously; the CI bench run profiles.
            for key in ["\"allocs\":", "\"alloc_bytes\":", "\"alloc_regions\":"] {
                if !line.contains(key) {
                    return Err(format!("{path}: scenario {name} missing {key}"));
                }
            }
            let regions = field_str(line, "\"alloc_regions\":").unwrap_or_default();
            for (region, allocs, bytes) in
                parse_breakdown(&regions).map_err(|e| format!("{path}: scenario {name}: {e}"))?
            {
                if STEADY_REGIONS.contains(&region.as_str()) && allocs != 0 {
                    return Err(format!(
                        "{path}: scenario {name}: steady region {region} acquired \
                         {allocs} allocation(s) / {} byte(s); steady-state replay \
                         paths must not touch the heap",
                        bytes.unwrap_or(0)
                    ));
                }
            }
        }
    }
    if scenarios == 0 {
        return Err(format!("{path}: no scenarios recorded"));
    }
    println!(
        "bench-verify: {path} ok ({scenarios} scenario(s), {curves} scaling curve(s), \
         slack {slack_pct}%)"
    );
    Ok(())
}

/// Whether a scenario name marks a machine-backed run: the `_p<ranks>`
/// naming convention every parallel scenario follows (`par_ilut_p4`,
/// `dist_solve_robust_p4`, ...). Everything else is serial and must report
/// zero communication.
fn is_machine_scenario(name: &str) -> bool {
    name.match_indices("_p").any(|(i, _)| {
        name.as_bytes()
            .get(i + 2)
            .is_some_and(|c| c.is_ascii_digit())
    })
}

/// Parses a `"name:messages/bytes"` breakdown string into a map; a `~`
/// byte field (inexact prediction) parses as `None`.
fn parse_breakdown(s: &str) -> Result<Vec<(String, u64, Option<u64>)>, String> {
    let mut out = Vec::new();
    for entry in s.split_whitespace() {
        let (name, counts) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed breakdown entry {entry}"))?;
        let (m, b) = counts
            .split_once('/')
            .ok_or_else(|| format!("malformed breakdown entry {entry}"))?;
        let messages: u64 = m
            .parse()
            .map_err(|e| format!("bad count in {entry}: {e}"))?;
        let bytes = if b == "~" {
            None
        } else {
            Some(
                b.parse()
                    .map_err(|e| format!("bad bytes in {entry}: {e}"))?,
            )
        };
        out.push((name.to_string(), messages, bytes));
    }
    Ok(out)
}

/// The planned-vs-measured gate of `bench-verify`: every prediction the
/// scenario's plans recorded must agree with what the machine measured —
/// message counts exactly, exact byte predictions within `slack_pct`
/// percent — and every measured protocol tag must have a prediction.
/// Collective traffic (`coll`) is gated like every other tag when the
/// report carries a `coll` prediction; only reports written before the
/// collectives planned themselves get the explicit legacy allowance
/// below. Scenarios with no predictions (serial, or reports predating
/// the analysis) pass vacuously.
fn check_planned(measured: &str, planned: &str, slack_pct: f64) -> Result<(), String> {
    let planned = parse_breakdown(planned)?;
    if planned.is_empty() {
        return Ok(());
    }
    let measured = parse_breakdown(measured)?;
    for (name, pm, pb) in &planned {
        let Some((_, mm, mb)) = measured.iter().find(|(n, _, _)| n == name) else {
            return Err(format!(
                "tag {name}: planned {pm} message(s) but none measured"
            ));
        };
        if mm != pm {
            return Err(format!(
                "tag {name}: planned {pm} message(s), measured {mm}"
            ));
        }
        if let (Some(pb), Some(mb)) = (pb, mb) {
            let diverge_pct = if *pb == 0 {
                if *mb == 0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (*mb as f64 - *pb as f64).abs() * 100.0 / *pb as f64
            };
            if diverge_pct > slack_pct {
                return Err(format!(
                    "tag {name}: predicted {pb} byte(s), measured {mb} \
                     ({diverge_pct:.2}% > {slack_pct}% slack)"
                ));
            }
        }
    }
    for (name, mm, _) in &measured {
        if name == "coll" && !planned.iter().any(|(n, _, _)| n == "coll") {
            // Deliberate legacy allowance, not a silent skip: collectives
            // have planned their own message counts since PR 7, so any
            // report written by the current harness carries a `coll`
            // prediction and is gated by the loop above. A measured-only
            // `coll` entry can therefore only come from a baseline file
            // written by an older harness — let it pass instead of
            // retroactively failing history. Every other unplanned tag is
            // still a data-plane escape.
            continue;
        }
        if !planned.iter().any(|(n, _, _)| n == name) {
            return Err(format!(
                "tag {name}: {mm} measured message(s) bypassed the planned data plane"
            ));
        }
    }
    Ok(())
}

/// Entry point for
/// `xtask bench-compare <new> <baseline> [--tolerance PCT] [--geomean]`:
/// guards against performance regressions by comparing scenario medians
/// between two bench reports. Scenarios are matched by name and are only
/// comparable when `n` and `inner` agree (quick-mode reports shrink the
/// problems, so their numbers never cross-compare against full-mode
/// baselines). A scenario counts as regressed when **both** its median and
/// its min exceed the baseline by more than the tolerance — the min is the
/// stable floor of the measurement, requiring both keeps one noisy median
/// sample from failing CI.
///
/// With `--geomean` the pass/fail verdict is instead the geometric mean of
/// the **min**-time ratios across all compared scenarios (per-scenario
/// lines are still printed and marked). Two noise sources motivate this:
/// sub-millisecond scenarios shift by ±10–15% from harness-binary code
/// layout alone (measured here by benching an identical library source
/// from two differently-sized xtask binaries), and shared virtualized
/// hardware moves *medians* of the very same binary by ±20–30% between
/// quiet and loaded minutes. Layout noise is undirected and cancels in
/// the aggregate; the min is the contention-robust floor of each
/// measurement; a real regression moves both. Pick the tolerance for the
/// environment — on shared hardware this is a gross-regression tripwire,
/// not a precision gate.
pub fn compare(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut tolerance_pct = 5.0f64;
    let mut geomean = false;
    let mut baseline_flag: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance_pct = it
                    .next()
                    .ok_or_else(|| "--tolerance needs a percentage".to_string())?
                    .parse()
                    .map_err(|e| format!("bad --tolerance value: {e}"))?;
            }
            "--geomean" => geomean = true,
            "--baseline" => {
                baseline_flag = Some(
                    it.next()
                        .ok_or_else(|| "--baseline needs a path".to_string())?,
                );
            }
            _ => paths.push(arg),
        }
    }
    // The baseline names itself either positionally (second path) or via
    // the explicit `--baseline <path>` flag; mixing both is ambiguous.
    let (new_path, base_path) = match (&paths[..], baseline_flag) {
        ([new], Some(base)) => (*new, base),
        ([new, base], None) => (*new, *base),
        _ => {
            return Err(
                "usage: bench-compare <new.json> [<baseline.json> | --baseline <path>] \
                 [--tolerance PCT] [--geomean]"
                    .into(),
            );
        }
    };
    let new = read_scenarios(new_path)?;
    let base = read_scenarios(base_path)?;
    let factor = 1.0 + tolerance_pct / 100.0;
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    let mut log_ratio_sum = 0.0f64;
    for s in &new {
        let Some(b) = base
            .iter()
            .find(|b| b.name == s.name && b.n == s.n && b.inner == s.inner)
        else {
            continue;
        };
        compared += 1;
        let med_ratio = s.median_ns as f64 / b.median_ns as f64;
        let min_ratio = s.min_ns as f64 / b.min_ns as f64;
        let regressed = med_ratio > factor && min_ratio > factor;
        log_ratio_sum += min_ratio.ln();
        println!(
            "bench-compare: {:<24} median {:>10} -> {:>10} ns ({:+.1}%), min {:+.1}%{}",
            s.name,
            b.median_ns,
            s.median_ns,
            (med_ratio - 1.0) * 100.0,
            (min_ratio - 1.0) * 100.0,
            if regressed { "  REGRESSION" } else { "" }
        );
        if regressed {
            regressions.push(s.name.clone());
        }
    }
    if compared == 0 {
        return Err(format!(
            "no comparable scenarios between {new_path} and {base_path} \
             (names must match with equal n and inner)"
        ));
    }
    if geomean {
        let gm = (log_ratio_sum / compared as f64).exp();
        let delta = (gm - 1.0) * 100.0;
        println!(
            "bench-compare: geomean of {compared} min-time ratio(s) {:+.1}% \
             (tolerance {tolerance_pct}%)",
            delta
        );
        if gm > factor {
            return Err(format!(
                "aggregate regression: geomean {delta:+.1}% exceeds {tolerance_pct}%"
            ));
        }
        return Ok(());
    }
    if regressions.is_empty() {
        println!("bench-compare: {compared} scenario(s) within {tolerance_pct}% of baseline");
        Ok(())
    } else {
        Err(format!(
            "{} scenario(s) regressed beyond {tolerance_pct}%: {}",
            regressions.len(),
            regressions.join(", ")
        ))
    }
}

/// One scenario row parsed back out of a bench report.
struct ParsedScenario {
    name: String,
    n: u64,
    inner: u64,
    median_ns: u64,
    min_ns: u64,
}

/// Parses the scenario lines of a bench JSON report (the writer's own
/// line-oriented format; see [`render_json`]).
fn read_scenarios(path: &str) -> Result<Vec<ParsedScenario>, String> {
    let content =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    // Both schema generations parse here: the comparison fields are
    // identical, so a v2 report compares against a v1 baseline directly
    // (the alloc columns are a v2-only addition, gated by `verify`).
    if !content.contains("\"schema\": \"pilut-bench-v1\"")
        && !content.contains("\"schema\": \"pilut-bench-v2\"")
    {
        return Err(format!("{path}: missing pilut-bench-v1/v2 schema marker"));
    }
    let mut out = Vec::new();
    for line in content.lines() {
        let line = line.trim();
        if !line.starts_with("{\"name\":") {
            continue;
        }
        let name = field_str(line, "\"name\":")
            .ok_or_else(|| format!("{path}: scenario line missing name: {line}"))?;
        let grab = |key: &str| {
            field_u64(line, key).ok_or_else(|| format!("{path}: scenario {name} missing {key}"))
        };
        out.push(ParsedScenario {
            n: grab("\"n\":")?,
            inner: grab("\"inner\":")?,
            median_ns: grab("\"median_ns\":")?,
            min_ns: grab("\"min_ns\":")?,
            name,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no scenarios recorded"));
    }
    Ok(out)
}

/// Extracts the quoted string following `key` on `line`.
fn field_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the unsigned integer following `key` on `line`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> Vec<Measurement> {
        // A machine-backed name (`_p4` suffix): the fixture carries comm
        // counters, which the serial-zero-comm gate forbids on serial names.
        vec![Measurement {
            name: "spmv_p4",
            n: 100,
            nnz: 460,
            reps: 3,
            inner: 10,
            median_ns: 1000,
            min_ns: 900,
            comm_messages: 12,
            comm_bytes: 4096,
            comm_tags: "spmv:12/4096".to_string(),
            comm_planned: "spmv:12/4096".to_string(),
            alloc: AllocProfile::default(),
        }]
    }

    fn verify_file(name: &str, json: &str) -> Result<(), String> {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, json).unwrap();
        verify(&[path.to_str().unwrap().to_string()])
    }

    fn fake_curves() -> Vec<ScalingScenario> {
        vec![ScalingScenario {
            scenario: "strong_test",
            mode: "strong",
            gen_name: "laplace_3d",
            points: vec![
                ScalingPoint {
                    p: 1,
                    n: 1000,
                    nnz: 6400,
                    serial_ns: 500,
                    par_ns: 1000,
                },
                ScalingPoint {
                    p: 4,
                    n: 1000,
                    nnz: 6400,
                    serial_ns: 500,
                    par_ns: 400,
                },
            ],
        }]
    }

    #[test]
    fn json_roundtrips_through_verify() {
        let json = render_json("test", "none", true, &fake(), &[]);
        assert!(json.contains("\"baseline\": \"none\""));
        verify_file("pilut_bench_test.json", &json).unwrap();
    }

    #[test]
    fn scaling_curves_roundtrip_and_report_the_crossover() {
        let curves = fake_curves();
        // Speedup 0.5 at p=1, 1.25 at p=4 → crossover at p=4.
        assert_eq!(curves[0].crossover_p(), 4);
        let json = render_json("test", "none", true, &fake(), &curves);
        assert!(json.contains("\"scaling\": ["));
        assert!(json.contains("\"crossover_p\": 4"));
        assert!(json.contains("\"speedup\": 1.250"));
        verify_file("pilut_bench_scaling.json", &json).unwrap();
        // A curve stripped of its points must be rejected.
        let broken = json.replace("\"points\": [{\"p\": 1", "\"points\": [{\"q\": 1");
        let err = verify_file("pilut_bench_scaling_bad.json", &broken).unwrap_err();
        assert!(err.contains("scaling curve 1 missing"), "{err}");
    }

    #[test]
    fn uncrossed_curves_report_crossover_zero() {
        let mut curves = fake_curves();
        for pt in &mut curves[0].points {
            pt.par_ns = pt.serial_ns * 2;
        }
        assert_eq!(curves[0].crossover_p(), 0);
    }

    #[test]
    fn coll_gates_when_planned_and_passes_as_legacy_when_not() {
        // A report from the current harness plans `coll`; a mismatch fails.
        let mut m = fake();
        m[0].comm_tags = "spmv:12/4096 coll:7/320".to_string();
        m[0].comm_planned = "spmv:12/4096 coll:6/~".to_string();
        let err = verify_file(
            "pilut_bench_coll_gate.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap_err();
        assert!(err.contains("coll"), "{err}");
        // A legacy report (measured coll, no prediction) still passes.
        m[0].comm_planned = "spmv:12/4096".to_string();
        verify_file(
            "pilut_bench_coll_legacy.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap();
    }

    #[test]
    fn serial_scenarios_must_report_zero_comm() {
        assert!(is_machine_scenario("par_ilut_p4"));
        assert!(is_machine_scenario("dist_solve_robust_p4"));
        assert!(!is_machine_scenario("block_trisolve_rhs8"));
        assert!(!is_machine_scenario("serial_ilut_unbounded"));
        let mut m = fake();
        m[0].name = "block_trisolve";
        m[0].comm_tags = String::new();
        m[0].comm_planned = String::new();
        let err = verify_file(
            "pilut_bench_serial_comm.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap_err();
        assert!(err.contains("nothing on the wire"), "{err}");
        m[0].comm_messages = 0;
        m[0].comm_bytes = 0;
        verify_file(
            "pilut_bench_serial_comm_ok.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap();
    }

    #[test]
    fn verify_rejects_garbage() {
        assert!(verify_file("pilut_bench_bad.json", "{\"schema\": \"other\"}").is_err());
    }

    #[test]
    fn verify_gates_planned_against_measured() {
        // Exact byte prediction off by one fails at zero slack, passes
        // under a generous slack; message mismatches never pass; measured
        // protocol traffic with no prediction never passes.
        let mut m = fake();
        m[0].comm_planned = "spmv:12/4000".to_string();
        let json = render_json("test", "none", true, &m, &[]);
        let err = verify_file("pilut_bench_gate.json", &json).unwrap_err();
        assert!(err.contains("slack"), "{err}");
        let path = std::env::temp_dir().join("pilut_bench_gate.json");
        verify(&[
            path.to_str().unwrap().to_string(),
            "--slack".into(),
            "5".into(),
        ])
        .unwrap();
        m[0].comm_planned = "spmv:11/~".to_string();
        let err = verify_file(
            "pilut_bench_gate2.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap_err();
        assert!(err.contains("planned 11 message(s), measured 12"), "{err}");
        m[0].comm_tags = "spmv:12/4096 fwd:3/24".to_string();
        m[0].comm_planned = "spmv:12/4096".to_string();
        let err = verify_file(
            "pilut_bench_gate3.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap_err();
        assert!(err.contains("bypassed the planned data plane"), "{err}");
    }

    #[test]
    fn steady_region_allocs_fail_the_zero_gate() {
        // A steady region with traffic fails; a measured-only region
        // (mis_rounds) with the same traffic passes.
        let mut m = fake();
        m[0].alloc = AllocProfile {
            allocs: 3,
            bytes: 1024,
            regions: "trisolve_replay:3/1024".to_string(),
        };
        let err = verify_file(
            "pilut_bench_alloc_gate.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap_err();
        assert!(err.contains("steady region trisolve_replay"), "{err}");
        assert!(err.contains("3 allocation(s)"), "{err}");
        m[0].alloc = AllocProfile {
            allocs: 0,
            bytes: 0,
            regions: "mis_rounds:3/1024 trisolve_replay:0/0".to_string(),
        };
        verify_file(
            "pilut_bench_alloc_gate_ok.json",
            &render_json("t", "none", true, &m, &[]),
        )
        .unwrap();
    }

    #[test]
    fn v1_baselines_still_verify_and_compare() {
        // A v1 report (no alloc columns) must pass verify's legacy path
        // and parse for comparison against a v2 report.
        let v1 = "{\n  \"schema\": \"pilut-bench-v1\",\n  \"label\": \"pr9\",\n  \
                  \"baseline\": \"none\",\n  \"quick\": true,\n  \"scenarios\": [\n    \
                  {\"name\": \"spmv_p4\", \"n\": 100, \"nnz\": 460, \"reps\": 3, \
                  \"inner\": 10, \"median_ns\": 1100, \"min_ns\": 950, \
                  \"mnnz_per_s\": 418.18, \"comm_messages\": 12, \"comm_bytes\": 4096, \
                  \"comm_tags\": \"spmv:12/4096\", \"comm_planned\": \"spmv:12/4096\"}\n  \
                  ]\n}\n";
        verify_file("pilut_bench_v1_legacy.json", v1).unwrap();
        let base_path = std::env::temp_dir().join("pilut_bench_v1_base.json");
        std::fs::write(&base_path, v1).unwrap();
        let new_path = std::env::temp_dir().join("pilut_bench_v2_new.json");
        std::fs::write(&new_path, render_json("t", "pr9", true, &fake(), &[])).unwrap();
        compare(&[
            new_path.to_str().unwrap().to_string(),
            base_path.to_str().unwrap().to_string(),
            "--tolerance".into(),
            "25".into(),
        ])
        .unwrap();
    }

    #[test]
    fn alloc_profile_folds_steady_regions_only() {
        let stats = vec![
            pilut_allocaudit::RegionStats {
                name: "mis_rounds",
                allocs: 40,
                bytes: 2048,
                deallocs: 40,
                entries: 5,
            },
            pilut_allocaudit::RegionStats {
                name: "trisolve_replay",
                allocs: 2,
                bytes: 128,
                deallocs: 0,
                entries: 50,
            },
        ];
        let p = AllocProfile::from_registry(&stats);
        assert_eq!(p.allocs, 2, "only steady regions count toward the total");
        assert_eq!(p.bytes, 128);
        assert_eq!(p.regions, "mis_rounds:40/2048 trisolve_replay:2/128");
    }

    #[test]
    fn throughput_math() {
        let m = &fake()[0];
        // 460 entries in 1000 ns = 460 Mnnz/s.
        assert!((m.mnnz_per_s() - 460.0).abs() < 1e-9);
    }

    #[test]
    fn field_extraction() {
        assert_eq!(field_u64("{\"median_ns\": 42,", "\"median_ns\":"), Some(42));
        assert_eq!(field_u64("no field", "\"median_ns\":"), None);
    }
}
