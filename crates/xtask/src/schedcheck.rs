//! `xtask schedcheck` — the bitwise-determinism sanitizer.
//!
//! A deterministic SPMD program must produce *bit-identical* results no
//! matter how the host schedules its ranks. The happens-before detector
//! (`pilut_par::hb`) proves the absence of match-order races analytically;
//! this sweep attacks the same property dynamically: run each seeded
//! workload once on an unperturbed schedule, then re-run it under a battery
//! of seeded **benign** fault plans (random per-message delays, per-rank
//! reorder holds, thread stalls — faults that stretch and shuffle the
//! schedule without corrupting traffic) and demand an identical
//! *fingerprint* every time:
//!
//! * per-rank result checksums — every factor entry / solution component is
//!   folded bit-for-bit, so a single flipped ulp anywhere diverges;
//! * the machine's message and byte totals, and the per-tag breakdown —
//!   a protocol that adapts its traffic to arrival order diverges here even
//!   if the numbers happen to agree.
//!
//! Simulated time is deliberately *excluded*: delay faults move logical
//! clocks by design, and the determinism claim is about results and
//! traffic, not about the cost model under perturbation.
//!
//! When a trial diverges (or dies with a detector report), the sweep
//! re-runs it under every subset of the perturbation's rules, smallest
//! first, and reports the minimal subset that still reproduces — plus the
//! happens-before race report when one was raised. A divergence with no
//! race report would mean the detector has a hole; that pairing is exactly
//! the acceptance contract of this sanitizer.
//!
//! This suite *samples* the schedule space; `xtask modelcheck` walks the
//! DPOR-reduced space *exhaustively* for small configs (see DESIGN §12).
//! The fingerprints, workloads, and shrink loop are shared via
//! [`crate::sweep`].
//!
//! The fifth workload, `reliable`, is a *differential* property: the full
//! preconditioned iteration under reliable delivery
//! (`MachineBuilder::reliable`) with **lossy** perturbations — seeded drop,
//! duplicate and reorder rules — must produce factors and solutions
//! bitwise-identical to the fault-free reliable run. Traffic counters are
//! excluded from that comparison (retransmissions and acks legitimately
//! scale with the injected losses); the results may not move by an ulp.
//!
//! Full mode sweeps 20 schedules × p ∈ {2, 4, 8} × five workloads
//! (`mis`, `factor`, `trisolve`, `gmres`, `reliable`); `--quick` runs 3
//! schedules at p ∈ {2, 4} (the CI configuration).

use std::panic::AssertUnwindSafe;

use crate::sweep::{checked_builder, dist_matrix, mix, panic_text, shrink, Fingerprint};
use pilut_par::{FaultAction, FaultPlan, FaultRule};

/// The workloads swept per process count: the delta-protocol MIS rounds in
/// isolation (`mis` — sparse per-round message shapes, dead links going
/// silent mid-run), plan-construction traffic (`factor`), the steady-state
/// data plane (`trisolve`), the full preconditioned iteration with its
/// reduction traffic (`gmres`), and the same iteration on lossy links under
/// reliable delivery (`reliable`).
const WORKLOADS: &[&str] = &["mis", "factor", "trisolve", "gmres", "reliable"];

/// Human names for the benign schedule perturbation's rules, indexed by bit
/// in the subset mask used during minimization.
const RULE_NAMES: &[&str] = &["delay", "reorder", "stall"];

/// Rule names for the `reliable` workload's lossy perturbation.
const LOSSY_RULE_NAMES: &[&str] = &["drop", "duplicate", "reorder"];

fn rule_names(work: &str) -> &'static [&'static str] {
    if work == "reliable" {
        LOSSY_RULE_NAMES
    } else {
        RULE_NAMES
    }
}

/// Builds the perturbation for `(seed, p)`, restricted to the rules whose
/// bits are set in `mask` (bit order matches [`RULE_NAMES`]). Rules are
/// regenerated from the seed rather than cloned, so any subset reproduces
/// the full plan's parameters exactly.
fn schedule_plan(seed: u64, p: usize, mask: u8) -> FaultPlan {
    let mut s = seed ^ 0x5eed_5c4e_du64.rotate_left(13);
    // Always draw in the same order so a subset keeps the full plan's
    // victim ranks and offsets.
    let reorder_victim = (mix(&mut s) % p as u64) as usize;
    let stall_victim = (mix(&mut s) % p as u64) as usize;
    let stall_after = 1 + mix(&mut s) % 64;
    let mut plan = FaultPlan::new(seed);
    if mask & 1 != 0 {
        plan = plan.with(FaultRule::new(FaultAction::Delay { seconds: 3.0 }).probability(0.25));
    }
    if mask & 2 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Reorder)
                .rank(reorder_victim)
                .probability(0.3),
        );
    }
    if mask & 4 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Stall { millis: 3 })
                .rank(stall_victim)
                .after_op(stall_after)
                .max_fires(2),
        );
    }
    plan
}

/// Builds the **lossy** perturbation for the `reliable` workload: seeded
/// drop, duplicate and reorder rules that corrupt traffic outright — only
/// legal to absorb because the trial runs under reliable delivery. Same
/// subset-stability contract as [`schedule_plan`].
fn lossy_plan(seed: u64, p: usize, mask: u8) -> FaultPlan {
    let mut s = seed ^ 0x10c5_5b1a_du64.rotate_left(17);
    let drop_sender = (mix(&mut s) % p as u64) as usize;
    let dup_sender = (mix(&mut s) % p as u64) as usize;
    let reorder_victim = (mix(&mut s) % p as u64) as usize;
    let mut plan = FaultPlan::new(seed);
    if mask & 1 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Drop)
                .sender(drop_sender)
                .probability(0.2)
                .max_fires(4),
        );
    }
    if mask & 2 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Duplicate)
                .sender(dup_sender)
                .probability(0.25)
                .max_fires(4),
        );
    }
    if mask & 4 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Reorder)
                .rank(reorder_victim)
                .probability(0.3)
                .max_fires(4),
        );
    }
    plan
}

/// The perturbation family a workload is swept under.
fn trial_plan(work: &str, seed: u64, p: usize, mask: u8) -> FaultPlan {
    if work == "reliable" {
        lossy_plan(seed, p, mask)
    } else {
        schedule_plan(seed, p, mask)
    }
}

/// Names the rules selected by `mask`, for failure reports.
fn mask_names(work: &str, mask: u8) -> String {
    let names: Vec<&str> = rule_names(work)
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, n)| *n)
        .collect();
    names.join("+")
}

/// Runs one workload under an optional perturbation and returns its
/// fingerprint. Panics propagate to the caller for classification.
///
/// The `reliable` workload runs the `gmres` body under
/// `MachineBuilder::reliable` and blanks the traffic counters: its
/// differential claim is results-only (retransmissions and acks are allowed
/// to vary with the losses; the factors and the solution are not).
fn run_workload(work: &str, p: usize, plan: Option<FaultPlan>) -> Fingerprint {
    let dm = dist_matrix(p);
    let mut builder = checked_builder();
    let reliable = work == "reliable";
    if reliable {
        builder = builder.reliable(true);
    }
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let body = if reliable { "gmres" } else { work };
    let mut fp = crate::sweep::run_workload(body, &dm, p, builder);
    if reliable {
        fp.messages = 0;
        fp.bytes = 0;
        fp.by_tag.clear();
    }
    fp
}

/// How one perturbed trial related to its clean fingerprint.
enum Trial {
    /// Bit-identical to the clean run.
    Identical,
    /// Completed with a different fingerprint; the string locates the first
    /// differing component.
    Diverged(String),
    /// Died; the string is the panic message (a happens-before race report
    /// when the detector fired).
    Panicked(String),
}

/// Runs one `(work, p, seed, mask)` trial and classifies it.
fn run_trial(work: &str, p: usize, seed: u64, mask: u8, clean: &Fingerprint) -> Trial {
    let plan = trial_plan(work, seed, p, mask);
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_workload(work, p, Some(plan)))) {
        Ok(fp) => match clean.diff(&fp) {
            None => Trial::Identical,
            Some(why) => Trial::Diverged(why),
        },
        Err(payload) => Trial::Panicked(panic_text(payload)),
    }
}

/// Shrinks a failing trial to the smallest rule subset that still fails,
/// trying singletons before pairs before the full plan.
fn minimize(work: &str, p: usize, seed: u64, clean: &Fingerprint) -> (u8, Trial) {
    let mut masks: Vec<u8> = (1u8..8).collect();
    masks.sort_by_key(|m| m.count_ones());
    let failing = shrink(&masks, |mask| match run_trial(work, p, seed, mask, clean) {
        Trial::Identical => None,
        outcome => Some(outcome),
    });
    match failing {
        Some((mask, outcome)) => (mask, outcome),
        // The full plan failed once but no subset reproduces (a flaky
        // host-side interleaving): report the full plan.
        None => (7, run_trial(work, p, seed, 7, clean)),
    }
}

/// Entry point for `xtask schedcheck`. Returns `Err(message)` on bad usage
/// or any determinism violation.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return Err(format!("unknown schedcheck flag {other}")),
        }
    }
    let procs: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let schedules: u64 = if quick { 3 } else { 20 };
    let mut identical = 0usize;
    let mut failures: Vec<String> = Vec::new();
    // Failing trials are re-run several times during minimization; suppress
    // the induced backtraces the way the chaos suite does. The messages
    // still reach the classifier through `catch_unwind`.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for &p in procs {
        for &work in WORKLOADS {
            let clean =
                match std::panic::catch_unwind(AssertUnwindSafe(|| run_workload(work, p, None))) {
                    Ok(fp) => fp,
                    Err(payload) => {
                        failures.push(format!(
                            "work={work} p={p}: clean run died: {}",
                            panic_text(payload)
                        ));
                        continue;
                    }
                };
            for seed in 0..schedules {
                match run_trial(work, p, seed, 7, &clean) {
                    Trial::Identical => identical += 1,
                    outcome => {
                        let (mask, minimal) = match outcome {
                            Trial::Identical => unreachable!(),
                            _ => minimize(work, p, seed, &clean),
                        };
                        let detail = match minimal {
                            Trial::Identical => {
                                "failure did not reproduce during minimization".to_string()
                            }
                            Trial::Diverged(why) => format!(
                                "fingerprint diverged ({why}); no race report — the detector \
                                 missed a schedule dependence"
                            ),
                            Trial::Panicked(msg) => format!("run died:\n{msg}"),
                        };
                        failures.push(format!(
                            "work={work} p={p} seed={seed} rules=[{}]: {detail}",
                            mask_names(work, mask)
                        ));
                    }
                }
            }
        }
    }
    std::panic::set_hook(default_hook);
    let total = identical + failures.len();
    println!(
        "schedcheck: {total} perturbed schedule(s) over {} workload(s) × p ∈ {procs:?} — \
         {identical} bitwise-identical, {} violation(s)",
        WORKLOADS.len(),
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("schedcheck FAIL: {f}");
        }
        Err(format!(
            "{} schedule(s) violated bitwise determinism",
            failures.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_subset_stable() {
        let full = schedule_plan(11, 4, 7);
        let sub = schedule_plan(11, 4, 2);
        assert_eq!(full.rules().len(), 3);
        assert_eq!(sub.rules().len(), 1);
        // The reorder rule keeps its victim when regenerated as a subset.
        assert_eq!(full.rules()[1].rank, sub.rules()[0].rank);
    }

    #[test]
    fn lossy_plans_are_deterministic_and_subset_stable() {
        let full = lossy_plan(11, 4, 7);
        let sub = lossy_plan(11, 4, 4);
        assert_eq!(full.rules().len(), 3);
        assert_eq!(sub.rules().len(), 1);
        // The reorder rule keeps its victim when regenerated as a subset.
        assert_eq!(full.rules()[2].rank, sub.rules()[0].rank);
    }

    #[test]
    fn reliable_workload_blank_traffic_and_matches_under_losses() {
        // One targeted differential trial outside the full sweep: lossy
        // links under reliable delivery reproduce the clean results.
        let clean = run_workload("reliable", 2, None);
        assert_eq!((clean.messages, clean.bytes), (0, 0), "traffic blanked");
        match run_trial("reliable", 2, 1, 7, &clean) {
            Trial::Identical => {}
            Trial::Diverged(why) => panic!("reliable differential diverged: {why}"),
            Trial::Panicked(msg) => panic!("reliable differential died: {msg}"),
        }
    }

    #[test]
    fn quick_sweep_is_bitwise_clean() {
        run(&["--quick".to_string()]).expect("quick schedcheck sweep must pass");
    }
}
