//! `xtask schedcheck` — the bitwise-determinism sanitizer.
//!
//! A deterministic SPMD program must produce *bit-identical* results no
//! matter how the host schedules its ranks. The happens-before detector
//! (`pilut_par::hb`) proves the absence of match-order races analytically;
//! this sweep attacks the same property dynamically: run each seeded
//! workload once on an unperturbed schedule, then re-run it under a battery
//! of seeded **benign** fault plans (random per-message delays, per-rank
//! reorder holds, thread stalls — faults that stretch and shuffle the
//! schedule without corrupting traffic) and demand an identical
//! *fingerprint* every time:
//!
//! * per-rank result checksums — every factor entry / solution component is
//!   folded bit-for-bit, so a single flipped ulp anywhere diverges;
//! * the machine's message and byte totals, and the per-tag breakdown —
//!   a protocol that adapts its traffic to arrival order diverges here even
//!   if the numbers happen to agree.
//!
//! Simulated time is deliberately *excluded*: delay faults move logical
//! clocks by design, and the determinism claim is about results and
//! traffic, not about the cost model under perturbation.
//!
//! When a trial diverges (or dies with a detector report), the sweep
//! re-runs it under every subset of the perturbation's rules, smallest
//! first, and reports the minimal subset that still reproduces — plus the
//! happens-before race report when one was raised. A divergence with no
//! race report would mean the detector has a hole; that pairing is exactly
//! the acceptance contract of this sanitizer.
//!
//! Full mode sweeps 20 schedules × p ∈ {2, 4, 8} × three workloads
//! (`factor`, `trisolve`, `gmres`); `--quick` runs 3 schedules at
//! p ∈ {2, 4} (the CI configuration).

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

use pilut_core::dist::op::{DistCsr, DistOperator};
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{FaultAction, FaultPlan, FaultRule, Machine, MachineModel};
use pilut_solver::dist_gmres::{dist_gmres, DistIlu};
use pilut_solver::gmres::GmresOptions;
use pilut_sparse::gen;

/// The three workloads swept per process count: plan-construction traffic
/// (`factor`), the steady-state data plane (`trisolve`), and the full
/// preconditioned iteration with its reduction traffic (`gmres`).
const WORKLOADS: &[&str] = &["factor", "trisolve", "gmres"];

/// Human names for the perturbation's rules, indexed by bit in the subset
/// mask used during minimization.
const RULE_NAMES: &[&str] = &["delay", "reorder", "stall"];

/// splitmix64 — the same mixer the fault layer uses; also the fold step of
/// the result checksums.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds one word into a running checksum (order-sensitive).
fn fold(h: &mut u64, v: u64) {
    *h = *h ^ v;
    *h = mix(h);
}

/// Everything a deterministic run must reproduce bit-for-bit.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// One checksum per rank over the rank's full result (factor entries or
    /// solution components, in deterministic order, via `f64::to_bits`).
    rank_sums: Vec<u64>,
    /// Total messages across all ranks.
    messages: u64,
    /// Total bytes across all ranks.
    bytes: u64,
    /// Per-tag `(messages, bytes)` totals.
    by_tag: BTreeMap<u64, (u64, u64)>,
}

impl Fingerprint {
    /// Describes the first component where `self` and `other` differ, or
    /// `None` when identical. One line, precise enough to aim a debugger.
    fn diff(&self, other: &Fingerprint) -> Option<String> {
        for (r, (a, b)) in self.rank_sums.iter().zip(&other.rank_sums).enumerate() {
            if a != b {
                return Some(format!("rank {r} checksum {a:#018x} != {b:#018x}"));
            }
        }
        if self.messages != other.messages || self.bytes != other.bytes {
            return Some(format!(
                "traffic totals ({}, {} bytes) != ({}, {} bytes)",
                self.messages, self.bytes, other.messages, other.bytes
            ));
        }
        for (tag, a) in &self.by_tag {
            let b = other.by_tag.get(tag);
            if b != Some(a) {
                return Some(format!("tag {tag:#x} counters {a:?} != {b:?}"));
            }
        }
        for tag in other.by_tag.keys() {
            if !self.by_tag.contains_key(tag) {
                return Some(format!("tag {tag:#x} present only in the perturbed run"));
            }
        }
        None
    }
}

/// Builds the perturbation for `(seed, p)`, restricted to the rules whose
/// bits are set in `mask` (bit order matches [`RULE_NAMES`]). Rules are
/// regenerated from the seed rather than cloned, so any subset reproduces
/// the full plan's parameters exactly.
fn schedule_plan(seed: u64, p: usize, mask: u8) -> FaultPlan {
    let mut s = seed ^ 0x5eed_5c4e_du64.rotate_left(13);
    // Always draw in the same order so a subset keeps the full plan's
    // victim ranks and offsets.
    let reorder_victim = (mix(&mut s) % p as u64) as usize;
    let stall_victim = (mix(&mut s) % p as u64) as usize;
    let stall_after = 1 + mix(&mut s) % 64;
    let mut plan = FaultPlan::new(seed);
    if mask & 1 != 0 {
        plan = plan.with(FaultRule::new(FaultAction::Delay { seconds: 3.0 }).probability(0.25));
    }
    if mask & 2 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Reorder)
                .rank(reorder_victim)
                .probability(0.3),
        );
    }
    if mask & 4 != 0 {
        plan = plan.with(
            FaultRule::new(FaultAction::Stall { millis: 3 })
                .rank(stall_victim)
                .after_op(stall_after)
                .max_fires(2),
        );
    }
    plan
}

/// Names the rules selected by `mask`, for failure reports.
fn mask_names(mask: u8) -> String {
    let names: Vec<&str> = RULE_NAMES
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, n)| *n)
        .collect();
    names.join("+")
}

/// The sweep matrix — same Laplacian the chaos suite uses, so every rank
/// owns interior rows at p = 8 while a full sweep stays in seconds.
fn dist_matrix(p: usize) -> DistMatrix {
    DistMatrix::from_matrix(gen::laplace_2d(12, 12), p, 17)
}

fn ilut_options() -> IlutOptions {
    IlutOptions::new(5, 1e-4)
}

/// Checksums one rank's full factorization: every retained entry of L, the
/// pivot, and every retained entry of U, in global row order.
fn factor_checksum(rf: &pilut_core::parallel::RankFactors) -> u64 {
    let mut rows: Vec<usize> = rf.rows.keys().copied().collect();
    rows.sort_unstable();
    let mut h = 0x5eed_0001u64;
    for g in rows {
        let row = &rf.rows[&g];
        fold(&mut h, g as u64);
        for &(c, v) in &row.l {
            fold(&mut h, c as u64);
            fold(&mut h, v.to_bits());
        }
        fold(&mut h, row.diag.to_bits());
        for &(c, v) in &row.u {
            fold(&mut h, c as u64);
            fold(&mut h, v.to_bits());
        }
    }
    h
}

/// Checksums a local vector component-wise (local-view order is
/// deterministic per rank).
fn vector_checksum(x: &[f64]) -> u64 {
    let mut h = 0x5eed_0002u64;
    for v in x {
        fold(&mut h, v.to_bits());
    }
    h
}

/// Runs one workload under an optional perturbation and returns its
/// fingerprint. Panics propagate to the caller for classification.
fn run_workload(work: &str, p: usize, plan: Option<FaultPlan>) -> Fingerprint {
    let dm = dist_matrix(p);
    let mut builder = Machine::builder(MachineModel::cray_t3d())
        .checked(true)
        .watchdog_poll(Duration::from_millis(2));
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let opts = ilut_options();
    let out = builder.run(p, |ctx| {
        let local = dm.local_view(ctx.rank());
        // lint: allow(unwrap): the sweep matrix factors cleanly; corrupted runs die in the VM's diagnosis
        let rf = par_ilut(ctx, &dm, &local, &opts).expect("schedcheck workload must factor");
        match work {
            "factor" => factor_checksum(&rf),
            "trisolve" => {
                let tplan = TrisolvePlan::build(ctx, &dm, &local, &rf);
                let mut op = DistCsr::new(ctx, &dm, &local);
                // Chain matvec + two-sweep solves so any divergence
                // compounds instead of cancelling.
                let mut x = vec![1.0; local.len()];
                for _ in 0..3 {
                    let y = op.apply(ctx, &x);
                    x = dist_solve(ctx, &local, &rf, &tplan, &y);
                }
                vector_checksum(&x)
            }
            "gmres" => {
                let mut op = DistCsr::new(ctx, &dm, &local);
                let mut pre = DistIlu::new(ctx, &dm, &local, rf);
                let b = vec![1.0; local.len()];
                let gopts = GmresOptions {
                    restart: 10,
                    rtol: 1e-8,
                    max_matvecs: 60,
                };
                let r = dist_gmres(ctx, &mut op, &local, &mut pre, &b, &gopts);
                let mut h = vector_checksum(&r.x_local);
                fold(&mut h, r.matvecs as u64);
                fold(&mut h, u64::from(r.converged));
                h
            }
            other => unreachable!("unknown schedcheck workload {other}"),
        }
    });
    Fingerprint {
        rank_sums: out.results,
        messages: out.stats.messages,
        bytes: out.stats.bytes,
        by_tag: out.stats.by_tag,
    }
}

/// How one perturbed trial related to its clean fingerprint.
enum Trial {
    /// Bit-identical to the clean run.
    Identical,
    /// Completed with a different fingerprint; the string locates the first
    /// differing component.
    Diverged(String),
    /// Died; the string is the panic message (a happens-before race report
    /// when the detector fired).
    Panicked(String),
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

/// Runs one `(work, p, seed, mask)` trial and classifies it.
fn run_trial(work: &str, p: usize, seed: u64, mask: u8, clean: &Fingerprint) -> Trial {
    let plan = schedule_plan(seed, p, mask);
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_workload(work, p, Some(plan)))) {
        Ok(fp) => match clean.diff(&fp) {
            None => Trial::Identical,
            Some(why) => Trial::Diverged(why),
        },
        Err(payload) => Trial::Panicked(panic_text(payload)),
    }
}

/// Shrinks a failing trial to the smallest rule subset that still fails,
/// trying singletons before pairs before the full plan.
fn minimize(work: &str, p: usize, seed: u64, clean: &Fingerprint) -> (u8, Trial) {
    let mut masks: Vec<u8> = (1u8..8).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        match run_trial(work, p, seed, mask, clean) {
            Trial::Identical => continue,
            outcome => return (mask, outcome),
        }
    }
    // The full plan failed once but no subset reproduces (a flaky host-side
    // interleaving): report the full plan.
    (7, run_trial(work, p, seed, 7, clean))
}

/// Entry point for `xtask schedcheck`. Returns `Err(message)` on bad usage
/// or any determinism violation.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => return Err(format!("unknown schedcheck flag {other}")),
        }
    }
    let procs: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let schedules: u64 = if quick { 3 } else { 20 };
    let mut identical = 0usize;
    let mut failures: Vec<String> = Vec::new();
    // Failing trials are re-run several times during minimization; suppress
    // the induced backtraces the way the chaos suite does. The messages
    // still reach the classifier through `catch_unwind`.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for &p in procs {
        for &work in WORKLOADS {
            let clean =
                match std::panic::catch_unwind(AssertUnwindSafe(|| run_workload(work, p, None))) {
                    Ok(fp) => fp,
                    Err(payload) => {
                        failures.push(format!(
                            "work={work} p={p}: clean run died: {}",
                            panic_text(payload)
                        ));
                        continue;
                    }
                };
            for seed in 0..schedules {
                match run_trial(work, p, seed, 7, &clean) {
                    Trial::Identical => identical += 1,
                    outcome => {
                        let (mask, minimal) = match outcome {
                            Trial::Identical => unreachable!(),
                            _ => minimize(work, p, seed, &clean),
                        };
                        let detail = match minimal {
                            Trial::Identical => {
                                "failure did not reproduce during minimization".to_string()
                            }
                            Trial::Diverged(why) => format!(
                                "fingerprint diverged ({why}); no race report — the detector \
                                 missed a schedule dependence"
                            ),
                            Trial::Panicked(msg) => format!("run died:\n{msg}"),
                        };
                        failures.push(format!(
                            "work={work} p={p} seed={seed} rules=[{}]: {detail}",
                            mask_names(mask)
                        ));
                    }
                }
            }
        }
    }
    std::panic::set_hook(default_hook);
    let total = identical + failures.len();
    println!(
        "schedcheck: {total} perturbed schedule(s) over {} workload(s) × p ∈ {procs:?} — \
         {identical} bitwise-identical, {} violation(s)",
        WORKLOADS.len(),
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("schedcheck FAIL: {f}");
        }
        Err(format!(
            "{} schedule(s) violated bitwise determinism",
            failures.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_subset_stable() {
        let full = schedule_plan(11, 4, 7);
        let sub = schedule_plan(11, 4, 2);
        assert_eq!(full.rules().len(), 3);
        assert_eq!(sub.rules().len(), 1);
        // The reorder rule keeps its victim when regenerated as a subset.
        assert_eq!(full.rules()[1].rank, sub.rules()[0].rank);
    }

    #[test]
    fn fingerprint_diff_locates_first_divergence() {
        let a = Fingerprint {
            rank_sums: vec![1, 2],
            messages: 10,
            bytes: 80,
            by_tag: BTreeMap::new(),
        };
        let mut b = Fingerprint {
            rank_sums: vec![1, 2],
            messages: 10,
            bytes: 80,
            by_tag: BTreeMap::new(),
        };
        assert_eq!(a.diff(&b), None);
        b.rank_sums[1] = 3;
        // lint: allow(unwrap): diff is Some by construction
        assert!(a.diff(&b).expect("diff").contains("rank 1"), "rank diff");
        b.rank_sums[1] = 2;
        b.by_tag.insert(5, (1, 8));
        assert!(
            // lint: allow(unwrap): diff is Some by construction
            a.diff(&b).expect("diff").contains("only in the perturbed"),
            "tag diff"
        );
    }

    #[test]
    fn quick_sweep_is_bitwise_clean() {
        run(&["--quick".to_string()]).expect("quick schedcheck sweep must pass");
    }
}
