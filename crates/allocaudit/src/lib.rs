//! Allocation audit layer: the memory-plane half of the proof surface.
//!
//! The comm plane is gated by commcheck and the planned-traffic ledger;
//! this crate gives the heap the same treatment. Under the `audit`
//! feature a counting `#[global_allocator]` wraps the system allocator
//! and attributes every allocation, reallocation, and deallocation to
//! the current thread. On top of the raw counters sit three scopes:
//!
//! * [`region`] — a named accounting span. Entry snapshots the thread's
//!   counters; drop folds the delta into a process-wide registry keyed
//!   by region name, which the bench harness reads out per scenario.
//!   Nested regions each see their own delta; an outer region's delta
//!   includes everything its inner regions saw (the outer snapshot is
//!   older), which is the natural reading for "allocations inside the
//!   replay sweep".
//! * [`zero_alloc`] — a hard gate. Any alloc or realloc on the thread
//!   while the scope is armed records the region name plus a captured
//!   backtrace, and the guard panics at drop naming both. The panic is
//!   deferred to drop because unwinding out of `GlobalAlloc::alloc`
//!   itself is undefined behaviour — the allocator records, the guard
//!   accuses.
//! * [`harness`] — a suppression span for harness-owned allocations.
//!   The message-passing VM stands in for an MPI runtime: its channel
//!   nodes and refcount blocks model NIC/runtime-owned resources that a
//!   real steady state would not touch, so the transport wraps itself
//!   in this scope (see DESIGN §16 for the taxonomy). Audit internals
//!   use the same scope so bookkeeping never counts itself.
//!
//! Without the `audit` feature every type here is a zero-sized no-op
//! and no global allocator is installed: a production build of the
//! `pilut` facade carries no audit code and `Machine::run` pays
//! nothing. The differential test in `crates/par` pins that down.

#[cfg(feature = "audit")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::{Cell, RefCell};
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Snapshot of one thread's allocator traffic.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Counts {
        /// Calls to `alloc` / `alloc_zeroed`.
        pub allocs: u64,
        /// Calls to `realloc`.
        pub reallocs: u64,
        /// Calls to `dealloc`.
        pub deallocs: u64,
        /// Bytes requested by `alloc` / `alloc_zeroed`.
        pub alloc_bytes: u64,
        /// Bytes requested by `realloc` (new size).
        pub realloc_bytes: u64,
    }

    impl Counts {
        /// Heap acquisitions: allocs plus reallocs. This is the number the
        /// zero-steady-state gate is about — deallocations are free to
        /// happen (dropping a pooled buffer is not churn, acquiring one
        /// is).
        pub fn acquisitions(&self) -> u64 {
            self.allocs + self.reallocs
        }

        /// Bytes acquired: alloc bytes plus realloc bytes.
        pub fn acquired_bytes(&self) -> u64 {
            self.alloc_bytes + self.realloc_bytes
        }
    }

    /// One region's accumulated traffic in the process-wide registry.
    #[derive(Clone, Debug, Default)]
    pub struct RegionStats {
        /// Region name as passed to [`region`].
        pub name: &'static str,
        /// Heap acquisitions (allocs + reallocs) inside the region.
        pub allocs: u64,
        /// Bytes acquired inside the region.
        pub bytes: u64,
        /// Deallocations inside the region.
        pub deallocs: u64,
        /// Times the region was entered.
        pub entries: u64,
    }

    struct Tls {
        counts: Cell<Counts>,
        /// Suppression depth: when positive, the allocator hooks are inert
        /// on this thread (harness-owned traffic, audit bookkeeping).
        suppress: Cell<u32>,
        /// Zero-alloc arming depth and the innermost armed region name.
        forbid: Cell<u32>,
        forbid_name: Cell<&'static str>,
        /// First violation while armed: count and formatted backtrace.
        violation: Cell<u64>,
        violation_trace: Cell<Option<Box<str>>>,
        /// Per-thread region accumulator. Region drops fold here — an
        /// uncontended thread-local update — instead of taking the
        /// process-wide registry lock; replay paths enter regions every
        /// level-sweep on every rank thread, and a shared lock at that
        /// frequency was measurable contention inside the timed loops the
        /// regions exist to audit. Flushed to [`REGIONS`] at thread exit
        /// (rank threads are scope-joined before the harness reads) and
        /// by [`region_stats`] / [`reset_regions`] for the calling thread.
        regions: RefCell<BTreeMap<&'static str, RegionStats>>,
    }

    impl Drop for Tls {
        fn drop(&mut self) {
            // Thread teardown: publish this thread's region deltas. Any
            // allocation in here goes unattributed (note()'s `try_with`
            // fails during TLS destruction), which is exactly right —
            // registry bookkeeping is never counted.
            flush_regions(&mut self.regions.borrow_mut());
        }
    }

    /// Folds a thread's local region accumulator into the process-wide
    /// registry and empties it.
    fn flush_regions(local: &mut BTreeMap<&'static str, RegionStats>) {
        if local.is_empty() {
            return;
        }
        // lint: allow(unwrap): audit registry lock is never poisoned (no panics under it)
        let mut reg = REGIONS.lock().unwrap();
        for (name, s) in std::mem::take(local) {
            let slot = reg.entry(name).or_default();
            slot.name = name;
            slot.allocs += s.allocs;
            slot.bytes += s.bytes;
            slot.deallocs += s.deallocs;
            slot.entries += s.entries;
        }
    }

    thread_local! {
        static TLS: Tls = const {
            Tls {
                counts: Cell::new(Counts {
                    allocs: 0,
                    reallocs: 0,
                    deallocs: 0,
                    alloc_bytes: 0,
                    realloc_bytes: 0,
                }),
                suppress: Cell::new(0),
                forbid: Cell::new(0),
                forbid_name: Cell::new(""),
                violation: Cell::new(0),
                violation_trace: Cell::new(None),
                regions: RefCell::new(BTreeMap::new()),
            }
        };
    }

    /// Process-wide region registry. Guarded writes happen at region drop
    /// under suppression, so the registry's own nodes are never counted.
    static REGIONS: Mutex<BTreeMap<&'static str, RegionStats>> = Mutex::new(BTreeMap::new());

    enum Kind {
        Alloc,
        Realloc,
        Dealloc,
    }

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    #[global_allocator]
    static AUDIT_ALLOC: CountingAlloc = CountingAlloc;

    fn note(kind: &Kind, size: usize) {
        // `try_with` because allocation can happen while thread-locals are
        // being torn down; those late frees are simply not attributed.
        let _ = TLS.try_with(|t| {
            if t.suppress.get() > 0 {
                return;
            }
            let mut c = t.counts.get();
            match kind {
                Kind::Alloc => {
                    c.allocs += 1;
                    c.alloc_bytes += size as u64;
                }
                Kind::Realloc => {
                    c.reallocs += 1;
                    c.realloc_bytes += size as u64;
                }
                Kind::Dealloc => c.deallocs += 1,
            }
            t.counts.set(c);
            if t.forbid.get() > 0 && !matches!(kind, Kind::Dealloc) {
                t.violation.set(t.violation.get() + 1);
                match t.violation_trace.take() {
                    Some(first) => t.violation_trace.set(Some(first)),
                    None => {
                        // Capture the accusing backtrace under suppression —
                        // formatting it allocates, and unwinding from here
                        // would be UB, so the guard panics later at drop.
                        t.suppress.set(t.suppress.get() + 1);
                        let bt = std::backtrace::Backtrace::force_capture();
                        t.violation_trace
                            .set(Some(format!("{bt}").into_boxed_str()));
                        t.suppress.set(t.suppress.get() - 1);
                    }
                }
            }
        });
    }

    // SAFETY: every path defers to the system allocator unchanged; the
    // bookkeeping never unwinds (violations are recorded, not thrown).
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            note(&Kind::Alloc, layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            note(&Kind::Alloc, layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            note(&Kind::Realloc, new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            note(&Kind::Dealloc, layout.size());
            System.dealloc(ptr, layout)
        }
    }

    /// Whether the audit layer is compiled in (the `audit` feature).
    pub fn audit_enabled() -> bool {
        true
    }

    /// This thread's allocator counters since thread start (suppressed
    /// spans excluded).
    pub fn thread_counts() -> Counts {
        TLS.with(|t| t.counts.get())
    }

    /// Named accounting span; see the crate docs. Drop folds the counter
    /// delta into the thread's local accumulator (published to the
    /// process-wide registry at thread exit or first read).
    #[must_use = "a region accounts between construction and drop"]
    pub fn region(name: &'static str) -> Region {
        Region {
            name,
            entry: thread_counts(),
        }
    }

    /// Guard returned by [`region`].
    pub struct Region {
        name: &'static str,
        entry: Counts,
    }

    impl Drop for Region {
        fn drop(&mut self) {
            let now = thread_counts();
            let _s = harness(); // registry bookkeeping must not count itself
            TLS.with(|t| {
                let mut local = t.regions.borrow_mut();
                let slot = local.entry(self.name).or_default();
                slot.name = self.name;
                slot.allocs += now.acquisitions() - self.entry.acquisitions();
                slot.bytes += now.acquired_bytes() - self.entry.acquired_bytes();
                slot.deallocs += now.deallocs - self.entry.deallocs;
                slot.entries += 1;
            });
        }
    }

    /// Hard zero-allocation gate; see the crate docs. Any alloc/realloc on
    /// this thread while the guard lives records a backtrace, and the
    /// guard panics at drop naming the region and the callsite.
    #[must_use = "a zero-alloc scope gates between construction and drop"]
    pub fn zero_alloc(name: &'static str) -> ZeroAllocScope {
        TLS.with(|t| {
            t.forbid.set(t.forbid.get() + 1);
            t.forbid_name.set(name);
        });
        ZeroAllocScope { name }
    }

    /// Guard returned by [`zero_alloc`].
    pub struct ZeroAllocScope {
        name: &'static str,
    }

    impl Drop for ZeroAllocScope {
        fn drop(&mut self) {
            let (hits, trace) = TLS.with(|t| {
                t.forbid.set(t.forbid.get() - 1);
                if t.forbid.get() == 0 {
                    (t.violation.replace(0), t.violation_trace.take())
                } else {
                    (0, None)
                }
            });
            // lint: allow(thread): panic-in-drop reentrancy guard, no threads spawned
            if hits > 0 && !std::thread::panicking() {
                panic!(
                    "alloc_audit: {hits} allocation(s) inside zero-alloc region `{}`; first callsite:\n{}",
                    self.name,
                    trace.as_deref().unwrap_or("<backtrace unavailable>")
                );
            }
        }
    }

    /// Suppression span for harness-owned allocations; see the crate docs.
    #[must_use = "suppression lasts between construction and drop"]
    pub fn harness() -> Suppress {
        TLS.with(|t| t.suppress.set(t.suppress.get() + 1));
        Suppress { _priv: () }
    }

    /// Guard returned by [`harness`].
    pub struct Suppress {
        _priv: (),
    }

    impl Drop for Suppress {
        fn drop(&mut self) {
            TLS.with(|t| t.suppress.set(t.suppress.get() - 1));
        }
    }

    /// Every region accumulated since the last [`reset_regions`], sorted
    /// by name (BTreeMap order): the bench harness's per-scenario readout.
    /// Flushes the calling thread's local accumulator first; other
    /// threads' regions are visible once those threads exit (machine rank
    /// threads are scope-joined before any readout).
    pub fn region_stats() -> Vec<RegionStats> {
        let _s = harness();
        TLS.with(|t| flush_regions(&mut t.regions.borrow_mut()));
        // lint: allow(unwrap): audit registry lock is never poisoned (no panics under it)
        REGIONS.lock().unwrap().values().cloned().collect()
    }

    /// Clears the region registry and the calling thread's accumulator
    /// (between bench scenarios, when no rank threads are live).
    pub fn reset_regions() {
        let _s = harness();
        TLS.with(|t| t.regions.borrow_mut().clear());
        // lint: allow(unwrap): audit registry lock is never poisoned (no panics under it)
        REGIONS.lock().unwrap().clear();
    }
}

#[cfg(feature = "audit")]
pub use imp::{
    audit_enabled, harness, region, region_stats, reset_regions, thread_counts, zero_alloc, Counts,
    Region, RegionStats, Suppress, ZeroAllocScope,
};

#[cfg(not(feature = "audit"))]
mod noop {
    /// Snapshot of one thread's allocator traffic (inert without `audit`).
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Counts {
        /// Calls to `alloc` / `alloc_zeroed`.
        pub allocs: u64,
        /// Calls to `realloc`.
        pub reallocs: u64,
        /// Calls to `dealloc`.
        pub deallocs: u64,
        /// Bytes requested by `alloc` / `alloc_zeroed`.
        pub alloc_bytes: u64,
        /// Bytes requested by `realloc` (new size).
        pub realloc_bytes: u64,
    }

    impl Counts {
        /// Heap acquisitions: allocs plus reallocs.
        pub fn acquisitions(&self) -> u64 {
            0
        }

        /// Bytes acquired: alloc bytes plus realloc bytes.
        pub fn acquired_bytes(&self) -> u64 {
            0
        }
    }

    /// One region's accumulated traffic (inert without `audit`).
    #[derive(Clone, Debug, Default)]
    pub struct RegionStats {
        /// Region name as passed to [`region`].
        pub name: &'static str,
        /// Heap acquisitions inside the region.
        pub allocs: u64,
        /// Bytes acquired inside the region.
        pub bytes: u64,
        /// Deallocations inside the region.
        pub deallocs: u64,
        /// Times the region was entered.
        pub entries: u64,
    }

    /// Whether the audit layer is compiled in (here: it is not).
    pub fn audit_enabled() -> bool {
        false
    }

    /// This thread's allocator counters (always zero without `audit`).
    pub fn thread_counts() -> Counts {
        Counts::default()
    }

    /// Named accounting span (no-op without `audit`).
    #[must_use = "a region accounts between construction and drop"]
    pub fn region(_name: &'static str) -> Region {
        Region { _priv: () }
    }

    /// Guard returned by [`region`] (zero-sized no-op).
    pub struct Region {
        _priv: (),
    }

    /// Hard zero-allocation gate (no-op without `audit`).
    #[must_use = "a zero-alloc scope gates between construction and drop"]
    pub fn zero_alloc(_name: &'static str) -> ZeroAllocScope {
        ZeroAllocScope { _priv: () }
    }

    /// Guard returned by [`zero_alloc`] (zero-sized no-op).
    pub struct ZeroAllocScope {
        _priv: (),
    }

    /// Suppression span (no-op without `audit`).
    #[must_use = "suppression lasts between construction and drop"]
    pub fn harness() -> Suppress {
        Suppress { _priv: () }
    }

    /// Guard returned by [`harness`] (zero-sized no-op).
    pub struct Suppress {
        _priv: (),
    }

    /// Region registry readout (always empty without `audit`).
    pub fn region_stats() -> Vec<RegionStats> {
        Vec::new()
    }

    /// Clears the region registry (no-op without `audit`).
    pub fn reset_regions() {}
}

#[cfg(not(feature = "audit"))]
pub use noop::{
    audit_enabled, harness, region, region_stats, reset_regions, thread_counts, zero_alloc, Counts,
    Region, RegionStats, Suppress, ZeroAllocScope,
};

#[cfg(all(test, feature = "audit"))]
mod tests {
    use super::*;

    // The counters are thread-local and the registry is global, so tests
    // that read the registry filter by their own region names; names are
    // unique per test to stay independent of sibling tests and threads.

    #[test]
    fn counts_advance_and_suppression_hides() {
        let before = thread_counts();
        let v = vec![1u8; 4096];
        drop(v);
        let mid = thread_counts();
        assert!(mid.allocs > before.allocs, "allocation not counted");
        assert!(mid.alloc_bytes >= before.alloc_bytes + 4096);
        assert!(mid.deallocs > before.deallocs, "deallocation not counted");
        let s = harness();
        let v = vec![1u8; 4096];
        drop(v);
        drop(s);
        let after = thread_counts();
        assert_eq!(
            after.allocs, mid.allocs,
            "suppressed allocation was counted"
        );
    }

    #[test]
    fn nested_regions_attribute_to_both() {
        reset_regions();
        {
            let _outer = region("test_nested_outer");
            let _x = vec![0u8; 100];
            {
                let _inner = region("test_nested_inner");
                let _y = vec![0u8; 200];
            }
        }
        let stats = region_stats();
        let get = |n: &str| {
            stats
                .iter()
                .find(|r| r.name == n)
                .cloned()
                .unwrap_or_default()
        };
        let outer = get("test_nested_outer");
        let inner = get("test_nested_inner");
        assert_eq!(inner.allocs, 1, "inner sees exactly its own vec");
        assert!(inner.bytes >= 200);
        assert!(
            outer.allocs >= 2,
            "outer includes the inner region's traffic"
        );
        assert!(outer.bytes >= 300);
        assert_eq!(outer.entries, 1);
    }

    #[test]
    fn realloc_is_attributed_to_the_region() {
        reset_regions();
        let mut v: Vec<u64> = Vec::with_capacity(4);
        {
            let _r = region("test_realloc");
            for i in 0..64 {
                v.push(i); // grows past the initial capacity → realloc
            }
        }
        let stats = region_stats();
        let r = stats
            .iter()
            .find(|r| r.name == "test_realloc")
            .cloned()
            .unwrap_or_default();
        assert!(r.allocs >= 1, "growth inside the region not attributed");
        let c = thread_counts();
        assert!(c.reallocs >= 1, "vec growth did not register as realloc");
    }

    #[test]
    fn zero_alloc_scope_panics_with_region_and_backtrace() {
        let err = std::panic::catch_unwind(|| {
            let _guard = zero_alloc("test_forbidden_region");
            let _v = vec![0u8; 32];
        })
        // lint: allow(unwrap): the scope must panic; a clean return is the test failing
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into());
        assert!(
            msg.contains("zero-alloc region `test_forbidden_region`"),
            "panic must name the region: {msg}"
        );
        assert!(
            msg.contains("1 allocation(s)"),
            "panic must count the hits: {msg}"
        );
        assert!(
            msg.contains("first callsite:"),
            "panic must carry the backtrace header: {msg}"
        );
    }

    #[test]
    fn zero_alloc_scope_is_silent_when_clean() {
        let buf = [0u64; 16];
        let guard = zero_alloc("test_clean_region");
        let s: u64 = buf.iter().sum();
        drop(guard);
        assert_eq!(s, 0);
    }

    #[test]
    fn suppressed_allocs_do_not_trip_the_gate() {
        let guard = zero_alloc("test_suppressed_region");
        let s = harness();
        let _v = vec![0u8; 32];
        drop(s);
        drop(guard); // must not panic
    }
}
