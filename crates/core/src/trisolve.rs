//! Parallel forward/backward substitution (paper §5).
//!
//! The solves mirror the factorization's two-phase structure. Forward
//! (`L y = b`): every rank solves its interior unknowns locally, then the
//! interface unknowns level by level — after computing a level, each rank
//! pushes the new `x` values to exactly the ranks whose later rows reference
//! them. Backward (`U x = y`) runs the levels in reverse and finishes with
//! the interiors. Communication volume is proportional to the interface
//! size, but the `q` levels impose `q` implicit synchronisation points —
//! which is why ILUT\*'s smaller `q` makes its triangular solves faster
//! (paper Table 2 / Figure 6).
//!
//! The exchange is fully planned: [`TrisolvePlan::build`] builds one
//! [`CommPlan`] per direction, asks every owner for the *level index* of
//! each needed node ([`CommPlan::exchange_labels`]), and restricts the plan
//! into one sub-plan per level. A sweep then replays a fixed schedule —
//! at iteration `l` it drains the batches of the previously computed level
//! and, after computing level `l`, ships one values-only message per peer
//! that needs any of them. This is valid because remote `L` dependencies
//! sit at strictly earlier levels and remote `U` dependencies at strictly
//! later ones (the level construction eliminates a row only against
//! already-pivoted levels), and received values persist for any
//! level-skipping consumer. No node ids travel on the wire.

use crate::dist::exchange::{tags, CommPlan};
use crate::dist::{DistMatrix, LocalView};
use crate::parallel::RankFactors;
use pilut_par::collectives::ReduceOp;
use pilut_par::Ctx;
use std::collections::HashMap;

/// The communication plan for repeated triangular solves with one
/// factorization: one per-level sub-plan per direction.
pub struct TrisolvePlan {
    /// `fwd_at[l]`: level-`l` forward traffic (my level-`l` nodes on the
    /// send side, remote level-`l` nodes on the receive side).
    fwd_at: Vec<CommPlan>,
    /// `bwd_at[l]`: level-`l` backward traffic.
    bwd_at: Vec<CommPlan>,
}

/// Builds one direction's per-level schedule: plan the exchange from the
/// remote columns, learn each needed node's level from its owner, and
/// restrict the plan level by level.
fn build_sweep(
    ctx: &mut Ctx,
    tag: u64,
    local: &LocalView,
    dm: &DistMatrix,
    n_levels: usize,
    level_of: &HashMap<usize, u64>,
    cols: impl Iterator<Item = usize>,
) -> Vec<CommPlan> {
    let needed: Vec<usize> = cols.filter(|&j| !local.owns(j)).collect();
    let plan = CommPlan::build(ctx, tag, needed, |j| dm.dist().owner(j));
    let remote_level = plan.exchange_labels(ctx, |g| {
        // lint: allow(unwrap): peers only reference interface pivots, which all carry a level
        *level_of.get(&g).expect("referenced node has no level")
    });
    (0..n_levels)
        .map(|l| {
            plan.restrict(
                |g| level_of.get(&g).copied() == Some(l as u64),
                |g| remote_level.get(&g).copied() == Some(l as u64),
            )
            // Each level gets a private wire-tag namespace: values of two
            // adjacent levels can be in flight from one sender at once, and
            // sharing a wire tag would let a reordered network swap them.
            .rebase(tag + ((l as u64) << 20))
        })
        .collect()
}

impl TrisolvePlan {
    /// Collectively builds the plan from the distributed factors.
    pub fn build(ctx: &mut Ctx, dm: &DistMatrix, local: &LocalView, rf: &RankFactors) -> Self {
        let mut level_of: HashMap<usize, u64> = HashMap::new();
        for (l, level) in rf.levels.iter().enumerate() {
            for &i in level {
                level_of.insert(i, l as u64);
            }
        }
        // The factorization's level loop is collective (one push per
        // iteration on every rank), so the global level count must agree —
        // the whole sweep schedule hangs on that.
        let n_levels = rf.levels.len();
        let lmax = ctx.all_reduce_u64(vec![n_levels as u64], ReduceOp::Max)[0];
        assert_eq!(lmax as usize, n_levels, "level count differs across ranks");
        let fwd_at = build_sweep(
            ctx,
            tags::FWD,
            local,
            dm,
            n_levels,
            &level_of,
            rf.rows.values().flat_map(|r| r.l.iter().map(|&(c, _)| c)),
        );
        let bwd_at = build_sweep(
            ctx,
            tags::BWD,
            local,
            dm,
            n_levels,
            &level_of,
            rf.rows.values().flat_map(|r| r.u.iter().map(|&(c, _)| c)),
        );
        TrisolvePlan { fwd_at, bwd_at }
    }

    /// Total values this rank ships per solve (forward plus backward).
    pub fn sent_values(&self) -> usize {
        self.fwd_at
            .iter()
            .chain(&self.bwd_at)
            .map(|p| p.sent_values())
            .sum()
    }

    /// The most remote values either direction's sweep can hold at once —
    /// the capacity [`SolveScratch`] reserves for its remote-value map.
    fn max_remote_values(&self) -> usize {
        let total = |plans: &[CommPlan]| {
            plans
                .iter()
                .map(|p| p.recv_lists().iter().map(|(_, ns)| ns.len()).sum::<usize>())
                .sum::<usize>()
        };
        total(&self.fwd_at).max(total(&self.bwd_at))
    }
}

/// Caller-owned workspace for repeated [`dist_solve_into`] calls: the two
/// sweep buffers plus the remote-value map, all sized once from the plan so
/// the steady-state solve allocates nothing. Build one per `(local, plan)`
/// pair and reuse it across every solve of a Krylov iteration.
pub struct SolveScratch {
    /// Forward-sweep solution (the backward sweep's right-hand side).
    y: Vec<f64>,
    /// Backward-sweep solution.
    x: Vec<f64>,
    /// Remote values delivered by the level batches, keyed by global node.
    /// Capacity covers every node either direction can deliver, so
    /// steady-state inserts never rehash.
    remote_x: HashMap<usize, f64>,
}

impl SolveScratch {
    /// Reserves the workspace for solves over `local` with `plan`.
    pub fn build(local: &LocalView, plan: &TrisolvePlan) -> Self {
        SolveScratch {
            y: Vec::with_capacity(local.len()),
            x: Vec::with_capacity(local.len()),
            remote_x: HashMap::with_capacity(plan.max_remote_values()),
        }
    }
}

/// Solves `L U x = b` for this rank's unknowns. `b` is in local-view order
/// (interiors first, then interfaces); so is the returned `x`.
///
/// Collective: all ranks must call with their own local data.
pub fn dist_solve(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    b: &[f64],
) -> Vec<f64> {
    let y = dist_forward(ctx, local, rf, plan, b);
    dist_backward(ctx, local, rf, plan, &y)
}

/// Solves `L U x = b` into a caller-owned buffer using a reusable
/// [`SolveScratch`] — the zero-allocation steady-state form of
/// [`dist_solve`]. The whole replay runs under the `trisolve_replay` audit
/// region, and with a warmed scratch it performs no heap acquisitions.
///
/// Collective: all ranks must call with their own local data.
pub fn dist_solve_into(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    b: &[f64],
    scratch: &mut SolveScratch,
    out: &mut [f64],
) {
    let _audit = pilut_allocaudit::region("trisolve_replay");
    forward_sweep_into(
        ctx,
        local,
        rf,
        plan,
        b,
        &mut scratch.y,
        &mut scratch.remote_x,
    );
    backward_sweep_into(
        ctx,
        local,
        rf,
        plan,
        &scratch.y,
        &mut scratch.x,
        &mut scratch.remote_x,
    );
    out.copy_from_slice(&scratch.x);
}

/// The value of column `j`: local solution entry when owned, otherwise a
/// remote value that the sweep schedule guarantees has already arrived.
fn col_value(local: &LocalView, x: &[f64], remote_x: &HashMap<usize, f64>, j: usize) -> f64 {
    match local.pos_of(j) {
        Some(q) => x[q],
        // lint: allow(unwrap): the schedule delivers every remote dep before its consumer level
        None => *remote_x.get(&j).expect("remote value not yet delivered"),
    }
}

/// Forward sweep `L y = b` (unit lower triangular).
pub fn dist_forward(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    b: &[f64],
) -> Vec<f64> {
    let mut x = Vec::new();
    let mut remote_x = HashMap::new();
    forward_sweep_into(ctx, local, rf, plan, b, &mut x, &mut remote_x);
    x
}

/// The forward sweep body over caller-owned buffers: `x` is cleared and
/// refilled (no allocation when its capacity covers `local.len()`),
/// `remote_x` likewise.
fn forward_sweep_into(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    b: &[f64],
    x: &mut Vec<f64>,
    remote_x: &mut HashMap<usize, f64>,
) {
    assert_eq!(b.len(), local.len());
    x.clear();
    x.extend_from_slice(b);
    remote_x.clear();
    let mut flops = 0.0;
    // Interior phase: L columns of interior rows are earlier interiors of
    // this rank — all local, all already computed in ascending order.
    for &i in &rf.interior {
        // lint: allow(unwrap): the schedule lists only locally owned rows
        let p = local.pos_of(i).unwrap();
        let row = &rf.rows[&i];
        let mut s = x[p];
        for &(j, v) in &row.l {
            // lint: allow(unwrap): interior L columns are local by construction
            s -= v * x[local.pos_of(j).expect("interior L column must be local")];
        }
        flops += 2.0 * row.l.len() as f64;
        x[p] = s;
    }
    // Interface phase, level by level: drain the previous level's batches,
    // compute, then ship this level's values (one message per peer).
    for (l, level) in rf.levels.iter().enumerate() {
        if l > 0 {
            plan.fwd_at[l - 1].recv_values(ctx, |g, v| {
                remote_x.insert(g, v);
            });
        }
        for &i in level {
            // lint: allow(unwrap): the schedule lists only locally owned rows
            let p = local.pos_of(i).unwrap();
            let row = &rf.rows[&i];
            let mut s = x[p];
            for &(j, v) in &row.l {
                s -= v * col_value(local, &x, &remote_x, j);
            }
            flops += 2.0 * row.l.len() as f64;
            x[p] = s;
        }
        plan.fwd_at[l].send_values(ctx, |g| {
            // lint: allow(unwrap): the plan ships only locally owned nodes
            x[local.pos_of(g).expect("plan ships non-local node")]
        });
    }
    ctx.work(flops);
}

/// Backward sweep `U x = y`.
pub fn dist_backward(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    y: &[f64],
) -> Vec<f64> {
    let mut x = Vec::new();
    let mut remote_x = HashMap::new();
    backward_sweep_into(ctx, local, rf, plan, y, &mut x, &mut remote_x);
    x
}

/// The backward sweep body over caller-owned buffers (see
/// [`forward_sweep_into`]).
fn backward_sweep_into(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    y: &[f64],
    x: &mut Vec<f64>,
    remote_x: &mut HashMap<usize, f64>,
) {
    assert_eq!(y.len(), local.len());
    x.clear();
    x.extend_from_slice(y);
    remote_x.clear();
    let mut flops = 0.0;
    // Interface levels in reverse order: drain the batches of the level
    // computed just before (the next-higher index), compute, ship.
    let n_levels = rf.levels.len();
    for l in (0..n_levels).rev() {
        if l + 1 < n_levels {
            plan.bwd_at[l + 1].recv_values(ctx, |g, v| {
                remote_x.insert(g, v);
            });
        }
        for &i in &rf.levels[l] {
            // lint: allow(unwrap): the schedule lists only locally owned rows
            let p = local.pos_of(i).unwrap();
            let row = &rf.rows[&i];
            let mut s = x[p];
            for &(j, v) in &row.u {
                s -= v * col_value(local, &x, &remote_x, j);
            }
            flops += 2.0 * row.u.len() as f64 + 1.0;
            x[p] = s / row.diag;
        }
        plan.bwd_at[l].send_values(ctx, |g| {
            // lint: allow(unwrap): the plan ships only locally owned nodes
            x[local.pos_of(g).expect("plan ships non-local node")]
        });
    }
    // Interior phase, descending elimination order; U columns of interior
    // rows are local (later interiors or own interfaces).
    for &i in rf.interior.iter().rev() {
        // lint: allow(unwrap): the schedule lists only locally owned rows
        let p = local.pos_of(i).unwrap();
        let row = &rf.rows[&i];
        let mut s = x[p];
        for &(j, v) in &row.u {
            // lint: allow(unwrap): interior U columns are local by construction
            s -= v * x[local.pos_of(j).expect("interior U column must be local")];
        }
        flops += 2.0 * row.u.len() as f64 + 1.0;
        x[p] = s / row.diag;
    }
    ctx.work(flops);
}
