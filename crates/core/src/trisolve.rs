//! Parallel forward/backward substitution (paper §5).
//!
//! The solves mirror the factorization's two-phase structure. Forward
//! (`L y = b`): every rank solves its interior unknowns locally, then the
//! interface unknowns level by level — after computing a level, each rank
//! pushes the new `x` values to exactly the ranks whose later rows reference
//! them (the plan is built once, collectively). Backward (`U x = y`) runs
//! the levels in reverse and finishes with the interiors. Communication
//! volume is proportional to the interface size, but the `q` levels impose
//! `q` implicit synchronisation points — which is why ILUT\*'s smaller `q`
//! makes its triangular solves faster (paper Table 2 / Figure 6).

use crate::dist::{DistMatrix, LocalView};
use crate::parallel::RankFactors;
use pilut_par::{Ctx, Payload};
use std::collections::{BTreeMap, HashMap};

const TAG_FWD: u64 = 2 << 40;
const TAG_BWD: u64 = 3 << 40;

/// Drains batched `(node, value)` messages from `owner` until `node` is
/// present in `remote_x`, then returns its value. Each batch is one level's
/// worth of values from that owner; per-(sender, tag) FIFO delivery plus the
/// global level order guarantee the needed node eventually arrives, and
/// every batched value is eventually demanded (the plan only ships values
/// the receiver declared a need for), so no batch is left unconsumed.
fn demand_remote(
    ctx: &mut Ctx,
    remote_x: &mut HashMap<usize, f64>,
    tag: u64,
    owner: usize,
    node: usize,
) -> f64 {
    while !remote_x.contains_key(&node) {
        let (nodes, vals) = ctx.recv(owner, tag).into_mixed();
        for (&g, &v) in nodes.iter().zip(&vals) {
            remote_x.insert(g as usize, v);
        }
    }
    remote_x[&node]
}

/// Accumulates one level's freshly computed values into per-peer batches
/// (`scratch`, reused across levels) and sends one `Mixed` message per peer,
/// in ascending peer order so the simulated clock is deterministic.
fn push_level(
    ctx: &mut Ctx,
    local: &LocalView,
    x: &[f64],
    level: &[usize],
    push: &HashMap<usize, Vec<usize>>,
    tag: u64,
    scratch: &mut BTreeMap<usize, (Vec<u64>, Vec<f64>)>,
) {
    for &i in level {
        if let Some(peers) = push.get(&i) {
            // lint: allow(unwrap): the schedule lists only locally owned rows
            let v = x[local.pos_of(i).unwrap()];
            for &peer in peers {
                let (nodes, vals) = scratch.entry(peer).or_default();
                nodes.push(i as u64);
                vals.push(v);
            }
        }
    }
    for (&peer, (nodes, vals)) in scratch.iter_mut() {
        if !nodes.is_empty() {
            ctx.send(
                peer,
                tag,
                Payload::mixed(std::mem::take(nodes), std::mem::take(vals)),
            );
        }
    }
}

/// The communication plan for repeated triangular solves with one
/// factorization.
pub struct TrisolvePlan {
    /// my node → peers that need its `x` during the forward sweep.
    fwd_push: HashMap<usize, Vec<usize>>,
    /// my node → peers that need its `x` during the backward sweep.
    bwd_push: HashMap<usize, Vec<usize>>,
    /// remote node → owner, for values I will need (forward / backward).
    fwd_owner: HashMap<usize, usize>,
    bwd_owner: HashMap<usize, usize>,
}

impl TrisolvePlan {
    /// Collectively builds the plan from the distributed factors.
    pub fn build(ctx: &mut Ctx, dm: &DistMatrix, local: &LocalView, rf: &RankFactors) -> Self {
        let dist = dm.dist();
        let gather_remote = |cols: Box<dyn Iterator<Item = usize> + '_>| {
            let mut need: HashMap<usize, usize> = HashMap::new();
            for j in cols {
                if !local.owns(j) {
                    need.insert(j, dist.owner(j));
                }
            }
            need
        };
        let fwd_owner = gather_remote(Box::new(
            rf.rows.values().flat_map(|r| r.l.iter().map(|&(c, _)| c)),
        ));
        let bwd_owner = gather_remote(Box::new(
            rf.rows.values().flat_map(|r| r.u.iter().map(|&(c, _)| c)),
        ));
        // Tell each owner which of its nodes we need, for each direction.
        let mut sends: Vec<(usize, Payload)> = Vec::new();
        let mut by_owner: HashMap<usize, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for (&node, &owner) in &fwd_owner {
            by_owner.entry(owner).or_default().0.push(node as u64);
        }
        for (&node, &owner) in &bwd_owner {
            by_owner.entry(owner).or_default().1.push(node as u64);
        }
        for (owner, (fwd, bwd)) in by_owner {
            let mut buf = vec![fwd.len() as u64];
            buf.extend(fwd);
            buf.extend(bwd);
            sends.push((owner, Payload::u64s(buf)));
        }
        let mut fwd_push: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut bwd_push: HashMap<usize, Vec<usize>> = HashMap::new();
        for (peer, payload) in ctx.exchange(sends) {
            let buf = payload.into_u64();
            let nf = buf[0] as usize;
            for &v in &buf[1..1 + nf] {
                fwd_push.entry(v as usize).or_default().push(peer);
            }
            for &v in &buf[1 + nf..] {
                bwd_push.entry(v as usize).or_default().push(peer);
            }
        }
        TrisolvePlan {
            fwd_push,
            bwd_push,
            fwd_owner,
            bwd_owner,
        }
    }
}

/// Solves `L U x = b` for this rank's unknowns. `b` is in local-view order
/// (interiors first, then interfaces); so is the returned `x`.
///
/// Collective: all ranks must call with their own local data.
pub fn dist_solve(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    b: &[f64],
) -> Vec<f64> {
    let y = dist_forward(ctx, local, rf, plan, b);
    dist_backward(ctx, local, rf, plan, &y)
}

/// Forward sweep `L y = b` (unit lower triangular).
pub fn dist_forward(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    b: &[f64],
) -> Vec<f64> {
    assert_eq!(b.len(), local.len());
    let mut x = b.to_vec();
    let mut remote_x: HashMap<usize, f64> = HashMap::new();
    let mut flops = 0.0;
    // Interior phase: L columns of interior rows are earlier interiors of
    // this rank — all local, all already computed in ascending order.
    for &i in &rf.interior {
        // lint: allow(unwrap): the schedule lists only locally owned rows
        let p = local.pos_of(i).unwrap();
        let row = &rf.rows[&i];
        let mut s = x[p];
        for &(j, v) in &row.l {
            // lint: allow(unwrap): interior L columns are local by construction
            s -= v * x[local.pos_of(j).expect("interior L column must be local")];
        }
        flops += 2.0 * row.l.len() as f64;
        x[p] = s;
    }
    // Interface phase, level by level. Freshly computed values travel in
    // one batched message per peer per level.
    let mut batches: BTreeMap<usize, (Vec<u64>, Vec<f64>)> = BTreeMap::new();
    for level in &rf.levels {
        for &i in level {
            // lint: allow(unwrap): the schedule lists only locally owned rows
            let p = local.pos_of(i).unwrap();
            let row = &rf.rows[&i];
            let mut s = x[p];
            for &(j, v) in &row.l {
                let xj = match local.pos_of(j) {
                    Some(q) => x[q],
                    None => demand_remote(ctx, &mut remote_x, TAG_FWD, plan.fwd_owner[&j], j),
                };
                s -= v * xj;
            }
            flops += 2.0 * row.l.len() as f64;
            x[p] = s;
        }
        push_level(ctx, local, &x, level, &plan.fwd_push, TAG_FWD, &mut batches);
    }
    ctx.work(flops);
    x
}

/// Backward sweep `U x = y`.
pub fn dist_backward(
    ctx: &mut Ctx,
    local: &LocalView,
    rf: &RankFactors,
    plan: &TrisolvePlan,
    y: &[f64],
) -> Vec<f64> {
    assert_eq!(y.len(), local.len());
    let mut x = y.to_vec();
    let mut remote_x: HashMap<usize, f64> = HashMap::new();
    let mut flops = 0.0;
    // Interface levels in reverse order, with the same per-peer batching as
    // the forward sweep.
    let mut batches: BTreeMap<usize, (Vec<u64>, Vec<f64>)> = BTreeMap::new();
    for level in rf.levels.iter().rev() {
        for &i in level {
            // lint: allow(unwrap): the schedule lists only locally owned rows
            let p = local.pos_of(i).unwrap();
            let row = &rf.rows[&i];
            let mut s = x[p];
            for &(j, v) in &row.u {
                let xj = match local.pos_of(j) {
                    Some(q) => x[q],
                    None => demand_remote(ctx, &mut remote_x, TAG_BWD, plan.bwd_owner[&j], j),
                };
                s -= v * xj;
            }
            flops += 2.0 * row.u.len() as f64 + 1.0;
            x[p] = s / row.diag;
        }
        push_level(ctx, local, &x, level, &plan.bwd_push, TAG_BWD, &mut batches);
    }
    // Interior phase, descending elimination order; U columns of interior
    // rows are local (later interiors or own interfaces).
    for &i in rf.interior.iter().rev() {
        // lint: allow(unwrap): the schedule lists only locally owned rows
        let p = local.pos_of(i).unwrap();
        let row = &rf.rows[&i];
        let mut s = x[p];
        for &(j, v) in &row.u {
            // lint: allow(unwrap): interior U columns are local by construction
            s -= v * x[local.pos_of(j).expect("interior U column must be local")];
        }
        flops += 2.0 * row.u.len() as f64 + 1.0;
        x[p] = s / row.diag;
    }
    ctx.work(flops);
    x
}
