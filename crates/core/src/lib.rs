//! Serial and parallel threshold-based incomplete LU factorizations.
//!
//! This is the paper's primary contribution, implemented in layers:
//!
//! * [`serial`] — the classic row-wise algorithms: **ILUT(m, t)** (paper
//!   Algorithm 2.1, after Saad), the static-pattern baselines **ILU(0)** and
//!   **ILU(k)**, and the corresponding serial triangular solves;
//! * [`factors`] — the shared `L`/`U` storage (sorted sparse rows, unit
//!   lower-triangular `L`, diagonal-first `U`);
//! * [`block_factors`] — the blocked (BCSR-tile) factor storage with
//!   level-scheduled tile trisolves (single vector and `n × k` panel) fed
//!   by [`serial::block_ilut`], plus the exact scalar refinement bridging
//!   back to [`factors::LuFactors`];
//! * [`precond`] — the preconditioner interface consumed by the solver
//!   crate, with ILU and diagonal implementations;
//! * [`dist`] — the distributed matrix: a partition-driven row distribution
//!   with interior/interface node classification and a distributed SpMV;
//! * [`parallel`] — the paper's parallel **ILUT** / **ILUT\*** formulation
//!   (§4): local interior factorization, reduced interface matrices, and the
//!   iterative independent-set elimination, running on the [`pilut_par`]
//!   virtual machine;
//! * [`trisolve`] — the parallel forward/backward substitutions (§5) that
//!   make the factorization usable as a preconditioner;
//! * [`options`] — shared parameter types (`m`, `t`, the ILUT\* cap `k`),
//!   the [`options::BreakdownPolicy`] selecting what an unusable pivot does,
//!   and the typed [`options::FactorError`];
//! * [`breakdown`] — the [`breakdown::PivotDoctor`] that applies one
//!   breakdown policy identically across every kernel.

pub mod block_factors;
pub mod breakdown;
pub mod dist;
pub mod factors;
pub mod options;
pub mod parallel;
pub mod precond;
pub mod serial;
pub mod trisolve;

pub use block_factors::{BlockLuFactors, BlockTileRow};
pub use breakdown::PivotDoctor;
pub use factors::{LuFactors, SparseRow};
pub use options::{BreakdownPolicy, FactorError, IlutOptions};
pub use serial::{block_ilut, ilu0, iluk, ilut};
