//! Shared parameter and error types.

/// Parameters of the ILUT(m, t) / ILUT\*(m, t, k) factorizations.
#[derive(Clone, Debug)]
pub struct IlutOptions {
    /// Maximum number of retained off-diagonal entries per row in each of
    /// `L` and `U` (the paper's `m`).
    pub m: usize,
    /// Relative drop tolerance (the paper's `t`): entries below
    /// `t · ‖a_i‖₂` are dropped from row `i`.
    pub tau: f64,
    /// The ILUT\* reduced-matrix cap factor `k`: when `Some(k)`, each row of
    /// every interface reduced matrix keeps at most `k · m` entries (paper
    /// §4.2; the experiments use `k = 2`). `None` reproduces plain ILUT,
    /// whose reduced rows keep *every* entry above the threshold.
    pub reduced_cap_factor: Option<usize>,
    /// Luby augmentation rounds per independent-set computation (paper: 5).
    pub mis_rounds: usize,
    /// Seed for the randomised independent sets.
    pub seed: u64,
}

impl IlutOptions {
    /// Plain ILUT(m, t).
    pub fn new(m: usize, tau: f64) -> Self {
        IlutOptions {
            m,
            tau,
            reduced_cap_factor: None,
            mis_rounds: 5,
            seed: 1,
        }
    }

    /// ILUT\*(m, t, k).
    pub fn star(m: usize, tau: f64, k: usize) -> Self {
        IlutOptions {
            reduced_cap_factor: Some(k),
            ..Self::new(m, tau)
        }
    }

    /// The reduced-row capacity: `k·m` for ILUT\*, unbounded for ILUT.
    pub fn reduced_cap(&self) -> usize {
        self.reduced_cap_factor.map_or(usize::MAX, |k| k * self.m)
    }

    /// Display name, e.g. `ILUT(10,1e-4)` or `ILUT*(10,1e-4,2)`.
    pub fn name(&self) -> String {
        match self.reduced_cap_factor {
            None => format!("ILUT({},{:.0e})", self.m, self.tau),
            Some(k) => format!("ILUT*({},{:.0e},{})", self.m, self.tau, k),
        }
    }
}

/// Failure modes of the factorizations.
#[derive(Clone, Debug, PartialEq)]
pub enum FactorError {
    /// A structurally or numerically zero pivot was met at the given row
    /// (global index).
    ZeroPivot { row: usize },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::ZeroPivot { row } => write!(f, "zero pivot at row {row}"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Operation counts accumulated during a factorization; these drive the
/// simulated-machine clock in the parallel formulation and give the serial
/// baselines comparable numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FactorStats {
    /// Floating-point operations (multiply-adds count as 2).
    pub flops: f64,
    /// Entries retained in `L` (strict lower part).
    pub nnz_l: usize,
    /// Entries retained in `U` (including the diagonal).
    pub nnz_u: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(IlutOptions::new(5, 1e-2).name(), "ILUT(5,1e-2)");
        assert_eq!(IlutOptions::star(20, 1e-6, 2).name(), "ILUT*(20,1e-6,2)");
    }

    #[test]
    fn reduced_caps() {
        assert_eq!(IlutOptions::new(5, 1e-2).reduced_cap(), usize::MAX);
        assert_eq!(IlutOptions::star(5, 1e-2, 2).reduced_cap(), 10);
    }
}
