//! Shared parameter and error types.

/// What a factorization does when it meets an unusable pivot (exactly
/// zero, structurally missing, or non-finite).
///
/// Robust ILU packages treat breakdown as a recoverable condition rather
/// than a crash: BILU perturbs pivots based on inverse-norm bounds, and
/// parGeMSLR falls back when a local factorization fails. The policies
/// here are deliberately simpler but cover the same decision:
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BreakdownPolicy {
    /// Return a [`FactorError`] at the first unusable pivot — the strict,
    /// paper-faithful behaviour, and the default.
    Abort,
    /// Replace the unusable pivot with a diagonal boost scaled by the
    /// row's magnitude, escalating geometrically on repeated breakdowns
    /// within one factorization: the `k`-th repaired pivot becomes
    /// `initial · growth^k · ‖a_i‖₂` (or `initial · growth^k` for an
    /// all-zero row). Non-finite off-diagonal entries are discarded.
    Shift {
        /// First boost, relative to the row norm (e.g. `1e-8`).
        initial: f64,
        /// Geometric escalation factor per repair (e.g. `10.0`).
        growth: f64,
    },
    /// Replace the whole offending row of the factor with a scaled
    /// identity row: no `L` entries, no strict-`U` entries, diagonal
    /// `‖a_i‖₂` (or 1 for an all-zero row). Cruder than a shift but
    /// keeps the triangular solves exact no-ops for the bad row.
    ReplaceRow,
}

impl BreakdownPolicy {
    /// The shift policy with the default constants (`1e-8`, ×10).
    pub fn shift() -> Self {
        BreakdownPolicy::Shift {
            initial: 1e-8,
            growth: 10.0,
        }
    }

    /// Validates the policy's own constants.
    pub fn validate(&self) -> Result<(), FactorError> {
        if let BreakdownPolicy::Shift { initial, growth } = self {
            if !initial.is_finite() || *initial <= 0.0 {
                return Err(FactorError::InvalidOptions {
                    what: format!("shift initial boost must be positive and finite, got {initial}"),
                });
            }
            if !growth.is_finite() || *growth < 1.0 {
                return Err(FactorError::InvalidOptions {
                    what: format!("shift growth must be finite and >= 1, got {growth}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for BreakdownPolicy {
    fn default() -> Self {
        BreakdownPolicy::Abort
    }
}

/// Parameters of the ILUT(m, t) / ILUT\*(m, t, k) factorizations.
#[derive(Clone, Debug)]
pub struct IlutOptions {
    /// Maximum number of retained off-diagonal entries per row in each of
    /// `L` and `U` (the paper's `m`).
    pub m: usize,
    /// Relative drop tolerance (the paper's `t`): entries below
    /// `t · ‖a_i‖₂` are dropped from row `i`.
    pub tau: f64,
    /// The ILUT\* reduced-matrix cap factor `k`: when `Some(k)`, each row of
    /// every interface reduced matrix keeps at most `k · m` entries (paper
    /// §4.2; the experiments use `k = 2`). `None` reproduces plain ILUT,
    /// whose reduced rows keep *every* entry above the threshold.
    pub reduced_cap_factor: Option<usize>,
    /// Luby augmentation rounds per independent-set computation (paper: 5).
    pub mis_rounds: usize,
    /// Seed for the randomised independent sets.
    pub seed: u64,
    /// What to do when a pivot is unusable (see [`BreakdownPolicy`]).
    pub breakdown: BreakdownPolicy,
}

impl IlutOptions {
    /// Plain ILUT(m, t).
    pub fn new(m: usize, tau: f64) -> Self {
        IlutOptions {
            m,
            tau,
            reduced_cap_factor: None,
            mis_rounds: 5,
            seed: 1,
            breakdown: BreakdownPolicy::Abort,
        }
    }

    /// The same options with a different breakdown policy.
    pub fn with_breakdown(mut self, policy: BreakdownPolicy) -> Self {
        self.breakdown = policy;
        self
    }

    /// Checks the options for values that cannot drive a factorization;
    /// called by every kernel entry point so bad user input surfaces as a
    /// typed error instead of a panic deep in the elimination.
    pub fn validate(&self) -> Result<(), FactorError> {
        if self.m == 0 {
            return Err(FactorError::InvalidOptions {
                what: "fill cap m must be at least 1".into(),
            });
        }
        if !self.tau.is_finite() || self.tau < 0.0 {
            return Err(FactorError::InvalidOptions {
                what: format!(
                    "drop tolerance tau must be finite and >= 0, got {}",
                    self.tau
                ),
            });
        }
        if self.reduced_cap_factor == Some(0) {
            return Err(FactorError::InvalidOptions {
                what: "reduced cap factor k must be at least 1".into(),
            });
        }
        if self.mis_rounds == 0 {
            return Err(FactorError::InvalidOptions {
                what: "mis_rounds must be at least 1".into(),
            });
        }
        self.breakdown.validate()
    }

    /// ILUT\*(m, t, k).
    pub fn star(m: usize, tau: f64, k: usize) -> Self {
        IlutOptions {
            reduced_cap_factor: Some(k),
            ..Self::new(m, tau)
        }
    }

    /// The reduced-row capacity: `k·m` for ILUT\*, unbounded for ILUT.
    pub fn reduced_cap(&self) -> usize {
        self.reduced_cap_factor.map_or(usize::MAX, |k| k * self.m)
    }

    /// Display name, e.g. `ILUT(10,1e-4)` or `ILUT*(10,1e-4,2)`.
    pub fn name(&self) -> String {
        match self.reduced_cap_factor {
            None => format!("ILUT({},{:.0e})", self.m, self.tau),
            Some(k) => format!("ILUT*({},{:.0e},{})", self.m, self.tau, k),
        }
    }
}

/// Failure modes of the factorizations (and of preconditioner setup built
/// on them).
#[derive(Clone, Debug, PartialEq)]
pub enum FactorError {
    /// A numerically zero pivot was met at the given row (global index):
    /// the diagonal position exists (or filled in) but carries exactly 0.
    ZeroPivot {
        /// Global row index of the unusable pivot.
        row: usize,
    },
    /// A NaN or infinity appeared in the given row during elimination —
    /// usually the downstream echo of an earlier near-breakdown.
    NonFinite {
        /// Global row index where the non-finite value was found.
        row: usize,
    },
    /// The row has no diagonal entry and elimination created no fill on
    /// it: the pattern itself cannot support an LU factor.
    StructurallySingular {
        /// Global row index with the structurally missing diagonal.
        row: usize,
    },
    /// A distributed factorization failed on the given rank (the wrapped
    /// per-row error is reported by that rank; peers see the rank id).
    RankFailure {
        /// Rank whose local factorization failed.
        rank: usize,
    },
    /// The options themselves cannot drive a factorization.
    InvalidOptions {
        /// Human-readable description of the rejected value.
        what: String,
    },
    /// A framed wire message failed to decode: the payload violates the
    /// protocol's framing invariants (an out-of-range index or an unknown
    /// state code). Corrupted traffic — e.g. a chaos-injected duplicate
    /// consumed as a later round's frame — surfaces here as a structured
    /// error instead of an index panic inside the decoder.
    Protocol {
        /// Name of the protocol tag the malformed frame arrived under.
        tag: &'static str,
        /// What the decoder rejected.
        what: String,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::ZeroPivot { row } => write!(f, "zero pivot at row {row}"),
            FactorError::NonFinite { row } => {
                write!(f, "non-finite value in row {row} during elimination")
            }
            FactorError::StructurallySingular { row } => {
                write!(f, "structurally singular: row {row} has no usable diagonal")
            }
            FactorError::RankFailure { rank } => {
                write!(f, "local factorization failed on rank {rank}")
            }
            FactorError::InvalidOptions { what } => write!(f, "invalid options: {what}"),
            FactorError::Protocol { tag, what } => {
                write!(f, "protocol error on {tag}: {what}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Operation counts accumulated during a factorization; these drive the
/// simulated-machine clock in the parallel formulation and give the serial
/// baselines comparable numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FactorStats {
    /// Floating-point operations (multiply-adds count as 2).
    pub flops: f64,
    /// Entries retained in `L` (strict lower part).
    pub nnz_l: usize,
    /// Entries retained in `U` (including the diagonal).
    pub nnz_u: usize,
    /// Rows whose pivot (or contents) the [`BreakdownPolicy`] repaired;
    /// always 0 under [`BreakdownPolicy::Abort`].
    pub breakdowns_repaired: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(IlutOptions::new(5, 1e-2).name(), "ILUT(5,1e-2)");
        assert_eq!(IlutOptions::star(20, 1e-6, 2).name(), "ILUT*(20,1e-6,2)");
    }

    #[test]
    fn reduced_caps() {
        assert_eq!(IlutOptions::new(5, 1e-2).reduced_cap(), usize::MAX);
        assert_eq!(IlutOptions::star(5, 1e-2, 2).reduced_cap(), 10);
    }
}
