//! Storage and level-scheduled triangular sweeps for blocked (BCSR-style)
//! incomplete LU factors.
//!
//! The blocked analog of [`crate::factors::LuFactors`]: factors are stored
//! as block rows of dense `b × b` tiles. Conventions:
//!
//! * `l[I]` holds the **strict** block-lower tiles of block row `I` — the
//!   multiplier tiles `M = W_K · U_KK⁻¹`; the identity diagonal tile of
//!   `L` is implicit;
//! * `u[I]` holds the **strict** block-upper tiles;
//! * the diagonal tile of block row `I` is kept factored (Doolittle `L\U`
//!   packed, no pivoting — see `pilut_sparse::tile::lu_factor`) so both
//!   the elimination's tile-inverse application and the backward sweep
//!   reuse it directly.
//!
//! Rows past `n` in the last block row (when `n % b != 0`) are padding:
//! their diagonal-tile lanes carry 1.0 and nothing couples them, so they
//! solve to whatever the padded right-hand side holds (zeros) and never
//! perturb real lanes.
//!
//! The sweeps are *level-scheduled*: block rows are grouped into dependency
//! levels (a row's level is one past the deepest level it reads), and each
//! sweep walks the levels in order. Rows inside one level are independent,
//! which is what lets the tile sweep take an `n × k` right-hand-side panel
//! through the same schedule — and what a parallel backend would exploit.
//! Because each block row's own update order is unchanged, the sweep result
//! is bitwise-identical to the plain sequential order.

use crate::factors::{LuFactors, SparseRow};
use pilut_sparse::tile;

/// One block row of tiles: ascending block-column indices with the matching
/// concatenated row-major `b²`-slot tiles.
#[derive(Clone, Debug, Default)]
pub struct BlockTileRow {
    /// Block-column indices, strictly ascending.
    pub cols: Vec<usize>,
    /// Tile `t` occupies `tiles[t·b² .. (t+1)·b²]`.
    pub tiles: Vec<f64>,
}

impl BlockTileRow {
    /// Number of stored tiles.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the block row stores no tiles.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// A blocked incomplete LU factorization with dense `b × b` tiles and
/// level-scheduled triangular sweeps.
///
/// `L` and `U` are stored as single contiguous arenas (CSR-style row
/// pointers over flat column/tile arrays) rather than per-row `Vec`s: the
/// triangular sweeps stream every stored tile exactly once, and one arena
/// keeps that stream prefetcher-friendly instead of hopping between
/// per-row heap allocations. Builders still assemble [`BlockTileRow`]s;
/// [`BlockLuFactors::from_parts`] flattens them.
#[derive(Clone, Debug)]
pub struct BlockLuFactors {
    n: usize,
    b: usize,
    n_brows: usize,
    /// Row pointer into `l_cols` (`n_brows + 1` entries).
    l_ptr: Vec<usize>,
    /// Strict block-lower block-column indices, ascending per row.
    l_cols: Vec<usize>,
    /// Tile `t` of the arena occupies `l_tiles[t·b² .. (t+1)·b²]`.
    l_tiles: Vec<f64>,
    /// Row pointer into `u_cols` (`n_brows + 1` entries).
    u_ptr: Vec<usize>,
    /// Strict block-upper block-column indices, ascending per row.
    u_cols: Vec<usize>,
    /// Concatenated strict-upper tiles, parallel to `u_cols`.
    u_tiles: Vec<f64>,
    /// Factored diagonal tiles, `L\U`-packed, `n_brows · b²` slots.
    diag_lu: Vec<f64>,
    /// Forward-sweep schedule: block rows grouped by dependency level.
    lower_levels: Vec<Vec<usize>>,
    /// Backward-sweep schedule.
    upper_levels: Vec<Vec<usize>>,
}

fn levels_of<F: Fn(usize) -> Vec<usize>>(n: usize, reversed: bool, deps: F) -> Vec<Vec<usize>> {
    let mut lev = vec![0usize; n];
    let order: Box<dyn Iterator<Item = usize>> = if reversed {
        Box::new((0..n).rev())
    } else {
        Box::new(0..n)
    };
    let mut max_lev = 0usize;
    for i in order {
        let li = deps(i).into_iter().map(|j| lev[j] + 1).max().unwrap_or(0);
        lev[i] = li;
        max_lev = max_lev.max(li);
    }
    let mut groups = vec![Vec::new(); max_lev + 1];
    for i in 0..n {
        groups[lev[i]].push(i);
    }
    groups
}

impl BlockLuFactors {
    /// Assembles factors from parts and computes the level schedules.
    ///
    /// `diag_lu` must hold `⌈n/b⌉` already-factored (`L\U`-packed) diagonal
    /// tiles with padding lanes set to 1.0.
    pub fn from_parts(
        n: usize,
        b: usize,
        l: Vec<BlockTileRow>,
        u: Vec<BlockTileRow>,
        diag_lu: Vec<f64>,
    ) -> Self {
        let n_brows = n.div_ceil(b);
        assert_eq!(l.len(), n_brows);
        assert_eq!(u.len(), n_brows);
        assert_eq!(diag_lu.len(), n_brows * b * b);
        let lower_levels = levels_of(n_brows, false, |i| l[i].cols.clone());
        let upper_levels = levels_of(n_brows, true, |i| u[i].cols.clone());
        let flatten = |rows: Vec<BlockTileRow>| {
            let mut ptr = Vec::with_capacity(n_brows + 1);
            let mut cols = Vec::new();
            let mut tiles = Vec::new();
            ptr.push(0);
            for row in rows {
                assert_eq!(row.tiles.len(), row.cols.len() * b * b);
                cols.extend_from_slice(&row.cols);
                tiles.extend_from_slice(&row.tiles);
                ptr.push(cols.len());
            }
            (ptr, cols, tiles)
        };
        let (l_ptr, l_cols, l_tiles) = flatten(l);
        let (u_ptr, u_cols, u_tiles) = flatten(u);
        BlockLuFactors {
            n,
            b,
            n_brows,
            l_ptr,
            l_cols,
            l_tiles,
            u_ptr,
            u_cols,
            u_tiles,
            diag_lu,
            lower_levels,
            upper_levels,
        }
    }

    /// Block row `bi` of `L`: `(block columns, concatenated tiles)`.
    pub fn l_row(&self, bi: usize) -> (&[usize], &[f64]) {
        let bb = self.b * self.b;
        let (s, e) = (self.l_ptr[bi], self.l_ptr[bi + 1]);
        (&self.l_cols[s..e], &self.l_tiles[s * bb..e * bb])
    }

    /// Block row `bi` of `U`: `(block columns, concatenated tiles)`.
    pub fn u_row(&self, bi: usize) -> (&[usize], &[f64]) {
        let bb = self.b * self.b;
        let (s, e) = (self.u_ptr[bi], self.u_ptr[bi + 1]);
        (&self.u_cols[s..e], &self.u_tiles[s * bb..e * bb])
    }

    /// Scalar dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile dimension `b`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Number of block rows (`⌈n/b⌉`).
    pub fn n_brows(&self) -> usize {
        self.n_brows
    }

    /// The factored (`L\U`-packed) diagonal tile of block row `bi`.
    pub fn diag_lu_tile(&self, bi: usize) -> &[f64] {
        let bb = self.b * self.b;
        &self.diag_lu[bi * bb..(bi + 1) * bb]
    }

    /// Stored tiles across `L`, `U`, and the diagonal.
    pub fn nnz_tiles(&self) -> usize {
        self.l_cols.len() + self.u_cols.len() + self.n_brows
    }

    /// Dense slots the tile sweeps actually process (`nnz_tiles · b²`) —
    /// the blocked counterpart of `LuFactors::nnz` for throughput
    /// accounting.
    pub fn stored_entries(&self) -> usize {
        self.nnz_tiles() * self.b * self.b
    }

    /// Number of dependency levels in the (forward, backward) schedules.
    pub fn level_counts(&self) -> (usize, usize) {
        (self.lower_levels.len(), self.upper_levels.len())
    }

    /// Validates the structural conventions; used by tests.
    pub fn check_structure(&self) -> Result<(), String> {
        let b = self.b;
        for bi in 0..self.n_brows {
            let (lcols, _) = self.l_row(bi);
            for &c in lcols {
                if c >= bi {
                    return Err(format!("L block row {bi} has block col {c} >= diagonal"));
                }
            }
            if !lcols.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("L block row {bi} cols not ascending"));
            }
            let (ucols, _) = self.u_row(bi);
            for &c in ucols {
                if c <= bi {
                    return Err(format!("U block row {bi} has block col {c} <= diagonal"));
                }
            }
            if !ucols.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("U block row {bi} cols not ascending"));
            }
            let dlu = self.diag_lu_tile(bi);
            for r in 0..b {
                let d = dlu[r * b + r];
                // lint: allow(float-eq): exact zero-pivot test
                if !d.is_finite() || d == 0.0 {
                    return Err(format!("block row {bi} lane {r} has unusable pivot {d}"));
                }
            }
        }
        Ok(())
    }

    /// Solves `L y = b` (unit block-diagonal) over a padded buffer of
    /// `n_brows · b` lanes, level by level.
    pub fn forward_solve_padded(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n_brows * self.b);
        // Hoist the block-size dispatch out of the per-tile loop: the sweep
        // bodies monomorphize on `B`, so the 4×4 tile update is sixteen
        // unrolled fused ops with the accumulator in registers instead of a
        // runtime-`b` loop nest per tile. Arithmetic order is unchanged, so
        // every specialization is bitwise the generic sweep.
        match self.b {
            1 => forward_sweep::<1>(self, x),
            2 => forward_sweep::<2>(self, x),
            3 => forward_sweep::<3>(self, x),
            4 => forward_sweep::<4>(self, x),
            b => unreachable!("block size {b} exceeds MAX_BLOCK"),
        }
    }

    /// Solves `U x = y` over a padded buffer of `n_brows · b` lanes, level
    /// by level, applying each diagonal tile's small LU.
    pub fn backward_solve_padded(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n_brows * self.b);
        match self.b {
            1 => backward_sweep::<1>(self, x),
            2 => backward_sweep::<2>(self, x),
            3 => backward_sweep::<3>(self, x),
            4 => backward_sweep::<4>(self, x),
            b => unreachable!("block size {b} exceeds MAX_BLOCK"),
        }
    }

    /// Applies `(LU)⁻¹ r` — the preconditioner action. Bitwise-identical to
    /// `LuFactors::solve` at block size 1.
    pub fn solve(&self, r: &[f64]) -> Vec<f64> {
        assert_eq!(r.len(), self.n);
        let mut x = vec![0.0; self.n_brows * self.b];
        x[..self.n].copy_from_slice(r);
        self.forward_solve_padded(&mut x);
        self.backward_solve_padded(&mut x);
        x.truncate(self.n);
        x
    }

    /// Applies `(LU)⁻¹` to an `n × k` right-hand-side panel stored row-major
    /// (`rhs[i·k + c]` = row `i`, right-hand side `c`), amortising every
    /// tile load over `k` solves. Column `c` of the result is
    /// bitwise-identical to `solve` of column `c` alone.
    pub fn solve_panel(&self, rhs: &[f64], k: usize) -> Vec<f64> {
        assert!(k >= 1, "panel width must be at least 1");
        assert_eq!(rhs.len(), self.n * k);
        let mut x = vec![0.0; self.n_brows * self.b * k];
        x[..self.n * k].copy_from_slice(rhs);
        match self.b {
            1 => panel_sweeps::<1>(self, k, &mut x),
            2 => panel_sweeps::<2>(self, k, &mut x),
            3 => panel_sweeps::<3>(self, k, &mut x),
            4 => panel_sweeps::<4>(self, k, &mut x),
            b => unreachable!("block size {b} exceeds MAX_BLOCK"),
        }
        x.truncate(self.n * k);
        x
    }

    /// Applies `(LU)⁻¹ r` into a caller-owned padded buffer — the
    /// zero-allocation steady-state form of [`BlockLuFactors::solve`].
    /// `x` must hold `n_brows · b` lanes (use [`BlockLuFactors::padded_len`]
    /// to size it once); on return the first `n` lanes are the solution and
    /// the padding lanes are zero.
    pub fn solve_into(&self, r: &[f64], x: &mut [f64]) {
        let _audit = pilut_allocaudit::region("trisolve_replay");
        assert_eq!(r.len(), self.n);
        assert_eq!(x.len(), self.n_brows * self.b);
        x[..self.n].copy_from_slice(r);
        x[self.n..].fill(0.0);
        self.forward_solve_padded(x);
        self.backward_solve_padded(x);
    }

    /// Applies `(LU)⁻¹` to an `n × k` panel into a caller-owned padded
    /// buffer of `n_brows · b · k` lanes — the zero-allocation form of
    /// [`BlockLuFactors::solve_panel`]. Column `c` of the result is
    /// bitwise-identical to `solve_into` of column `c` alone.
    pub fn solve_panel_into(&self, rhs: &[f64], k: usize, x: &mut [f64]) {
        let _audit = pilut_allocaudit::region("trisolve_replay");
        assert!(k >= 1, "panel width must be at least 1");
        assert_eq!(rhs.len(), self.n * k);
        assert_eq!(x.len(), self.n_brows * self.b * k);
        x[..self.n * k].copy_from_slice(rhs);
        x[self.n * k..].fill(0.0);
        match self.b {
            1 => panel_sweeps::<1>(self, k, x),
            2 => panel_sweeps::<2>(self, k, x),
            3 => panel_sweeps::<3>(self, k, x),
            4 => panel_sweeps::<4>(self, k, x),
            b => unreachable!("block size {b} exceeds MAX_BLOCK"),
        }
    }

    /// Lanes of the padded solve buffer ([`BlockLuFactors::solve_into`]
    /// scratch): `n_brows · b`.
    pub fn padded_len(&self) -> usize {
        self.n_brows * self.b
    }

    /// The scalar refinement of the blocked factors: a [`LuFactors`] whose
    /// product equals the blocked `L·U` exactly.
    ///
    /// With each diagonal tile `D = L_d U_d` (unit-lower/upper, as stored),
    /// the scalar factors are `L_s = (I + M)·diag(L_d)` and
    /// `U_s = diag(U_d) + diag(L_d)⁻¹·V` — so off-diagonal `L` tiles become
    /// `M·L_d` and off-diagonal `U` tiles `L_d⁻¹·V`, while the in-block
    /// entries come straight from the packed tile LU. At `b = 1` both
    /// corrections are identities and the conversion is a bitwise copy.
    /// Exact zeros (tile padding) are skipped, as are padding lanes.
    pub fn to_lu_factors(&self) -> LuFactors {
        let b = self.b;
        let bb = b * b;
        let mut l: Vec<SparseRow> = Vec::with_capacity(self.n);
        let mut u: Vec<SparseRow> = Vec::with_capacity(self.n);
        let mut mod_tile = vec![0.0f64; bb];
        for bi in 0..self.n_brows {
            let rows = (self.n - bi * b).min(b);
            let dlu_i = self.diag_lu_tile(bi);
            // Per-scalar-row assembly buffers for this block row.
            let mut lc: Vec<Vec<usize>> = vec![Vec::new(); rows];
            let mut lv: Vec<Vec<f64>> = vec![Vec::new(); rows];
            let mut uc: Vec<Vec<usize>> = vec![Vec::new(); rows];
            let mut uv: Vec<Vec<f64>> = vec![Vec::new(); rows];
            // Strict block-lower tiles, corrected to M·L_d(J).
            let (lcols, ltiles) = self.l_row(bi);
            for (m, &bj) in ltiles.chunks_exact(bb).zip(lcols) {
                let dlu_j = self.diag_lu_tile(bj);
                // mod = M · L_d(J): unit-lower L_d packed below dlu_j's diagonal.
                for r in 0..b {
                    for c in 0..b {
                        let mut s = m[r * b + c];
                        for q in c + 1..b {
                            s += m[r * b + q] * dlu_j[q * b + c];
                        }
                        mod_tile[r * b + c] = s;
                    }
                }
                for (r, (cols, vals)) in lc.iter_mut().zip(lv.iter_mut()).enumerate() {
                    for c in 0..b {
                        let col = bj * b + c;
                        let v = mod_tile[r * b + c];
                        // lint: allow(float-eq): padding slots are exact zeros
                        if col < self.n && v != 0.0 {
                            cols.push(col);
                            vals.push(v);
                        }
                    }
                }
            }
            // In-block entries from the packed diagonal LU.
            for r in 0..rows {
                for c in 0..r {
                    let v = dlu_i[r * b + c];
                    // lint: allow(float-eq): skip exact zeros
                    if v != 0.0 {
                        lc[r].push(bi * b + c);
                        lv[r].push(v);
                    }
                }
                uc[r].push(bi * b + r);
                uv[r].push(dlu_i[r * b + r]);
                for c in r + 1..rows {
                    let v = dlu_i[r * b + c];
                    // lint: allow(float-eq): skip exact zeros
                    if v != 0.0 {
                        uc[r].push(bi * b + c);
                        uv[r].push(v);
                    }
                }
            }
            // Strict block-upper tiles, corrected to L_d(I)⁻¹·V.
            let (ucols, utiles) = self.u_row(bi);
            for (v, &bj) in utiles.chunks_exact(bb).zip(ucols) {
                // mod = L_d(I)⁻¹ · V, column by column (forward substitution).
                for c in 0..b {
                    for r in 0..b {
                        let mut s = v[r * b + c];
                        for q in 0..r {
                            s -= dlu_i[r * b + q] * mod_tile[q * b + c];
                        }
                        mod_tile[r * b + c] = s;
                    }
                }
                for (r, (cols, vals)) in uc.iter_mut().zip(uv.iter_mut()).enumerate() {
                    for c in 0..b {
                        let col = bj * b + c;
                        let val = mod_tile[r * b + c];
                        // lint: allow(float-eq): padding slots are exact zeros
                        if col < self.n && val != 0.0 {
                            cols.push(col);
                            vals.push(val);
                        }
                    }
                }
            }
            for r in 0..rows {
                l.push(SparseRow::new(
                    std::mem::take(&mut lc[r]),
                    std::mem::take(&mut lv[r]),
                ));
                u.push(SparseRow::new(
                    std::mem::take(&mut uc[r]),
                    std::mem::take(&mut uv[r]),
                ));
            }
        }
        LuFactors { n: self.n, l, u }
    }
}

// Monomorphized sweep bodies behind the `forward_solve_padded` /
// `backward_solve_padded` / `solve_panel` dispatch: with `B` a compile-time
// constant the tile loops fully unroll and the accumulator lives in
// registers. Loop order is exactly the generic `tile::matvec_sub` /
// `tile::panel_sub` order, so every specialization — including `B = 1`,
// the scalar-parity anchor — is bitwise the dynamic sweep it replaces.

fn forward_sweep<const B: usize>(f: &BlockLuFactors, x: &mut [f64]) {
    for level in &f.lower_levels {
        for &bi in level {
            let (s, e) = (f.l_ptr[bi], f.l_ptr[bi + 1]);
            if s == e {
                continue;
            }
            let cols = &f.l_cols[s..e];
            let tiles = &f.l_tiles[s * B * B..e * B * B];
            let mut acc = [0.0f64; B];
            acc.copy_from_slice(&x[bi * B..bi * B + B]);
            for (t, &bj) in tiles.chunks_exact(B * B).zip(cols) {
                let xj = &x[bj * B..bj * B + B];
                for i in 0..B {
                    let mut s = acc[i];
                    for j in 0..B {
                        s -= t[i * B + j] * xj[j];
                    }
                    acc[i] = s;
                }
            }
            x[bi * B..bi * B + B].copy_from_slice(&acc);
        }
    }
}

fn backward_sweep<const B: usize>(f: &BlockLuFactors, x: &mut [f64]) {
    for level in &f.upper_levels {
        for &bi in level {
            let (s, e) = (f.u_ptr[bi], f.u_ptr[bi + 1]);
            let cols = &f.u_cols[s..e];
            let tiles = &f.u_tiles[s * B * B..e * B * B];
            let mut acc = [0.0f64; B];
            acc.copy_from_slice(&x[bi * B..bi * B + B]);
            for (t, &bj) in tiles.chunks_exact(B * B).zip(cols) {
                let xj = &x[bj * B..bj * B + B];
                for i in 0..B {
                    let mut s = acc[i];
                    for j in 0..B {
                        s -= t[i * B + j] * xj[j];
                    }
                    acc[i] = s;
                }
            }
            tile::lu_solve_vec(B, &f.diag_lu[bi * B * B..(bi + 1) * B * B], &mut acc);
            x[bi * B..bi * B + B].copy_from_slice(&acc);
        }
    }
}

fn panel_sweeps<const B: usize>(f: &BlockLuFactors, k: usize, x: &mut [f64]) {
    // The accumulator stages one block-row of the panel (`B·k` lanes).
    // Stack space for every realistic panel width keeps the sweep off the
    // heap in the steady state; only panels wider than `PANEL_ACC_LANES / B`
    // right-hand sides fall back to an allocation.
    const PANEL_ACC_LANES: usize = 256;
    let mut stack_acc = [0.0f64; PANEL_ACC_LANES];
    let mut heap_acc: Vec<f64>;
    let acc: &mut [f64] = if B * k <= PANEL_ACC_LANES {
        &mut stack_acc[..B * k]
    } else {
        heap_acc = vec![0.0f64; B * k];
        &mut heap_acc
    };
    for level in &f.lower_levels {
        for &bi in level {
            let (s, e) = (f.l_ptr[bi], f.l_ptr[bi + 1]);
            if s == e {
                continue;
            }
            let cols = &f.l_cols[s..e];
            let tiles = &f.l_tiles[s * B * B..e * B * B];
            acc.copy_from_slice(&x[bi * B * k..(bi + 1) * B * k]);
            for (t, &bj) in tiles.chunks_exact(B * B).zip(cols) {
                let xj = &x[bj * B * k..(bj + 1) * B * k];
                for i in 0..B {
                    for j in 0..B {
                        let aij = t[i * B + j];
                        let (yrow, xrow) = (i * k, j * k);
                        for c in 0..k {
                            acc[yrow + c] -= aij * xj[xrow + c];
                        }
                    }
                }
            }
            x[bi * B * k..(bi + 1) * B * k].copy_from_slice(&acc);
        }
    }
    for level in &f.upper_levels {
        for &bi in level {
            let (s, e) = (f.u_ptr[bi], f.u_ptr[bi + 1]);
            let cols = &f.u_cols[s..e];
            let tiles = &f.u_tiles[s * B * B..e * B * B];
            acc.copy_from_slice(&x[bi * B * k..(bi + 1) * B * k]);
            for (t, &bj) in tiles.chunks_exact(B * B).zip(cols) {
                let xj = &x[bj * B * k..(bj + 1) * B * k];
                for i in 0..B {
                    for j in 0..B {
                        let aij = t[i * B + j];
                        let (yrow, xrow) = (i * k, j * k);
                        for c in 0..k {
                            acc[yrow + c] -= aij * xj[xrow + c];
                        }
                    }
                }
            }
            tile::lu_solve_panel(B, k, f.diag_lu_tile(bi), acc);
            x[bi * B * k..(bi + 1) * B * k].copy_from_slice(&acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Factors with b=2, n=3 (ragged): A = blocked LU of a small known
    /// matrix, exercised through solve and the scalar refinement.
    fn tiny() -> BlockLuFactors {
        // Block row 0 (rows 0-1): diag tile [[4,1],[2,5]], U tile to block 1
        // with only column 2 real. Block row 1 (row 2 + padding): L tile,
        // diag [[3,0],[0,1]] (padding lane 1).
        let d0 = {
            let mut t = [4.0, 1.0, 2.0, 5.0];
            tile::lu_factor(2, &mut t).expect("nonsingular");
            t
        };
        let d1 = {
            let mut t = [3.0, 0.0, 0.0, 1.0];
            tile::lu_factor(2, &mut t).expect("nonsingular");
            t
        };
        BlockLuFactors::from_parts(
            3,
            2,
            vec![
                BlockTileRow::default(),
                BlockTileRow {
                    cols: vec![0],
                    tiles: vec![0.5, -0.25, 0.0, 0.0],
                },
            ],
            vec![
                BlockTileRow {
                    cols: vec![1],
                    tiles: vec![1.0, 0.0, -1.0, 0.0],
                },
                BlockTileRow::default(),
            ],
            [d0, d1].concat(),
        )
    }

    #[test]
    fn structure_and_levels() {
        let f = tiny();
        f.check_structure().expect("valid structure");
        let (fl, ul) = f.level_counts();
        assert_eq!(fl, 2, "block row 1 depends on 0");
        assert_eq!(ul, 2, "block row 0 depends on 1 in the backward sweep");
    }

    #[test]
    fn solve_matches_scalar_refinement() {
        let f = tiny();
        let s = f.to_lu_factors();
        s.check_structure()
            .expect("refinement is a valid LuFactors");
        let r = vec![1.0, -2.0, 3.0];
        let got = f.solve(&r);
        let want = s.solve(&r);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn panel_columns_match_single_solves_bitwise() {
        let f = tiny();
        let k = 3;
        let rhs: Vec<f64> = (0..f.n() * k).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let panel = f.solve_panel(&rhs, k);
        for c in 0..k {
            let col: Vec<f64> = (0..f.n()).map(|i| rhs[i * k + c]).collect();
            let single = f.solve(&col);
            for i in 0..f.n() {
                assert_eq!(panel[i * k + c], single[i], "panel col {c} row {i}");
            }
        }
    }
}
