//! Distributed modified-Luby maximal independent sets (paper §4.1), run
//! on a **delta protocol**.
//!
//! Each rank owns the remaining rows of the current reduced matrix. The
//! dependency graph is *directed* (row `i` → column `j`) and structurally
//! unsymmetric, so the paper's two-step insertion applies: tentative winners
//! (random key beats every candidate out-neighbour) are confirmed only if
//! none of their out-neighbours is also tentative. Of any conflicting pair
//! the arc's source loses, so the confirmed set is independent and at least
//! the maximum-key tentative vertex always survives — each round makes
//! progress.
//!
//! Communication per level: one **setup** collective builds the level's
//! [`CommPlan`] (the paper's "communication setup phase" — every rank learns
//! which peers reference each of its nodes), then per Luby round three
//! replays along the fixed plan. Every frame is *index-addressed* against
//! the node lists both sides agreed on at plan time — no node ids, no keys
//! on the wire — and every round's byte count is recorded **exactly** in
//! the planned-traffic ledger before a byte ships
//! ([`CommPlan::replay_exact_tagged`]), so `bench-verify --slack 0` gates
//! the diet:
//!
//! 1. **`MIS_KEYS` — state deltas** (owner → referencing ranks): one word
//!    `(idx << 2) | state` per owned node whose state changed since the
//!    previous ship. A node's state changes at most once after candidacy
//!    (`CAND → IN` or `CAND → OUT`, then never again), so each node ships
//!    at most one delta per level instead of a `(node, key, state)` triple
//!    every round. Round 0 establishes the baseline: both sides assume
//!    every scheduled node is a candidate and the round ships only the
//!    exceptions (normally none — see the invariants below). Random keys
//!    are *recomputed* from `(seed, level, round, node)` on both sides via
//!    [`mis_key`] and never travel.
//! 2. **`MIS_TENT` — tentative winners** (owner → referencing ranks): one
//!    index word per tentative node.
//! 3. **`MIS_CONF` — confirmations + kills** (symmetric, folded where the
//!    plan directions coincide): one word `(idx << 1) | kind` per event.
//!    Confirmations flow owner → referencer and index the *sender's* send
//!    list; kills flow referencer → owner and index the sender's receive
//!    list (the mirror of the receiver's send list). A pair linked in both
//!    directions exchanges one message carrying both kinds.
//!
//! Per-round invariants — what each round may assume about peer state:
//!
//! * **Entry (baseline):** every node of the level's reduced system starts
//!   `CAND`, because Algorithm 4.2's elimination removes every selected
//!   column from the surviving reduced rows; referenced-but-decided nodes
//!   are the exception the baseline round ships (`OUT`).
//! * **Before the tentative step of round `r`:** each rank's view of its
//!   referenced remote nodes reflects *all* transitions up to the end of
//!   round `r − 1` (confirmations arrived in round `r − 1`'s `MIS_CONF`;
//!   every kill — including the end-of-round member-adjacency sweep —
//!   arrived in round `r`'s opening delta). This is the same information
//!   timing as a full-state push, so the chosen set is bit-identical to
//!   [`dist_mis_reference`] and independent of the rank count.
//! * **After `MIS_CONF` of round `r`:** membership (`IN`) is globally
//!   consistent — owners mark shipped confirmations so they never re-ship
//!   as deltas, and a receiver may treat a remote `IN` as final (states
//!   never leave `IN`/`OUT`).
//! * **Staleness is one-sided:** a peer may still see `CAND` for a node
//!   already killed this round; that only suppresses tentatives
//!   conservatively and is resolved by the next opening delta.
//! * **Dead links go silent:** once every node of a pair's agreed list is
//!   decided *in the shared shipped-state view* (which owner and
//!   referencer update in lockstep), no word can ever flow on that link
//!   again — deltas need a state change, tentatives/confirmations/kills
//!   need a candidate — so both endpoints skip its messages outright
//!   ([`CommPlan::replay_exact_sparse_tagged`]). Late rounds of a level,
//!   where most nodes are decided, collapse to near-zero messages.
//!
//! Malformed frames (an out-of-range index, an unknown state code — e.g. a
//! chaos-injected duplicate consumed as a later round's frame) surface as
//! structured [`FactorError::Protocol`] errors from the decoder, not index
//! panics. The paper truncates at five rounds; leftovers stay candidates
//! for the next level.

use crate::dist::exchange::{tags, CommPlan};
use crate::dist::Distribution;
use crate::options::FactorError;
use pilut_par::{Ctx, Payload};
use std::collections::{HashMap, HashSet};

/// Result of one distributed MIS computation.
pub struct MisOutcome {
    /// My nodes selected into `I_l`, ascending.
    pub my_in: Vec<usize>,
    /// Referenced remote nodes that entered `I_l`.
    pub remote_in: Vec<usize>,
}

const CAND: u64 = 0;
const IN: u64 = 1;
const OUT: u64 = 2;

/// `MIS_CONF` event kinds (low bit of each frame word): a confirmation
/// indexes the sender's send list; a kill indexes the sender's receive
/// list.
const CONF_EV: u64 = 0;
const KILL_EV: u64 = 1;

/// SplitMix64 — the per-(seed, level, round, node) random key. Owners and
/// referencing ranks recompute it independently from the shared arguments;
/// the delta protocol never puts a key on the wire.
pub fn mis_key(seed: u64, level: u64, round: u64, node: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(level.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(round.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(node.wrapping_mul(0xD6E8FEB86659FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Collectively builds the level's communication plan from the current
/// reduced rows (`node → sorted columns`, all rows owned by this rank).
/// The send side lists my nodes each peer's rows reference; the receive
/// side lists the remote nodes my rows reference. The factorizations reuse
/// the same plan to route freshly factored `U` rows after the set is known.
pub fn build_level_links(
    ctx: &mut Ctx,
    dist: &Distribution,
    reduced_cols: &HashMap<usize, Vec<usize>>,
) -> CommPlan {
    let me = ctx.rank();
    let needed = reduced_cols
        .values()
        .flat_map(|cols| cols.iter().copied())
        .filter(|&j| dist.owner(j) != me);
    CommPlan::build(ctx, tags::MIS_KEYS, needed, |j| dist.owner(j))
}

/// Splits one `MIS_KEYS` delta word into `(index, state)`, validating the
/// state code and the index range against the pair's agreed node list.
fn decode_delta(word: u64, n_nodes: usize) -> Result<(usize, u64), String> {
    let idx = (word >> 2) as usize;
    let s = word & 0b11;
    if s != IN && s != OUT {
        return Err(format!("delta word {word:#x} carries state code {s}"));
    }
    if idx >= n_nodes {
        return Err(format!(
            "delta word {word:#x} indexes node {idx} of a {n_nodes}-node schedule"
        ));
    }
    Ok((idx, s))
}

/// Records the first decode failure of a round; later frames of a round
/// already known corrupt are ignored (the replay still drains every peer
/// so the wire stays aligned for the error return).
fn note_err(slot: &mut Option<FactorError>, tag: &'static str, peer: usize, what: String) {
    if slot.is_none() {
        *slot = Some(FactorError::Protocol {
            tag,
            what: format!("from rank {peer}: {what}"),
        });
    }
}

/// Runs the modified Luby algorithm for one level over the remaining rows.
/// Every rank must call this collectively with consistent arguments.
///
/// The paper's structure: the communication *setup* ([`build_level_links`])
/// is the only collective; each of the (at most `max_rounds`) augmentation
/// rounds uses purely neighbour-to-neighbour replays along the fixed plan,
/// so round cost does not grow with `p`. The frames are the delta protocol
/// described in the module docs; a malformed frame returns
/// [`FactorError::Protocol`] from the rank that received it (its peers then
/// stall on the abandoned protocol, which checked runs diagnose as a
/// deadlock — corrupted traffic cannot complete silently).
pub fn dist_mis(
    ctx: &mut Ctx,
    plan: &CommPlan,
    reduced_cols: &HashMap<usize, Vec<usize>>,
    seed: u64,
    level: u64,
    max_rounds: usize,
) -> Result<MisOutcome, FactorError> {
    // Local state per owned node; remote state per referenced node. Every
    // referenced remote node starts CAND — the shared baseline neither
    // side ships (module invariants).
    let mut state: HashMap<usize, u64> = reduced_cols.keys().map(|&v| (v, CAND)).collect();
    let mut remote: HashMap<usize, u64> = plan
        .recv_lists()
        .iter()
        .flat_map(|(_, nodes)| nodes.iter().map(|&v| (v, CAND)))
        .collect();
    // Last state shipped per owned node; absent means the implicit
    // all-CAND baseline. One global map suffices because a transition
    // ships to *all* referencing peers in the same round.
    let mut shipped: HashMap<usize, u64> = HashMap::new();
    // node → (owner peer, index in the pair's agreed list) for every
    // referenced remote node — kills address the mirror list by index.
    let remote_slot: HashMap<usize, (usize, usize)> = plan
        .recv_lists()
        .iter()
        .flat_map(|(peer, nodes)| nodes.iter().enumerate().map(move |(i, &v)| (v, (*peer, i))))
        .collect();
    let send_list_of: HashMap<usize, &Vec<usize>> =
        plan.send_lists().iter().map(|(q, ns)| (*q, ns)).collect();
    let recv_list_of: HashMap<usize, &Vec<usize>> =
        plan.recv_lists().iter().map(|(q, ns)| (*q, ns)).collect();

    let mut err: Option<FactorError> = None;
    // Audit scope for the post-plan rounds: everything after this point is
    // replay along the fixed plan, so the allocation profile here is what
    // the bench's `mis_rounds` column reports. (Delta frames are
    // content-dependent, so this region is *measured*, not gated to zero.)
    let _audit = pilut_allocaudit::region("mis_rounds");
    for round in 0..max_rounds as u64 {
        // Fixed round count (the paper runs exactly five): all ranks agree
        // on the schedule without a global convergence check. Skip the local
        // work when this rank has nothing left, but keep messaging aligned.
        let undecided = state.values().filter(|&&s| s == CAND).count() as u64;
        // Per-candidate key hashing is a handful of integer ops.
        ctx.work(5.0 * undecided as f64);

        // Link liveness from the *shared* view: owner and referencer hold
        // identical shipped-state maps for every agreed list (`shipped` on
        // the owner, `remote` on the referencer — both advance only at
        // delta ship and confirmation), so both endpoints agree that a link
        // whose nodes are all decided-and-shipped can never carry another
        // word, and skip its messages entirely. Decided states are final,
        // so a dead link stays dead.
        let live_sets = |shipped: &HashMap<usize, u64>, remote: &HashMap<usize, u64>| {
            let send: HashSet<usize> = plan
                .send_lists()
                .iter()
                .filter(|(_, ns)| {
                    ns.iter()
                        .any(|v| shipped.get(v).copied().unwrap_or(CAND) == CAND)
                })
                .map(|(q, _)| *q)
                .collect();
            let recv: HashSet<usize> = plan
                .recv_lists()
                .iter()
                .filter(|(_, ns)| {
                    ns.iter()
                        .any(|v| remote.get(v).copied().unwrap_or(CAND) == CAND)
                })
                .map(|(q, _)| *q)
                .collect();
            (send, recv)
        };
        let (live_send, live_recv) = live_sets(&shipped, &remote);

        // --- MIS_KEYS replay: state deltas since the previous ship. ------
        // Round 0 is the baseline round: exceptions to all-CAND only.
        plan.replay_exact_sparse_tagged(
            ctx,
            tags::MIS_KEYS,
            &live_send,
            &live_recv,
            |_, nodes| {
                let mut frame: Vec<u64> = Vec::new();
                for (idx, v) in nodes.iter().enumerate() {
                    // Referenced nodes no longer in our row set are decided.
                    let cur = state.get(v).copied().unwrap_or(OUT);
                    if shipped.get(v).copied().unwrap_or(CAND) != cur {
                        frame.push(((idx as u64) << 2) | cur);
                    }
                }
                Payload::u64s(frame)
            },
            |peer, nodes, payload| {
                for word in payload.into_u64() {
                    match decode_delta(word, nodes.len()) {
                        Ok((idx, s)) => {
                            remote.insert(nodes[idx], s);
                        }
                        Err(what) => note_err(&mut err, "mis_keys", peer, what),
                    }
                }
            },
        );
        if let Some(e) = err.take() {
            return Err(e);
        }
        for (_, nodes) in plan.send_lists() {
            for v in nodes {
                shipped.insert(*v, state.get(v).copied().unwrap_or(OUT));
            }
        }
        // Post-delta both views equal the current state of every agreed
        // list, so the same liveness rule prunes the tentative round and
        // the symmetric confirmation round (a pair is live if either of its
        // directed lists still holds a candidate — only candidates can turn
        // tentative, be confirmed, or be killed).
        let (live_send, live_recv) = live_sets(&shipped, &remote);
        let live_pairs: HashSet<usize> = live_send.union(&live_recv).copied().collect();

        // --- Tentative winners (keys recomputed, never on the wire). -----
        let key_of = |v: usize| mis_key(seed, level, round, v as u64);
        let mut tentative: HashMap<usize, bool> = HashMap::new();
        for (&v, &s) in &state {
            if s != CAND {
                continue;
            }
            let kv = (key_of(v), v);
            let mut wins = true;
            for &u in &reduced_cols[&v] {
                if u == v {
                    continue;
                }
                let su = match state.get(&u) {
                    Some(&su) => su,
                    None => {
                        *remote
                            .get(&u)
                            // lint: allow(unwrap): the plan's receive lists cover every referenced remote node
                            .expect("referenced remote node missing from plan")
                    }
                };
                if su == CAND && (key_of(u), u) < kv {
                    wins = false;
                    break;
                }
            }
            if wins {
                tentative.insert(v, true);
            }
        }
        ctx.work(reduced_cols.values().map(|c| c.len() as f64).sum::<f64>());

        // --- MIS_TENT replay: tentative winners, as indices. -------------
        let mut remote_tentative: HashMap<usize, bool> = HashMap::new();
        plan.replay_exact_sparse_tagged(
            ctx,
            tags::MIS_TENT,
            &live_send,
            &live_recv,
            |_, nodes| {
                Payload::u64s(
                    nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| tentative.contains_key(v))
                        .map(|(idx, _)| idx as u64)
                        .collect(),
                )
            },
            |peer, nodes, payload| {
                for word in payload.into_u64() {
                    match nodes.get(word as usize) {
                        Some(&v) => {
                            remote_tentative.insert(v, true);
                        }
                        None => note_err(
                            &mut err,
                            "mis_tent",
                            peer,
                            format!(
                                "tentative index {word} out of range for a {}-node schedule",
                                nodes.len()
                            ),
                        ),
                    }
                }
            },
        );
        if let Some(e) = err.take() {
            return Err(e);
        }

        // --- Confirm tentatives with no tentative out-neighbour. ---------
        let mut confirmed: Vec<usize> = Vec::new();
        for &v in tentative.keys() {
            let conflict = reduced_cols[&v].iter().any(|&u| {
                u != v && (tentative.contains_key(&u) || remote_tentative.contains_key(&u))
            });
            if !conflict {
                confirmed.push(v);
            }
        }
        confirmed.sort_unstable();

        // Apply local effects: members join, their local out-neighbours die.
        let mut kills_by_rank: HashMap<usize, Vec<u64>> = HashMap::new();
        for &v in &confirmed {
            state.insert(v, IN);
            // The confirmation round below tells every referencing peer,
            // so the membership never re-ships as a delta.
            shipped.insert(v, IN);
        }
        for &v in &confirmed {
            for &u in &reduced_cols[&v] {
                if u == v {
                    continue;
                }
                match state.get_mut(&u) {
                    Some(su) => {
                        if *su == CAND {
                            *su = OUT;
                        }
                    }
                    None => {
                        // Remote out-neighbour: its owner must kill it. The
                        // kill addresses the pair's agreed list by index.
                        let &(owner, idx) = remote_slot
                            .get(&u)
                            // lint: allow(unwrap): every referenced remote node is in the plan
                            .expect("referenced node missing from plan");
                        kills_by_rank
                            .entry(owner)
                            .or_default()
                            .push(((idx as u64) << 1) | KILL_EV);
                    }
                }
            }
        }
        for kills in kills_by_rank.values_mut() {
            kills.sort_unstable();
            kills.dedup();
        }

        // --- MIS_CONF replay: confirmations + kills, symmetric round. ----
        // Confirmations flow owner → referencing ranks; kills flow
        // arc-source rank → target's owner. Every pair in the union of the
        // two plan directions exchanges exactly one message carrying both
        // event kinds where the directions coincide.
        let confirmed_set: HashSet<usize> = confirmed.iter().copied().collect();
        plan.replay_symmetric_exact_sparse_tagged(
            ctx,
            tags::MIS_CONF,
            &live_pairs,
            |peer| {
                let mut frame: Vec<u64> = Vec::new();
                if let Some(nodes) = send_list_of.get(&peer) {
                    for (idx, v) in nodes.iter().enumerate() {
                        if confirmed_set.contains(v) {
                            frame.push(((idx as u64) << 1) | CONF_EV);
                        }
                    }
                }
                if let Some(kills) = kills_by_rank.get(&peer) {
                    frame.extend_from_slice(kills);
                }
                Payload::u64s(frame)
            },
            |peer, payload| {
                for word in payload.into_u64() {
                    let idx = (word >> 1) as usize;
                    if word & 1 == CONF_EV {
                        // Peer confirmed a node I reference: the index
                        // addresses my receive list from it.
                        match recv_list_of.get(&peer).and_then(|ns| ns.get(idx)) {
                            Some(&v) => {
                                remote.insert(v, IN);
                            }
                            None => note_err(
                                &mut err,
                                "mis_conf",
                                peer,
                                format!("confirmation index {idx} has no scheduled node"),
                            ),
                        }
                    } else {
                        // Peer killed a node of mine: the index addresses
                        // my send list to it.
                        match send_list_of.get(&peer).and_then(|ns| ns.get(idx)) {
                            Some(&v) => {
                                if let Some(s) = state.get_mut(&v) {
                                    if *s == CAND {
                                        *s = OUT;
                                    }
                                }
                            }
                            None => note_err(
                                &mut err,
                                "mis_conf",
                                peer,
                                format!("kill index {idx} has no scheduled node"),
                            ),
                        }
                    }
                }
            },
        );
        if let Some(e) = err.take() {
            return Err(e);
        }

        // Kill any local candidate pointing at a (local or remote) member.
        // These kills ship in the *next* round's opening delta — the same
        // information timing as the reference full-state push.
        for (&v, cols) in reduced_cols {
            if state[&v] != CAND {
                continue;
            }
            let hits_member = cols.iter().any(|&u| {
                u != v
                    && match state.get(&u) {
                        Some(&su) => su == IN,
                        None => remote.get(&u).copied() == Some(IN),
                    }
            });
            if hits_member {
                state.insert(v, OUT);
            }
        }
    }

    let mut my_in: Vec<usize> = state
        .iter()
        .filter_map(|(&v, &s)| (s == IN).then_some(v))
        .collect();
    my_in.sort_unstable();
    let mut remote_in: Vec<usize> = remote
        .iter()
        .filter_map(|(&v, &s)| (s == IN).then_some(v))
        .collect();
    remote_in.sort_unstable();
    Ok(MisOutcome { my_in, remote_in })
}

/// The pre-delta **full-push** protocol, retained verbatim as the
/// differential-testing oracle for [`dist_mis`]: every round re-ships a
/// `(node, key, state)` triple for every referenced node. Identical
/// information timing, so both protocols choose bit-identical sets; the
/// delta protocol just stops paying for what the receiver already knows.
/// Not used by any production path.
pub fn dist_mis_reference(
    ctx: &mut Ctx,
    plan: &CommPlan,
    reduced_cols: &HashMap<usize, Vec<usize>>,
    seed: u64,
    level: u64,
    max_rounds: usize,
) -> MisOutcome {
    let mut state: HashMap<usize, u64> = reduced_cols.keys().map(|&v| (v, CAND)).collect();
    let mut remote: HashMap<usize, (u64, u64)> = HashMap::new(); // node -> (key, state)

    for round in 0..max_rounds as u64 {
        let undecided = state.values().filter(|&&s| s == CAND).count() as u64;
        ctx.work(5.0 * undecided as f64);

        // --- Step 1 replay: push (key, state) of referenced nodes. --------
        plan.replay_tagged(
            ctx,
            tags::MIS_KEYS,
            |_, nodes| {
                let mut buf = Vec::with_capacity(nodes.len() * 3);
                for &v in nodes {
                    buf.push(v as u64);
                    buf.push(mis_key(seed, level, round, v as u64));
                    buf.push(state.get(&v).copied().unwrap_or(OUT));
                }
                Payload::u64s(buf)
            },
            |_, _, payload| {
                for c in payload.into_u64().chunks_exact(3) {
                    remote.insert(c[0] as usize, (c[1], c[2]));
                }
            },
        );

        // --- Step 1: tentative winners. ------------------------------------
        let key_of = |v: usize| mis_key(seed, level, round, v as u64);
        let mut tentative: HashMap<usize, bool> = HashMap::new();
        for (&v, &s) in &state {
            if s != CAND {
                continue;
            }
            let kv = (key_of(v), v);
            let mut wins = true;
            for &u in &reduced_cols[&v] {
                if u == v {
                    continue;
                }
                let (ku, su) = match state.get(&u) {
                    Some(&su) => (key_of(u), su),
                    None => {
                        let &(ku, su) = remote
                            .get(&u)
                            // lint: allow(unwrap): the replay returns exactly the requested remote nodes
                            .expect("referenced remote node missing from exchange");
                        (ku, su)
                    }
                };
                if su == CAND && (ku, u) < kv {
                    wins = false;
                    break;
                }
            }
            if wins {
                tentative.insert(v, true);
            }
        }
        ctx.work(reduced_cols.values().map(|c| c.len() as f64).sum::<f64>());

        // --- Step 2 replay: push tentative flags of referenced nodes. -----
        let mut remote_tentative: HashMap<usize, bool> = HashMap::new();
        plan.replay_tagged(
            ctx,
            tags::MIS_TENT,
            |_, nodes| {
                Payload::u64s(
                    nodes
                        .iter()
                        .filter(|v| tentative.contains_key(v))
                        .map(|&v| v as u64)
                        .collect(),
                )
            },
            |_, _, payload| {
                for v in payload.into_u64() {
                    remote_tentative.insert(v as usize, true);
                }
            },
        );

        // --- Step 2: confirm tentatives with no tentative out-neighbour. ---
        let mut confirmed: Vec<usize> = Vec::new();
        for &v in tentative.keys() {
            let conflict = reduced_cols[&v].iter().any(|&u| {
                u != v && (tentative.contains_key(&u) || remote_tentative.contains_key(&u))
            });
            if !conflict {
                confirmed.push(v);
            }
        }
        confirmed.sort_unstable();

        // Apply local effects: members join, their local out-neighbours die.
        let mut kills_by_rank: HashMap<usize, Vec<u64>> = HashMap::new();
        for &v in &confirmed {
            state.insert(v, IN);
        }
        for &v in &confirmed {
            for &u in &reduced_cols[&v] {
                if u == v {
                    continue;
                }
                match state.get_mut(&u) {
                    Some(su) => {
                        if *su == CAND {
                            *su = OUT;
                        }
                    }
                    None => {
                        let owner = plan
                            .owner_of(u)
                            // lint: allow(unwrap): every referenced remote node is in the plan
                            .expect("referenced node missing from plan");
                        kills_by_rank.entry(owner).or_default().push(u as u64);
                    }
                }
            }
        }

        // --- Step 3 replay: confirmations + kills, symmetric round. -------
        // Encoding: [n_confirmed, confirmed..., kills...].
        let confirmed_set: HashSet<usize> = confirmed.iter().copied().collect();
        let conf_by_peer: HashMap<usize, Vec<u64>> = plan
            .send_lists()
            .iter()
            .map(|(peer, nodes)| {
                (
                    *peer,
                    nodes
                        .iter()
                        .filter(|v| confirmed_set.contains(v))
                        .map(|&v| v as u64)
                        .collect(),
                )
            })
            .collect();
        plan.replay_symmetric_tagged(
            ctx,
            tags::MIS_CONF,
            |peer| {
                let conf = conf_by_peer.get(&peer).cloned().unwrap_or_default();
                let kills = kills_by_rank.get(&peer).cloned().unwrap_or_default();
                let mut buf = Vec::with_capacity(conf.len() + kills.len() + 1);
                buf.push(conf.len() as u64);
                buf.extend_from_slice(&conf);
                buf.extend_from_slice(&kills);
                Payload::u64s(buf)
            },
            |_, payload| {
                let buf = payload.into_u64();
                assert!(
                    !buf.is_empty(),
                    "mis_conf reference frame must carry a count header"
                );
                let nc = buf[0] as usize;
                assert!(nc < buf.len(), "mis_conf reference frame truncated");
                for &v in &buf[1..1 + nc] {
                    remote.entry(v as usize).or_insert((0, CAND)).1 = IN;
                }
                for &v in &buf[1 + nc..] {
                    if let Some(s) = state.get_mut(&(v as usize)) {
                        if *s == CAND {
                            *s = OUT;
                        }
                    }
                }
            },
        );

        // Kill any local candidate pointing at a (local or remote) member.
        for (&v, cols) in reduced_cols {
            if state[&v] != CAND {
                continue;
            }
            let hits_member = cols.iter().any(|&u| {
                u != v
                    && match state.get(&u) {
                        Some(&su) => su == IN,
                        None => remote.get(&u).map(|&(_, s)| s == IN).unwrap_or(false),
                    }
            });
            if hits_member {
                state.insert(v, OUT);
            }
        }
    }

    let mut my_in: Vec<usize> = state
        .iter()
        .filter_map(|(&v, &s)| (s == IN).then_some(v))
        .collect();
    my_in.sort_unstable();
    let mut remote_in: Vec<usize> = remote
        .iter()
        .filter_map(|(&v, &(_, s))| (s == IN).then_some(v))
        .collect();
    remote_in.sort_unstable();
    MisOutcome { my_in, remote_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_par::{Machine, MachineModel};

    /// Builds the `node → cols` map of the `v % p == me` slice of a small
    /// directed graph (plus diagonals).
    fn local_rows(
        n: usize,
        arcs: &[(usize, usize)],
        p: usize,
        me: usize,
    ) -> HashMap<usize, Vec<usize>> {
        let mut reduced: HashMap<usize, Vec<usize>> = HashMap::new();
        for v in 0..n {
            if v % p == me {
                let mut cols: Vec<usize> = arcs
                    .iter()
                    .filter(|&&(s, _)| s == v)
                    .map(|&(_, t)| t)
                    .collect();
                cols.push(v); // diagonal
                cols.sort_unstable();
                cols.dedup();
                reduced.insert(v, cols);
            }
        }
        reduced
    }

    /// Distributes a small directed graph over `p` ranks and runs one MIS;
    /// returns the chosen set (and, with `reference`, runs the full-push
    /// oracle instead of the delta protocol).
    fn run_mis_with(
        n: usize,
        arcs: &[(usize, usize)],
        p: usize,
        rounds: usize,
        seed: u64,
        reference: bool,
    ) -> Vec<usize> {
        let part: Vec<usize> = (0..n).map(|v| v % p).collect();
        let dist = Distribution::from_part(part, p);
        let arcs = arcs.to_vec();
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let reduced = local_rows(n, &arcs, p, ctx.rank());
            let plan = build_level_links(ctx, &dist, &reduced);
            if reference {
                dist_mis_reference(ctx, &plan, &reduced, seed, 0, rounds).my_in
            } else {
                dist_mis(ctx, &plan, &reduced, seed, 0, rounds)
                    .expect("well-formed traffic must decode")
                    .my_in
            }
        });
        let mut all: Vec<usize> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        all
    }

    fn run_mis(n: usize, arcs: &[(usize, usize)], p: usize, rounds: usize) -> Vec<usize> {
        run_mis_with(n, arcs, p, rounds, 42, false)
    }

    fn assert_independent(set: &[usize], arcs: &[(usize, usize)]) {
        for &(s, t) in arcs {
            assert!(
                !(set.contains(&s) && set.contains(&t)),
                "arc ({s},{t}) inside the set {set:?}"
            );
        }
    }

    #[test]
    fn empty_arcs_select_everything() {
        let set = run_mis(7, &[], 3, 5);
        assert_eq!(set, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn directed_chain_is_handled() {
        let arcs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let set = run_mis(6, &arcs, 2, 8);
        assert_independent(&set, &arcs);
        assert!(
            set.len() >= 2,
            "chain of 6 should give at least 3-ish: {set:?}"
        );
    }

    #[test]
    fn unsymmetric_cross_rank_conflicts_resolved() {
        // Arcs deliberately crossing rank boundaries (v % p ownership).
        let arcs = [
            (0, 1),
            (2, 1),
            (2, 3),
            (4, 3),
            (4, 5),
            (0, 5),
            (1, 6),
            (6, 0),
        ];
        for p in [2, 3, 4] {
            let set = run_mis(7, &arcs, p, 8);
            assert_independent(&set, &arcs);
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn progress_with_single_round() {
        // Even one round must select someone (the max-key tentative).
        let arcs = [(0, 1), (1, 2), (2, 0)];
        let set = run_mis(3, &arcs, 3, 1);
        assert!(!set.is_empty());
        assert_independent(&set, &arcs);
    }

    #[test]
    fn matches_between_rank_counts() {
        // Determinism: same seed ⇒ same set regardless of distribution.
        let arcs = [(0, 2), (1, 2), (3, 4), (4, 0), (5, 1)];
        let s1 = run_mis(6, &arcs, 1, 5);
        let s3 = run_mis(6, &arcs, 3, 5);
        assert_eq!(s1, s3);
    }

    /// A seeded pseudo-random directed graph for the differential sweep.
    fn seeded_arcs(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1F7;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut arcs = Vec::with_capacity(m);
        for _ in 0..m {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            if a != b {
                arcs.push((a, b));
            }
        }
        arcs
    }

    #[test]
    fn delta_matches_full_push_oracle_across_rank_counts_and_seeds() {
        // The tentpole contract: identical information timing means the
        // delta protocol and the full-push reference choose bit-identical
        // sets for every distribution and seed.
        for seed in [3u64, 17, 99] {
            let arcs = seeded_arcs(24, 40, seed);
            let oracle = run_mis_with(24, &arcs, 1, 5, seed, true);
            assert_independent(&oracle, &arcs);
            for p in [1usize, 2, 4, 8] {
                let delta = run_mis_with(24, &arcs, p, 5, seed, false);
                assert_eq!(delta, oracle, "p={p} seed={seed} (delta vs oracle)");
                let reference = run_mis_with(24, &arcs, p, 5, seed, true);
                assert_eq!(reference, oracle, "p={p} seed={seed} (reference)");
            }
        }
    }

    #[test]
    fn delta_protocol_ships_fewer_key_bytes_than_full_push() {
        // The point of the diet: MIS_KEYS bytes must drop well below the
        // 24-bytes-per-referenced-node-per-round full push, and the
        // planned ledger must predict the delta traffic exactly.
        let arcs = seeded_arcs(24, 40, 7);
        let part: Vec<usize> = (0..24).map(|v| v % 4).collect();
        let dist = Distribution::from_part(part, 4);
        let run = |reference: bool| {
            let arcs = arcs.clone();
            let dist = dist.clone();
            Machine::run_checked(4, MachineModel::cray_t3d(), move |ctx| {
                let reduced = local_rows(24, &arcs, 4, ctx.rank());
                let plan = build_level_links(ctx, &dist, &reduced);
                if reference {
                    dist_mis_reference(ctx, &plan, &reduced, 7, 0, 5).my_in
                } else {
                    dist_mis(ctx, &plan, &reduced, 7, 0, 5)
                        .expect("well-formed traffic must decode")
                        .my_in
                }
            })
        };
        let full = run(true);
        let delta = run(false);
        let (_, full_bytes) = full.stats.tag_totals(tags::MIS_KEYS);
        let (_, delta_bytes) = delta.stats.tag_totals(tags::MIS_KEYS);
        assert!(
            delta_bytes * 3 <= full_bytes,
            "delta MIS_KEYS bytes {delta_bytes} not ≥3× below full-push {full_bytes}"
        );
        for tag in [tags::MIS_KEYS, tags::MIS_TENT, tags::MIS_CONF] {
            let measured = delta.stats.tag_totals(tag);
            let &(pm, pb, exact) = delta
                .stats
                .planned_by_tag
                .get(&tag)
                .expect("delta rounds record predictions");
            assert_eq!(measured, (pm, pb), "tag {}", tags::tag_name(tag));
            assert!(exact, "tag {} must be exactly planned", tags::tag_name(tag));
        }
    }

    #[test]
    fn malformed_frames_decode_to_structured_errors() {
        // Pure-decoder checks: out-of-range indices and unknown state
        // codes are protocol errors, never index panics.
        assert_eq!(decode_delta((3 << 2) | IN, 5), Ok((3, IN)));
        assert_eq!(decode_delta((4 << 2) | OUT, 5), Ok((4, OUT)));
        let range = decode_delta((5 << 2) | OUT, 5).unwrap_err();
        assert!(range.contains("indexes node 5"), "{range}");
        let code = decode_delta((1 << 2) | CAND, 5).unwrap_err();
        assert!(code.contains("state code 0"), "{code}");
        let code = decode_delta((1 << 2) | 0b11, 5).unwrap_err();
        assert!(code.contains("state code 3"), "{code}");
    }

    #[test]
    fn protocol_error_reaches_the_caller_structured() {
        // Drive the full decoder path with a corrupted frame: rank 1
        // replays a delta word whose index exceeds the schedule. The
        // receiving rank must get FactorError::Protocol, not a panic.
        let dist = Distribution::block(2, 2);
        let out = Machine::run(2, MachineModel::cray_t3d(), |ctx| {
            let me = ctx.rank();
            let needed = vec![1 - me];
            let plan = CommPlan::build(ctx, tags::MIS_KEYS, needed, |j| dist.owner(j));
            if me == 1 {
                // A hand-rolled corrupt round in place of the real one.
                plan.replay_exact_tagged(
                    ctx,
                    tags::MIS_KEYS,
                    |_, _| Payload::u64s(vec![(9 << 2) | OUT]),
                    |_, _, _| {},
                );
                return "sender".to_string();
            }
            let reduced: HashMap<usize, Vec<usize>> = [(0usize, vec![0usize, 1])].into();
            match dist_mis(ctx, &plan, &reduced, 1, 0, 1) {
                Err(FactorError::Protocol { tag, what }) => format!("{tag}: {what}"),
                other => format!("unexpected: {:?}", other.map(|m| m.my_in)),
            }
        });
        assert_eq!(out.results[1], "sender");
        assert!(
            out.results[0].starts_with("mis_keys: from rank 1:"),
            "{}",
            out.results[0]
        );
    }
}
