//! Distributed modified-Luby maximal independent sets (paper §4.1).
//!
//! Each rank owns the remaining rows of the current reduced matrix. The
//! dependency graph is *directed* (row `i` → column `j`) and structurally
//! unsymmetric, so the paper's two-step insertion applies: tentative winners
//! (random key beats every candidate out-neighbour) are confirmed only if
//! none of their out-neighbours is also tentative. Of any conflicting pair
//! the arc's source loses, so the confirmed set is independent and at least
//! the maximum-key tentative vertex always survives — each round makes
//! progress.
//!
//! Communication per level: one **setup** collective builds the level's
//! [`CommPlan`] (the paper's "communication setup phase" — every rank learns
//! which peers reference each of its nodes), then per Luby round three
//! replays along the fixed plan: key/state push, tentative push
//! (owner → referencing ranks), and a symmetric confirmation-plus-kill
//! round. The paper truncates at five rounds; leftovers stay candidates for
//! the next level.

use crate::dist::exchange::{tags, CommPlan};
use crate::dist::Distribution;
use pilut_par::{Ctx, Payload};
use std::collections::HashMap;

/// Result of one distributed MIS computation.
pub struct MisOutcome {
    /// My nodes selected into `I_l`, ascending.
    pub my_in: Vec<usize>,
    /// Referenced remote nodes that entered `I_l`.
    pub remote_in: Vec<usize>,
}

const CAND: u64 = 0;
const IN: u64 = 1;
const OUT: u64 = 2;

/// SplitMix64 — the per-(seed, level, round, node) random key. Both the
/// owner and the referencing ranks could compute it, but the owner's values
/// are *exchanged* (as on a real distributed machine) and the receiver uses
/// the wire values.
pub fn mis_key(seed: u64, level: u64, round: u64, node: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(level.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(round.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(node.wrapping_mul(0xD6E8FEB86659FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Collectively builds the level's communication plan from the current
/// reduced rows (`node → sorted columns`, all rows owned by this rank).
/// The send side lists my nodes each peer's rows reference; the receive
/// side lists the remote nodes my rows reference. The factorizations reuse
/// the same plan to route freshly factored `U` rows after the set is known.
pub fn build_level_links(
    ctx: &mut Ctx,
    dist: &Distribution,
    reduced_cols: &HashMap<usize, Vec<usize>>,
) -> CommPlan {
    let me = ctx.rank();
    let needed = reduced_cols
        .values()
        .flat_map(|cols| cols.iter().copied())
        .filter(|&j| dist.owner(j) != me);
    CommPlan::build(ctx, tags::MIS_KEYS, needed, |j| dist.owner(j))
}

/// Runs the modified Luby algorithm for one level over the remaining rows.
/// Every rank must call this collectively with consistent arguments.
///
/// The paper's structure: the communication *setup* ([`build_level_links`])
/// is the only collective; each of the (at most `max_rounds`) augmentation
/// rounds uses purely neighbour-to-neighbour replays along the fixed plan,
/// so round cost does not grow with `p`.
pub fn dist_mis(
    ctx: &mut Ctx,
    plan: &CommPlan,
    reduced_cols: &HashMap<usize, Vec<usize>>,
    seed: u64,
    level: u64,
    max_rounds: usize,
) -> MisOutcome {
    // Local state per owned node; remote state per referenced node.
    let mut state: HashMap<usize, u64> = reduced_cols.keys().map(|&v| (v, CAND)).collect();
    let mut remote: HashMap<usize, (u64, u64)> = HashMap::new(); // node -> (key, state)

    for round in 0..max_rounds as u64 {
        // Fixed round count (the paper runs exactly five): all ranks agree
        // on the schedule without a global convergence check. Skip the local
        // work when this rank has nothing left, but keep messaging aligned.
        let undecided = state.values().filter(|&&s| s == CAND).count() as u64;
        // Per-candidate key hashing is a handful of integer ops.
        ctx.work(5.0 * undecided as f64);

        // --- Step 1 replay: push (key, state) of referenced nodes. --------
        plan.replay_tagged(
            ctx,
            tags::MIS_KEYS,
            |_, nodes| {
                let mut buf = Vec::with_capacity(nodes.len() * 3);
                for &v in nodes {
                    buf.push(v as u64);
                    buf.push(mis_key(seed, level, round, v as u64));
                    // Referenced nodes no longer in our row set are decided.
                    buf.push(state.get(&v).copied().unwrap_or(OUT));
                }
                Payload::u64s(buf)
            },
            |_, _, payload| {
                for c in payload.into_u64().chunks_exact(3) {
                    remote.insert(c[0] as usize, (c[1], c[2]));
                }
            },
        );

        // --- Step 1: tentative winners. ------------------------------------
        let key_of = |v: usize| mis_key(seed, level, round, v as u64);
        let mut tentative: HashMap<usize, bool> = HashMap::new();
        for (&v, &s) in &state {
            if s != CAND {
                continue;
            }
            let kv = (key_of(v), v);
            let mut wins = true;
            for &u in &reduced_cols[&v] {
                if u == v {
                    continue;
                }
                let (ku, su) = match state.get(&u) {
                    Some(&su) => (key_of(u), su),
                    None => {
                        let &(ku, su) = remote
                            .get(&u)
                            // lint: allow(unwrap): the replay returns exactly the requested remote nodes
                            .expect("referenced remote node missing from exchange");
                        (ku, su)
                    }
                };
                if su == CAND && (ku, u) < kv {
                    wins = false;
                    break;
                }
            }
            if wins {
                tentative.insert(v, true);
            }
        }
        ctx.work(reduced_cols.values().map(|c| c.len() as f64).sum::<f64>());

        // --- Step 2 replay: push tentative flags of referenced nodes. -----
        let mut remote_tentative: HashMap<usize, bool> = HashMap::new();
        plan.replay_tagged(
            ctx,
            tags::MIS_TENT,
            |_, nodes| {
                Payload::u64s(
                    nodes
                        .iter()
                        .filter(|v| tentative.contains_key(v))
                        .map(|&v| v as u64)
                        .collect(),
                )
            },
            |_, _, payload| {
                for v in payload.into_u64() {
                    remote_tentative.insert(v as usize, true);
                }
            },
        );

        // --- Step 2: confirm tentatives with no tentative out-neighbour. ---
        let mut confirmed: Vec<usize> = Vec::new();
        for &v in tentative.keys() {
            let conflict = reduced_cols[&v].iter().any(|&u| {
                u != v && (tentative.contains_key(&u) || remote_tentative.contains_key(&u))
            });
            if !conflict {
                confirmed.push(v);
            }
        }
        confirmed.sort_unstable();

        // Apply local effects: members join, their local out-neighbours die.
        let mut kills_by_rank: HashMap<usize, Vec<u64>> = HashMap::new();
        for &v in &confirmed {
            state.insert(v, IN);
        }
        for &v in &confirmed {
            for &u in &reduced_cols[&v] {
                if u == v {
                    continue;
                }
                match state.get_mut(&u) {
                    Some(su) => {
                        if *su == CAND {
                            *su = OUT;
                        }
                    }
                    None => {
                        // Remote out-neighbour: its owner must kill it.
                        let owner = plan
                            .owner_of(u)
                            // lint: allow(unwrap): every referenced remote node is in the plan
                            .expect("referenced node missing from plan");
                        kills_by_rank.entry(owner).or_default().push(u as u64);
                    }
                }
            }
        }

        // --- Step 3 replay: confirmations + kills, symmetric round. -------
        // Confirmations flow owner → referencing ranks; kills flow arc-source
        // rank → target's owner (a receive-side peer). Every pair in the
        // union of the two plan directions exchanges exactly one message.
        // Encoding: [n_confirmed, confirmed..., kills...].
        let confirmed_set: std::collections::HashSet<usize> = confirmed.iter().copied().collect();
        let conf_by_peer: HashMap<usize, Vec<u64>> = plan
            .send_lists()
            .iter()
            .map(|(peer, nodes)| {
                (
                    *peer,
                    nodes
                        .iter()
                        .filter(|v| confirmed_set.contains(v))
                        .map(|&v| v as u64)
                        .collect(),
                )
            })
            .collect();
        plan.replay_symmetric_tagged(
            ctx,
            tags::MIS_CONF,
            |peer| {
                let conf = conf_by_peer.get(&peer).cloned().unwrap_or_default();
                let kills = kills_by_rank.get(&peer).cloned().unwrap_or_default();
                let mut buf = Vec::with_capacity(conf.len() + kills.len() + 1);
                buf.push(conf.len() as u64);
                buf.extend_from_slice(&conf);
                buf.extend_from_slice(&kills);
                Payload::u64s(buf)
            },
            |_, payload| {
                let buf = payload.into_u64();
                let nc = buf[0] as usize;
                for &v in &buf[1..1 + nc] {
                    remote.entry(v as usize).or_insert((0, CAND)).1 = IN;
                }
                for &v in &buf[1 + nc..] {
                    if let Some(s) = state.get_mut(&(v as usize)) {
                        if *s == CAND {
                            *s = OUT;
                        }
                    }
                }
            },
        );

        // Kill any local candidate pointing at a (local or remote) member.
        for (&v, cols) in reduced_cols {
            if state[&v] != CAND {
                continue;
            }
            let hits_member = cols.iter().any(|&u| {
                u != v
                    && match state.get(&u) {
                        Some(&su) => su == IN,
                        None => remote.get(&u).map(|&(_, s)| s == IN).unwrap_or(false),
                    }
            });
            if hits_member {
                state.insert(v, OUT);
            }
        }
    }

    let mut my_in: Vec<usize> = state
        .iter()
        .filter_map(|(&v, &s)| (s == IN).then_some(v))
        .collect();
    my_in.sort_unstable();
    let mut remote_in: Vec<usize> = remote
        .iter()
        .filter_map(|(&v, &(_, s))| (s == IN).then_some(v))
        .collect();
    remote_in.sort_unstable();
    MisOutcome { my_in, remote_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_par::{Machine, MachineModel};

    /// Distributes a small directed graph over `p` ranks and runs one MIS;
    /// returns the chosen set.
    fn run_mis(n: usize, arcs: &[(usize, usize)], p: usize, rounds: usize) -> Vec<usize> {
        let part: Vec<usize> = (0..n).map(|v| v % p).collect();
        let dist = Distribution::from_part(part, p);
        let arcs = arcs.to_vec();
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let me = ctx.rank();
            let mut reduced: HashMap<usize, Vec<usize>> = HashMap::new();
            for v in 0..n {
                if v % p == me {
                    let mut cols: Vec<usize> = arcs
                        .iter()
                        .filter(|&&(s, _)| s == v)
                        .map(|&(_, t)| t)
                        .collect();
                    cols.push(v); // diagonal
                    cols.sort_unstable();
                    cols.dedup();
                    reduced.insert(v, cols);
                }
            }
            let plan = build_level_links(ctx, &dist, &reduced);
            let mis = dist_mis(ctx, &plan, &reduced, 42, 0, rounds);
            mis.my_in
        });
        let mut all: Vec<usize> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        all
    }

    fn assert_independent(set: &[usize], arcs: &[(usize, usize)]) {
        for &(s, t) in arcs {
            assert!(
                !(set.contains(&s) && set.contains(&t)),
                "arc ({s},{t}) inside the set {set:?}"
            );
        }
    }

    #[test]
    fn empty_arcs_select_everything() {
        let set = run_mis(7, &[], 3, 5);
        assert_eq!(set, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn directed_chain_is_handled() {
        let arcs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let set = run_mis(6, &arcs, 2, 8);
        assert_independent(&set, &arcs);
        assert!(
            set.len() >= 2,
            "chain of 6 should give at least 3-ish: {set:?}"
        );
    }

    #[test]
    fn unsymmetric_cross_rank_conflicts_resolved() {
        // Arcs deliberately crossing rank boundaries (v % p ownership).
        let arcs = [
            (0, 1),
            (2, 1),
            (2, 3),
            (4, 3),
            (4, 5),
            (0, 5),
            (1, 6),
            (6, 0),
        ];
        for p in [2, 3, 4] {
            let set = run_mis(7, &arcs, p, 8);
            assert_independent(&set, &arcs);
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn progress_with_single_round() {
        // Even one round must select someone (the max-key tentative).
        let arcs = [(0, 1), (1, 2), (2, 0)];
        let set = run_mis(3, &arcs, 3, 1);
        assert!(!set.is_empty());
        assert_independent(&set, &arcs);
    }

    #[test]
    fn matches_between_rank_counts() {
        // Determinism: same seed ⇒ same set regardless of distribution.
        let arcs = [(0, 2), (1, 2), (3, 4), (4, 0), (5, 1)];
        let s1 = run_mis(6, &arcs, 1, 5);
        let s3 = run_mis(6, &arcs, 3, 5);
        assert_eq!(s1, s3);
    }
}
