//! Parallel ILU(0) — the static-pattern contrast case of paper §3.
//!
//! Because ILU(0) admits no fill, the sparsity structure of every interface
//! reduced matrix is known *before* any numeric work: it is simply the
//! original interface–interface coupling pattern. The elimination schedule
//! can therefore be computed up front — the paper's Figure 1(a) colouring —
//! and the reduced matrices never need to be formed explicitly. Here the
//! schedule is obtained by repeatedly peeling a distributed independent set
//! off the *static* pattern (Jones–Plassmann-style, reusing the same
//! modified-Luby machinery as the ILUT path), after which the numeric
//! factorization replays the schedule level by level with pattern-restricted
//! updates.
//!
//! The output is a [`RankFactors`] like the ILUT path's, so the parallel
//! triangular solves and the distributed GMRES preconditioner wrapper work
//! unchanged.

use crate::breakdown::{PivotDoctor, PivotFault};
use crate::dist::exchange::tags;
use crate::dist::{DistMatrix, LocalView};
use crate::options::{BreakdownPolicy, FactorError};
use crate::parallel::dist_mis::{build_level_links, dist_mis};
use crate::parallel::{collective_fault_verdict, FactorRow, ParStats, RankFactors};
use pilut_par::{Ctx, Payload};
use pilut_sparse::WorkRow;
use std::collections::{HashMap, HashSet};

/// Runs the parallel zero-fill factorization. Collective. Aborts on the
/// first unusable pivot; use [`par_ilu0_with`] to recover instead.
pub fn par_ilu0(
    ctx: &mut Ctx,
    dm: &DistMatrix,
    local: &LocalView,
) -> Result<RankFactors, FactorError> {
    par_ilu0_with(ctx, dm, local, BreakdownPolicy::Abort)
}

/// [`par_ilu0`] with an explicit [`BreakdownPolicy`]. Collective; every
/// rank must pass the same policy.
pub fn par_ilu0_with(
    ctx: &mut Ctx,
    dm: &DistMatrix,
    local: &LocalView,
    policy: BreakdownPolicy,
) -> Result<RankFactors, FactorError> {
    policy.validate()?; // deterministic: every rank rejects the same way
    let mut doctor = PivotDoctor::new(policy);
    let a = dm.matrix();
    let n = dm.n();
    let mut role = vec![0u8; n];
    for &v in &local.interior {
        role[v] = 1;
    }
    for &v in &local.interface {
        role[v] = 2;
    }
    let mut rows: HashMap<usize, FactorRow> = HashMap::with_capacity(local.len());
    let mut stats = ParStats::default();
    let mut w = WorkRow::new(n);
    let mut my_err: Option<(usize, PivotFault)> = None;

    // ---- Phase 1: interiors, ascending global id, pattern-restricted.
    for &i in &local.interior {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            w.set(j, v);
        }
        let mut lower: Vec<(usize, f64)> = Vec::new();
        // Pivots: my interiors preceding i, in the original pattern only (no
        // fill can extend the pivot set).
        for &k in cols.iter().filter(|&&k| role[k] == 1 && k < i) {
            let wk = w.get(k);
            w.drop_pos(k);
            let urow = &rows[&k];
            let mult = wk / urow.diag;
            lower.push((k, mult));
            for &(j, uv) in &urow.u {
                if w.contains(j) {
                    w.add(j, -mult * uv);
                }
            }
            stats.flops += 2.0 * urow.u.len() as f64 + 1.0;
            ctx.work(2.0 * urow.u.len() as f64 + 1.0);
        }
        let mut diag = 0.0;
        let mut has_diag = false;
        let mut upper: Vec<(usize, f64)> = Vec::new();
        for (j, v) in w.drain_sorted() {
            if j == i {
                diag = v;
                has_diag = true;
            } else {
                upper.push((j, v));
            }
        }
        doctor.repair_or_defer(
            i,
            a.row_norm2(i),
            has_diag,
            &mut diag,
            &mut lower,
            &mut upper,
            &mut my_err,
            1.0,
        );
        stats.nnz_l += lower.len();
        stats.nnz_u += upper.len() + 1;
        rows.insert(
            i,
            FactorRow {
                l: lower,
                diag,
                u: upper,
            },
        );
    }

    // ---- Phase 1b: eliminate interiors from interface rows (pattern-
    // restricted); the surviving interface-column values are the rank's
    // slice of A_I, whose pattern equals the original one.
    let mut reduced: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
    for &i in &local.interface {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            w.set(j, v);
        }
        let mut lower: Vec<(usize, f64)> = Vec::new();
        for &k in cols.iter().filter(|&&k| role[k] == 1) {
            let wk = w.get(k);
            w.drop_pos(k);
            let urow = &rows[&k];
            let mult = wk / urow.diag;
            lower.push((k, mult));
            for &(j, uv) in &urow.u {
                if w.contains(j) {
                    w.add(j, -mult * uv);
                }
            }
            stats.flops += 2.0 * urow.u.len() as f64 + 1.0;
            ctx.work(2.0 * urow.u.len() as f64 + 1.0);
        }
        let rest = w.drain_sorted();
        stats.reduced_nnz_initial += rest.len();
        stats.nnz_l += lower.len();
        rows.insert(
            i,
            FactorRow {
                l: lower,
                diag: 0.0,
                u: Vec::new(),
            },
        );
        reduced.insert(i, rest);
    }
    stats.reduced_nnz_peak = stats.reduced_nnz_initial;
    let mut initial_reduced_cols: Vec<(usize, Vec<usize>)> = reduced
        .iter()
        .map(|(&v, row)| (v, row.iter().map(|&(c, _)| c).collect()))
        .collect();
    initial_reduced_cols.sort_unstable_by_key(|&(v, _)| v);

    // ---- Symbolic schedule: peel independent sets off the static pattern.
    // (This is the "colouring" of Figure 1a: it depends only on structure.)
    let mut remaining: HashSet<usize> = reduced.keys().copied().collect();
    let mut scheduled_remote: HashSet<usize> = HashSet::new();
    let mut schedule: Vec<Vec<usize>> = Vec::new();
    let mut level_idx = 0u64;
    loop {
        let left = ctx.all_reduce_sum_u64(remaining.len() as u64);
        if left == 0 {
            break;
        }
        // Pattern restricted to the still-unscheduled nodes (local ones we
        // know directly; remote ones from the previous levels' outcomes).
        let pat: HashMap<usize, Vec<usize>> = remaining
            .iter()
            .map(|&v| {
                let cols: Vec<usize> = reduced[&v]
                    .iter()
                    .map(|&(c, _)| c)
                    .filter(|&c| {
                        c == v
                            || remaining.contains(&c)
                            || (role[c] == 0 && !scheduled_remote.contains(&c))
                    })
                    .collect();
                (v, cols)
            })
            .collect();
        let plan = build_level_links(ctx, dm.dist(), &pat);
        let mis = dist_mis(ctx, &plan, &pat, 0xC0105, level_idx, 5)?;
        for &v in &mis.my_in {
            remaining.remove(&v);
        }
        scheduled_remote.extend(mis.remote_in.iter().copied());
        schedule.push(mis.my_in);
        level_idx += 1;
    }

    // ---- Numeric interface factorization, level by level.
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for level in &schedule {
        // Finish the rows of this level: their remaining couplings to
        // *unfactored* nodes form U; couplings to already-factored interface
        // nodes were eliminated in earlier sweeps below.
        for &v in level {
            // lint: allow(unwrap): scheduling inserts every reduced row before it is scheduled
            let rr = reduced.remove(&v).expect("scheduled row missing");
            let mut diag = 0.0;
            let mut has_diag = false;
            let mut upper = Vec::with_capacity(rr.len());
            for (c, val) in rr {
                if c == v {
                    diag = val;
                    has_diag = true;
                } else {
                    upper.push((c, val));
                }
            }
            // lint: allow(unwrap): interface rows are created for every boundary row up front
            let row = rows.get_mut(&v).expect("interface row missing");
            let mut l = std::mem::take(&mut row.l);
            doctor.repair_or_defer(
                v,
                a.row_norm2(v),
                has_diag,
                &mut diag,
                &mut l,
                &mut upper,
                &mut my_err,
                1.0,
            );
            stats.nnz_u += upper.len() + 1;
            row.l = l;
            row.diag = diag;
            row.u = upper;
        }
        levels.push(level.clone());

        // Ship the new U rows along the current level's plan, then eliminate
        // this level's unknowns from the remaining rows (pattern-restricted).
        // Encoding per peer: U64 = [node, len, cols...]*, F64 = [diag, vals...]*.
        let pat: HashMap<usize, Vec<usize>> = reduced
            .iter()
            .map(|(&v, row)| (v, row.iter().map(|&(c, _)| c).collect()))
            .collect();
        let plan = build_level_links(ctx, dm.dist(), &pat);
        let level_set: HashSet<usize> = level.iter().copied().collect();
        let mut remote_u: HashMap<usize, FactorRow> = HashMap::new();
        plan.replay_tagged(
            ctx,
            tags::U0,
            |_, nodes| {
                let mut bu = Vec::new();
                let mut bf = Vec::new();
                for &v in nodes {
                    if !level_set.contains(&v) {
                        continue;
                    }
                    let row = &rows[&v];
                    bu.push(v as u64);
                    bu.push(row.u.len() as u64);
                    bu.extend(row.u.iter().map(|&(c, _)| c as u64));
                    bf.push(row.diag);
                    bf.extend(row.u.iter().map(|&(_, x)| x));
                }
                Payload::mixed(bu, bf)
            },
            |_, _, payload| {
                let (bu, bf) = payload.into_mixed();
                let (mut iu, mut ifl) = (0usize, 0usize);
                while iu < bu.len() {
                    let node = bu[iu] as usize;
                    let len = bu[iu + 1] as usize;
                    let cols = &bu[iu + 2..iu + 2 + len];
                    let diag = bf[ifl];
                    let vals = &bf[ifl + 1..ifl + 1 + len];
                    remote_u.insert(
                        node,
                        FactorRow {
                            l: Vec::new(),
                            diag,
                            u: cols
                                .iter()
                                .map(|&c| c as usize)
                                .zip(vals.iter().copied())
                                .collect(),
                        },
                    );
                    iu += 2 + len;
                    ifl += 1 + len;
                }
            },
        );
        // Remote members of this level, detectable from the shipped rows.
        let keys: Vec<usize> = reduced.keys().copied().collect();
        for i in keys {
            // lint: allow(unwrap): the level schedule covers every remaining row
            let rr = reduced.remove(&i).unwrap();
            let pivots: Vec<usize> = rr
                .iter()
                .map(|&(c, _)| c)
                .filter(|&c| c != i && (level_set.contains(&c) || remote_u.contains_key(&c)))
                .collect();
            if pivots.is_empty() {
                reduced.insert(i, rr);
                continue;
            }
            for (c, v) in rr {
                w.set(c, v);
            }
            let mut mults: Vec<(usize, f64)> = Vec::with_capacity(pivots.len());
            for k in pivots {
                let urow = if role[k] != 0 {
                    &rows[&k]
                } else {
                    &remote_u[&k]
                };
                let wk = w.get(k);
                w.drop_pos(k);
                // lint: allow(float-eq): skips exactly cancelled multipliers
                if wk == 0.0 {
                    continue;
                }
                let mult = wk / urow.diag;
                for &(j, uv) in &urow.u {
                    if w.contains(j) {
                        w.add(j, -mult * uv);
                    }
                }
                stats.flops += 2.0 * urow.u.len() as f64 + 1.0;
                ctx.work(2.0 * urow.u.len() as f64 + 1.0);
                mults.push((k, mult));
            }
            // lint: allow(unwrap): interface rows are created for every boundary row up front
            let row = rows.get_mut(&i).expect("interface row missing");
            row.l.extend(mults);
            row.l.sort_unstable_by_key(|&(c, _)| c);
            stats.nnz_l += row.l.len();
            reduced.insert(i, w.drain_sorted());
        }
    }

    // Global error check once at the end (the schedule loop above already
    // synchronised every rank the same number of times).
    let err_flag = ctx.all_reduce_sum_u64(my_err.map_or(0, |_| 1));
    if err_flag > 0 {
        return Err(collective_fault_verdict(ctx, &my_err));
    }
    stats.nnz_l = rows.values().map(|r| r.l.len()).sum();
    stats.levels = levels.len();
    stats.breakdowns_repaired = doctor.repairs();
    Ok(RankFactors {
        rank: ctx.rank(),
        interior: local.interior.clone(),
        interface: local.interface.clone(),
        levels,
        rows,
        initial_reduced_cols,
        stats,
    })
}
