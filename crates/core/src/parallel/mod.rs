//! The parallel ILUT / ILUT\* factorization (paper §4).
//!
//! Two phases per rank:
//!
//! 1. **Interior factorization** (zero communication): the rank's interior
//!    rows are ILUT-factored against each other; then each interface row is
//!    partially eliminated against the rank's own interior `U` rows
//!    (interface rows never couple to *remote* interiors), yielding the
//!    rank's slice of the global reduced matrix `A_I⁰` plus the initial
//!    interface `L` rows.
//! 2. **Interface factorization**: iteratively compute a distributed
//!    independent set `I_l` of the current reduced matrix, factor its rows
//!    (pure dropping — independence means no elimination is needed), ship
//!    the new `U` rows to the ranks whose remaining rows reference them, and
//!    apply Algorithm 4.2 to form `A_I^{l+1}`. ILUT keeps every
//!    above-threshold entry in the reduced rows; ILUT\* caps each row at
//!    `k·m` entries, which is the paper's key scalability modification.

pub mod assemble;
pub mod dist_mis;
pub mod ilu0;

pub use assemble::assemble_factors;
pub use ilu0::{par_ilu0, par_ilu0_with};

use crate::breakdown::{PivotDoctor, PivotFault};
use crate::dist::exchange::tags;
use crate::dist::{DistMatrix, LocalView};
use crate::options::{FactorError, IlutOptions};
use crate::serial::drop_rules::{selection_cost, threshold_and_cap};
use dist_mis::{build_level_links, dist_mis};
use pilut_par::{Ctx, Payload};
use pilut_sparse::WorkRow;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// One factored row in *elimination order* semantics: `l` holds couplings to
/// rows factored earlier, `u` to rows factored later; both sorted by global
/// column id. `L` has an implicit unit diagonal; `diag` is the `U` pivot.
#[derive(Clone, Debug, Default)]
pub struct FactorRow {
    pub l: Vec<(usize, f64)>,
    pub diag: f64,
    pub u: Vec<(usize, f64)>,
}

/// Counters describing one rank's factorization.
#[derive(Clone, Debug, Default)]
pub struct ParStats {
    /// Global number of interface levels (independent sets) — the paper's `q`.
    pub levels: usize,
    /// Modelled floating-point operations on this rank.
    pub flops: f64,
    /// Retained entries in L (strict) / U (incl. diagonal) on this rank.
    pub nnz_l: usize,
    pub nnz_u: usize,
    /// Entries in this rank's slice of the initial reduced matrix.
    pub reduced_nnz_initial: usize,
    /// Largest reduced-matrix slice seen across levels.
    pub reduced_nnz_peak: usize,
    /// Rows on this rank whose pivot the
    /// [`BreakdownPolicy`](crate::options::BreakdownPolicy) repaired;
    /// always 0 under `Abort`.
    pub breakdowns_repaired: usize,
}

/// One rank's share of the distributed factorization.
#[derive(Clone, Debug)]
pub struct RankFactors {
    pub rank: usize,
    /// Interior nodes in elimination order (ascending global id).
    pub interior: Vec<usize>,
    /// Interface nodes (ascending global id).
    pub interface: Vec<usize>,
    /// `levels[l]` = my interface nodes factored in global level `l`
    /// (possibly empty; every rank records every level).
    pub levels: Vec<Vec<usize>>,
    /// All my factored rows by global node id.
    pub rows: HashMap<usize, FactorRow>,
    /// Column pattern of my slice of the *initial* reduced matrix `A_I⁰`
    /// (after interior elimination, before any interface level) — used by
    /// the Figure 1/2 structure illustrations.
    pub initial_reduced_cols: Vec<(usize, Vec<usize>)>,
    pub stats: ParStats,
}

/// Agrees on a factorization error once at least one rank flagged a fault
/// (collective). Every rank min-reduces its first deferred fault encoded as
/// `row << 2 | kind`, then the id of the rank holding the winner. The
/// owning rank reports the detailed per-row error; its peers report
/// [`FactorError::RankFailure`] naming it.
pub(crate) fn collective_fault_verdict(
    ctx: &mut Ctx,
    my_err: &Option<(usize, PivotFault)>,
) -> FactorError {
    let me = ctx.rank() as u64;
    let mine = my_err.map_or(u64::MAX, |(row, fault)| ((row as u64) << 2) | fault.code());
    let winner = ctx.all_reduce_u64(vec![mine], pilut_par::collectives::ReduceOp::Min)[0];
    let owner = ctx.all_reduce_u64(
        vec![if mine == winner { me } else { u64::MAX }],
        pilut_par::collectives::ReduceOp::Min,
    )[0];
    if mine == winner {
        PivotFault::from_code(winner & 3).error_at((winner >> 2) as usize)
    } else {
        FactorError::RankFailure {
            rank: owner as usize,
        }
    }
}

/// Runs the parallel ILUT / ILUT\* factorization. Collective: every rank of
/// the machine must call it with the same `dm` and `opts`.
pub fn par_ilut(
    ctx: &mut Ctx,
    dm: &DistMatrix,
    local: &LocalView,
    opts: &IlutOptions,
) -> Result<RankFactors, FactorError> {
    opts.validate()?; // deterministic: every rank rejects the same way
    let mut doctor = PivotDoctor::new(opts.breakdown);
    let a = dm.matrix();
    let me = ctx.rank();
    let n = dm.n();

    // Role map: 0 = remote, 1 = my interior, 2 = my interface.
    let mut role = vec![0u8; n];
    for &v in &local.interior {
        role[v] = 1;
    }
    for &v in &local.interface {
        role[v] = 2;
    }

    let mut rows: HashMap<usize, FactorRow> = HashMap::with_capacity(local.len());
    let mut stats = ParStats::default();
    let mut w = WorkRow::new(n);
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut in_heap = vec![false; n];
    // Scratch buffer reused across rows by both phase-1 sweeps.
    let mut entries: Vec<(usize, f64)> = Vec::new();
    // First unusable pivot met on this rank, deferred to the collective
    // error check (only set under `BreakdownPolicy::Abort`).
    let mut my_err: Option<(usize, PivotFault)> = None;

    // ---- Phase 1: interior rows (ascending global id = elimination order).
    for &i in &local.interior {
        let norm_i = a.row_norm2(i);
        let tau_i = opts.tau * norm_i;
        let (cols, vals) = a.row(i);
        debug_assert!(heap.is_empty(), "heap drained by the previous row");
        for (&j, &v) in cols.iter().zip(vals) {
            w.set(j, v);
            if role[j] == 1 && j < i && !in_heap[j] {
                in_heap[j] = true;
                heap.push(Reverse(j));
            }
        }
        eliminate(
            ctx,
            &mut w,
            &mut heap,
            &mut in_heap,
            &rows,
            tau_i,
            i,
            &role,
            false,
            &mut stats,
        );
        // Split: lower = my interiors with smaller id (the multipliers);
        // everything else is "later" (interface nodes factor after ALL
        // interiors regardless of their global id).
        w.drain_sorted_into(&mut entries);
        stats.flops += selection_cost(entries.len());
        ctx.work(selection_cost(entries.len()));
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let mut diag = 0.0;
        let mut has_diag = false;
        for &(j, v) in &entries {
            if j == i {
                diag = v;
                has_diag = true;
            } else if role[j] == 1 && j < i {
                lower.push((j, v));
            } else {
                upper.push((j, v));
            }
        }
        let fallback = if tau_i > 0.0 { tau_i } else { 1.0 };
        doctor.repair_or_defer(
            i,
            norm_i,
            has_diag,
            &mut diag,
            &mut lower,
            &mut upper,
            &mut my_err,
            fallback,
        );
        let l = threshold_and_cap(lower, tau_i, opts.m, None);
        let u = threshold_and_cap(upper, tau_i, opts.m, None);
        stats.nnz_l += l.len();
        stats.nnz_u += u.len() + 1;
        rows.insert(i, FactorRow { l, diag, u });
    }

    // ---- Phase 1b: interface rows — eliminate my interiors, build the
    // initial reduced rows.
    let mut reduced: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
    let mut tau_of: HashMap<usize, f64> = HashMap::new();
    for &i in &local.interface {
        let tau_i = opts.tau * a.row_norm2(i);
        tau_of.insert(i, tau_i);
        let (cols, vals) = a.row(i);
        debug_assert!(heap.is_empty(), "heap drained by the previous row");
        for (&j, &v) in cols.iter().zip(vals) {
            w.set(j, v);
            if role[j] == 1 && !in_heap[j] {
                in_heap[j] = true;
                heap.push(Reverse(j));
            }
        }
        eliminate(
            ctx,
            &mut w,
            &mut heap,
            &mut in_heap,
            &rows,
            tau_i,
            i,
            &role,
            true,
            &mut stats,
        );
        w.drain_sorted_into(&mut entries);
        stats.flops += selection_cost(entries.len());
        ctx.work(selection_cost(entries.len()));
        let mut lower = Vec::new(); // my interior columns — factored earlier
        let mut rest = Vec::new(); // interface columns (mine or remote) + diag
        for &(j, v) in &entries {
            if role[j] == 1 {
                lower.push((j, v));
            } else {
                rest.push((j, v));
            }
        }
        let l = threshold_and_cap(lower, tau_i, opts.m, None);
        stats.nnz_l += l.len();
        rows.insert(
            i,
            FactorRow {
                l,
                diag: 0.0,
                u: Vec::new(),
            },
        );
        // Reduced row: threshold always applies; ILUT* additionally caps.
        let rr = threshold_and_cap(rest, tau_i, opts.reduced_cap(), Some(i));
        ctx.copy_words(rr.len() as f64);
        stats.reduced_nnz_initial += rr.len();
        reduced.insert(i, rr);
    }
    stats.reduced_nnz_peak = stats.reduced_nnz_initial;
    let mut initial_reduced_cols: Vec<(usize, Vec<usize>)> = reduced
        .iter()
        .map(|(&v, row)| (v, row.iter().map(|&(c, _)| c).collect()))
        .collect();
    initial_reduced_cols.sort_unstable_by_key(|&(v, _)| v);

    // ---- Phase 2: iterative interface factorization.
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut level_idx = 0u64;
    loop {
        // Collective loop head: termination and error detection.
        let flags = ctx.all_reduce_u64(
            vec![reduced.len() as u64, my_err.map_or(0, |_| 1)],
            pilut_par::collectives::ReduceOp::Sum,
        );
        if flags[1] > 0 {
            return Err(collective_fault_verdict(ctx, &my_err));
        }
        if flags[0] == 0 {
            break;
        }

        // Track the peak reduced-matrix size.
        let cur_nnz: usize = reduced.values().map(|r| r.len()).sum();
        stats.reduced_nnz_peak = stats.reduced_nnz_peak.max(cur_nnz);

        // Column patterns for the MIS and the links.
        let reduced_cols: HashMap<usize, Vec<usize>> = reduced
            .iter()
            .map(|(&v, row)| (v, row.iter().map(|&(c, _)| c).collect()))
            .collect();
        let plan = build_level_links(ctx, dm.dist(), &reduced_cols);
        let mis = dist_mis(
            ctx,
            &plan,
            &reduced_cols,
            opts.seed,
            level_idx,
            opts.mis_rounds,
        )?;

        // Factor my I_l rows: independence means only rule-2 dropping.
        for &v in &mis.my_in {
            // lint: allow(unwrap): set members always carry a reduced row
            let rr = reduced.remove(&v).expect("member without a reduced row");
            let tau_v = tau_of[&v];
            let mut diag = 0.0;
            let mut has_diag = false;
            let mut off = Vec::with_capacity(rr.len());
            for (c, val) in rr {
                if c == v {
                    diag = val;
                    has_diag = true;
                } else {
                    off.push((c, val));
                }
            }
            // lint: allow(unwrap): interface rows are created for every boundary row up front
            let row = rows.get_mut(&v).expect("interface row missing");
            let mut l = std::mem::take(&mut row.l);
            let fallback = if tau_v > 0.0 { tau_v } else { 1.0 };
            doctor.repair_or_defer(
                v,
                a.row_norm2(v),
                has_diag,
                &mut diag,
                &mut l,
                &mut off,
                &mut my_err,
                fallback,
            );
            let u = threshold_and_cap(off, tau_v, opts.m, None);
            stats.flops += selection_cost(u.len());
            ctx.work(selection_cost(u.len()));
            stats.nnz_u += u.len() + 1;
            row.l = l;
            row.diag = diag;
            row.u = u;
        }
        levels.push(mis.my_in.clone());

        // Ship the new U rows directly along the level plan: each rank
        // sends one (possibly empty) batch to every peer that references its
        // nodes and receives one from every peer whose nodes it references.
        // Encoding per peer: U64 = [node, len, cols...]*, F64 = [diag, vals...]*.
        let mut remote_u: HashMap<usize, FactorRow> = HashMap::new();
        plan.replay_tagged(
            ctx,
            tags::UROWS,
            |_, nodes| {
                let mut bu = Vec::new();
                let mut bf = Vec::new();
                for &v in nodes {
                    if mis.my_in.binary_search(&v).is_err() {
                        continue;
                    }
                    let row = &rows[&v];
                    bu.push(v as u64);
                    bu.push(row.u.len() as u64);
                    bu.extend(row.u.iter().map(|&(c, _)| c as u64));
                    bf.push(row.diag);
                    bf.extend(row.u.iter().map(|&(_, x)| x));
                }
                Payload::mixed(bu, bf)
            },
            |_, _, payload| {
                let (bu, bf) = payload.into_mixed();
                let mut iu = 0usize;
                let mut ifl = 0usize;
                while iu < bu.len() {
                    let node = bu[iu] as usize;
                    let len = bu[iu + 1] as usize;
                    let cols = &bu[iu + 2..iu + 2 + len];
                    let diag = bf[ifl];
                    let vals = &bf[ifl + 1..ifl + 1 + len];
                    remote_u.insert(
                        node,
                        FactorRow {
                            l: Vec::new(),
                            diag,
                            u: cols
                                .iter()
                                .map(|&c| c as usize)
                                .zip(vals.iter().copied())
                                .collect(),
                        },
                    );
                    iu += 2 + len;
                    ifl += 1 + len;
                }
            },
        );

        // Algorithm 4.2: eliminate the I_l unknowns from my remaining rows.
        let in_level = |j: usize| -> bool {
            mis.my_in.binary_search(&j).is_ok() || mis.remote_in.binary_search(&j).is_ok()
        };
        let remaining: Vec<usize> = reduced.keys().copied().collect();
        for i in remaining {
            // lint: allow(unwrap): the level schedule covers every remaining row
            let rr = reduced.remove(&i).unwrap();
            let tau_i = tau_of[&i];
            // Pivot columns of this row that belong to I_l (no new ones can
            // appear during the sweep: U rows of independent nodes contain no
            // I_l columns).
            let pivots: Vec<usize> = rr
                .iter()
                .map(|&(c, _)| c)
                .filter(|&c| c != i && in_level(c))
                .collect();
            if pivots.is_empty() {
                reduced.insert(i, rr);
                continue;
            }
            for (c, v) in rr {
                w.set(c, v);
            }
            let mut mults: Vec<(usize, f64)> = Vec::with_capacity(pivots.len());
            for k in pivots {
                let urow = if role[k] != 0 {
                    rows.get(&k)
                } else {
                    remote_u.get(&k)
                };
                // lint: allow(unwrap): pivot rows are received before their level runs
                let urow = urow.expect("missing U row for level pivot");
                let wk = w.get(k);
                w.drop_pos(k);
                // lint: allow(float-eq): skips exactly cancelled multipliers
                if wk == 0.0 {
                    continue;
                }
                let mult = wk / urow.diag;
                stats.flops += 1.0;
                if mult.abs() < tau_i {
                    continue; // first dropping rule
                }
                for &(j, uv) in &urow.u {
                    w.add(j, -mult * uv);
                }
                let cost = 2.0 * urow.u.len() as f64;
                stats.flops += cost;
                ctx.work(cost + 1.0);
                mults.push((k, mult));
            }
            // Merge multipliers into the row's L and reapply rule 3.
            // lint: allow(unwrap): interface rows are created for every boundary row up front
            let row = rows.get_mut(&i).expect("interface row missing");
            let mut lmerge = std::mem::take(&mut row.l);
            lmerge.extend(mults);
            let cost = selection_cost(lmerge.len());
            stats.flops += cost;
            ctx.work(cost);
            row.l = threshold_and_cap(lmerge, tau_i, opts.m, None);
            // The surviving working row becomes the next-level reduced row.
            let rest = w.drain_sorted();
            let rr = threshold_and_cap(rest, tau_i, opts.reduced_cap(), Some(i));
            ctx.copy_words(rr.len() as f64);
            reduced.insert(i, rr);
        }
        level_idx += 1;
    }

    // Recompute L fill exactly (the incremental bookkeeping above is
    // approximate when rows shrink during merges).
    stats.nnz_l = rows.values().map(|r| r.l.len()).sum();
    stats.levels = levels.len();
    stats.breakdowns_repaired = doctor.repairs();
    Ok(RankFactors {
        rank: me,
        interior: local.interior.clone(),
        interface: local.interface.clone(),
        levels,
        rows,
        initial_reduced_cols,
        stats,
    })
}

/// The shared elimination sweep of phases 1/1b: pops eligible pivots in
/// ascending global order, applies dropping rule 1, and updates `w` with the
/// pivot's `U` row. Eligible pivots are this rank's interiors (`role == 1`);
/// for an *interior* row `i` only interiors preceding it (`j < i`) are
/// eligible (`all_interiors = false`); for an *interface* row every interior
/// is (`all_interiors = true`), since all interiors factor before any
/// interface node. Fill positions join the heap under the same rule.
#[allow(clippy::too_many_arguments)]
fn eliminate(
    ctx: &mut Ctx,
    w: &mut WorkRow,
    heap: &mut BinaryHeap<Reverse<usize>>,
    in_heap: &mut [bool],
    rows: &HashMap<usize, FactorRow>,
    tau_i: f64,
    i: usize,
    role: &[u8],
    all_interiors: bool,
    stats: &mut ParStats,
) {
    while let Some(Reverse(k)) = heap.pop() {
        in_heap[k] = false;
        let wk = w.get(k);
        // lint: allow(float-eq): skips exactly cancelled multipliers
        if wk == 0.0 {
            w.drop_pos(k);
            continue;
        }
        let urow = &rows[&k];
        let mult = wk / urow.diag;
        stats.flops += 1.0;
        if mult.abs() < tau_i {
            w.drop_pos(k);
            continue;
        }
        w.set(k, mult);
        for &(j, uv) in &urow.u {
            let newly = !w.contains(j);
            w.add(j, -mult * uv);
            // New fill joins the elimination when it lands on an eligible
            // pivot column.
            if newly && role[j] == 1 && (all_interiors || j < i) && !in_heap[j] {
                in_heap[j] = true;
                heap.push(Reverse(j));
            }
        }
        let cost = 2.0 * urow.u.len() as f64 + 1.0;
        stats.flops += cost - 1.0;
        ctx.work(cost);
    }
}
