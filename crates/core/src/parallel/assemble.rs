//! Gathering a distributed factorization into one serial object.
//!
//! The parallel factorization eliminates the unknowns in a specific global
//! order — each rank's interiors, then the interface levels. Assembling the
//! per-rank [`RankFactors`] under that order yields an ordinary
//! [`LuFactors`] plus the [`Permutation`] relating the orders, which lets
//! tests, debuggers, and single-node consumers apply or inspect a parallel
//! factorization with the plain serial machinery.

use crate::factors::{LuFactors, SparseRow};
use crate::parallel::RankFactors;
use pilut_sparse::Permutation;

/// The assembled form of a distributed factorization.
pub struct AssembledFactors {
    /// Factors in *elimination order* numbering.
    pub factors: LuFactors,
    /// Maps original node ids to elimination positions
    /// (`perm.new_of(node) = position`).
    pub perm: Permutation,
}

impl AssembledFactors {
    /// Applies `(LU)⁻¹` in the **original** numbering.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let pb = self.perm.apply_vec(b);
        let px = self.factors.solve(&pb);
        self.perm.unapply_vec(&px)
    }
}

/// Merges the per-rank outputs of a parallel factorization (one entry per
/// rank, rank order) into a serial [`LuFactors`] under the global
/// elimination order.
///
/// # Panics
/// Panics if the rank outputs are inconsistent (missing rows, mismatched
/// level counts) — they must all come from one collective run.
pub fn assemble_factors(per_rank: &[RankFactors], n: usize) -> AssembledFactors {
    // Build the elimination order: interiors rank by rank, then each level
    // across ranks (members of one level are independent, so any order
    // within the level is valid; sorted keeps it canonical).
    let q = per_rank.first().map_or(0, |rf| rf.levels.len());
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for rf in per_rank {
        assert_eq!(
            rf.levels.len(),
            q,
            "rank {} disagrees on level count",
            rf.rank
        );
        order.extend_from_slice(&rf.interior);
    }
    for l in 0..q {
        let mut level: Vec<usize> = per_rank
            .iter()
            .flat_map(|rf| rf.levels[l].iter().copied())
            .collect();
        level.sort_unstable();
        order.extend_from_slice(&level);
    }
    assert_eq!(order.len(), n, "rank outputs do not cover the matrix");
    let perm = Permutation::from_old_order(&order);

    let mut l_rows: Vec<SparseRow> = vec![SparseRow::default(); n];
    let mut u_rows: Vec<SparseRow> = vec![SparseRow::default(); n];
    for rf in per_rank {
        for (&node, row) in &rf.rows {
            let pos = perm.new_of(node);
            let l: Vec<(usize, f64)> = row.l.iter().map(|&(c, v)| (perm.new_of(c), v)).collect();
            let mut u: Vec<(usize, f64)> =
                row.u.iter().map(|&(c, v)| (perm.new_of(c), v)).collect();
            u.push((pos, row.diag));
            l_rows[pos] = SparseRow::from_pairs(l);
            u_rows[pos] = SparseRow::from_pairs(u);
        }
    }
    let factors = LuFactors {
        n,
        l: l_rows,
        u: u_rows,
    };
    debug_assert!(
        factors.check_structure().is_ok(),
        "{:?}",
        factors.check_structure()
    );
    AssembledFactors { factors, perm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistMatrix;
    use crate::options::IlutOptions;
    use crate::parallel::par_ilut;
    use pilut_par::{Machine, MachineModel};
    use pilut_sparse::gen;

    #[test]
    fn assembled_factors_solve_like_the_machine() {
        let a = gen::laplace_2d(8, 8);
        let n = a.n_rows();
        let dm = DistMatrix::from_matrix(a.clone(), 3, 7);
        let opts = IlutOptions::new(n, 0.0); // exact
        let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            par_ilut(ctx, &dm, &local, &opts).unwrap()
        });
        let asm = assemble_factors(&out.results, n);
        asm.factors.check_structure().unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let b = a.spmv_owned(&x_true);
        let x = asm.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn elimination_order_is_triangular() {
        // After assembly, every L column index must precede its row and
        // every U column must follow it — check_structure verifies this, so
        // a dropped-factorization assembly exercising interface levels must
        // pass it too.
        let a = gen::laplace_3d(6, 6, 6);
        let dm = DistMatrix::from_matrix(a, 4, 11);
        let opts = IlutOptions::star(5, 1e-4, 2);
        let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            par_ilut(ctx, &dm, &local, &opts).unwrap()
        });
        let asm = assemble_factors(&out.results, 216);
        asm.factors.check_structure().unwrap();
    }
}
