//! The replay half of [`CommPlan`]: the steady-state data plane.
//!
//! Everything in this file runs *after* a plan is built, inside the
//! plan-once/replay-many steady state, and is therefore on the
//! `no-alloc-in-hot` lint list and under the zero-alloc bench gate. The
//! discipline:
//!
//! * values-only rounds ship pooled buffers ([`pilut_par::pool`]); the
//!   receiver reads them through a borrow and both sides `recycle` their
//!   payload handles, so whichever reference drops last (the receiver,
//!   or the sender's reliable-delivery retention on cumulative ACK)
//!   shelves the buffer back — no per-round heap traffic on either side;
//! * exact-framed rounds stage their frames in a plan-owned scratch
//!   vector whose capacity is reserved at build time;
//! * every replay entry point is wrapped in an `alloc_audit` region, so
//!   the bench harness can attribute (and gate to zero) whatever heap
//!   traffic still slips through.
//!
//! The allocation sites that remain are annotated `allow(alloc-in-hot)`
//! with the setup-vs-steady reasoning inline.

use super::{CommPlan, DistVector};
use crate::dist::LocalView;
use pilut_par::{pool, Ctx, Payload};
use std::collections::HashSet;

impl CommPlan {
    /// The round's wire tag for the send half under `base`, advancing the
    /// send counter. Computed once per round — every peer of one round must
    /// ship under the same tag.
    pub(super) fn send_round_tag(&self, base: u64) -> u64 {
        let mut rounds = self.rounds.borrow_mut();
        // lint: allow(alloc-in-hot): first round under a base tag inserts one map node (setup)
        let entry = rounds.entry(base).or_insert((0, 0));
        let tag = base + entry.0;
        entry.0 += 1;
        tag
    }

    /// The round's wire tag for the receive half under `base`, advancing
    /// the receive counter.
    pub(super) fn recv_round_tag(&self, base: u64) -> u64 {
        let mut rounds = self.rounds.borrow_mut();
        // lint: allow(alloc-in-hot): first round under a base tag inserts one map node (setup)
        let entry = rounds.entry(base).or_insert((0, 0));
        let tag = base + entry.1;
        entry.1 += 1;
        tag
    }

    /// One directed replay round under the plan's own tag: see
    /// [`CommPlan::replay_tagged`]. On a [`CommPlan::rebase`]d plan the
    /// wire tags come from the private base while the traffic counters
    /// stay attributed to the original protocol tag.
    pub fn replay(
        &self,
        ctx: &mut Ctx,
        make: impl FnMut(usize, &[usize]) -> Payload,
        take: impl FnMut(usize, &[usize], Payload),
    ) {
        self.replay_dir(ctx, self.tag, self.stats_tag, make, take);
    }

    /// One directed replay round under an explicit tag (for protocols that
    /// multiplex several message kinds over one plan, like the MIS steps):
    /// sends `make(peer, nodes)` to every send-side peer, then hands each
    /// receive-side peer's payload to `take(peer, nodes, payload)`, both in
    /// ascending peer order. Exactly one message per peer per round. The
    /// explicit tag names both the wire namespace and the counter key.
    pub fn replay_tagged(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        make: impl FnMut(usize, &[usize]) -> Payload,
        take: impl FnMut(usize, &[usize], Payload),
    ) {
        self.replay_dir(ctx, tag, tag, make, take);
    }

    /// The shared directed round: wire tags under `wire_base`, counters
    /// under `stats_tag`. Every public replay entry funnels through here so
    /// the wire-vs-stats split cannot drift between them.
    fn replay_dir(
        &self,
        ctx: &mut Ctx,
        wire_base: u64,
        stats_tag: u64,
        mut make: impl FnMut(usize, &[usize]) -> Payload,
        mut take: impl FnMut(usize, &[usize], Payload),
    ) {
        let _audit = pilut_allocaudit::region("plan_replay");
        // Producer-defined payloads: predict the message count, not bytes.
        ctx.note_planned(stats_tag, self.predicted_cost().directed_messages, 0, false);
        let send_tag = self.send_round_tag(wire_base);
        for (peer, nodes) in &self.send {
            let payload = make(*peer, nodes);
            ctx.send_as(*peer, send_tag, stats_tag, payload);
        }
        let recv_tag = self.recv_round_tag(wire_base);
        for (peer, nodes) in &self.recv {
            let payload = ctx.recv(*peer, recv_tag);
            take(*peer, nodes, payload);
        }
    }

    /// One directed replay round with an **exact** byte prediction: every
    /// send-side frame is built *before* any byte ships, the frame sizes
    /// are summed, and the ledger records `(messages, bytes)` with the
    /// exact flag set — `bench-verify --slack 0` then gates the tag
    /// byte-for-byte. This is the replay the delta-MIS rounds run on;
    /// producer-defined rounds whose sizes the caller cannot commit to up
    /// front keep using [`CommPlan::replay_tagged`]. Frames are staged in
    /// the plan-owned scratch (reserved at build) so the round itself
    /// stays allocation-free.
    pub fn replay_exact_tagged(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        mut make: impl FnMut(usize, &[usize]) -> Payload,
        mut take: impl FnMut(usize, &[usize], Payload),
    ) {
        let _audit = pilut_allocaudit::region("plan_replay");
        let mut frames = self.frame_scratch.borrow_mut();
        frames.clear();
        for (peer, nodes) in &self.send {
            frames.push(make(*peer, nodes));
        }
        let bytes: u64 = frames.iter().map(|f| f.bytes() as u64).sum();
        let (messages, bytes) = self.predicted_cost().exact_round(false, bytes);
        ctx.note_planned(tag, messages, bytes, true);
        let send_tag = self.send_round_tag(tag);
        for ((peer, _), frame) in self.send.iter().zip(frames.drain(..)) {
            ctx.send_as(*peer, send_tag, tag, frame);
        }
        drop(frames);
        let recv_tag = self.recv_round_tag(tag);
        for (peer, nodes) in &self.recv {
            let payload = ctx.recv(*peer, recv_tag);
            take(*peer, nodes, payload);
        }
    }

    /// The symmetric counterpart of [`CommPlan::replay_exact_tagged`]: one
    /// exactly-predicted message to every union peer, frames built and
    /// summed before any byte ships.
    pub fn replay_symmetric_exact_tagged(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        mut make: impl FnMut(usize) -> Payload,
        mut take: impl FnMut(usize, Payload),
    ) {
        let _audit = pilut_allocaudit::region("plan_replay");
        let mut frames = self.frame_scratch.borrow_mut();
        frames.clear();
        for &peer in &self.union_peers {
            frames.push(make(peer));
        }
        let bytes: u64 = frames.iter().map(|f| f.bytes() as u64).sum();
        let (messages, bytes) = self.predicted_cost().exact_round(true, bytes);
        ctx.note_planned(tag, messages, bytes, true);
        let send_tag = self.send_round_tag(tag);
        for (&peer, frame) in self.union_peers.iter().zip(frames.drain(..)) {
            ctx.send_as(peer, send_tag, tag, frame);
        }
        drop(frames);
        let recv_tag = self.recv_round_tag(tag);
        for &peer in &self.union_peers {
            let payload = ctx.recv(peer, recv_tag);
            take(peer, payload);
        }
    }

    /// [`CommPlan::replay_exact_tagged`] over a round-dependent **live
    /// subset** of the plan's links: peers absent from `live_send` get no
    /// frame this round, peers absent from `live_recv` are not received
    /// from, and the ledger records the surviving traffic exactly. The two
    /// sets must be mirror-consistent across ranks (`q ∈ live_send` on rank
    /// `r` iff `r ∈ live_recv` on rank `q`); callers derive them from state
    /// both endpoints provably share — the delta-MIS rounds use the
    /// shipped-state view, which owner and referencer update in lockstep —
    /// otherwise the replay deadlocks, which checked runs diagnose. Round
    /// tags advance exactly as in the dense replay, whether or not any link
    /// is live, so sparse and dense rounds stay aligned across ranks.
    pub fn replay_exact_sparse_tagged(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        live_send: &HashSet<usize>,
        live_recv: &HashSet<usize>,
        mut make: impl FnMut(usize, &[usize]) -> Payload,
        mut take: impl FnMut(usize, &[usize], Payload),
    ) {
        let _audit = pilut_allocaudit::region("plan_replay");
        let mut frames = self.frame_scratch.borrow_mut();
        frames.clear();
        for (peer, nodes) in &self.send {
            if live_send.contains(peer) {
                frames.push(make(*peer, nodes));
            }
        }
        let bytes: u64 = frames.iter().map(|f| f.bytes() as u64).sum();
        ctx.note_planned(tag, frames.len() as u64, bytes, true);
        let send_tag = self.send_round_tag(tag);
        let mut staged = frames.drain(..);
        for (peer, _) in &self.send {
            if live_send.contains(peer) {
                // lint: allow(unwrap): one frame was staged per live send peer just above
                let frame = staged.next().expect("frame staged per live peer");
                ctx.send_as(*peer, send_tag, tag, frame);
            }
        }
        drop(staged);
        drop(frames);
        let recv_tag = self.recv_round_tag(tag);
        for (peer, nodes) in &self.recv {
            if !live_recv.contains(peer) {
                continue;
            }
            let payload = ctx.recv(*peer, recv_tag);
            take(*peer, nodes, payload);
        }
    }

    /// The symmetric counterpart of
    /// [`CommPlan::replay_exact_sparse_tagged`]: one exactly-predicted
    /// message to every union peer in `live`, which must be agreed by both
    /// endpoints of each pair (`q ∈ live` on rank `r` iff `r ∈ live` on
    /// rank `q`).
    pub fn replay_symmetric_exact_sparse_tagged(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        live: &HashSet<usize>,
        mut make: impl FnMut(usize) -> Payload,
        mut take: impl FnMut(usize, Payload),
    ) {
        let _audit = pilut_allocaudit::region("plan_replay");
        let mut frames = self.frame_scratch.borrow_mut();
        frames.clear();
        for &peer in &self.union_peers {
            if live.contains(&peer) {
                frames.push(make(peer));
            }
        }
        let bytes: u64 = frames.iter().map(|f| f.bytes() as u64).sum();
        ctx.note_planned(tag, frames.len() as u64, bytes, true);
        let send_tag = self.send_round_tag(tag);
        let mut staged = frames.drain(..);
        for &peer in &self.union_peers {
            if live.contains(&peer) {
                // lint: allow(unwrap): one frame was staged per live union peer just above
                let frame = staged.next().expect("frame staged per live peer");
                ctx.send_as(peer, send_tag, tag, frame);
            }
        }
        drop(staged);
        drop(frames);
        let recv_tag = self.recv_round_tag(tag);
        for &peer in &self.union_peers {
            if !live.contains(&peer) {
                continue;
            }
            let payload = ctx.recv(peer, recv_tag);
            take(peer, payload);
        }
    }

    /// One symmetric replay round: every rank pair in the *union* of the two
    /// plan directions exchanges exactly one message (used by MIS step 3,
    /// where confirmations flow owner→referencer but kills flow the other
    /// way).
    pub fn replay_symmetric_tagged(
        &self,
        ctx: &mut Ctx,
        tag: u64,
        mut make: impl FnMut(usize) -> Payload,
        mut take: impl FnMut(usize, Payload),
    ) {
        let _audit = pilut_allocaudit::region("plan_replay");
        ctx.note_planned(tag, self.predicted_cost().symmetric_messages, 0, false);
        let send_tag = self.send_round_tag(tag);
        for &peer in &self.union_peers {
            let payload = make(peer);
            ctx.send_as(peer, send_tag, tag, payload);
        }
        let recv_tag = self.recv_round_tag(tag);
        for &peer in &self.union_peers {
            let payload = ctx.recv(peer, recv_tag);
            take(peer, payload);
        }
    }

    /// Values-only halo replay: ships the owned values named by the send
    /// schedule (one `f64` batch per peer, no node ids on the wire) and
    /// scatters the received batches into `v`'s halo. Send buffers come
    /// from the registered-buffer pool (warmed at build time) and receive
    /// buffers are returned to it, so a replay performs no heap
    /// allocation on either side.
    pub fn replay_halo(&self, ctx: &mut Ctx, local: &LocalView, v: &mut DistVector) {
        let _audit = pilut_allocaudit::region("replay_halo");
        // Values-only wire format: the byte prediction is exact.
        let cost = self.predicted_cost();
        ctx.note_planned(
            self.stats_tag,
            cost.directed_messages,
            cost.value_bytes,
            true,
        );
        let send_tag = self.send_round_tag(self.tag);
        for (peer, nodes) in &self.send {
            let mut vals = pool::take_f64(nodes.len());
            vals.extend(nodes.iter().map(
                // lint: allow(unwrap): the plan was built from this view's own nodes
                |&g| v.owned[local.pos_of(g).expect("plan refers to non-local node")],
            ));
            ctx.copy_words(vals.len() as f64);
            ctx.send_as(*peer, send_tag, self.stats_tag, Payload::f64s(vals));
        }
        let recv_tag = self.recv_round_tag(self.tag);
        for (peer, nodes) in &self.recv {
            // Borrow the values in place, then recycle the handle: under
            // reliable delivery the sender still retains the frame, and
            // `into_f64` here would deep-copy every round while the pooled
            // buffer died with the retained clone. Whichever side drops
            // the last reference (us now, or the sender's cumulative-ACK
            // release) shelves the buffer back into the pool.
            let payload = ctx.recv(*peer, recv_tag);
            let vals = payload.as_f64();
            assert_eq!(vals.len(), nodes.len(), "plan mismatch from rank {peer}");
            for (&g, &val) in nodes.iter().zip(vals) {
                v.halo[g] = val;
            }
            ctx.copy_words(nodes.len() as f64);
            payload.recycle();
        }
    }

    /// The send half of a values-only round: one `f64` batch per send-side
    /// peer, values in the agreed node order, staged in pooled buffers.
    /// Pairs with a matching [`CommPlan::recv_values`] on the other side —
    /// the triangular sweeps use the halves at different loop iterations,
    /// which is why they are split.
    pub fn send_values(&self, ctx: &mut Ctx, value_of: impl Fn(usize) -> f64) {
        let _audit = pilut_allocaudit::region("send_values");
        let cost = self.predicted_cost();
        ctx.note_planned(
            self.stats_tag,
            cost.directed_messages,
            cost.value_bytes,
            true,
        );
        let send_tag = self.send_round_tag(self.tag);
        for (peer, nodes) in &self.send {
            let mut vals = pool::take_f64(nodes.len());
            vals.extend(nodes.iter().map(|&g| value_of(g)));
            ctx.copy_words(vals.len() as f64);
            ctx.send_as(*peer, send_tag, self.stats_tag, Payload::f64s(vals));
        }
    }

    /// The receive half of a values-only round: drains one `f64` batch per
    /// recv-side peer, hands each `(node, value)` to `take`, and recycles
    /// the batch toward the registered-buffer pool (the values are read
    /// through a borrow — see [`CommPlan::replay_halo`] for why the
    /// receiver must not unwrap the payload).
    pub fn recv_values(&self, ctx: &mut Ctx, mut take: impl FnMut(usize, f64)) {
        let _audit = pilut_allocaudit::region("recv_values");
        let recv_tag = self.recv_round_tag(self.tag);
        for (peer, nodes) in &self.recv {
            let payload = ctx.recv(*peer, recv_tag);
            let vals = payload.as_f64();
            assert_eq!(vals.len(), nodes.len(), "plan mismatch from rank {peer}");
            for (&g, &val) in nodes.iter().zip(vals) {
                take(g, val);
            }
            ctx.copy_words(nodes.len() as f64);
            payload.recycle();
        }
    }
}
