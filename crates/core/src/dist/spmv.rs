//! Distributed sparse matrix–vector product.
//!
//! One of the three kernels of a parallel iterative method (paper §1). The
//! communication pattern — push boundary `x` values to the neighbouring
//! ranks that reference them — is fixed by the matrix, so it is planned once
//! ([`SpmvPlan::build`], a collective) and replayed on every product.

use crate::dist::{DistMatrix, LocalView};
use pilut_par::{Ctx, Payload};

/// Tag namespace for SpMV traffic (FIFO matching per rank pair keeps
/// repeated products with a constant tag unambiguous).
const TAG_SPMV: u64 = 1 << 20;

/// The communication plan of a rank for repeated products.
pub struct SpmvPlan {
    /// `(peer, my nodes to send, scratch positions)` — values of these local
    /// nodes go to `peer`, in this order.
    send: Vec<(usize, Vec<usize>)>,
    /// `(peer, global nodes received)` — the order `peer` sends values in.
    recv: Vec<(usize, Vec<usize>)>,
    /// Dense global→value scratch for remote columns.
    x_remote: Vec<f64>,
}

impl SpmvPlan {
    /// Collectively builds the exchange plan (every rank must call this).
    pub fn build(ctx: &mut Ctx, dm: &DistMatrix, local: &LocalView) -> SpmvPlan {
        let me = ctx.rank();
        // Remote columns referenced by my rows, grouped by owner.
        let mut needed: Vec<Vec<usize>> = vec![Vec::new(); ctx.nprocs()];
        for &i in &local.nodes {
            for &j in dm.matrix().row(i).0 {
                if !local.owns(j) {
                    needed[dm.dist().owner(j)].push(j);
                }
            }
        }
        let mut sends = Vec::new();
        let mut recv = Vec::new();
        for (owner, list) in needed.iter_mut().enumerate() {
            if list.is_empty() {
                continue;
            }
            list.sort_unstable();
            list.dedup();
            debug_assert_ne!(owner, me, "own columns are never remote");
            sends.push((
                owner,
                Payload::u64s(list.iter().map(|&x| x as u64).collect()),
            ));
            recv.push((owner, list.clone()));
        }
        let incoming = ctx.exchange(sends);
        let mut send = Vec::new();
        for (peer, payload) in incoming {
            let nodes: Vec<usize> = payload.into_u64().into_iter().map(|x| x as usize).collect();
            debug_assert!(nodes.iter().all(|&v| local.owns(v)));
            send.push((peer, nodes));
        }
        SpmvPlan {
            send,
            recv,
            x_remote: vec![0.0; dm.n()],
        }
    }

    /// Number of boundary values this rank ships per product.
    pub fn sent_values(&self) -> usize {
        self.send.iter().map(|(_, v)| v.len()).sum()
    }
}

/// Computes the local block of `y = A x`. `x` holds this rank's values in
/// local-view order; the result is in the same order.
pub fn dist_spmv(
    ctx: &mut Ctx,
    dm: &DistMatrix,
    local: &LocalView,
    plan: &mut SpmvPlan,
    x: &[f64],
) -> Vec<f64> {
    assert_eq!(x.len(), local.len());
    // Push boundary values.
    for (peer, nodes) in &plan.send {
        let vals: Vec<f64> = nodes
            .iter()
            // lint: allow(unwrap): the plan was built from this view's own nodes
            .map(|&g| x[local.pos_of(g).expect("plan refers to non-local node")])
            .collect();
        ctx.copy_words(vals.len() as f64);
        ctx.send(*peer, TAG_SPMV, Payload::f64s(vals));
    }
    // Receive and scatter.
    for (peer, nodes) in &plan.recv {
        let vals = ctx.recv(*peer, TAG_SPMV).into_f64();
        assert_eq!(vals.len(), nodes.len(), "plan mismatch from rank {peer}");
        for (&g, v) in nodes.iter().zip(vals) {
            plan.x_remote[g] = v;
        }
        ctx.copy_words(nodes.len() as f64);
    }
    // Local product.
    let mut y = vec![0.0; local.len()];
    let mut flops = 0usize;
    for (out, &i) in y.iter_mut().zip(&local.nodes) {
        let (cols, vals) = dm.matrix().row(i);
        let mut acc = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            let xj = match local.pos_of(j) {
                Some(p) => x[p],
                None => plan.x_remote[j],
            };
            acc += v * xj;
        }
        flops += 2 * cols.len();
        *out = acc;
    }
    ctx.work(flops as f64);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_par::{Machine, MachineModel};
    use pilut_sparse::gen;

    fn check_matches_serial(a: pilut_sparse::CsrMatrix, p: usize) {
        let n = a.n_rows();
        let x_global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y_serial = a.spmv_owned(&x_global);
        let dm = DistMatrix::from_matrix(a, p, 11);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            let x_local: Vec<f64> = local.nodes.iter().map(|&g| x_global[g]).collect();
            let y_local = dist_spmv(ctx, &dm, &local, &mut plan, &x_local);
            (local.nodes.clone(), y_local)
        });
        let mut y = vec![f64::NAN; n];
        for (nodes, vals) in out.results {
            for (g, v) in nodes.into_iter().zip(vals) {
                y[g] = v;
            }
        }
        for i in 0..n {
            assert!(
                (y[i] - y_serial[i]).abs() < 1e-12,
                "row {i}: {} vs {}",
                y[i],
                y_serial[i]
            );
        }
    }

    #[test]
    fn matches_serial_on_grid() {
        check_matches_serial(gen::convection_diffusion_2d(12, 12, 4.0, -2.0), 4);
    }

    #[test]
    fn matches_serial_on_torso() {
        check_matches_serial(gen::fem_torso(8, 3), 3);
    }

    #[test]
    fn single_rank_needs_no_messages() {
        let a = gen::laplace_2d(6, 6);
        let dm = DistMatrix::from_matrix(a, 1, 1);
        let out = Machine::run_checked(1, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(0);
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            assert_eq!(plan.sent_values(), 0);
            let x = vec![1.0; local.len()];
            dist_spmv(ctx, &dm, &local, &mut plan, &x)
        });
        // Row sums of the Laplacian are nonnegative.
        assert!(out.results[0].iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn repeated_products_reuse_plan() {
        let a = gen::laplace_2d(10, 10);
        let dm = DistMatrix::from_matrix(a, 2, 5);
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            let x = vec![1.0; local.len()];
            let y1 = dist_spmv(ctx, &dm, &local, &mut plan, &x);
            let y2 = dist_spmv(ctx, &dm, &local, &mut plan, &x);
            (y1, y2)
        });
        for (y1, y2) in out.results {
            assert_eq!(y1, y2);
        }
    }
}
