//! Distributed sparse matrix–vector product.
//!
//! One of the three kernels of a parallel iterative method (paper §1). The
//! communication pattern — push boundary `x` values to the neighbouring
//! ranks that reference them — is fixed by the matrix, so it is planned once
//! ([`SpmvPlan::build`], a collective wrapping [`CommPlan::build`]) and
//! replayed on every product as a values-only halo exchange
//! ([`CommPlan::replay_halo`]).

use crate::dist::exchange::{tags, CommPlan, DistVector};
use crate::dist::{DistMatrix, LocalView};
use pilut_par::Ctx;

/// The communication plan of a rank for repeated products: the halo
/// exchange schedule plus the [`DistVector`] scratch it replays into.
pub struct SpmvPlan {
    plan: CommPlan,
    v: DistVector,
}

impl SpmvPlan {
    /// Collectively builds the exchange plan (every rank must call this).
    pub fn build(ctx: &mut Ctx, dm: &DistMatrix, local: &LocalView) -> SpmvPlan {
        // Remote columns referenced by my rows.
        let needed = local.nodes.iter().flat_map(|&i| {
            dm.matrix()
                .row(i)
                .0
                .iter()
                .copied()
                .filter(|&j| !local.owns(j))
                .collect::<Vec<_>>()
        });
        let plan = CommPlan::build(ctx, tags::SPMV, needed, |j| dm.dist().owner(j));
        SpmvPlan {
            plan,
            v: DistVector::new(local.len(), dm.n()),
        }
    }

    /// Number of boundary values this rank ships per product.
    pub fn sent_values(&self) -> usize {
        self.plan.sent_values()
    }
}

/// Computes the local block of `y = A x`. `x` holds this rank's values in
/// local-view order; the result is in the same order.
pub fn dist_spmv(
    ctx: &mut Ctx,
    dm: &DistMatrix,
    local: &LocalView,
    plan: &mut SpmvPlan,
    x: &[f64],
) -> Vec<f64> {
    let mut y = vec![0.0; local.len()];
    dist_spmv_into(ctx, dm, local, plan, x, &mut y);
    y
}

/// Computes the local block of `y = A x` into a caller-owned buffer — the
/// zero-allocation steady-state form of [`dist_spmv`]. The halo exchange
/// replays through the registered-buffer pool (audited under the
/// `replay_halo` region); the local product touches no heap at all.
pub fn dist_spmv_into(
    ctx: &mut Ctx,
    dm: &DistMatrix,
    local: &LocalView,
    plan: &mut SpmvPlan,
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(x.len(), local.len());
    assert_eq!(y.len(), local.len());
    // Halo exchange of boundary values.
    plan.v.owned.clear();
    plan.v.owned.extend_from_slice(x);
    plan.plan.replay_halo(ctx, local, &mut plan.v);
    // Local product.
    let mut flops = 0usize;
    for (out, &i) in y.iter_mut().zip(&local.nodes) {
        let (cols, vals) = dm.matrix().row(i);
        let mut acc = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            acc += v * plan.v.value(local, j);
        }
        flops += 2 * cols.len();
        *out = acc;
    }
    ctx.work(flops as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_par::{Machine, MachineModel};
    use pilut_sparse::gen;

    fn check_matches_serial(a: pilut_sparse::CsrMatrix, p: usize) {
        let n = a.n_rows();
        let x_global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y_serial = a.spmv_owned(&x_global);
        let dm = DistMatrix::from_matrix(a, p, 11);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            let x_local: Vec<f64> = local.nodes.iter().map(|&g| x_global[g]).collect();
            let y_local = dist_spmv(ctx, &dm, &local, &mut plan, &x_local);
            (local.nodes.clone(), y_local)
        });
        let mut y = vec![f64::NAN; n];
        for (nodes, vals) in out.results {
            for (g, v) in nodes.into_iter().zip(vals) {
                y[g] = v;
            }
        }
        for i in 0..n {
            assert!(
                (y[i] - y_serial[i]).abs() < 1e-12,
                "row {i}: {} vs {}",
                y[i],
                y_serial[i]
            );
        }
    }

    #[test]
    fn matches_serial_on_grid() {
        check_matches_serial(gen::convection_diffusion_2d(12, 12, 4.0, -2.0), 4);
    }

    #[test]
    fn matches_serial_on_torso() {
        check_matches_serial(gen::fem_torso(8, 3), 3);
    }

    #[test]
    fn single_rank_needs_no_messages() {
        let a = gen::laplace_2d(6, 6);
        let dm = DistMatrix::from_matrix(a, 1, 1);
        let out = Machine::run_checked(1, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(0);
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            assert_eq!(plan.sent_values(), 0);
            let x = vec![1.0; local.len()];
            dist_spmv(ctx, &dm, &local, &mut plan, &x)
        });
        // Row sums of the Laplacian are nonnegative.
        assert!(out.results[0].iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn repeated_products_reuse_plan() {
        let a = gen::laplace_2d(10, 10);
        let dm = DistMatrix::from_matrix(a, 2, 5);
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            let x = vec![1.0; local.len()];
            let y1 = dist_spmv(ctx, &dm, &local, &mut plan, &x);
            let y2 = dist_spmv(ctx, &dm, &local, &mut plan, &x);
            (y1, y2)
        });
        for (y1, y2) in out.results {
            assert_eq!(y1, y2);
        }
    }

    #[test]
    fn spmv_traffic_is_tagged() {
        let a = gen::laplace_2d(8, 8);
        let dm = DistMatrix::from_matrix(a, 2, 3);
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut plan = SpmvPlan::build(ctx, &dm, &local);
            let x = vec![1.0; local.len()];
            dist_spmv(ctx, &dm, &local, &mut plan, &x);
            plan.sent_values()
        });
        let shipped: usize = out.results.iter().sum();
        let (msgs, bytes) = out.stats.tag_totals(tags::SPMV);
        assert!(msgs >= 2, "both ranks should push boundary values");
        assert_eq!(bytes, shipped as u64 * 8);
    }
}
