//! Row distribution of a sparse matrix over the ranks of the virtual
//! machine.
//!
//! The paper's setup (§3): a high-quality graph partition assigns each row
//! to a processor; a rank's rows are classified **interior** (coupled only
//! to rows of the same rank, in the symmetrised pattern) or **interface**.
//! Interiors factor with zero communication; interfaces form the global
//! reduced matrix.
//!
//! The partition itself is computed up front with the multilevel k-way
//! partitioner from `pilut-graph` (DESIGN.md §8 documents why a serial
//! partitioner is a faithful substitute), and the full matrix is shared
//! read-only across rank threads — each rank only ever touches its own rows,
//! mimicking a distributed matrix without duplicating storage per rank.

pub mod exchange;
pub mod op;
pub mod recover;
pub mod spmv;

use pilut_graph::{partition_kway, Graph, PartitionOptions};
use pilut_sparse::CsrMatrix;

/// Which rank owns each row, plus the per-rank row lists.
#[derive(Clone, Debug)]
pub struct Distribution {
    part: Vec<usize>,
    rows_of: Vec<Vec<usize>>,
}

impl Distribution {
    /// Builds from an explicit row→rank map.
    pub fn from_part(part: Vec<usize>, p: usize) -> Self {
        let mut rows_of = vec![Vec::new(); p];
        for (row, &r) in part.iter().enumerate() {
            assert!(r < p, "row {row} assigned to rank {r} >= {p}");
            rows_of[r].push(row);
        }
        Distribution { part, rows_of }
    }

    /// Partitions the matrix graph with the multilevel k-way partitioner.
    pub fn from_matrix(a: &CsrMatrix, p: usize, seed: u64) -> Self {
        let g = Graph::from_csr_pattern(a);
        let opts = PartitionOptions {
            seed,
            ..PartitionOptions::new(p)
        };
        let r = partition_kway(&g, &opts);
        Self::from_part(r.part, p)
    }

    /// Contiguous block distribution (a poor-man's baseline for ablations).
    ///
    /// Balanced: each rank gets `floor(n/p)` rows, the first `n % p` ranks
    /// one extra. With `p > n` the trailing ranks own zero rows — a legal
    /// distribution that every plan and collective must tolerate (the old
    /// `ceil`-based blocking both doubled up one rank and left others empty
    /// even when `p <= n`).
    pub fn block(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        let base = n / p;
        let extra = n % p;
        let mut part = Vec::with_capacity(n);
        for r in 0..p {
            let size = base + usize::from(r < extra);
            part.extend(std::iter::repeat(r).take(size));
        }
        Self::from_part(part, p)
    }

    /// Global number of matrix rows.
    pub fn n_rows(&self) -> usize {
        self.part.len()
    }

    /// Number of ranks the rows are distributed over.
    pub fn n_ranks(&self) -> usize {
        self.rows_of.len()
    }

    /// The rank that owns global `row`.
    pub fn owner(&self, row: usize) -> usize {
        self.part[row]
    }

    /// The rows of `rank`, ascending.
    pub fn rows_of(&self, rank: usize) -> &[usize] {
        &self.rows_of[rank]
    }
}

/// The read-only shared state of a distributed matrix: the matrix, its
/// distribution, and the symmetrised pattern used for interior/interface
/// classification.
#[derive(Clone, Debug)]
pub struct DistMatrix {
    a: CsrMatrix,
    dist: Distribution,
    sym: CsrMatrix,
}

/// A rank's view of the distribution: its nodes in *local order* —
/// interiors first (ascending global id), then interfaces (ascending).
/// Local vectors (`x`, `b`, GMRES basis vectors) are indexed in this order.
#[derive(Clone, Debug)]
pub struct LocalView {
    pub rank: usize,
    /// Interior nodes, ascending global id; their ascending order is also
    /// their elimination order in phase 1.
    pub interior: Vec<usize>,
    /// Interface nodes, ascending global id.
    pub interface: Vec<usize>,
    /// interior ++ interface — the local vector ordering.
    pub nodes: Vec<usize>,
    /// Dense global→local map (`usize::MAX` for non-local nodes).
    local_pos: Vec<usize>,
}

impl LocalView {
    /// Number of locally owned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when this rank owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Local position of a global node, if owned by this rank.
    pub fn pos_of(&self, node: usize) -> Option<usize> {
        match self.local_pos[node] {
            usize::MAX => None,
            p => Some(p),
        }
    }

    /// True when global `node` is owned by this rank.
    pub fn owns(&self, node: usize) -> bool {
        self.local_pos[node] != usize::MAX
    }
}

impl DistMatrix {
    /// Wraps a global matrix together with its row distribution.
    pub fn new(a: CsrMatrix, dist: Distribution) -> Self {
        assert_eq!(a.n_rows(), a.n_cols());
        assert_eq!(a.n_rows(), dist.n_rows());
        let sym = a.symmetrized_pattern();
        DistMatrix { a, dist, sym }
    }

    /// Partition-and-wrap convenience.
    pub fn from_matrix(a: CsrMatrix, p: usize, seed: u64) -> Self {
        let dist = Distribution::from_matrix(&a, p, seed);
        Self::new(a, dist)
    }

    /// The full (replicated) matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The row distribution.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// Symmetrised pattern (used for adjacency queries).
    pub fn sym_pattern(&self) -> &CsrMatrix {
        &self.sym
    }

    /// Global matrix dimension.
    pub fn n(&self) -> usize {
        self.a.n_rows()
    }

    /// Builds rank `rank`'s local view, classifying interior vs interface
    /// nodes by the symmetrised pattern.
    pub fn local_view(&self, rank: usize) -> LocalView {
        let rows = self.dist.rows_of(rank);
        let mut interior = Vec::new();
        let mut interface = Vec::new();
        for &i in rows {
            let (nbrs, _) = self.sym.row(i);
            let is_interior = nbrs.iter().all(|&j| self.dist.owner(j) == rank);
            if is_interior {
                interior.push(i);
            } else {
                interface.push(i);
            }
        }
        let mut nodes = interior.clone();
        nodes.extend_from_slice(&interface);
        let mut local_pos = vec![usize::MAX; self.n()];
        for (p, &g) in nodes.iter().enumerate() {
            local_pos[g] = p;
        }
        LocalView {
            rank,
            interior,
            interface,
            nodes,
            local_pos,
        }
    }

    /// Total interface nodes over all ranks — the size of the paper's
    /// reduced matrix `A_I`.
    pub fn total_interface(&self) -> usize {
        (0..self.dist.n_ranks())
            .map(|r| self.local_view(r).interface.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;

    #[test]
    fn block_distribution_covers_everything() {
        let d = Distribution::block(10, 3);
        assert_eq!(d.rows_of(0), &[0, 1, 2, 3]);
        assert_eq!(d.rows_of(1), &[4, 5, 6]);
        assert_eq!(d.rows_of(2), &[7, 8, 9]);
        assert_eq!(d.owner(5), 1);
    }

    #[test]
    fn block_distribution_is_balanced_and_tolerates_empty_ranks() {
        // p > n: the trailing ranks legally own nothing.
        let d = Distribution::block(5, 8);
        for r in 0..5 {
            assert_eq!(d.rows_of(r), &[r]);
        }
        for r in 5..8 {
            assert!(d.rows_of(r).is_empty(), "rank {r} must be empty");
        }
        // Every p <= n leaves no rank empty and sizes within one of each
        // other (the old ceil-based blocking violated both at e.g. 10/8).
        for n in 1..=12usize {
            for p in 1..=n {
                let d = Distribution::block(n, p);
                let sizes: Vec<usize> = (0..p).map(|r| d.rows_of(r).len()).collect();
                let lo = *sizes.iter().min().unwrap_or(&0);
                let hi = *sizes.iter().max().unwrap_or(&0);
                assert!(lo >= 1, "n={n} p={p}: empty rank in {sizes:?}");
                assert!(hi - lo <= 1, "n={n} p={p}: unbalanced {sizes:?}");
            }
        }
    }

    #[test]
    fn classification_on_a_grid() {
        // 4x4 grid split into left/right halves: the two middle columns are
        // interface.
        let a = gen::laplace_2d(4, 4);
        let part: Vec<usize> = (0..16).map(|i| if i % 4 < 2 { 0 } else { 1 }).collect();
        let dm = DistMatrix::new(a, Distribution::from_part(part, 2));
        let v0 = dm.local_view(0);
        let v1 = dm.local_view(1);
        // Columns 0 (x=0) are interior to rank 0; x=1 touches x=2 → interface.
        assert_eq!(v0.interior, vec![0, 4, 8, 12]);
        assert_eq!(v0.interface, vec![1, 5, 9, 13]);
        assert_eq!(v1.interface, vec![2, 6, 10, 14]);
        assert_eq!(dm.total_interface(), 8);
        // Local ordering: interiors first.
        assert_eq!(v0.nodes, vec![0, 4, 8, 12, 1, 5, 9, 13]);
        assert_eq!(v0.pos_of(1), Some(4));
        assert_eq!(v0.pos_of(2), None);
        assert!(v1.owns(2));
    }

    #[test]
    fn partitioned_distribution_has_few_interfaces() {
        let a = gen::laplace_2d(20, 20);
        let dm = DistMatrix::from_matrix(a, 4, 7);
        let total: usize = (0..4).map(|r| dm.local_view(r).len()).sum();
        assert_eq!(total, 400);
        // A good 4-way partition of a 20x20 grid leaves far fewer than half
        // the nodes on the interface.
        assert!(
            dm.total_interface() < 200,
            "interface = {}",
            dm.total_interface()
        );
    }

    #[test]
    fn single_rank_everything_is_interior() {
        let a = gen::laplace_2d(5, 5);
        let dm = DistMatrix::from_matrix(a, 1, 1);
        let v = dm.local_view(0);
        assert_eq!(v.interior.len(), 25);
        assert!(v.interface.is_empty());
    }
}
