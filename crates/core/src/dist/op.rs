//! Operator abstractions the Krylov solvers consume instead of concrete
//! matrices.
//!
//! [`LinOp`] is the serial surface (GMRES/CG only ever need `y = A x` and a
//! dimension); [`DistOperator`] is its distributed counterpart, where one
//! application is a collective over the SPMD machine. [`DistCsr`] is the
//! canonical implementation: a distributed CSR matrix applied through the
//! plan-once/replay-many halo exchange of [`crate::dist::spmv`].

use crate::dist::spmv::{dist_spmv, dist_spmv_into, SpmvPlan};
use crate::dist::{DistMatrix, LocalView};
use pilut_par::Ctx;
use pilut_sparse::{BcsrMatrix, CsrMatrix};

/// A serial linear operator: everything GMRES and CG need to know about the
/// system matrix.
pub trait LinOp {
    /// Operator dimension (square).
    fn n_rows(&self) -> usize;
    /// Computes `y = A x`.
    fn apply(&self, x: &[f64]) -> Vec<f64>;
    /// Computes `y = A x` into a caller-owned buffer — the zero-allocation
    /// steady-state form. The default delegates to [`LinOp::apply`] (and so
    /// still allocates); concrete operators override it with a true
    /// in-place product.
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.apply(x));
    }
}

impl LinOp for CsrMatrix {
    fn n_rows(&self) -> usize {
        CsrMatrix::n_rows(self)
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.spmv_owned(x)
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }
}

impl LinOp for BcsrMatrix {
    fn n_rows(&self) -> usize {
        BcsrMatrix::n_rows(self)
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.spmv_owned(x)
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }
}

/// A distributed linear operator: one application is a collective in which
/// every rank passes its owned slice (local-view order) and receives the
/// owned slice of `A x`.
pub trait DistOperator {
    /// Length of this rank's owned slice.
    fn local_len(&self) -> usize;
    /// Collectively computes the local block of `y = A x`.
    fn apply(&mut self, ctx: &mut Ctx, x: &[f64]) -> Vec<f64>;
    /// Collectively computes the local block of `y = A x` into a
    /// caller-owned buffer — the zero-allocation steady-state form. The
    /// default delegates to [`DistOperator::apply`]; concrete operators
    /// override it with a true in-place product.
    fn apply_into(&mut self, ctx: &mut Ctx, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.apply(ctx, x));
    }
    /// Boundary values this rank ships per application (observability).
    fn sent_values(&self) -> usize;
}

/// A distributed CSR matrix applied through a reusable halo-exchange plan.
pub struct DistCsr<'a> {
    dm: &'a DistMatrix,
    local: &'a LocalView,
    plan: SpmvPlan,
}

impl<'a> DistCsr<'a> {
    /// Collectively builds the operator (every rank must call this).
    pub fn new(ctx: &mut Ctx, dm: &'a DistMatrix, local: &'a LocalView) -> Self {
        let plan = SpmvPlan::build(ctx, dm, local);
        DistCsr { dm, local, plan }
    }

    /// Wraps an already-built exchange plan.
    pub fn from_plan(dm: &'a DistMatrix, local: &'a LocalView, plan: SpmvPlan) -> Self {
        DistCsr { dm, local, plan }
    }
}

impl DistOperator for DistCsr<'_> {
    fn local_len(&self) -> usize {
        self.local.len()
    }

    fn apply(&mut self, ctx: &mut Ctx, x: &[f64]) -> Vec<f64> {
        dist_spmv(ctx, self.dm, self.local, &mut self.plan, x)
    }

    fn apply_into(&mut self, ctx: &mut Ctx, x: &[f64], y: &mut [f64]) {
        dist_spmv_into(ctx, self.dm, self.local, &mut self.plan, x, y);
    }

    fn sent_values(&self) -> usize {
        self.plan.sent_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use pilut_par::{Machine, MachineModel};
    use pilut_sparse::gen;

    #[test]
    fn csr_linop_matches_spmv() {
        let a = gen::laplace_2d(4, 4);
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let op: &dyn LinOp = &a;
        assert_eq!(op.n_rows(), 16);
        assert_eq!(op.apply(&x), a.spmv_owned(&x));
    }

    #[test]
    fn bcsr_linop_matches_csr() {
        let a = gen::convection_diffusion_2d(5, 7, 1.0, -2.0); // n = 35, ragged at b=4
        let blocked = BcsrMatrix::from_csr(&a, 4);
        let x: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64).sin()).collect();
        let (c, b): (&dyn LinOp, &dyn LinOp) = (&a, &blocked);
        assert_eq!(b.n_rows(), c.n_rows());
        let (yc, yb) = (c.apply(&x), b.apply(&x));
        for (u, v) in yc.iter().zip(&yb) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn dist_csr_matches_serial() {
        let a = gen::laplace_2d(6, 6);
        let n = a.n_rows();
        let x_global: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let y_serial = a.spmv_owned(&x_global);
        let dm = DistMatrix::new(a, Distribution::block(n, 3));
        let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            assert_eq!(op.local_len(), local.len());
            let x: Vec<f64> = local.nodes.iter().map(|&g| x_global[g]).collect();
            let y = op.apply(ctx, &x);
            (local.nodes.clone(), y)
        });
        for (nodes, vals) in out.results {
            for (g, v) in nodes.into_iter().zip(vals) {
                assert!((v - y_serial[g]).abs() < 1e-12);
            }
        }
    }
}
