//! Shrink-and-redistribute: rebuilding a [`Distribution`] after a rank
//! loss.
//!
//! The VM's recovery layer (`pilut_par::MachineBuilder::recovery`) turns an
//! injected kill into a [`pilut_par::RankLost`] unwind on every survivor;
//! the solve driver then needs a new distribution of the *same* matrix over
//! the *same* rank indices, in which the dead ranks own nothing. This
//! module is that step, and only that step: it is pure data (no
//! communication), so every survivor computes the identical shrunk
//! distribution independently — the agreement round (`Ctx::recover_sync`)
//! only has to confirm they saw the same dead set.
//!
//! What is re-derivable and what is lost: the matrix rows themselves come
//! from the replicated input [`crate::dist::DistMatrix`], so an evacuated
//! row's *coefficients* are never lost — only in-progress factorization and
//! Krylov state is, and the solve ladder restarts that from its lightweight
//! iterate checkpoint (see `pilut_solver::dist_solve_robust` and DESIGN
//! §14).

use crate::dist::Distribution;

/// Reassigns every row owned by a `dead` rank to a surviving rank,
/// returning a new distribution over the **same** number of rank slots
/// (dead ranks simply own zero rows — every plan and collective already
/// tolerates empty ranks).
///
/// Evacuated rows go one at a time, in ascending (dead rank, row) order, to
/// the survivor owning the fewest rows at that moment (ties to the lowest
/// rank). That greedy rule keeps the shrunk world balanced to within one
/// row of optimal for equal-cost rows and — more importantly — is a pure
/// function of `(dist, dead)`, so independent survivors agree bitwise.
///
/// # Panics
/// Panics when every rank is dead.
pub fn shrink(dist: &Distribution, dead: &[usize]) -> Distribution {
    let p = dist.n_ranks();
    let mut is_dead = vec![false; p];
    for &d in dead {
        assert!(d < p, "dead rank {d} out of range for p = {p}");
        is_dead[d] = true;
    }
    let survivors: Vec<usize> = (0..p).filter(|&r| !is_dead[r]).collect();
    assert!(!survivors.is_empty(), "cannot shrink to an empty world");

    let n = dist.n_rows();
    let mut part: Vec<usize> = (0..n).map(|row| dist.owner(row)).collect();
    let mut counts: Vec<usize> = survivors.iter().map(|&r| dist.rows_of(r).len()).collect();
    let mut dead_sorted = dead.to_vec();
    dead_sorted.sort_unstable();
    dead_sorted.dedup();
    for &d in &dead_sorted {
        for &row in dist.rows_of(d) {
            let (slot, _) = counts
                .iter()
                .enumerate()
                .min_by_key(|&(i, &c)| (c, i))
                // lint: allow(unwrap): survivors is non-empty by the assert above
                .expect("at least one survivor");
            part[row] = survivors[slot];
            counts[slot] += 1;
        }
    }
    Distribution::from_part(part, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_evacuates_the_dead_and_keeps_coverage() {
        let d = Distribution::block(12, 4); // 3 rows each
        let s = shrink(&d, &[2]);
        assert_eq!(s.n_ranks(), 4, "rank slots are preserved");
        assert_eq!(s.n_rows(), 12);
        assert!(s.rows_of(2).is_empty(), "the dead rank owns nothing");
        let total: usize = (0..4).map(|r| s.rows_of(r).len()).sum();
        assert_eq!(total, 12, "every row stays owned");
        // Surviving rows keep their owner.
        for r in [0usize, 1, 3] {
            for &row in d.rows_of(r) {
                assert_eq!(s.owner(row), r, "row {row} must not move");
            }
        }
        // The 3 evacuated rows spread one per survivor (greedy balance).
        for r in [0usize, 1, 3] {
            assert_eq!(s.rows_of(r).len(), 4);
        }
    }

    #[test]
    fn shrink_is_deterministic_and_composes() {
        let d = Distribution::block(20, 5);
        let a = shrink(&d, &[1, 3]);
        // Order and duplicates in the dead set must not matter.
        let b = shrink(&d, &[3, 1]);
        // Sequential losses pass the *cumulative* dead set (the driver's
        // `Ctx::dead_ranks()` is cumulative), else the second shrink would
        // happily refill the first victim.
        let c = shrink(&shrink(&d, &[1]), &[1, 3]);
        for row in 0..20 {
            assert_eq!(a.owner(row), b.owner(row));
        }
        assert!(a.rows_of(1).is_empty() && a.rows_of(3).is_empty());
        assert!(c.rows_of(1).is_empty() && c.rows_of(3).is_empty());
        let sizes: Vec<usize> = (0..5).map(|r| a.rows_of(r).len()).collect();
        let hi = *sizes.iter().filter(|&&s| s > 0).max().unwrap();
        let lo = *sizes.iter().filter(|&&s| s > 0).min().unwrap();
        assert!(hi - lo <= 1, "unbalanced shrink: {sizes:?}");
    }

    #[test]
    #[should_panic(expected = "empty world")]
    fn shrinking_away_everyone_is_rejected() {
        let d = Distribution::block(4, 2);
        let _ = shrink(&d, &[0, 1]);
    }
}
