//! The unified data plane: plan-once / replay-many neighbour exchange.
//!
//! The paper's three kernels (factorization, triangular solve, SpMV — §1,
//! §3) all ride the same structural fact: the neighbour communication
//! pattern is fixed by the matrix distribution, so it can be **planned
//! once** (a collective that teaches every rank which peers reference which
//! of its nodes) and **replayed** many times with one packed message per
//! peer per round. [`CommPlan`] is that plan; every distributed kernel in
//! the repository ([`crate::dist::spmv`], [`crate::trisolve`],
//! [`crate::parallel`], the distributed GMRES in the solver crate) is built
//! on its replay primitives, and the `no-raw-comm` lint keeps it that way:
//! this module and the `pilut-par` VM itself are the only places allowed to
//! touch `ctx.send` / `ctx.recv` directly.
//!
//! Replay contract:
//!
//! * every replay sends **exactly one message per scheduled peer** and
//!   receives exactly one from each peer on the opposite side, in ascending
//!   peer order — deterministic, deadlock-free, and observable (each
//!   protocol runs under its own tag from [`tags`], so the per-tag counters
//!   in `MachineStats::by_tag` break comm volume down by kernel);
//! * every round ships under a fresh wire tag `base + round` (stats still
//!   attribute to the base tag via `Ctx::send_as`), so two in-flight rounds
//!   of one protocol can never be confused even if same-pair delivery order
//!   is inverted — the chaos suite's `reorder` fault exercises exactly this;
//! * payload contents are producer-defined ([`CommPlan::replay`]) or
//!   values-only ([`CommPlan::replay_halo`], which ships `f64`s in the node
//!   order both sides agreed on at plan time — no ids on the wire);
//! * a plan built from empty need-lists replays as a no-op, so ranks that
//!   own zero rows participate safely.

use crate::dist::LocalView;
use pilut_par::{pool, Ctx, Payload};
use std::cell::RefCell;
use std::collections::HashMap;

mod replay;

/// Registered buffers warmed per send link at plan build. Deep enough that
/// a plan's full send fan-out plus the in-flight buffers the receivers have
/// not yet returned never miss the pool in the steady state. Under
/// reliable delivery the sender additionally retains every frame until the
/// link's cumulative ACK passes it, so plan build adds
/// [`pilut_par::ACK_EVERY`] on top of this skew allowance (see
/// [`CommPlan::build`]).
const WARM_BUFFERS_PER_LINK: usize = 8;

/// The user-tag namespace of every planned protocol in the repository.
///
/// One constant per kernel keeps repeated replays unambiguous (matching is
/// FIFO per `(sender, tag)`) and makes the per-tag counters in
/// `MachineStats::by_tag` legible. Values are stable across releases — the
/// bench JSON reports them by [`tag_name`].
pub mod tags {
    /// Uniform stride between protocol namespaces. Each protocol owns
    /// `[base, base + STRIDE)`: room for a 20-bit per-level rebase shift
    /// (`base + (level << 20)`) times a 20-bit round counter within every
    /// level's private base, with no way for one protocol's derived wire
    /// tags to drift into its neighbour's namespace. The `tag_name`
    /// *strings* are the stable interface reported in bench JSON; the
    /// numeric values may restride between releases.
    pub const STRIDE: u64 = 1 << 40;
    /// Boundary `x` values of the distributed SpMV.
    pub const SPMV: u64 = STRIDE;
    /// U-row shipping of the parallel ILUT interface factorization.
    pub const UROWS: u64 = 2 * STRIDE;
    /// Forward-sweep values of the distributed triangular solve.
    pub const FWD: u64 = 3 * STRIDE;
    /// Backward-sweep values of the distributed triangular solve.
    pub const BWD: u64 = 4 * STRIDE;
    /// Distributed-MIS step 1: key/state push.
    pub const MIS_KEYS: u64 = 5 * STRIDE;
    /// Distributed-MIS step 2: tentative-winner push.
    pub const MIS_TENT: u64 = 6 * STRIDE;
    /// Distributed-MIS step 3: confirmation + kill push.
    pub const MIS_CONF: u64 = 7 * STRIDE;
    /// U-row shipping of the parallel ILU(0) numeric levels.
    pub const U0: u64 = 8 * STRIDE;
    /// Reliable-delivery protocol traffic (acks, nacks, resends) of the
    /// `pilut-par` VM. The numeric value is pinned to `pilut_par::ACK_TAG`
    /// by a test: `par` cannot depend on this crate, so the constant is
    /// duplicated there.
    pub const ACK: u64 = 9 * STRIDE;
    /// Rank-loss recovery agreement ring (`Ctx::recover_sync`), pinned to
    /// `pilut_par::RECOVER_TAG` the same way.
    pub const RECOVER: u64 = 10 * STRIDE;

    /// Human-readable name of a counter tag (the collectives' reserved
    /// namespace reports as `"coll"`, unknown user tags as `"user"`).
    pub fn tag_name(tag: u64) -> &'static str {
        match tag {
            SPMV => "spmv",
            UROWS => "urows",
            FWD => "fwd",
            BWD => "bwd",
            MIS_KEYS => "mis_keys",
            MIS_TENT => "mis_tent",
            MIS_CONF => "mis_conf",
            U0 => "u0",
            ACK => "ack",
            RECOVER => "recover",
            t if t >= pilut_par::Ctx::RESERVED_TAG_BASE => "coll",
            _ => "user",
        }
    }
}

/// A distributed vector: this rank's owned values (in local-view order)
/// plus a halo of remote values filled in by [`CommPlan::replay_halo`].
#[derive(Clone, Debug)]
pub struct DistVector {
    /// Owned values, indexed in local-view order (interiors then
    /// interfaces; see [`LocalView::nodes`]).
    pub owned: Vec<f64>,
    /// Dense halo scratch indexed by *global* node id. Only the positions
    /// named in a plan's receive lists are meaningful after a replay.
    halo: Vec<f64>,
}

impl DistVector {
    /// A zero vector for a rank owning `local_len` of `n` global nodes.
    pub fn new(local_len: usize, n: usize) -> Self {
        DistVector {
            owned: vec![0.0; local_len],
            halo: vec![0.0; n],
        }
    }

    /// The value of a global node: owned storage when local, halo otherwise
    /// (valid for remote nodes only after a halo replay that covered them).
    pub fn value(&self, local: &LocalView, node: usize) -> f64 {
        match local.pos_of(node) {
            Some(p) => self.owned[p],
            None => self.halo[node],
        }
    }
}

/// The statically-predicted per-round communication cost of a plan, read
/// off its schedules alone — no replay needed. Message counts are exact
/// for every round kind; byte counts are exact for values-only rounds
/// (halo replays, sweep value halves, label rounds: 8 bytes per scheduled
/// node) and for exact-framed rounds ([`PlanCost::exact_round`], whose
/// byte totals are computed from the frames about to ship). Only the
/// generic producer-defined rounds predict message counts alone. The
/// replay helpers feed these predictions to
/// [`pilut_par::Ctx::note_planned`] as they run, and `xtask bench-verify`
/// fails the build when the measured per-tag counters diverge from the
/// accumulated predictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanCost {
    /// Messages this rank ships per directed replay round (one per
    /// send-side peer).
    pub directed_messages: u64,
    /// Messages this rank ships per symmetric round (one per union peer).
    pub symmetric_messages: u64,
    /// Bytes this rank ships per values-only round: 8 per node in the send
    /// schedule.
    pub value_bytes: u64,
}

impl PlanCost {
    /// The ledger entry for one **exact-framed** round: the message count
    /// of the chosen round kind (directed or symmetric) paired with a byte
    /// total the caller computed from the frames it is about to ship. The
    /// delta-MIS replays route every prediction through here, which is
    /// what turns their `comm_planned` entries exact (gated byte-for-byte
    /// by `bench-verify --slack 0`) instead of message-count-only (`~`).
    pub fn exact_round(&self, symmetric: bool, frame_bytes: u64) -> (u64, u64) {
        let messages = if symmetric {
            self.symmetric_messages
        } else {
            self.directed_messages
        };
        (messages, frame_bytes)
    }
}

/// A reusable per-rank communication schedule, built collectively from
/// "which remote nodes do I need, and who owns them".
///
/// `recv` lists the nodes this rank declared a need for, grouped by owning
/// peer and sorted; `send` lists the nodes each peer declared a need for,
/// in the exact order that peer's receive side expects. Both sides of every
/// pair hold mirror-image lists, which is what lets replays ship values
/// without node ids on the wire.
pub struct CommPlan {
    tag: u64,
    /// Counter key for the per-tag traffic stats. Equal to `tag` unless the
    /// plan was [`CommPlan::rebase`]d into a private wire-tag namespace —
    /// derived sub-plans keep reporting under their protocol's tag.
    stats_tag: u64,
    /// `(peer, my nodes to send)` — in the order `peer` expects them.
    send: Vec<(usize, Vec<usize>)>,
    /// `(peer, peer's nodes I need)` — sorted ascending.
    recv: Vec<(usize, Vec<usize>)>,
    /// Sorted union of send and recv peers (the symmetric-round pairs).
    union_peers: Vec<usize>,
    /// Per-base-tag `(send, recv)` round counters. Every replay round ships
    /// under the fresh wire tag `base + round` so two in-flight rounds can
    /// never be confused, even if the network inverts same-pair delivery
    /// order (the same trick the VM's collectives play with their sequence
    /// numbers). Interior-mutable because replays take `&self` — plans are
    /// shared immutably by long-lived solvers. Both halves of a round
    /// advance in lockstep across ranks because every replay call is
    /// collective over the plan's participants.
    rounds: RefCell<HashMap<u64, (u64, u64)>>,
    /// Frame staging area for the exact-framed replays: capacity reserved
    /// at construction (one slot per possible peer), cleared and refilled
    /// each round, so staging never allocates in the steady state.
    frame_scratch: RefCell<Vec<Payload>>,
    /// Pool buffers to warm per send link: the plain skew allowance, plus
    /// the reliable-delivery retention window when the machine has it
    /// armed. Captured at build so derived sub-plans ([`CommPlan::restrict`],
    /// which has no `Ctx`) warm to the same depth.
    warm_depth: usize,
}

impl CommPlan {
    /// Collectively builds the plan (every rank must call this together).
    ///
    /// `needed` enumerates the remote nodes this rank references (duplicates
    /// welcome — the plan dedups); `owner_of` maps each to its owning rank.
    /// One sparse all-to-all teaches every owner which peers need which of
    /// its nodes. `tag` names the user-tag namespace later replays use.
    pub fn build(
        ctx: &mut Ctx,
        tag: u64,
        needed: impl IntoIterator<Item = usize>,
        owner_of: impl Fn(usize) -> usize,
    ) -> CommPlan {
        let me = ctx.rank();
        let p = ctx.nprocs();
        let mut by_owner: Vec<Vec<usize>> = vec![Vec::new(); p];
        for node in needed {
            let owner = owner_of(node);
            debug_assert_ne!(owner, me, "own nodes are never remote");
            by_owner[owner].push(node);
        }
        let mut sends = Vec::new();
        let mut recv = Vec::new();
        for (owner, list) in by_owner.iter_mut().enumerate() {
            if list.is_empty() {
                continue;
            }
            list.sort_unstable();
            list.dedup();
            sends.push((
                owner,
                Payload::u64s(list.iter().map(|&x| x as u64).collect()),
            ));
            recv.push((owner, std::mem::take(list)));
        }
        let mut send = Vec::new();
        for (peer, payload) in ctx.exchange(sends) {
            let nodes: Vec<usize> = payload.into_u64().into_iter().map(|x| x as usize).collect();
            send.push((peer, nodes));
        }
        let mut union_peers: Vec<usize> = send
            .iter()
            .map(|&(q, _)| q)
            .chain(recv.iter().map(|&(q, _)| q))
            .collect();
        union_peers.sort_unstable();
        union_peers.dedup();
        let scratch = Vec::with_capacity(union_peers.len());
        // A reliable sender holds every frame until the cumulative ACK
        // passes it — up to ACK_EVERY pooled buffers per link beyond the
        // plain in-flight skew — so the warm depth must cover the window.
        let warm_depth = WARM_BUFFERS_PER_LINK
            + if ctx.is_reliable() {
                pilut_par::ACK_EVERY as usize
            } else {
                0
            };
        // Seed the round counters for the plan's own tag now: the first
        // replay's map insert is otherwise charged to its steady region.
        // Multiplexed bases (explicit `*_tagged` tags) still insert lazily.
        let plan = CommPlan {
            tag,
            stats_tag: tag,
            send,
            recv,
            union_peers,
            rounds: RefCell::new(HashMap::from([(tag, (0, 0))])),
            frame_scratch: RefCell::new(scratch),
            warm_depth,
        };
        // Registered-buffer warm-up: provision the pool classes every
        // values-only replay round will draw from, so the steady state
        // never allocates a send buffer (receivers recycle them back).
        plan.warm_buffers();
        // In checked mode every freshly-built plan is proved consistent
        // *before* any replay can ship a byte under it — peer symmetry,
        // packing sizes, tag discipline, round counters (see `verify`).
        if ctx.is_checked() {
            if let Err(e) = plan.verify(ctx) {
                panic!("commplan verify[{}]: {e}", tags::tag_name(tag));
            }
        }
        plan
    }

    /// Structural self-checks that need no communication: schedules sorted
    /// by peer with no duplicates or empty lists, peers in range and never
    /// `me`, receive-side node lists strictly ascending (the order both
    /// sides agreed on), and the union-peer list consistent with the two
    /// directions. Every violation is a plan-construction bug, reported
    /// before any replay can act on it.
    pub fn verify_local(&self, me: usize, p: usize) -> Result<(), String> {
        let check_side = |side: &str, lists: &[(usize, Vec<usize>)]| -> Result<(), String> {
            let mut prev: Option<usize> = None;
            for (peer, nodes) in lists {
                if *peer >= p {
                    return Err(format!("{side} peer {peer} out of range (p = {p})"));
                }
                if *peer == me {
                    return Err(format!("{side} schedule loops back to rank {me}"));
                }
                if nodes.is_empty() {
                    return Err(format!("{side} list for peer {peer} is empty"));
                }
                if prev.is_some_and(|q| q >= *peer) {
                    return Err(format!("{side} peers not strictly ascending at {peer}"));
                }
                prev = Some(*peer);
            }
            Ok(())
        };
        check_side("send", &self.send)?;
        check_side("recv", &self.recv)?;
        for (peer, nodes) in &self.recv {
            if !nodes.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!(
                    "recv nodes from peer {peer} not strictly ascending — \
                     the values-only wire order is ambiguous"
                ));
            }
        }
        let mut union: Vec<usize> = self
            .send
            .iter()
            .map(|&(q, _)| q)
            .chain(self.recv.iter().map(|&(q, _)| q))
            .collect();
        union.sort_unstable();
        union.dedup();
        if union != self.union_peers {
            return Err(format!(
                "union peers {:?} inconsistent with schedules {union:?}",
                self.union_peers
            ));
        }
        Ok(())
    }

    /// The collective cross-check (every plan participant must call this
    /// together): after the local checks, each rank publishes a summary of
    /// its schedules and every rank verifies the global invariants —
    ///
    /// * **tag discipline** — the plan runs under a named `tags::`
    ///   protocol namespace and all ranks agree on it (wire and stats);
    /// * **mirror symmetry** — rank `r` sends to `q` exactly when `q`
    ///   receives from `r`;
    /// * **packing-size agreement** — both sides of every pair schedule
    ///   the same node count, so values-only rounds can never misalign;
    /// * **round-count agreement** — all ranks have advanced every wire
    ///   namespace by the same number of send and receive rounds (plans
    ///   fresh from [`CommPlan::build`] agree trivially at zero).
    ///
    /// Runs automatically from `build` in checked mode; long-lived callers
    /// may re-verify later (e.g. after replay rounds) at will.
    pub fn verify(&self, ctx: &mut Ctx) -> Result<(), String> {
        let me = ctx.rank();
        let p = ctx.nprocs();
        self.verify_local(me, p)?;
        if self.stats_tag % tags::STRIDE != 0 || tags::tag_name(self.stats_tag) == "user" {
            return Err(format!(
                "stats tag {:#x} is not a named protocol namespace",
                self.stats_tag
            ));
        }
        // Summary: [tag, stats_tag, send rounds, recv rounds, n_send,
        // n_recv, (peer, len)...]. Round counters are summed over wire
        // namespaces — replays advance them in lockstep, so totals agree.
        let (srounds, rrounds) = self
            .rounds
            .borrow()
            .values()
            .fold((0u64, 0u64), |(s, r), &(a, b)| (s + a, r + b));
        let mut summary = vec![
            self.tag,
            self.stats_tag,
            srounds,
            rrounds,
            self.send.len() as u64,
            self.recv.len() as u64,
        ];
        for (peer, nodes) in self.send.iter().chain(&self.recv) {
            summary.push(*peer as u64);
            summary.push(nodes.len() as u64);
        }
        let all = ctx.all_gather_u64(&summary);
        // Decode every rank's two sides once, then check the global mirror
        // property on all pairs — every rank sees the same verdict.
        let mut sides: Vec<(HashMap<usize, u64>, HashMap<usize, u64>)> = Vec::with_capacity(p);
        for (r, enc) in all.iter().enumerate() {
            if enc.is_empty() {
                // A rank lost in an earlier epoch contributes nothing to the
                // gather and owns no plan side to mirror — a shrunk-world
                // plan must never pair a live side with it, which the empty
                // maps below enforce.
                sides.push((HashMap::new(), HashMap::new()));
                continue;
            }
            if enc[0] != self.tag || enc[1] != self.stats_tag {
                return Err(format!(
                    "rank {r} runs tag ({:#x}, {:#x}) but rank {me} runs ({:#x}, {:#x})",
                    enc[0], enc[1], self.tag, self.stats_tag
                ));
            }
            if (enc[2], enc[3]) != (srounds, rrounds) {
                return Err(format!(
                    "round counters disagree: rank {r} at ({}, {}), rank {me} at \
                     ({srounds}, {rrounds})",
                    enc[2], enc[3]
                ));
            }
            let n_send = enc[4] as usize;
            let n_recv = enc[5] as usize;
            let mut at = 6;
            let mut decode = |k: usize| {
                let mut m = HashMap::with_capacity(k);
                for _ in 0..k {
                    m.insert(enc[at] as usize, enc[at + 1]);
                    at += 2;
                }
                m
            };
            let send = decode(n_send);
            let recv = decode(n_recv);
            sides.push((send, recv));
        }
        for (r, (send, _)) in sides.iter().enumerate() {
            for (&q, &len) in send {
                match sides[q].1.get(&r) {
                    None => {
                        return Err(format!(
                            "peer asymmetry: rank {r} sends to {q} but {q} schedules \
                             no receive from {r}"
                        ));
                    }
                    Some(&expect) if expect != len => {
                        return Err(format!(
                            "packing-size disagreement: rank {r} sends {len} node(s) \
                             to {q} but {q} expects {expect}"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        for (r, (_, recv)) in sides.iter().enumerate() {
            for &q in recv.keys() {
                if !sides[q].0.contains_key(&r) {
                    return Err(format!(
                        "peer asymmetry: rank {r} expects values from {q} but {q} \
                         schedules no send to {r}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The per-round cost this plan predicts from structure alone — see
    /// [`PlanCost`].
    pub fn predicted_cost(&self) -> PlanCost {
        PlanCost {
            directed_messages: self.send.len() as u64,
            symmetric_messages: self.union_peers.len() as u64,
            value_bytes: 8 * self.sent_values() as u64,
        }
    }

    /// Moves the plan into its own wire-tag namespace while keeping traffic
    /// attributed to the original tag. Derived sub-plans that replay side by
    /// side in one logical round (e.g. the per-level triangular-sweep plans)
    /// must not share a wire namespace: with a common base, level `l` and
    /// level `l+1` values shipped in the same sweep would carry the same
    /// `(sender, tag)` and a reordered network could swap them.
    pub fn rebase(mut self, wire_base: u64) -> CommPlan {
        self.tag = wire_base;
        // The new wire base gets its round counters seeded here, at
        // setup time, like `build` does for the original tag.
        self.rounds.get_mut().entry(wire_base).or_insert((0, 0));
        self
    }

    /// Pre-provisions the registered-buffer pool for this plan's
    /// values-only rounds: one class entry per send list, sized to the
    /// list. Build-time setup by definition — this is the allocation the
    /// zero-alloc replay gate pushes out of the steady state.
    fn warm_buffers(&self) {
        for (_, nodes) in &self.send {
            pool::warm_f64(nodes.len(), self.warm_depth);
        }
    }

    /// The user tag this plan's replays run under.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `(peer, nodes)` send schedule: nodes of mine each peer needs, in the
    /// order that peer expects them.
    pub fn send_lists(&self) -> &[(usize, Vec<usize>)] {
        &self.send
    }

    /// `(peer, nodes)` receive schedule: remote nodes I need, by owner,
    /// sorted ascending.
    pub fn recv_lists(&self) -> &[(usize, Vec<usize>)] {
        &self.recv
    }

    /// Total values this rank ships per halo replay.
    pub fn sent_values(&self) -> usize {
        self.send.iter().map(|(_, v)| v.len()).sum()
    }

    /// True when this rank neither sends nor receives under this plan.
    pub fn is_idle(&self) -> bool {
        self.union_peers.is_empty()
    }

    /// The owning peer of a remote node this plan receives, if any (every
    /// needed node appears in exactly one peer's receive list).
    pub fn owner_of(&self, node: usize) -> Option<usize> {
        self.recv
            .iter()
            .find_map(|(peer, nodes)| nodes.binary_search(&node).ok().map(|_| *peer))
    }

    /// A sub-plan keeping only the scheduled nodes that pass the filters
    /// (`keep_send` over my nodes, `keep_recv` over remote nodes). Peers
    /// left with empty lists drop out entirely. Both sides of a pair must
    /// restrict by the same criterion for replays to stay matched — the
    /// triangular solves guarantee this by exchanging level labels first
    /// ([`CommPlan::exchange_labels`]) and restricting per level.
    pub fn restrict(
        &self,
        keep_send: impl Fn(usize) -> bool,
        keep_recv: impl Fn(usize) -> bool,
    ) -> CommPlan {
        let filter = |lists: &[(usize, Vec<usize>)], keep: &dyn Fn(usize) -> bool| {
            lists
                .iter()
                .filter_map(|(peer, nodes)| {
                    let kept: Vec<usize> = nodes.iter().copied().filter(|&g| keep(g)).collect();
                    if kept.is_empty() {
                        None
                    } else {
                        Some((*peer, kept))
                    }
                })
                .collect::<Vec<_>>()
        };
        let send = filter(&self.send, &keep_send);
        let recv = filter(&self.recv, &keep_recv);
        let mut union_peers: Vec<usize> = send
            .iter()
            .map(|&(q, _)| q)
            .chain(recv.iter().map(|&(q, _)| q))
            .collect();
        union_peers.sort_unstable();
        union_peers.dedup();
        let scratch = Vec::with_capacity(union_peers.len());
        let sub = CommPlan {
            tag: self.tag,
            stats_tag: self.stats_tag,
            send,
            recv,
            union_peers,
            rounds: RefCell::new(HashMap::from([(self.tag, (0, 0))])),
            frame_scratch: RefCell::new(scratch),
            warm_depth: self.warm_depth,
        };
        // Per-level sub-plans replay values rounds too; warm their classes
        // so the first sweep is already steady.
        sub.warm_buffers();
        sub
    }

    /// One label round: every owner answers `label_of(node)` for each node
    /// in its send schedule; the result maps each of this rank's needed
    /// remote nodes to its owner's label. Used at plan-build time (e.g. the
    /// triangular solves exchange level indices so both sides can derive
    /// the identical per-level batch schedule).
    pub fn exchange_labels(
        &self,
        ctx: &mut Ctx,
        label_of: impl Fn(usize) -> u64,
    ) -> HashMap<usize, u64> {
        let cost = self.predicted_cost();
        ctx.note_planned(
            self.stats_tag,
            cost.directed_messages,
            cost.value_bytes,
            true,
        );
        let send_tag = self.send_round_tag(self.tag);
        for (peer, nodes) in &self.send {
            let labels: Vec<u64> = nodes.iter().map(|&g| label_of(g)).collect();
            ctx.send_as(*peer, send_tag, self.stats_tag, Payload::u64s(labels));
        }
        let mut out = HashMap::new();
        let recv_tag = self.recv_round_tag(self.tag);
        for (peer, nodes) in &self.recv {
            let labels = ctx.recv(*peer, recv_tag).into_u64();
            assert_eq!(labels.len(), nodes.len(), "plan mismatch from rank {peer}");
            for (&g, l) in nodes.iter().zip(labels) {
                out.insert(g, l);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{DistMatrix, Distribution};
    use pilut_par::{Machine, MachineModel};
    use pilut_sparse::gen;

    /// `pilut-par` cannot depend on this crate, so the reliability and
    /// recovery stats tags are defined in both places; this is the pin
    /// that keeps the duplicated constants (and their names) in sync.
    #[test]
    fn par_protocol_tags_are_pinned_to_the_namespace() {
        assert_eq!(tags::ACK, pilut_par::ACK_TAG);
        assert_eq!(tags::RECOVER, pilut_par::RECOVER_TAG);
        assert_eq!(tags::tag_name(tags::ACK), "ack");
        assert_eq!(tags::tag_name(tags::RECOVER), "recover");
    }

    /// Builds a plan over a block-distributed grid where every rank needs
    /// the off-rank columns of its rows.
    fn plan_workload(p: usize, nx: usize) -> Vec<(usize, usize)> {
        let a = gen::laplace_2d(nx, nx);
        let n = a.n_rows();
        let dm = DistMatrix::new(a, Distribution::block(n, p));
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let needed = local.nodes.iter().flat_map(|&i| {
                dm.matrix()
                    .row(i)
                    .0
                    .iter()
                    .copied()
                    .filter(|&j| !local.owns(j))
                    .collect::<Vec<_>>()
            });
            let plan = CommPlan::build(ctx, tags::SPMV, needed, |j| dm.dist().owner(j));
            // Halo roundtrip: owned value of node g is g as f64.
            let mut v = DistVector::new(local.len(), dm.n());
            for (slot, &g) in v.owned.iter_mut().zip(&local.nodes) {
                *slot = g as f64;
            }
            plan.replay_halo(ctx, &local, &mut v);
            for (_, nodes) in plan.recv_lists() {
                for &g in nodes {
                    assert!((v.value(&local, g) - g as f64).abs() < 1e-15);
                    assert_eq!(plan.owner_of(g), Some(dm.dist().owner(g)));
                }
            }
            // Labels: owners answer node id + 7.
            let labels = plan.exchange_labels(ctx, |g| g as u64 + 7);
            for (&g, &l) in &labels {
                assert_eq!(l, g as u64 + 7);
            }
            (plan.sent_values(), labels.len())
        });
        out.results
    }

    #[test]
    fn halo_and_labels_roundtrip() {
        for p in [1, 2, 3, 4] {
            let results = plan_workload(p, 6);
            if p == 1 {
                assert_eq!(results[0], (0, 0));
            } else {
                assert!(results.iter().any(|&(s, _)| s > 0));
            }
        }
    }

    #[test]
    fn empty_ranks_replay_as_noops() {
        // p = 8 ranks over a 5-row chain: ranks 5..8 own nothing.
        let a = gen::laplace_2d(5, 1);
        let dm = DistMatrix::new(a, Distribution::block(5, 8));
        let out = Machine::run_checked(8, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let needed = local.nodes.iter().flat_map(|&i| {
                dm.matrix()
                    .row(i)
                    .0
                    .iter()
                    .copied()
                    .filter(|&j| !local.owns(j))
                    .collect::<Vec<_>>()
            });
            let plan = CommPlan::build(ctx, tags::SPMV, needed, |j| dm.dist().owner(j));
            let mut v = DistVector::new(local.len(), dm.n());
            for (slot, &g) in v.owned.iter_mut().zip(&local.nodes) {
                *slot = 1.0 + g as f64;
            }
            plan.replay_halo(ctx, &local, &mut v);
            plan.is_idle()
        });
        // The empty trailing ranks have nothing scheduled.
        assert!(out.results[5..].iter().all(|&idle| idle));
        assert!(!out.results[0]);
    }

    /// A hand-built plan for white-box verification tests.
    fn raw_plan(send: Vec<(usize, Vec<usize>)>, recv: Vec<(usize, Vec<usize>)>) -> CommPlan {
        let mut union_peers: Vec<usize> = send
            .iter()
            .map(|&(q, _)| q)
            .chain(recv.iter().map(|&(q, _)| q))
            .collect();
        union_peers.sort_unstable();
        union_peers.dedup();
        CommPlan {
            tag: tags::SPMV,
            stats_tag: tags::SPMV,
            send,
            recv,
            union_peers,
            rounds: RefCell::new(HashMap::new()),
            frame_scratch: RefCell::new(Vec::new()),
            warm_depth: WARM_BUFFERS_PER_LINK,
        }
    }

    #[test]
    fn verify_local_rejects_corrupt_schedules() {
        let ok = raw_plan(vec![(1, vec![0])], vec![(2, vec![7, 9])]);
        assert_eq!(ok.verify_local(0, 4), Ok(()));
        // Each corruption is named precisely.
        let err = |p: CommPlan, me: usize, np: usize| p.verify_local(me, np).unwrap_err();
        assert!(err(raw_plan(vec![(1, vec![0])], vec![]), 1, 4).contains("loops back"));
        assert!(err(raw_plan(vec![(5, vec![0])], vec![]), 0, 4).contains("out of range"));
        assert!(err(raw_plan(vec![(1, vec![])], vec![]), 0, 4).contains("is empty"));
        assert!(
            err(raw_plan(vec![(2, vec![0]), (1, vec![1])], vec![]), 0, 4)
                .contains("not strictly ascending")
        );
        assert!(
            err(raw_plan(vec![], vec![(1, vec![9, 7])]), 0, 4).contains("wire order is ambiguous")
        );
        let mut bad_union = raw_plan(vec![(1, vec![0])], vec![]);
        bad_union.union_peers = vec![1, 2];
        assert!(err(bad_union, 0, 4).contains("union peers"));
    }

    #[test]
    fn collective_verify_rejects_packing_disagreement() {
        // Rank 0 schedules two values toward rank 1; rank 1 expects one.
        // Every rank sees the same global verdict.
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let plan = if ctx.rank() == 0 {
                raw_plan(vec![(1, vec![0, 1])], vec![])
            } else {
                raw_plan(vec![], vec![(0, vec![0])])
            };
            plan.verify(ctx).unwrap_err()
        });
        for msg in &out.results {
            assert!(msg.contains("packing-size disagreement"), "{msg}");
        }
    }

    #[test]
    fn collective_verify_rejects_peer_asymmetry_and_unnamed_tags() {
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            // A send with no matching receive anywhere.
            let plan = if ctx.rank() == 0 {
                raw_plan(vec![(1, vec![0])], vec![])
            } else {
                raw_plan(vec![], vec![])
            };
            let asym = plan.verify(ctx).unwrap_err();
            // A tag outside every named protocol namespace.
            let mut untagged = raw_plan(vec![], vec![]);
            untagged.tag = 42;
            untagged.stats_tag = 42;
            let undisciplined = untagged.verify(ctx).unwrap_err();
            (asym, undisciplined)
        });
        for (asym, undisciplined) in &out.results {
            assert!(asym.contains("peer asymmetry"), "{asym}");
            assert!(
                undisciplined.contains("named protocol namespace"),
                "{undisciplined}"
            );
        }
    }

    #[test]
    fn planned_counters_match_measured_value_rounds() {
        // Two halo replays plus a label round: all values-only, so the
        // static prediction must agree with the measured per-tag counters
        // to the byte, and the exact flag must survive aggregation.
        let a = gen::laplace_2d(6, 6);
        let n = a.n_rows();
        let dm = DistMatrix::new(a, Distribution::block(n, 3));
        let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let needed = local.nodes.iter().flat_map(|&i| {
                dm.matrix()
                    .row(i)
                    .0
                    .iter()
                    .copied()
                    .filter(|&j| !local.owns(j))
                    .collect::<Vec<_>>()
            });
            let plan = CommPlan::build(ctx, tags::SPMV, needed, |j| dm.dist().owner(j));
            let mut v = DistVector::new(local.len(), dm.n());
            plan.replay_halo(ctx, &local, &mut v);
            plan.replay_halo(ctx, &local, &mut v);
            plan.exchange_labels(ctx, |g| g as u64);
            let cost = plan.predicted_cost();
            assert_eq!(cost.value_bytes, 8 * plan.sent_values() as u64);
        });
        let (m, b) = out.stats.tag_totals(tags::SPMV);
        assert!(m > 0, "workload must ship halo traffic");
        let &(pm, pb, exact) = out
            .stats
            .planned_by_tag
            .get(&tags::SPMV)
            .expect("plan predictions recorded");
        assert_eq!((m, b), (pm, pb), "prediction must match measurement");
        assert!(exact, "values-only rounds predict exact bytes");
    }

    #[test]
    fn exact_replays_predict_measured_bytes_exactly() {
        // Directed and symmetric exact-framed rounds with data-dependent
        // frame sizes: the ledger must match the measured counters to the
        // byte and keep the exact flag through aggregation.
        let dist = Distribution::block(4, 4);
        let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
            let me = ctx.rank();
            // Ring of directed needs: rank r references rank r+1's node.
            let needed = vec![(me + 1) % 4];
            let plan = CommPlan::build(ctx, tags::MIS_KEYS, needed, |j| dist.owner(j));
            // Frame sizes vary by rank (me words) — nothing values-only
            // could have predicted statically.
            plan.replay_exact_tagged(
                ctx,
                tags::MIS_KEYS,
                |_, _| Payload::u64s(vec![7; me]),
                |peer, _, payload| assert_eq!(payload.into_u64(), vec![7; peer]),
            );
            plan.replay_symmetric_exact_tagged(
                ctx,
                tags::MIS_CONF,
                |_| Payload::u64s(vec![9; me + 1]),
                |peer, payload| assert_eq!(payload.into_u64(), vec![9; peer + 1]),
            );
        });
        for tag in [tags::MIS_KEYS, tags::MIS_CONF] {
            let (m, b) = out.stats.tag_totals(tag);
            let &(pm, pb, exact) = out
                .stats
                .planned_by_tag
                .get(&tag)
                .expect("exact replays record predictions");
            assert_eq!((m, b), (pm, pb), "tag {}", tags::tag_name(tag));
            assert!(exact, "exact-framed rounds keep the exact flag");
        }
    }

    #[test]
    fn symmetric_round_pairs_every_linked_peer() {
        let dist = Distribution::block(4, 4);
        let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
            let me = ctx.rank();
            // Ring of directed needs: rank r references node of rank r+1.
            let needed = vec![(me + 1) % 4];
            let plan = CommPlan::build(ctx, tags::MIS_KEYS, needed, |j| dist.owner(j));
            let mut heard: Vec<usize> = Vec::new();
            plan.replay_symmetric_tagged(
                ctx,
                tags::MIS_CONF,
                |_| Payload::u64s(vec![me as u64]),
                |peer, payload| {
                    assert_eq!(payload.into_u64(), vec![peer as u64]);
                    heard.push(peer);
                },
            );
            heard
        });
        for (r, heard) in out.results.iter().enumerate() {
            let expect = {
                let mut v = vec![(r + 1) % 4, (r + 3) % 4];
                v.sort_unstable();
                v
            };
            assert_eq!(heard, &expect, "rank {r}");
        }
    }
}
