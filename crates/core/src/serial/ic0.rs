//! Zero-fill incomplete Cholesky — IC(0), after Meijerink & van der Vorst
//! (the paper's reference [10], where incomplete factorization
//! preconditioning originates).
//!
//! For a symmetric positive definite matrix, computes `A ≈ L Lᵀ` with the
//! pattern of the lower triangle of `A`. Used with the conjugate-gradient
//! solver on SPD problems, where it is the symmetric counterpart of the
//! ILU preconditioners.

use crate::breakdown::{PivotDoctor, PivotFault, PivotFix};
use crate::options::{BreakdownPolicy, FactorError};
use pilut_sparse::CsrMatrix;

/// The lower-triangular incomplete Cholesky factor, row-major, diagonal
/// stored last in each row.
#[derive(Clone, Debug)]
pub struct IcFactors {
    n: usize,
    /// Row i: strictly-lower `(col, val)` pairs ascending, then the diagonal.
    rows: Vec<Vec<(usize, f64)>>,
}

impl IcFactors {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries in the lower-triangular factor.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Solves `L Lᵀ x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut y = b.to_vec();
        // Forward: L y = b.
        for (i, row) in self.rows.iter().enumerate() {
            // lint: allow(unwrap): every IC row stores at least its diagonal
            let (last, lower) = row.split_last().expect("empty IC row");
            let mut s = y[i];
            for &(j, v) in lower {
                s -= v * y[j];
            }
            y[i] = s / last.1;
        }
        // Backward: Lᵀ x = y (column sweep over L's rows in reverse).
        for i in (0..self.n).rev() {
            // lint: allow(unwrap): every IC row stores at least its diagonal
            let (last, lower) = self.rows[i].split_last().unwrap();
            y[i] /= last.1;
            let yi = y[i];
            for &(j, v) in lower {
                y[j] -= v * yi;
            }
        }
        y
    }
}

/// Computes IC(0) of a symmetric positive definite matrix.
///
/// Returns [`FactorError::ZeroPivot`] when a pivot becomes non-positive —
/// the classic IC breakdown on matrices that are not (close enough to)
/// M-matrices. Use [`ic0_with`] to recover instead of aborting.
pub fn ic0(a: &CsrMatrix) -> Result<IcFactors, FactorError> {
    ic0_with(a, BreakdownPolicy::Abort)
}

/// [`ic0`] with an explicit [`BreakdownPolicy`]. For Cholesky the pivot is
/// the *squared* diagonal, so a non-positive value is the breakdown
/// condition: `Shift` replaces it with the escalating boost (always
/// positive), `ReplaceRow` makes the row `√‖a_i‖₂ · eᵢ`.
pub fn ic0_with(a: &CsrMatrix, policy: BreakdownPolicy) -> Result<IcFactors, FactorError> {
    assert_eq!(a.n_rows(), a.n_cols(), "IC(0) needs a square matrix");
    policy.validate()?;
    let mut doctor = PivotDoctor::new(policy);
    let n = a.n_rows();
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let mut row: Vec<(usize, f64)> = Vec::new();
        let mut diag = 0.0;
        for (&j, &aij) in cols.iter().zip(vals) {
            if j > i {
                continue;
            }
            // s = a_ij - Σ_k l_ik l_jk over the shared strictly-lower pattern.
            let mut s = aij;
            let lj = &rows.get(j).map(|r| &r[..]).unwrap_or(&[]);
            // Two-pointer intersection of the strict parts.
            let li = &row[..];
            let (mut p, mut q) = (0usize, 0usize);
            while p < li.len() && q < lj.len().saturating_sub(if j < i { 1 } else { 0 }) {
                let (cp, vp) = li[p];
                let (cq, vq) = lj[q];
                if cq >= j {
                    break;
                }
                match cp.cmp(&cq) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        s -= vp * vq;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if j < i {
                // lint: allow(unwrap): rows[j] ends with its diagonal entry
                let ljj = rows[j].last().unwrap().1;
                row.push((j, s / ljj));
            } else {
                diag = s;
            }
        }
        // Non-finite strict entries (downstream echoes of an earlier
        // near-breakdown) are fatal under Abort, scrubbed under recovery.
        doctor.scrub_row(i, &mut row)?;
        // Subtract the squares of the row's own strict entries from the
        // diagonal.
        for &(_, v) in &row {
            diag -= v * v;
        }
        let fault = if !diag.is_finite() {
            Some(PivotFault::NonFinite)
        } else if diag <= 0.0 {
            Some(PivotFault::Zero)
        } else {
            None
        };
        if let Some(fault) = fault {
            let scale = PivotDoctor::usable_scale(a.row_norm2(i));
            match doctor.resolve(i, fault, scale)? {
                PivotFix::Shift(boost) => diag = boost,
                PivotFix::ReplaceRow(d) => {
                    row.clear();
                    diag = d;
                }
            }
        }
        row.push((i, diag.sqrt()));
        rows.push(row);
    }
    Ok(IcFactors { n, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;

    #[test]
    fn tridiagonal_ic0_is_exact_cholesky() {
        // No fill ⇒ IC(0) = exact Cholesky ⇒ exact solves.
        let a = gen::laplace_2d(12, 1);
        let f = ic0(&a).unwrap();
        let x_true: Vec<f64> = (0..12).map(|i| i as f64 - 5.0).collect();
        let b = a.spmv_owned(&x_true);
        let x = f.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn pattern_is_lower_triangle_of_a() {
        let a = gen::laplace_2d(6, 6);
        let f = ic0(&a).unwrap();
        let mut nnz_lower = 0;
        for i in 0..a.n_rows() {
            nnz_lower += a.row(i).0.iter().filter(|&&j| j <= i).count();
        }
        assert_eq!(f.nnz(), nnz_lower);
    }

    #[test]
    fn preconditioner_action_reduces_residual() {
        let a = gen::laplace_2d(10, 10);
        let f = ic0(&a).unwrap();
        let b = a.spmv_owned(&vec![1.0; 100]);
        let z = f.solve(&b);
        // One IC(0) application should be a rough solve: residual reduced.
        let az = a.spmv_owned(&z);
        let r0: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let r1: f64 = az
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(r1 < r0, "no reduction: {r1} vs {r0}");
    }

    #[test]
    fn breakdown_detected_on_indefinite_matrix() {
        use pilut_sparse::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 1.0); // indefinite: 1 - 4 < 0
        assert!(matches!(
            ic0(&coo.to_csr()),
            Err(FactorError::ZeroPivot { row: 1 })
        ));
    }

    #[test]
    fn recovery_policies_survive_the_indefinite_matrix() {
        use pilut_sparse::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        for policy in [BreakdownPolicy::shift(), BreakdownPolicy::ReplaceRow] {
            let f = ic0_with(&a, policy).unwrap();
            let z = f.solve(&[1.0, 1.0]);
            assert!(z.iter().all(|v| v.is_finite()), "{policy:?}: {z:?}");
        }
    }
}
