//! The ILUT dropping rules, shared by the serial and parallel formulations.

/// Rule 2/3 selection: from `entries`, drop everything with magnitude below
/// `tau_i`, then keep the `cap` entries of largest magnitude. Entries whose
/// column appears in `always_keep` (e.g. the diagonal) bypass both filters
/// and do not count against `cap`. Returns the survivors sorted by column.
pub fn threshold_and_cap(
    mut entries: Vec<(usize, f64)>,
    tau_i: f64,
    cap: usize,
    always_keep: Option<usize>,
) -> Vec<(usize, f64)> {
    threshold_and_cap_in_place(&mut entries, tau_i, cap, always_keep);
    entries
}

/// In-place variant of [`threshold_and_cap`] for hot loops that reuse one
/// scratch buffer across rows: `entries` is filtered, capped, and left
/// sorted by column, without giving up its allocation.
pub fn threshold_and_cap_in_place(
    entries: &mut Vec<(usize, f64)>,
    tau_i: f64,
    cap: usize,
    always_keep: Option<usize>,
) {
    let mut kept_special: Option<(usize, f64)> = None;
    if let Some(d) = always_keep {
        if let Some(pos) = entries.iter().position(|&(c, _)| c == d) {
            kept_special = Some(entries.swap_remove(pos));
        }
    }
    // lint: allow(float-eq): drops exactly-zero entries only
    entries.retain(|&(_, v)| v.abs() >= tau_i && v != 0.0);
    if entries.len() > cap {
        // Partial selection of the `cap` largest magnitudes.
        entries.select_nth_unstable_by(cap, |a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                // lint: allow(unwrap): factor values are finite; NaN would poison comparisons
                .expect("NaN in factorization")
        });
        entries.truncate(cap);
    }
    entries.extend(kept_special);
    entries.sort_unstable_by_key(|&(c, _)| c);
}

/// Approximate flop cost of the selection (comparisons modelled as one op
/// each; `select_nth` is linear).
pub fn selection_cost(n_entries: usize) -> f64 {
    2.0 * n_entries as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_below_threshold() {
        let out = threshold_and_cap(vec![(0, 5.0), (1, 0.01), (2, -3.0)], 0.1, 10, None);
        assert_eq!(out, vec![(0, 5.0), (2, -3.0)]);
    }

    #[test]
    fn caps_to_largest() {
        let out = threshold_and_cap(vec![(0, 1.0), (1, 4.0), (2, -3.0), (3, 2.0)], 0.0, 2, None);
        assert_eq!(out, vec![(1, 4.0), (2, -3.0)]);
    }

    #[test]
    fn always_keep_bypasses_everything() {
        let out = threshold_and_cap(vec![(0, 1.0), (1, 1e-9), (2, -3.0)], 0.1, 1, Some(1));
        // Diagonal 1 kept despite being tiny; cap=1 keeps only the largest other.
        assert_eq!(out, vec![(1, 1e-9), (2, -3.0)]);
    }

    #[test]
    fn exact_zeros_always_dropped() {
        let out = threshold_and_cap(vec![(0, 0.0), (1, 1.0)], 0.0, 10, None);
        assert_eq!(out, vec![(1, 1.0)]);
    }

    #[test]
    fn cap_zero_keeps_only_special() {
        let out = threshold_and_cap(vec![(0, 9.0), (1, 2.0)], 0.0, 0, Some(0));
        assert_eq!(out, vec![(0, 9.0)]);
    }
}
