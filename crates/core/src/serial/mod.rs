//! Serial incomplete factorizations.

pub mod block_ilut;
pub mod drop_rules;
pub mod ic0;
pub mod ilu0;
pub mod iluk;
pub mod ilut;

pub use block_ilut::{block_ilut, block_ilut_with_stats};
pub use ic0::{ic0, ic0_with};
pub use ilu0::{ilu0, ilu0_with};
pub use iluk::{iluk, iluk_with};
pub use ilut::ilut;
pub use ilut::ilut_with_stats;

// Re-export the option type where users expect it.
pub use crate::options::IlutOptions;
