//! Blocked ILUT(m, t): the serial ILUT elimination at dense-tile
//! granularity over BCSR storage.
//!
//! Structurally this is `serial::ilut` with every scalar operation replaced
//! by its `b × b` tile micro-kernel (`pilut_sparse::tile`):
//!
//! * the working row becomes a [`LanedRow`] whose lanes hold tiles,
//! * the multiplier `w_k / u_kk` becomes the tile-inverse application
//!   `M = W_k · U_kk⁻¹` ([`tile::lu_right_solve`] against the pivot block
//!   row's factored diagonal),
//! * the `w -= mult · u_k` axpy becomes a rank-`b` update per upper tile
//!   ([`tile::gemm_sub`]),
//! * the dropping rules act on tile Frobenius magnitudes at tile
//!   granularity (a tile survives or drops whole), with the diagonal tile
//!   always kept,
//! * breakdown handling routes through the same [`PivotDoctor`]: non-finite
//!   slots are scrubbed (fatal under `Abort`), and the no-pivot tile LU of
//!   the diagonal reports the failing *lane*, which the policy repairs as
//!   the matching scalar row — geometric shift escalation and replace-row
//!   semantics carry over unchanged.
//!
//! At `b = 1` every one of those reductions is bitwise the scalar
//! operation (see the `tile` module contract), so `block_ilut` on a
//! 1-blocked matrix produces factors bitwise-identical to `ilut` — the
//! differential test the whole blocked layer is anchored to. The one
//! deliberate divergence: scrubbed non-finite slots are *zeroed* in place
//! rather than structurally removed (a tile cannot lose a single slot), so
//! under the recovery policies a poisoned factor keeps an explicit zero
//! where the scalar kernel removes the entry.

use crate::block_factors::{BlockLuFactors, BlockTileRow};
use crate::breakdown::{PivotDoctor, PivotFault, PivotFix};
use crate::options::{FactorError, FactorStats, IlutOptions};
use crate::serial::drop_rules::selection_cost;
use pilut_sparse::tile;
use pilut_sparse::{BcsrMatrix, LanedRow};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A retained tile candidate during the second dropping rule: block column,
/// tile index into the drained lane buffer, and dropping magnitude.
#[derive(Clone, Copy, Debug)]
struct TileRef {
    col: usize,
    idx: usize,
    mag: f64,
}

/// Rule 2/3 selection at tile granularity — the exact sequence of
/// `drop_rules::threshold_and_cap_in_place` (swap-remove of the always-keep
/// entry, retain, `select_nth` on descending magnitude, column sort) so the
/// surviving population at `b = 1` is identical entry for entry, including
/// `select_nth`'s tie-breaking.
fn threshold_and_cap_tiles(
    refs: &mut Vec<TileRef>,
    tau_i: f64,
    cap: usize,
    always_keep: Option<usize>,
) {
    let mut kept_special: Option<TileRef> = None;
    if let Some(d) = always_keep {
        if let Some(pos) = refs.iter().position(|r| r.col == d) {
            kept_special = Some(refs.swap_remove(pos));
        }
    }
    // lint: allow(float-eq): drops exactly-zero tiles only
    refs.retain(|r| r.mag >= tau_i && r.mag != 0.0);
    if refs.len() > cap {
        refs.select_nth_unstable_by(cap, |a, b| {
            b.mag
                .partial_cmp(&a.mag)
                // lint: allow(unwrap): magnitudes are non-NaN by the retain above
                .expect("NaN in factorization")
        });
        refs.truncate(cap);
    }
    refs.extend(kept_special);
    refs.sort_unstable_by_key(|r| r.col);
}

/// Scrubs non-finite slots from a run of tiles: fatal under `Abort`
/// (reported at the scalar row of the first poisoned slot), zeroed and
/// counted under the recovery policies — the blocked analog of
/// `PivotDoctor::scrub_row`.
fn scrub_tiles(
    doctor: &mut PivotDoctor,
    row0: usize,
    b: usize,
    tiles: &mut [f64],
) -> Result<(), FactorError> {
    let bb = b * b;
    let bad: Vec<usize> = tiles
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_finite())
        .map(|(s, _)| s)
        .collect();
    if bad.is_empty() {
        return Ok(());
    }
    let row = row0 + (bad[0] % bb) / b;
    // Funnel through the doctor so Abort/recovery and the scrub count mean
    // exactly what they do in the scalar kernels.
    let mut entries: Vec<(usize, f64)> = bad.iter().map(|&s| (s, tiles[s])).collect();
    doctor.scrub_row(row, &mut entries)?;
    for s in bad {
        tiles[s] = 0.0;
    }
    Ok(())
}

/// Flop count of one no-pivot `b × b` tile LU (0 at `b = 1`, matching the
/// scalar kernel which never factors its 1×1 diagonal).
fn tile_lu_cost(b: usize) -> f64 {
    (0..b)
        .map(|k| {
            let r = b - 1 - k;
            (r * (1 + 2 * r)) as f64
        })
        .sum()
}

/// Diagonal-repair attempts per block row before giving up. Each failed
/// lane costs one `PivotDoctor::resolve`, whose shift escalates
/// geometrically, so a tile that is repairable at all converges in a few
/// rounds; the cap only guards pathological policies.
const MAX_DIAG_REPAIRS: usize = 64;

/// Computes blocked ILUT(m, t) of a square BCSR matrix.
///
/// `m` caps the number of *tiles* kept per strict block-lower and
/// block-upper part of each block row; `tau` scales the per-block-row
/// Frobenius norm into the drop threshold. See the module docs for the
/// scalar correspondence.
pub fn block_ilut(a: &BcsrMatrix, opts: &IlutOptions) -> Result<BlockLuFactors, FactorError> {
    block_ilut_with_stats(a, opts).map(|(f, _)| f)
}

/// Like [`block_ilut`], additionally returning operation counts.
/// `nnz_l`/`nnz_u` count dense tile slots (`tiles · b²`) so they reduce to
/// the scalar entry counts at `b = 1`.
pub fn block_ilut_with_stats(
    a: &BcsrMatrix,
    opts: &IlutOptions,
) -> Result<(BlockLuFactors, FactorStats), FactorError> {
    assert_eq!(a.n_rows(), a.n_cols(), "blocked ILUT needs a square matrix");
    opts.validate()?;
    let n = a.n_rows();
    let b = a.block_size();
    let bb = b * b;
    let nb = a.n_brows();
    let mut doctor = PivotDoctor::new(opts.breakdown);
    let mut l_rows: Vec<BlockTileRow> = Vec::with_capacity(nb);
    let mut u_rows: Vec<BlockTileRow> = Vec::with_capacity(nb);
    let mut diag_lus: Vec<f64> = Vec::with_capacity(nb * bb);
    let mut w = LanedRow::new(nb, bb);
    let mut stats = FactorStats::default();
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut in_heap = vec![false; nb];
    // Scratch reused across block rows.
    let mut cols_buf: Vec<usize> = Vec::new();
    let mut lanes_buf: Vec<f64> = Vec::new();
    let mut lower: Vec<TileRef> = Vec::new();
    let mut upper: Vec<TileRef> = Vec::new();
    let mut mbuf = [0.0f64; tile::MAX_BLOCK * tile::MAX_BLOCK];

    for bi in 0..nb {
        let rows = (n - bi * b).min(b);
        let norm_i = a.block_row_norm(bi);
        let tau_i = opts.tau * norm_i;
        debug_assert!(heap.is_empty(), "heap drained by the previous block row");
        let (bcols, tiles) = a.block_row(bi);
        for (t, &bj) in bcols.iter().enumerate() {
            w.set_lane(bj, &tiles[t * bb..(t + 1) * bb]);
            if bj < bi && !in_heap[bj] {
                in_heap[bj] = true;
                heap.push(Reverse(bj));
            }
        }
        // Elimination sweep: ascending pivot block order, fills pushed
        // lazily — the scalar loop with tiles in place of scalars.
        while let Some(Reverse(k)) = heap.pop() {
            in_heap[k] = false;
            // lint: allow(float-eq): skips exactly cancelled tiles
            if w.lane(k).iter().all(|&v| v == 0.0) {
                w.drop_pos(k);
                continue;
            }
            // M = W_k · U_kk⁻¹ against block row k's factored diagonal.
            mbuf[..bb].copy_from_slice(w.lane(k));
            tile::lu_right_solve(b, &diag_lus[k * bb..(k + 1) * bb], &mut mbuf[..bb]);
            stats.flops += (bb * b) as f64;
            // First dropping rule, on the multiplier tile's magnitude.
            if tile::tile_mag(b, &mbuf[..bb]) < tau_i {
                w.drop_pos(k);
                continue;
            }
            w.set_lane(k, &mbuf[..bb]);
            // W -= M · U_k over the pivot's strict block-upper tiles.
            let urow = &u_rows[k];
            for (t, &j) in urow.cols.iter().enumerate() {
                let newly = !w.contains(j);
                tile::gemm_sub(
                    b,
                    w.occupy(j),
                    &mbuf[..bb],
                    &urow.tiles[t * bb..(t + 1) * bb],
                );
                if newly && j < bi && !in_heap[j] {
                    in_heap[j] = true;
                    heap.push(Reverse(j));
                }
            }
            stats.flops += 2.0 * (bb * b) as f64 * urow.len() as f64;
        }
        // Second dropping rule at tile granularity.
        w.drain_sorted_lanes_into(&mut cols_buf, &mut lanes_buf);
        stats.flops += selection_cost(cols_buf.len());
        lower.clear();
        upper.clear();
        for (idx, &c) in cols_buf.iter().enumerate() {
            let mag = tile::tile_mag(b, &lanes_buf[idx * bb..(idx + 1) * bb]);
            let r = TileRef { col: c, idx, mag };
            if c < bi {
                lower.push(r);
            } else {
                upper.push(r);
            }
        }
        threshold_and_cap_tiles(&mut lower, tau_i, opts.m, None);
        threshold_and_cap_tiles(&mut upper, tau_i, opts.m, Some(bi));
        // Materialise the survivors; the diagonal tile (if stored) leads
        // `upper` after the column sort.
        let mut lrow = BlockTileRow::default();
        for r in &lower {
            lrow.cols.push(r.col);
            lrow.tiles
                .extend_from_slice(&lanes_buf[r.idx * bb..(r.idx + 1) * bb]);
        }
        let mut urow = BlockTileRow::default();
        let mut diag: Option<[f64; tile::MAX_BLOCK * tile::MAX_BLOCK]> = None;
        for r in &upper {
            if r.col == bi {
                let mut d = [0.0f64; tile::MAX_BLOCK * tile::MAX_BLOCK];
                d[..bb].copy_from_slice(&lanes_buf[r.idx * bb..(r.idx + 1) * bb]);
                diag = Some(d);
            } else {
                urow.cols.push(r.col);
                urow.tiles
                    .extend_from_slice(&lanes_buf[r.idx * bb..(r.idx + 1) * bb]);
            }
        }
        // Breakdown handling: scrub, classify the diagonal, factor it with
        // lane-level repair.
        scrub_tiles(&mut doctor, bi * b, b, &mut lrow.tiles)?;
        scrub_tiles(&mut doctor, bi * b, b, &mut urow.tiles)?;
        if let Some(d) = diag.as_mut() {
            scrub_tiles(&mut doctor, bi * b, b, &mut d[..bb])?;
        }
        let mut diag = match diag {
            Some(d) => d,
            None => {
                // No diagonal tile survived and no fill reached it.
                let mut d = [0.0f64; tile::MAX_BLOCK * tile::MAX_BLOCK];
                match doctor.resolve(
                    bi * b,
                    PivotFault::StructurallyMissing,
                    PivotDoctor::usable_scale(norm_i),
                )? {
                    PivotFix::Shift(boost) => {
                        for r in 0..rows {
                            d[r * b + r] = boost;
                        }
                    }
                    PivotFix::ReplaceRow(dv) => {
                        lrow = BlockTileRow::default();
                        urow = BlockTileRow::default();
                        for r in 0..rows {
                            d[r * b + r] = dv;
                        }
                    }
                }
                d
            }
        };
        // Padding lanes (last block row when b ∤ n) carry identity.
        for r in rows..b {
            diag[r * b + r] = 1.0;
        }
        let mut attempts = 0usize;
        let dlu = loop {
            let mut t = diag;
            match tile::lu_factor(b, &mut t[..bb]) {
                Ok(()) => break t,
                Err(lane) => {
                    let piv = t[lane * b + lane];
                    let fault = if !piv.is_finite() {
                        PivotFault::NonFinite
                    } else {
                        PivotFault::Zero
                    };
                    attempts += 1;
                    if attempts > MAX_DIAG_REPAIRS {
                        return Err(fault.error_at(bi * b + lane));
                    }
                    match doctor.resolve(bi * b + lane, fault, PivotDoctor::usable_scale(norm_i))? {
                        PivotFix::Shift(boost) => diag[lane * b + lane] = boost,
                        PivotFix::ReplaceRow(dv) => {
                            lrow = BlockTileRow::default();
                            urow = BlockTileRow::default();
                            diag = [0.0; tile::MAX_BLOCK * tile::MAX_BLOCK];
                            for r in 0..rows {
                                diag[r * b + r] = dv;
                            }
                            for r in rows..b {
                                diag[r * b + r] = 1.0;
                            }
                        }
                    }
                }
            }
        };
        stats.flops += tile_lu_cost(b);
        stats.nnz_l += lrow.len() * bb;
        stats.nnz_u += (urow.len() + 1) * bb;
        l_rows.push(lrow);
        u_rows.push(urow);
        diag_lus.extend_from_slice(&dlu[..bb]);
    }
    stats.breakdowns_repaired = doctor.repairs();
    Ok((
        BlockLuFactors::from_parts(n, b, l_rows, u_rows, diag_lus),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::BreakdownPolicy;
    use crate::serial::ilut::ilut_with_stats;
    use pilut_sparse::gen;
    use pilut_sparse::vec_ops::max_abs_diff;
    use pilut_sparse::CsrMatrix;

    /// At block size 1 the blocked kernel IS the scalar kernel: factors,
    /// stats, and solves are bitwise-identical.
    #[test]
    fn b1_is_bitwise_the_scalar_ilut() {
        for (m, tau) in [(5usize, 0.0f64), (3, 1e-2), (8, 1e-4)] {
            let a = gen::convection_diffusion_2d(9, 7, 2.0, -1.5);
            let opts = IlutOptions::new(m, tau);
            let (sf, ss) = ilut_with_stats(&a, &opts).unwrap();
            let ab = BcsrMatrix::from_csr(&a, 1);
            let (bf, bs) = block_ilut_with_stats(&ab, &opts).unwrap();
            assert_eq!(ss.flops, bs.flops, "m={m} tau={tau}");
            assert_eq!(ss.nnz_l, bs.nnz_l);
            assert_eq!(ss.nnz_u, bs.nnz_u);
            let refined = bf.to_lu_factors();
            for i in 0..a.n_rows() {
                assert_eq!(sf.l[i].cols, refined.l[i].cols, "L row {i}");
                assert_eq!(sf.l[i].vals, refined.l[i].vals, "L row {i}");
                assert_eq!(sf.u[i].cols, refined.u[i].cols, "U row {i}");
                assert_eq!(sf.u[i].vals, refined.u[i].vals, "U row {i}");
            }
            let r: Vec<f64> = (0..a.n_rows()).map(|i| (i % 11) as f64 - 5.0).collect();
            assert_eq!(sf.solve(&r), bf.solve(&r), "trisolve diverged");
        }
    }

    /// With nothing dropped, blocked ILUT at any block size is an exact LU.
    #[test]
    fn exact_lu_when_nothing_drops() {
        let a = gen::laplace_2d(6, 6);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let rhs = a.spmv_owned(&x_true);
        for b in [2usize, 3, 4] {
            let ab = BcsrMatrix::from_csr(&a, b);
            let f = block_ilut(&ab, &IlutOptions::new(n, 0.0)).unwrap();
            f.check_structure().unwrap();
            let x = f.solve(&rhs);
            assert!(
                max_abs_diff(&x, &x_true) < 1e-9,
                "b={b}: not an exact solve"
            );
        }
    }

    /// Ragged dimension (n not divisible by b): padding must not leak.
    #[test]
    fn ragged_blocks_solve_exactly() {
        let a = gen::convection_diffusion_2d(5, 7, 1.0, 1.0); // n = 35
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let rhs = a.spmv_owned(&x_true);
        for b in [2usize, 4] {
            assert_ne!(n % b, 0);
            let ab = BcsrMatrix::from_csr(&a, b);
            let f = block_ilut(&ab, &IlutOptions::new(n, 0.0)).unwrap();
            let x = f.solve(&rhs);
            assert!(max_abs_diff(&x, &x_true) < 1e-9, "b={b}");
        }
    }

    /// The blocked factors' scalar refinement solves like the blocked
    /// sweep (same operator, different evaluation order).
    #[test]
    fn refinement_matches_blocked_solve() {
        let a = gen::laplace_2d(8, 8);
        let ab = BcsrMatrix::from_csr(&a, 4);
        let f = block_ilut(&ab, &IlutOptions::new(6, 1e-3)).unwrap();
        let s = f.to_lu_factors();
        s.check_structure().unwrap();
        let r: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64).sin()).collect();
        let (got, want) = (f.solve(&r), s.solve(&r));
        let scale = want.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-12 * scale, "blocked vs refined solve");
        }
    }

    /// A panel solve's columns are bitwise the single-vector solves.
    #[test]
    fn panel_solve_is_columnwise_bitwise() {
        let a = gen::convection_diffusion_2d(6, 6, 3.0, 0.5);
        let ab = BcsrMatrix::from_csr(&a, 2);
        let f = block_ilut(&ab, &IlutOptions::new(8, 1e-3)).unwrap();
        let n = a.n_rows();
        let k = 8;
        let rhs: Vec<f64> = (0..n * k).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let panel = f.solve_panel(&rhs, k);
        for c in 0..k {
            let col: Vec<f64> = (0..n).map(|i| rhs[i * k + c]).collect();
            let single = f.solve(&col);
            for i in 0..n {
                assert_eq!(panel[i * k + c], single[i], "col {c} row {i}");
            }
        }
    }

    /// Structurally missing block pivot: Abort errors, Shift recovers.
    #[test]
    fn breakdown_policies_apply_at_block_granularity() {
        // [[0, 1], [1, 0]] blocked at b=2 has its diagonal tile present but
        // the tile LU hits a zero pivot in lane 0.
        let a = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]);
        let ab = BcsrMatrix::from_csr(&a, 2);
        let err = block_ilut(&ab, &IlutOptions::new(2, 0.0)).unwrap_err();
        assert_eq!(err, FactorError::ZeroPivot { row: 0 });
        let opts = IlutOptions::new(2, 0.0).with_breakdown(BreakdownPolicy::shift());
        let (f, s) = block_ilut_with_stats(&ab, &opts).unwrap();
        f.check_structure().unwrap();
        assert!(s.breakdowns_repaired >= 1);
    }

    /// Tile fill cap honoured: at most m tiles per strict part.
    #[test]
    fn respects_tile_cap() {
        let a = gen::laplace_2d(12, 12);
        let ab = BcsrMatrix::from_csr(&a, 2);
        let m = 2;
        let f = block_ilut(&ab, &IlutOptions::new(m, 0.0)).unwrap();
        for bi in 0..f.n_brows() {
            assert!(f.l_row(bi).0.len() <= m, "L block row {bi}");
            assert!(f.u_row(bi).0.len() <= m, "U block row {bi}");
        }
    }

    /// Preconditioner quality: blocked ILUT at b=4 beats doing nothing and
    /// is in the scalar ILUT's quality neighbourhood.
    #[test]
    fn blocked_preconditioner_reduces_residual() {
        let a = gen::convection_diffusion_2d(10, 10, 5.0, 5.0);
        let n = a.n_rows();
        let x_true = vec![1.0; n];
        let rhs = a.spmv_owned(&x_true);
        let ab = BcsrMatrix::from_csr(&a, 4);
        let f = block_ilut(&ab, &IlutOptions::new(8, 1e-8)).unwrap();
        let x = f.solve(&rhs);
        let err_precond = max_abs_diff(&x, &x_true);
        let err_nothing = max_abs_diff(&rhs, &x_true);
        assert!(
            err_precond < 0.5 * err_nothing,
            "blocked solve {err_precond} vs identity {err_nothing}"
        );
    }
}
