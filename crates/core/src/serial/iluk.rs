//! Level-of-fill incomplete factorization ILU(k).
//!
//! The other static-pattern baseline from the paper's §2: a fill entry's
//! *level* is `min over pivots p of lev(i,p) + lev(p,j) + 1` (original
//! entries have level 0) and entries with level exceeding `k` are dropped —
//! purely structural, insensitive to magnitudes, which is exactly the
//! weakness (paper §2) that motivates threshold-based dropping.

use crate::breakdown::PivotDoctor;
use crate::factors::{LuFactors, SparseRow};
use crate::options::{BreakdownPolicy, FactorError};
use pilut_sparse::CsrMatrix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes ILU(k) with the given fill level. `iluk(a, 0)` equals ILU(0).
///
/// Aborts on the first unusable pivot; use [`iluk_with`] to recover instead.
pub fn iluk(a: &CsrMatrix, k: usize) -> Result<LuFactors, FactorError> {
    iluk_with(a, k, BreakdownPolicy::Abort)
}

/// [`iluk`] with an explicit [`BreakdownPolicy`] for unusable pivots.
pub fn iluk_with(
    a: &CsrMatrix,
    k: usize,
    policy: BreakdownPolicy,
) -> Result<LuFactors, FactorError> {
    assert_eq!(a.n_rows(), a.n_cols(), "ILU(k) needs a square matrix");
    policy.validate()?;
    let mut doctor = PivotDoctor::new(policy);
    let n = a.n_rows();
    let mut l: Vec<SparseRow> = Vec::with_capacity(n);
    let mut u: Vec<SparseRow> = Vec::with_capacity(n);
    // Levels of the kept U rows (aligned with u[i]'s columns).
    let mut u_levels: Vec<Vec<usize>> = Vec::with_capacity(n);

    // Dense per-row scratch: value, level, occupancy.
    let mut val = vec![0.0f64; n];
    let mut lev = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();

    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            val[j] = v;
            lev[j] = 0;
            touched.push(j);
            if j < i {
                heap.push(Reverse(j));
            }
        }
        while let Some(Reverse(p)) = heap.pop() {
            if matches!(heap.peek(), Some(&Reverse(q)) if q == p) {
                continue;
            }
            if lev[p] == usize::MAX || lev[p] > k {
                continue; // dropped symbolically — no elimination against it
            }
            let urow = &u[p];
            let ulev = &u_levels[p];
            let mult = val[p] / urow.vals[0];
            val[p] = mult;
            for ((&j, &uval), &ul) in urow.cols[1..].iter().zip(&urow.vals[1..]).zip(&ulev[1..]) {
                let new_level = lev[p].saturating_add(ul).saturating_add(1);
                if lev[j] == usize::MAX {
                    if new_level > k {
                        continue; // fill beyond the allowed level
                    }
                    val[j] = -mult * uval;
                    lev[j] = new_level;
                    touched.push(j);
                    if j < i {
                        heap.push(Reverse(j));
                    }
                } else {
                    val[j] -= mult * uval;
                    lev[j] = lev[j].min(new_level);
                }
            }
        }
        let mut lower: Vec<(usize, f64)> = Vec::new();
        let mut upper: Vec<(usize, f64)> = Vec::new();
        let mut upper_lev: Vec<(usize, usize)> = Vec::new();
        touched.sort_unstable();
        for &j in &touched {
            if lev[j] <= k {
                if j < i {
                    lower.push((j, val[j]));
                } else {
                    upper.push((j, val[j]));
                    upper_lev.push((j, lev[j]));
                }
            }
            val[j] = 0.0;
            lev[j] = usize::MAX;
        }
        touched.clear();
        doctor.repair_row(i, a.row_norm2(i), &mut lower, &mut upper)?;
        // A repair can change the upper pattern (inserted or replaced
        // diagonal, scrubbed entries); realign the levels with it. An
        // injected diagonal gets level 0, like an original entry.
        u_levels.push(
            upper
                .iter()
                .map(|&(j, _)| {
                    upper_lev
                        .iter()
                        .find(|&&(c, _)| c == j)
                        .map_or(0, |&(_, lv)| lv)
                })
                .collect(),
        );
        l.push(SparseRow::from_pairs(lower));
        u.push(SparseRow::from_pairs(upper));
    }
    Ok(LuFactors { n, l, u })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::ilu0::ilu0;
    use pilut_sparse::gen;
    use pilut_sparse::vec_ops::norm2;

    #[test]
    fn level_zero_matches_ilu0() {
        let a = gen::convection_diffusion_2d(7, 5, 2.0, -1.0);
        let f0 = ilu0(&a).unwrap();
        let fk = iluk(&a, 0).unwrap();
        for i in 0..a.n_rows() {
            assert_eq!(f0.l[i], fk.l[i], "L row {i}");
            assert_eq!(f0.u[i], fk.u[i], "U row {i}");
        }
    }

    #[test]
    fn fill_grows_with_level() {
        let a = gen::laplace_2d(10, 10);
        let n0 = iluk(&a, 0).unwrap().nnz();
        let n1 = iluk(&a, 1).unwrap().nnz();
        let n3 = iluk(&a, 3).unwrap().nnz();
        assert!(n1 > n0, "{n1} !> {n0}");
        assert!(n3 > n1, "{n3} !> {n1}");
    }

    #[test]
    fn high_level_approaches_exact_lu() {
        let a = gen::laplace_2d(6, 6);
        let n = a.n_rows();
        let x_true = vec![1.0; n];
        let b = a.spmv_owned(&x_true);
        let resid = |k: usize| {
            let f = iluk(&a, k).unwrap();
            let x = f.solve(&b);
            let ax = a.spmv_owned(&x);
            norm2(&ax.iter().zip(&b).map(|(y, bi)| y - bi).collect::<Vec<_>>())
        };
        let r0 = resid(0);
        let r2 = resid(2);
        let r12 = resid(12);
        assert!(r2 < r0);
        assert!(r12 < 1e-8, "k=12 should be essentially exact, got {r12}");
    }

    #[test]
    fn structure_valid() {
        let a = gen::fem_torso(8, 5);
        let f = iluk(&a, 2).unwrap();
        f.check_structure().unwrap();
    }
}
