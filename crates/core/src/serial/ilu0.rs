//! Zero-fill incomplete factorization ILU(0).
//!
//! The static-pattern baseline the paper contrasts ILUT against: no fill is
//! allowed, so `L + U` has exactly the pattern of `A` and concurrency can be
//! extracted with a one-time colouring (paper Figure 1a).

use crate::breakdown::PivotDoctor;
use crate::factors::{LuFactors, SparseRow};
use crate::options::{BreakdownPolicy, FactorError};
use pilut_sparse::{CsrMatrix, WorkRow};

/// Computes ILU(0): Gaussian elimination restricted to the pattern of `A`.
///
/// Aborts on the first unusable pivot; use [`ilu0_with`] to recover instead.
pub fn ilu0(a: &CsrMatrix) -> Result<LuFactors, FactorError> {
    ilu0_with(a, BreakdownPolicy::Abort)
}

/// [`ilu0`] with an explicit [`BreakdownPolicy`] for unusable pivots. Note
/// that the recovery policies may shrink the factor pattern below the
/// pattern of `A` (scrubbed entries, replaced rows).
pub fn ilu0_with(a: &CsrMatrix, policy: BreakdownPolicy) -> Result<LuFactors, FactorError> {
    assert_eq!(a.n_rows(), a.n_cols(), "ILU(0) needs a square matrix");
    policy.validate()?;
    let mut doctor = PivotDoctor::new(policy);
    let n = a.n_rows();
    let mut l: Vec<SparseRow> = Vec::with_capacity(n);
    let mut u: Vec<SparseRow> = Vec::with_capacity(n);
    let mut w = WorkRow::new(n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            w.set(j, v);
        }
        // Pivots are exactly the lower-pattern positions of row i (no fill
        // can appear, so a simple ascending sweep over the original pattern
        // is a complete elimination order).
        let mut lower: Vec<(usize, f64)> = Vec::new();
        for &k in cols.iter().filter(|&&k| k < i) {
            let wk = w.get(k);
            // lint: allow(float-eq): skips exactly cancelled multipliers
            if wk == 0.0 {
                // The position is part of the pattern even when the value
                // cancelled to zero — ILU(0) is defined by structure alone.
                lower.push((k, 0.0));
                w.drop_pos(k);
                continue;
            }
            let urow = &u[k];
            let mult = wk / urow.vals[0];
            lower.push((k, mult));
            // Update only positions already present in row i.
            for t in 1..urow.len() {
                let j = urow.cols[t];
                if w.contains(j) {
                    w.add(j, -mult * urow.vals[t]);
                }
            }
            w.drop_pos(k);
        }
        let mut upper: Vec<(usize, f64)> = Vec::new();
        for (j, v) in w.drain_sorted() {
            if j >= i {
                upper.push((j, v));
            }
        }
        doctor.repair_row(i, a.row_norm2(i), &mut lower, &mut upper)?;
        l.push(SparseRow::from_pairs(lower));
        u.push(SparseRow::from_pairs(upper));
    }
    Ok(LuFactors { n, l, u })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IlutOptions;
    use crate::serial::ilut::ilut;
    use pilut_sparse::gen;

    #[test]
    fn pattern_matches_original_matrix() {
        let a = gen::convection_diffusion_2d(6, 6, 3.0, 1.0);
        let f = ilu0(&a).unwrap();
        f.check_structure().unwrap();
        for i in 0..a.n_rows() {
            let (cols, _) = a.row(i);
            let mut merged: Vec<usize> = f.l[i].cols.clone();
            merged.extend_from_slice(&f.u[i].cols);
            merged.sort_unstable();
            assert_eq!(merged, cols.to_vec(), "row {i} pattern changed");
        }
    }

    #[test]
    fn tridiagonal_ilu0_is_exact() {
        // A tridiagonal matrix creates no fill, so ILU(0) = LU exactly.
        let a = gen::laplace_2d(10, 1);
        let f = ilu0(&a).unwrap();
        let x_true: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = a.spmv_owned(&x_true);
        let x = f.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn agrees_with_unbounded_ilut_on_no_fill_matrix() {
        let a = gen::laplace_2d(12, 1);
        let f0 = ilu0(&a).unwrap();
        let ft = ilut(&a, &IlutOptions::new(100, 0.0)).unwrap();
        for i in 0..a.n_rows() {
            assert_eq!(f0.l[i], ft.l[i], "L row {i}");
            assert_eq!(f0.u[i], ft.u[i], "U row {i}");
        }
    }

    #[test]
    fn zero_pivot_detected() {
        use pilut_sparse::CsrMatrix;
        let a = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]);
        assert_eq!(
            ilu0(&a).err(),
            Some(FactorError::StructurallySingular { row: 0 })
        );
    }

    #[test]
    fn recovery_policies_factor_the_singular_pattern() {
        use crate::options::BreakdownPolicy;
        use pilut_sparse::CsrMatrix;
        let a = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]);
        for policy in [BreakdownPolicy::shift(), BreakdownPolicy::ReplaceRow] {
            let f = ilu0_with(&a, policy).unwrap();
            f.check_structure().unwrap();
        }
    }
}
