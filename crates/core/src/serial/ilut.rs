//! The serial ILUT(m, t) factorization — paper Algorithm 2.1 (after Saad).

use crate::breakdown::PivotDoctor;
use crate::factors::{LuFactors, SparseRow};
use crate::options::{FactorError, FactorStats, IlutOptions};
use crate::serial::drop_rules::{selection_cost, threshold_and_cap_in_place};
use pilut_sparse::{CsrMatrix, WorkRow};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes ILUT(m, t) of a square matrix.
///
/// Row `i` is eliminated against already-factored rows `k < i` in ascending
/// order using a full-length working row (the paper's `w`); the first
/// dropping rule discards multipliers below `t·‖a_i‖₂`, the second keeps the
/// `m` largest entries in each of the strict `L` and `U` parts (the diagonal
/// is always kept). Unusable pivots are handled per
/// [`crate::options::BreakdownPolicy`] (`opts.breakdown`).
pub fn ilut(a: &CsrMatrix, opts: &IlutOptions) -> Result<LuFactors, FactorError> {
    ilut_with_stats(a, opts).map(|(f, _)| f)
}

/// Like [`ilut`], additionally returning operation counts.
pub fn ilut_with_stats(
    a: &CsrMatrix,
    opts: &IlutOptions,
) -> Result<(LuFactors, FactorStats), FactorError> {
    assert_eq!(a.n_rows(), a.n_cols(), "ILUT needs a square matrix");
    opts.validate()?;
    let mut doctor = PivotDoctor::new(opts.breakdown);
    let n = a.n_rows();
    let mut l: Vec<SparseRow> = Vec::with_capacity(n);
    let mut u: Vec<SparseRow> = Vec::with_capacity(n);
    let mut w = WorkRow::new(n);
    let mut stats = FactorStats::default();
    // Min-heap of candidate pivot columns still to eliminate in this row,
    // with a membership marker so each position is pushed at most once
    // (dedup-on-push instead of skip-duplicates-on-pop).
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut in_heap = vec![false; n];
    // Scratch buffers reused across rows.
    let mut entries: Vec<(usize, f64)> = Vec::new();
    let mut lower: Vec<(usize, f64)> = Vec::new();
    let mut upper: Vec<(usize, f64)> = Vec::new();

    for i in 0..n {
        let (cols, vals) = a.row(i);
        let norm_i = a.row_norm2(i);
        let tau_i = opts.tau * norm_i;
        debug_assert!(heap.is_empty(), "heap drained by the previous row");
        for (&j, &v) in cols.iter().zip(vals) {
            w.set(j, v);
            if j < i && !in_heap[j] {
                in_heap[j] = true;
                heap.push(Reverse(j));
            }
        }
        // Elimination sweep: ascending pivot order, fills pushed lazily.
        while let Some(Reverse(k)) = heap.pop() {
            in_heap[k] = false;
            let wk = w.get(k);
            // lint: allow(float-eq): skips exactly cancelled multipliers
            if wk == 0.0 {
                w.drop_pos(k);
                continue;
            }
            let urow = &u[k];
            let mult = wk / urow.vals[0];
            stats.flops += 1.0;
            // First dropping rule.
            if mult.abs() < tau_i {
                w.drop_pos(k);
                continue;
            }
            w.set(k, mult);
            // w -= mult * u_k (strict upper part of the pivot row).
            for t in 1..urow.len() {
                let j = urow.cols[t];
                let newly = !w.contains(j);
                w.add(j, -mult * urow.vals[t]);
                if newly && j < i && !in_heap[j] {
                    in_heap[j] = true;
                    heap.push(Reverse(j));
                }
            }
            stats.flops += 2.0 * (urow.len() - 1) as f64;
        }
        // Second dropping rule: split into L and U parts, keep m largest in
        // each; the diagonal is always kept.
        w.drain_sorted_into(&mut entries);
        stats.flops += selection_cost(entries.len());
        lower.clear();
        upper.clear();
        for &(j, v) in &entries {
            if j < i {
                lower.push((j, v));
            } else {
                upper.push((j, v));
            }
        }
        threshold_and_cap_in_place(&mut lower, tau_i, opts.m, None);
        threshold_and_cap_in_place(&mut upper, tau_i, opts.m, Some(i));
        doctor.repair_row(i, norm_i, &mut lower, &mut upper)?;
        stats.nnz_l += lower.len();
        stats.nnz_u += upper.len();
        l.push(SparseRow::from_sorted_pairs(&lower));
        u.push(SparseRow::from_sorted_pairs(&upper));
    }
    stats.breakdowns_repaired = doctor.repairs();
    Ok((LuFactors { n, l, u }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;
    use pilut_sparse::vec_ops::{max_abs_diff, norm2};

    /// With a huge `m` and zero threshold, ILUT on a dense-enough band matrix
    /// is the exact LU: `LU x = b` reproduces `x = A⁻¹ b`.
    #[test]
    fn exact_lu_when_nothing_drops() {
        let a = gen::laplace_2d(6, 6);
        let n = a.n_rows();
        let f = ilut(&a, &IlutOptions::new(n, 0.0)).unwrap();
        f.check_structure().unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = a.spmv_owned(&x_true);
        let x = f.solve(&b);
        assert!(max_abs_diff(&x, &x_true) < 1e-10, "not an exact solve");
    }

    #[test]
    fn respects_fill_cap() {
        let a = gen::laplace_2d(12, 12);
        let m = 3;
        let f = ilut(&a, &IlutOptions::new(m, 0.0)).unwrap();
        for i in 0..f.n {
            assert!(f.l[i].len() <= m, "L row {i} has {} entries", f.l[i].len());
            assert!(
                f.u[i].len() <= m + 1,
                "U row {i} has {} entries",
                f.u[i].len()
            );
        }
    }

    #[test]
    fn large_threshold_degenerates_towards_diagonal() {
        let a = gen::laplace_2d(8, 8);
        // Threshold so large everything off-diagonal is dropped.
        let f = ilut(&a, &IlutOptions::new(10, 10.0)).unwrap();
        assert_eq!(f.nnz_l(), 0);
        assert_eq!(f.nnz_u(), a.n_rows());
    }

    #[test]
    fn preconditioner_quality_improves_with_m() {
        // Residual of M⁻¹A applied to a known solution should shrink as m
        // grows (more retained fill = better approximation).
        let a = gen::convection_diffusion_2d(10, 10, 5.0, 5.0);
        let n = a.n_rows();
        let x_true = vec![1.0; n];
        let b = a.spmv_owned(&x_true);
        let err = |m: usize| {
            let f = ilut(&a, &IlutOptions::new(m, 1e-8)).unwrap();
            let x = f.solve(&b);
            let r = a.spmv_owned(&x);
            norm2(&r.iter().zip(&b).map(|(y, bi)| y - bi).collect::<Vec<_>>())
        };
        let e2 = err(2);
        let e8 = err(8);
        let e32 = err(32);
        assert!(e8 < e2, "e8={e8} !< e2={e2}");
        assert!(e32 <= e8, "e32={e32} !<= e8={e8}");
    }

    #[test]
    fn zero_pivot_detected() {
        // [[0, 1], [1, 0]] has a structurally missing pivot: the diagonal
        // is outside the pattern and no fill reaches it in row 0.
        let a = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]);
        assert_eq!(
            ilut(&a, &IlutOptions::new(2, 0.0)).err(),
            Some(FactorError::StructurallySingular { row: 0 })
        );
    }

    #[test]
    fn shift_policy_recovers_the_structural_zero_pivot() {
        use crate::options::BreakdownPolicy;
        let a = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]);
        let opts = IlutOptions::new(2, 0.0).with_breakdown(BreakdownPolicy::shift());
        let (f, s) = ilut_with_stats(&a, &opts).unwrap();
        f.check_structure().unwrap();
        assert_eq!(s.breakdowns_repaired, 1);
        assert!(f.u[0].vals[0] > 0.0 && f.u[0].vals[0].is_finite());
    }

    #[test]
    fn invalid_options_rejected_with_context() {
        let a = gen::laplace_2d(3, 3);
        let err = ilut(&a, &IlutOptions::new(0, 0.0)).unwrap_err();
        assert!(matches!(err, FactorError::InvalidOptions { .. }), "{err}");
        let err = ilut(&a, &IlutOptions::new(3, f64::NAN)).unwrap_err();
        assert!(err.to_string().contains("tau"), "{err}");
    }

    #[test]
    fn stats_count_fill_and_work() {
        let a = gen::laplace_2d(5, 5);
        let (f, s) = ilut_with_stats(&a, &IlutOptions::new(5, 1e-8)).unwrap();
        assert_eq!(s.nnz_l, f.nnz_l());
        assert_eq!(s.nnz_u, f.nnz_u());
        assert!(s.flops > 0.0);
    }

    #[test]
    fn factorization_of_diag_dominant_never_breaks() {
        for seed in 0..5 {
            let a = gen::random_diag_dominant(60, 5, seed);
            let f = ilut(&a, &IlutOptions::new(4, 1e-3)).unwrap();
            f.check_structure().unwrap();
        }
    }

    use pilut_sparse::CsrMatrix;

    #[test]
    fn unsymmetric_pattern_handled() {
        // Strictly upper triangular coupling plus diagonal.
        let a = CsrMatrix::from_raw(
            3,
            3,
            vec![0, 2, 4, 5],
            vec![0, 2, 1, 2, 2],
            vec![2.0, 1.0, 3.0, 1.0, 4.0],
        );
        let f = ilut(&a, &IlutOptions::new(3, 0.0)).unwrap();
        assert_eq!(f.nnz_l(), 0, "no lower couplings exist");
        let x = f.solve(&[3.0, 4.0, 4.0]);
        assert!(max_abs_diff(&x, &[1.0, 1.0, 1.0]) < 1e-12);
    }
}
