//! Shared breakdown handling for every factorization kernel.
//!
//! All kernels (serial ILUT/ILU(0)/ILU(k)/IC(0) and the parallel ILUT
//! formulations) route unusable pivots through one [`PivotDoctor`] so a
//! given [`BreakdownPolicy`] means exactly the same thing everywhere:
//! serial and parallel factors of the same matrix stay comparable, and the
//! tests for one kernel's recovery carry over to the others.

use crate::options::{BreakdownPolicy, FactorError};

/// Why a pivot is unusable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PivotFault {
    /// The diagonal position exists but carries exactly 0 (or, for IC(0),
    /// a non-positive value).
    Zero,
    /// The row has no diagonal position at all and elimination created no
    /// fill on it.
    StructurallyMissing,
    /// The computed pivot is NaN or infinite.
    NonFinite,
}

impl PivotFault {
    /// Two-bit wire code used when the distributed kernels min-reduce the
    /// globally first fault as `row << 2 | code`.
    pub fn code(self) -> u64 {
        match self {
            PivotFault::Zero => 0,
            PivotFault::StructurallyMissing => 1,
            PivotFault::NonFinite => 2,
        }
    }

    /// Inverse of [`PivotFault::code`]; unknown codes decode as `Zero`.
    pub fn from_code(code: u64) -> Self {
        match code {
            1 => PivotFault::StructurallyMissing,
            2 => PivotFault::NonFinite,
            _ => PivotFault::Zero,
        }
    }

    /// The matching [`FactorError`] at a given global row.
    pub fn error_at(self, row: usize) -> FactorError {
        match self {
            PivotFault::Zero => FactorError::ZeroPivot { row },
            PivotFault::StructurallyMissing => FactorError::StructurallySingular { row },
            PivotFault::NonFinite => FactorError::NonFinite { row },
        }
    }
}

/// What the caller must do about an unusable pivot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PivotFix {
    /// Use this value as the pivot (diagonal boost); the rest of the row
    /// stands.
    Shift(f64),
    /// Replace the entire factor row with a scaled identity row: no `L`
    /// entries, no strict-`U` entries, this diagonal.
    ReplaceRow(f64),
}

/// Per-factorization breakdown state: applies the policy, escalates the
/// shift geometrically, and counts repairs.
#[derive(Clone, Debug)]
pub struct PivotDoctor {
    policy: BreakdownPolicy,
    /// Rows repaired so far (drives geometric escalation under `Shift`).
    repairs: usize,
    /// Non-finite off-diagonal entries discarded so far.
    scrubbed: usize,
}

impl PivotDoctor {
    /// A doctor applying `policy` for one factorization.
    pub fn new(policy: BreakdownPolicy) -> Self {
        PivotDoctor {
            policy,
            repairs: 0,
            scrubbed: 0,
        }
    }

    /// Rows repaired so far — goes into
    /// [`crate::options::FactorStats::breakdowns_repaired`].
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Resolves an unusable pivot at `row`. `scale` is a positive magnitude
    /// reference for the row (usually `‖a_row‖₂`); callers pass 1 when the
    /// row is entirely zero. Under [`BreakdownPolicy::Abort`] this returns
    /// the typed error; under the recovery policies it says how to repair
    /// the row and counts the repair.
    pub fn resolve(
        &mut self,
        row: usize,
        fault: PivotFault,
        scale: f64,
    ) -> Result<PivotFix, FactorError> {
        debug_assert!(scale > 0.0 && scale.is_finite(), "scale must be usable");
        match self.policy {
            BreakdownPolicy::Abort => Err(match fault {
                PivotFault::Zero => FactorError::ZeroPivot { row },
                PivotFault::StructurallyMissing => FactorError::StructurallySingular { row },
                PivotFault::NonFinite => FactorError::NonFinite { row },
            }),
            BreakdownPolicy::Shift { initial, growth } => {
                let boost = initial * growth.powi(self.repairs as i32) * scale;
                self.repairs += 1;
                Ok(PivotFix::Shift(boost))
            }
            BreakdownPolicy::ReplaceRow => {
                self.repairs += 1;
                Ok(PivotFix::ReplaceRow(scale))
            }
        }
    }

    /// Scrubs non-finite values from a row's retained entries. Under
    /// [`BreakdownPolicy::Abort`] a non-finite entry is fatal; the recovery
    /// policies discard such entries (counting them) and let the pivot
    /// check deal with the diagonal.
    pub fn scrub_row(
        &mut self,
        row: usize,
        entries: &mut Vec<(usize, f64)>,
    ) -> Result<(), FactorError> {
        if entries.iter().all(|&(_, v)| v.is_finite()) {
            return Ok(());
        }
        if self.policy == BreakdownPolicy::Abort {
            return Err(FactorError::NonFinite { row });
        }
        let before = entries.len();
        entries.retain(|&(_, v)| v.is_finite());
        self.scrubbed += before - entries.len();
        Ok(())
    }

    /// A positive, finite magnitude reference from a row norm that may be
    /// zero or polluted.
    pub fn usable_scale(norm: f64) -> f64 {
        if norm.is_finite() && norm > 0.0 {
            norm
        } else {
            1.0
        }
    }

    /// The complete per-row repair step shared by the serial kernels:
    /// scrub non-finite entries from the retained `lower`/`upper` parts,
    /// classify the pivot (`upper` is diagonal-first when the diagonal
    /// exists), and apply the policy. `norm` is the original row's 2-norm.
    /// After `Ok(())`, `upper` is non-empty and starts with a finite,
    /// non-zero diagonal.
    pub fn repair_row(
        &mut self,
        row: usize,
        norm: f64,
        lower: &mut Vec<(usize, f64)>,
        upper: &mut Vec<(usize, f64)>,
    ) -> Result<(), FactorError> {
        self.scrub_row(row, lower)?;
        self.scrub_row(row, upper)?;
        let diag_present = upper.first().map(|&(c, _)| c) == Some(row);
        let fault = if !diag_present {
            Some(PivotFault::StructurallyMissing)
        } else if !upper[0].1.is_finite() {
            Some(PivotFault::NonFinite)
        // lint: allow(float-eq): exact zero-pivot test
        } else if upper[0].1 == 0.0 {
            Some(PivotFault::Zero)
        } else {
            None
        };
        let Some(fault) = fault else { return Ok(()) };
        match self.resolve(row, fault, Self::usable_scale(norm))? {
            PivotFix::Shift(boost) => {
                if diag_present {
                    upper[0].1 = boost;
                } else {
                    upper.insert(0, (row, boost));
                }
            }
            PivotFix::ReplaceRow(diag) => {
                lower.clear();
                upper.clear();
                upper.push((row, diag));
            }
        }
        Ok(())
    }

    /// Collective-safe variant of [`repair_row`](Self::repair_row) for the
    /// distributed kernels. A rank meeting a fault there cannot return
    /// early — its peers would strand inside the next collective — so under
    /// [`BreakdownPolicy::Abort`] the first fault is recorded in `pending`
    /// and the pivot patched with `fallback` so the rank keeps marching to
    /// the collective error check. The recovery policies repair in place
    /// exactly like `repair_row` and leave `pending` untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn repair_or_defer(
        &mut self,
        row: usize,
        norm: f64,
        has_diag: bool,
        diag: &mut f64,
        lower: &mut Vec<(usize, f64)>,
        upper: &mut Vec<(usize, f64)>,
        pending: &mut Option<(usize, PivotFault)>,
        fallback: f64,
    ) {
        let off_poisoned = lower
            .iter()
            .chain(upper.iter())
            .any(|&(_, v)| !v.is_finite());
        let pivot_fault = if !has_diag {
            Some(PivotFault::StructurallyMissing)
        } else if !diag.is_finite() {
            Some(PivotFault::NonFinite)
        // lint: allow(float-eq): exact zero-pivot test
        } else if *diag == 0.0 {
            Some(PivotFault::Zero)
        } else {
            None
        };
        if self.policy == BreakdownPolicy::Abort {
            let fault = if off_poisoned && pivot_fault.is_none() {
                Some(PivotFault::NonFinite)
            } else {
                pivot_fault
            };
            if let Some(fault) = fault {
                if pending.is_none() {
                    *pending = Some((row, fault));
                }
                if pivot_fault.is_some() {
                    *diag = fallback; // keep marching to the collective abort
                }
            }
            return;
        }
        if off_poisoned {
            let before = lower.len() + upper.len();
            lower.retain(|&(_, v)| v.is_finite());
            upper.retain(|&(_, v)| v.is_finite());
            self.scrubbed += before - (lower.len() + upper.len());
        }
        let Some(fault) = pivot_fault else { return };
        match self.resolve(row, fault, Self::usable_scale(norm)) {
            Ok(PivotFix::Shift(boost)) => *diag = boost,
            Ok(PivotFix::ReplaceRow(d)) => {
                lower.clear();
                upper.clear();
                *diag = d;
            }
            Err(_) => unreachable!("recovery policies never abort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_maps_faults_to_typed_errors() {
        let mut d = PivotDoctor::new(BreakdownPolicy::Abort);
        assert_eq!(
            d.resolve(3, PivotFault::Zero, 1.0),
            Err(FactorError::ZeroPivot { row: 3 })
        );
        assert_eq!(
            d.resolve(4, PivotFault::StructurallyMissing, 1.0),
            Err(FactorError::StructurallySingular { row: 4 })
        );
        assert_eq!(
            d.resolve(5, PivotFault::NonFinite, 1.0),
            Err(FactorError::NonFinite { row: 5 })
        );
        assert_eq!(d.repairs(), 0);
    }

    #[test]
    fn shift_escalates_geometrically() {
        let mut d = PivotDoctor::new(BreakdownPolicy::Shift {
            initial: 1e-4,
            growth: 10.0,
        });
        let b0 = match d.resolve(0, PivotFault::Zero, 2.0) {
            Ok(PivotFix::Shift(b)) => b,
            other => panic!("unexpected {other:?}"),
        };
        let b1 = match d.resolve(1, PivotFault::Zero, 2.0) {
            Ok(PivotFix::Shift(b)) => b,
            other => panic!("unexpected {other:?}"),
        };
        assert!((b0 - 2e-4).abs() < 1e-18);
        assert!((b1 - 2e-3).abs() < 1e-17, "second repair escalates ×10");
        assert_eq!(d.repairs(), 2);
    }

    #[test]
    fn replace_row_uses_the_scale_as_pivot() {
        let mut d = PivotDoctor::new(BreakdownPolicy::ReplaceRow);
        assert_eq!(
            d.resolve(7, PivotFault::NonFinite, 3.5),
            Ok(PivotFix::ReplaceRow(3.5))
        );
    }

    #[test]
    fn scrub_removes_nonfinite_under_recovery_only() {
        let mut strict = PivotDoctor::new(BreakdownPolicy::Abort);
        let mut row = vec![(0, 1.0), (1, f64::NAN)];
        assert_eq!(
            strict.scrub_row(9, &mut row),
            Err(FactorError::NonFinite { row: 9 })
        );
        let mut lenient = PivotDoctor::new(BreakdownPolicy::shift());
        let mut row = vec![(0, 1.0), (1, f64::NAN), (2, f64::INFINITY)];
        lenient.scrub_row(9, &mut row).unwrap();
        assert_eq!(row, vec![(0, 1.0)]);
    }

    #[test]
    fn usable_scale_guards_zero_and_nan() {
        assert_eq!(PivotDoctor::usable_scale(2.0), 2.0);
        assert_eq!(PivotDoctor::usable_scale(0.0), 1.0);
        assert_eq!(PivotDoctor::usable_scale(f64::NAN), 1.0);
    }

    #[test]
    fn fault_codes_round_trip() {
        for fault in [
            PivotFault::Zero,
            PivotFault::StructurallyMissing,
            PivotFault::NonFinite,
        ] {
            assert_eq!(PivotFault::from_code(fault.code()), fault);
        }
        assert_eq!(
            PivotFault::NonFinite.error_at(5),
            FactorError::NonFinite { row: 5 }
        );
    }

    #[test]
    fn defer_records_the_first_fault_and_patches_the_pivot() {
        let mut d = PivotDoctor::new(BreakdownPolicy::Abort);
        let mut pending = None;
        let mut diag = 0.0;
        let (mut lo, mut up) = (vec![], vec![]);
        d.repair_or_defer(4, 1.0, true, &mut diag, &mut lo, &mut up, &mut pending, 0.5);
        assert_eq!(pending, Some((4, PivotFault::Zero)));
        assert_eq!(diag, 0.5, "placeholder keeps the rank marching");
        // A later fault must not overwrite the first.
        let mut diag2 = f64::NAN;
        d.repair_or_defer(
            9,
            1.0,
            true,
            &mut diag2,
            &mut lo,
            &mut up,
            &mut pending,
            0.5,
        );
        assert_eq!(pending, Some((4, PivotFault::Zero)));
    }

    #[test]
    fn defer_repairs_in_place_under_recovery() {
        let mut d = PivotDoctor::new(BreakdownPolicy::shift());
        let mut pending = None;
        let mut diag = 0.0;
        let mut lo = vec![(0, f64::NAN)];
        let mut up = vec![(3, 1.0)];
        d.repair_or_defer(2, 4.0, true, &mut diag, &mut lo, &mut up, &mut pending, 1.0);
        assert_eq!(pending, None, "recovery never flags the collective abort");
        assert!(diag > 0.0 && diag.is_finite());
        assert!(lo.is_empty(), "non-finite multiplier scrubbed");
        assert_eq!(d.repairs(), 1);
    }
}
