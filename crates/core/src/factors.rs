//! Storage for incomplete LU factors.

/// One sparse row: column indices (strictly ascending) with values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseRow {
    pub cols: Vec<usize>,
    pub vals: Vec<f64>,
}

impl SparseRow {
    /// Builds a row from sorted column indices and matching values.
    pub fn new(cols: Vec<usize>, vals: Vec<f64>) -> Self {
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "row columns must ascend"
        );
        SparseRow { cols, vals }
    }

    /// Builds from unsorted `(col, val)` pairs.
    pub fn from_pairs(mut pairs: Vec<(usize, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(c, _)| c);
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate columns"
        );
        let cols = pairs.iter().map(|&(c, _)| c).collect();
        let vals = pairs.iter().map(|&(_, v)| v).collect();
        SparseRow { cols, vals }
    }

    /// Builds from already column-sorted `(col, val)` pairs without taking
    /// ownership of the buffer — the hot-loop companion of
    /// [`SparseRow::from_pairs`].
    pub fn from_sorted_pairs(pairs: &[(usize, f64)]) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "columns must strictly ascend"
        );
        let cols = pairs.iter().map(|&(c, _)| c).collect();
        let vals = pairs.iter().map(|&(_, v)| v).collect();
        SparseRow { cols, vals }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the row stores nothing.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The value at `col`, if stored.
    pub fn get(&self, col: usize) -> Option<f64> {
        self.cols.binary_search(&col).ok().map(|k| self.vals[k])
    }

    /// Iterates `(col, value)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.cols.iter().copied().zip(self.vals.iter().copied())
    }
}

/// An incomplete LU factorization in row-major sparse form.
///
/// Conventions (matching the paper's Algorithm 2.1):
/// * `l[i]` holds the **strict** lower part of row `i` — the multipliers;
///   the unit diagonal of `L` is implicit;
/// * `u[i]` holds the diagonal and the strict upper part of row `i`; its
///   first entry is always the diagonal `(i, u_ii)`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    pub n: usize,
    pub l: Vec<SparseRow>,
    pub u: Vec<SparseRow>,
}

impl LuFactors {
    /// Validates the structural conventions; used by tests and
    /// `debug_assert!`s.
    pub fn check_structure(&self) -> Result<(), String> {
        if self.l.len() != self.n || self.u.len() != self.n {
            return Err(format!(
                "row count mismatch: n={} l={} u={}",
                self.n,
                self.l.len(),
                self.u.len()
            ));
        }
        for i in 0..self.n {
            if let Some(&c) = self.l[i].cols.last() {
                if c >= i {
                    return Err(format!("L row {i} has column {c} >= diagonal"));
                }
            }
            match self.u[i].cols.first() {
                Some(&c) if c == i => {}
                other => {
                    return Err(format!(
                        "U row {i} must start at the diagonal, got {other:?}"
                    ))
                }
            }
            // lint: allow(float-eq): exact zero-pivot test
            if self.u[i].vals[0] == 0.0 {
                return Err(format!("U row {i} has a zero diagonal"));
            }
        }
        Ok(())
    }

    /// Total entries stored in L.
    pub fn nnz_l(&self) -> usize {
        self.l.iter().map(|r| r.len()).sum()
    }

    /// Total entries stored in U (diagonals included).
    pub fn nnz_u(&self) -> usize {
        self.u.iter().map(|r| r.len()).sum()
    }

    /// Total stored entries across both factors.
    pub fn nnz(&self) -> usize {
        self.nnz_l() + self.nnz_u()
    }

    /// Solves `L y = b` (unit lower triangular), in place.
    pub fn forward_solve(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        for i in 0..self.n {
            let mut s = b[i];
            for (j, v) in self.l[i].iter() {
                s -= v * b[j];
            }
            b[i] = s;
        }
    }

    /// Solves `U x = y`, in place.
    pub fn backward_solve(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.n);
        for i in (0..self.n).rev() {
            let mut s = y[i];
            let row = &self.u[i];
            for k in 1..row.len() {
                s -= row.vals[k] * y[row.cols[k]];
            }
            y[i] = s / row.vals[0];
        }
    }

    /// Applies `(LU)⁻¹ r` — the preconditioner action.
    pub fn solve(&self, r: &[f64]) -> Vec<f64> {
        let mut x = r.to_vec();
        self.forward_solve(&mut x);
        self.backward_solve(&mut x);
        x
    }

    /// Applies `(LU)⁻¹ r` into a caller-owned buffer — the zero-allocation
    /// steady-state form of [`LuFactors::solve`]. `x` is overwritten (any
    /// length-matching scratch works); nothing is allocated.
    pub fn solve_into(&self, r: &[f64], x: &mut [f64]) {
        let _audit = pilut_allocaudit::region("trisolve_replay");
        assert_eq!(r.len(), x.len());
        x.copy_from_slice(r);
        self.forward_solve(x);
        self.backward_solve(x);
    }

    /// Multiplies `L·U` back into a dense matrix — test helper, O(n²).
    pub fn multiply_dense(&self) -> Vec<Vec<f64>> {
        let n = self.n;
        let mut out = vec![vec![0.0; n]; n];
        // (LU)_ij = sum_k L_ik U_kj with L unit diagonal.
        for (i, out_row) in out.iter_mut().enumerate() {
            // k = i term (L_ii = 1).
            for (j, v) in self.u[i].iter() {
                out_row[j] += v;
            }
            for (k, lv) in self.l[i].iter() {
                for (j, uv) in self.u[k].iter() {
                    out_row[j] += lv * uv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact LU of [[2,1],[4,5]]: L21 = 2, U = [[2,1],[0,3]].
    fn small() -> LuFactors {
        LuFactors {
            n: 2,
            l: vec![SparseRow::default(), SparseRow::new(vec![0], vec![2.0])],
            u: vec![
                SparseRow::new(vec![0, 1], vec![2.0, 1.0]),
                SparseRow::new(vec![1], vec![3.0]),
            ],
        }
    }

    #[test]
    fn structure_check_passes() {
        assert!(small().check_structure().is_ok());
    }

    #[test]
    fn structure_check_catches_bad_diag() {
        let mut f = small();
        f.u[1] = SparseRow::new(vec![1], vec![0.0]);
        assert!(f.check_structure().is_err());
        let mut g = small();
        g.l[1] = SparseRow::new(vec![1], vec![1.0]);
        assert!(g.check_structure().is_err());
    }

    #[test]
    fn solve_inverts_product() {
        let f = small();
        // A = [[2,1],[4,5]]; A * [1, 2] = [4, 14].
        let x = f.solve(&[4.0, 14.0]);
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn multiply_dense_reconstructs() {
        let f = small();
        let a = f.multiply_dense();
        assert_eq!(a, vec![vec![2.0, 1.0], vec![4.0, 5.0]]);
    }

    #[test]
    fn sparse_row_from_pairs_sorts() {
        let r = SparseRow::from_pairs(vec![(3, 1.0), (0, 2.0)]);
        assert_eq!(r.cols, vec![0, 3]);
        assert_eq!(r.get(3), Some(1.0));
        assert_eq!(r.get(1), None);
    }
}
