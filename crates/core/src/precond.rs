//! Preconditioner interface and serial implementations.

use crate::block_factors::BlockLuFactors;
use crate::factors::LuFactors;
use crate::options::FactorError;
use pilut_sparse::CsrMatrix;

/// A preconditioner `M`: given a residual-like vector `r`, produces
/// `z ≈ M⁻¹ r`.
pub trait Preconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64>;

    /// Applies `M⁻¹ r` into a caller-owned buffer — the zero-allocation
    /// steady-state form. The default delegates to
    /// [`Preconditioner::apply`] (and so still allocates); the in-repo
    /// implementations override it with true in-place solves.
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(&self.apply(r));
    }

    /// Display name for experiment tables.
    fn name(&self) -> String {
        "preconditioner".to_string()
    }
}

/// No preconditioning (`M = I`).
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn name(&self) -> String {
        "none".to_string()
    }
}

/// Diagonal (Jacobi) preconditioning — the baseline of the paper's Table 3.
pub struct DiagonalPreconditioner {
    inv_diag: Vec<f64>,
}

impl DiagonalPreconditioner {
    /// # Panics
    /// Panics if the matrix has a zero or non-finite diagonal entry; use
    /// [`DiagonalPreconditioner::try_new`] to get a typed error instead.
    pub fn new(a: &CsrMatrix) -> Self {
        // lint: allow(unwrap): documented panic on unusable diagonals
        Self::try_new(a).expect("unusable diagonal")
    }

    /// Builds Jacobi preconditioning, reporting an unusable diagonal entry
    /// as a typed error — the fallible entry point the robust-solve ladder
    /// uses to decide whether this rung is available at all.
    pub fn try_new(a: &CsrMatrix) -> Result<Self, FactorError> {
        let mut inv_diag = Vec::with_capacity(a.n_rows());
        for (i, &d) in a.diagonal().iter().enumerate() {
            if !d.is_finite() {
                return Err(FactorError::NonFinite { row: i });
            }
            // lint: allow(float-eq): exact zero-diagonal guard
            if d == 0.0 {
                return Err(FactorError::ZeroPivot { row: i });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(DiagonalPreconditioner { inv_diag })
    }
}

impl Preconditioner for DiagonalPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter().zip(&self.inv_diag).map(|(x, d)| x * d).collect()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, x), d) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = x * d;
        }
    }

    fn name(&self) -> String {
        "Diagonal".to_string()
    }
}

/// Incomplete-LU preconditioning: `M⁻¹ r = U⁻¹ L⁻¹ r`.
pub struct IluPreconditioner {
    factors: LuFactors,
    label: String,
}

impl IluPreconditioner {
    /// Wraps factors as a preconditioner with a default label.
    pub fn new(factors: LuFactors) -> Self {
        IluPreconditioner {
            factors,
            label: "ILU".to_string(),
        }
    }

    /// Wraps factors with a custom label for reporting.
    pub fn with_label(factors: LuFactors, label: impl Into<String>) -> Self {
        IluPreconditioner {
            factors,
            label: label.into(),
        }
    }

    /// The underlying factors.
    pub fn factors(&self) -> &LuFactors {
        &self.factors
    }
}

impl Preconditioner for IluPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        self.factors.solve(r)
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        self.factors.solve_into(r, z);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Blocked incomplete-LU preconditioning: `M⁻¹ r` through the
/// level-scheduled tile sweeps of [`BlockLuFactors`] — the dense-tile
/// counterpart of [`IluPreconditioner`] for factors out of
/// [`crate::serial::block_ilut`].
pub struct BlockIluPreconditioner {
    factors: BlockLuFactors,
    label: String,
    /// Padded solve buffer for [`Preconditioner::apply_into`]: the blocked
    /// sweeps work over `n_brows · b` lanes, so the in-place apply stages
    /// through this scratch (reserved once at construction) and copies the
    /// first `n` lanes out. Interior-mutable because `apply_into` takes
    /// `&self` — preconditioners are shared immutably by the solvers.
    padded: std::cell::RefCell<Vec<f64>>,
}

impl BlockIluPreconditioner {
    /// Wraps blocked factors as a preconditioner, labelled by block size
    /// (e.g. `BILU(4)`).
    pub fn new(factors: BlockLuFactors) -> Self {
        let label = format!("BILU({})", factors.block_size());
        Self::with_label(factors, label)
    }

    /// Wraps blocked factors with a custom label for reporting.
    pub fn with_label(factors: BlockLuFactors, label: impl Into<String>) -> Self {
        let padded = std::cell::RefCell::new(vec![0.0; factors.padded_len()]);
        BlockIluPreconditioner {
            factors,
            label: label.into(),
            padded,
        }
    }

    /// The underlying blocked factors.
    pub fn factors(&self) -> &BlockLuFactors {
        &self.factors
    }
}

impl Preconditioner for BlockIluPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        self.factors.solve(r)
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        let mut padded = self.padded.borrow_mut();
        self.factors.solve_into(r, &mut padded);
        z.copy_from_slice(&padded[..z.len()]);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IlutOptions;
    use crate::serial::{block_ilut, ilut};
    use pilut_sparse::gen;

    #[test]
    fn identity_is_noop() {
        let r = vec![1.0, -2.0];
        assert_eq!(IdentityPreconditioner.apply(&r), r);
    }

    #[test]
    fn diagonal_scales() {
        let a = gen::laplace_2d(3, 3); // diagonal entries all equal
        let p = DiagonalPreconditioner::new(&a);
        let d = a.get(0, 0).unwrap();
        let z = p.apply(&[d; 9]);
        for zi in z {
            assert!((zi - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn ilu_preconditioner_applies_factors() {
        let a = gen::laplace_2d(5, 5);
        let f = ilut(&a, &IlutOptions::new(25, 0.0)).unwrap();
        let x_true = vec![2.0; 25];
        let b = a.spmv_owned(&x_true);
        let p = IluPreconditioner::with_label(f, "ILUT(25,0)");
        let x = p.apply(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
        assert_eq!(p.name(), "ILUT(25,0)");
    }

    #[test]
    fn block_ilu_preconditioner_applies_blocked_factors() {
        use pilut_sparse::BcsrMatrix;
        let a = gen::laplace_2d(5, 5);
        let ab = BcsrMatrix::from_csr(&a, 4);
        let f = block_ilut(&ab, &IlutOptions::new(25, 0.0)).unwrap();
        let x_true = vec![2.0; 25];
        let b = a.spmv_owned(&x_true);
        let p = BlockIluPreconditioner::new(f);
        assert_eq!(p.name(), "BILU(4)");
        let x = p.apply(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
