//! Property-based tests of the factorization invariants, serial and
//! parallel.

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::serial::{ilu0, iluk, ilut};
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// Random strictly diagonally dominant matrix — ILUT never breaks down on
/// these and the exact factorization is well conditioned.
fn diag_dominant(max_n: usize, extra: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -40i32..40), 0..=extra).prop_map(move |trips| {
            let mut coo = CooMatrix::new(n, n);
            let mut row_sum = vec![0.0f64; n];
            for (i, j, v) in trips {
                if i != j {
                    let v = v as f64 / 10.0;
                    coo.push(i, j, v);
                    row_sum[i] += v.abs();
                }
            }
            for (i, &s) in row_sum.iter().enumerate() {
                coo.push(i, i, s + 1.0 + (i % 3) as f64);
            }
            coo.to_csr()
        })
    })
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No dropping ⇒ exact LU ⇒ exact solve.
    #[test]
    fn unbounded_ilut_is_exact(a in diag_dominant(24, 80), seed in 0u64..100) {
        let n = a.n_rows();
        let f = ilut(&a, &IlutOptions::new(n, 0.0)).unwrap();
        f.check_structure().unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 9) as f64 - 4.0).collect();
        let b = a.spmv_owned(&x_true);
        let x = f.solve(&b);
        prop_assert!(max_err(&x, &x_true) < 1e-6, "err {}", max_err(&x, &x_true));
    }

    /// The m-cap is a hard bound on per-row fill.
    #[test]
    fn fill_caps_hold(a in diag_dominant(30, 120), m in 1usize..6) {
        let f = ilut(&a, &IlutOptions::new(m, 0.0)).unwrap();
        for i in 0..f.n {
            prop_assert!(f.l[i].len() <= m);
            prop_assert!(f.u[i].len() <= m + 1); // + diagonal
        }
    }

    /// Larger thresholds never increase fill.
    #[test]
    fn threshold_monotonicity(a in diag_dominant(20, 70)) {
        let n = a.n_rows();
        let loose = ilut(&a, &IlutOptions::new(n, 1e-6)).unwrap();
        let tight = ilut(&a, &IlutOptions::new(n, 1e-1)).unwrap();
        prop_assert!(tight.nnz() <= loose.nnz());
    }

    /// ILU(k) fill grows monotonically with the level, and level 0 = ILU(0).
    #[test]
    fn iluk_level_monotonicity(a in diag_dominant(20, 60)) {
        let f0 = ilu0(&a).unwrap();
        let k0 = iluk(&a, 0).unwrap();
        prop_assert_eq!(f0.nnz(), k0.nnz());
        let k1 = iluk(&a, 1).unwrap();
        let k2 = iluk(&a, 2).unwrap();
        prop_assert!(k0.nnz() <= k1.nnz());
        prop_assert!(k1.nnz() <= k2.nnz());
    }

    /// Triangular solves invert the factored operator: for any factors,
    /// solve(multiply(x)) == x. (Uses the dense reconstruction.)
    #[test]
    fn trisolve_inverts_lu(a in diag_dominant(16, 50), seed in 0u64..50) {
        let f = ilut(&a, &IlutOptions::new(4, 1e-2)).unwrap();
        let n = f.n;
        let x: Vec<f64> = (0..n).map(|i| ((seed + 3 * i as u64) % 7) as f64 - 3.0).collect();
        // y = L U x via the dense product.
        let dense = f.multiply_dense();
        let y: Vec<f64> = dense.iter().map(|row| {
            row.iter().zip(&x).map(|(m, xi)| m * xi).sum()
        }).collect();
        let back = f.solve(&y);
        prop_assert!(max_err(&back, &x) < 1e-6, "err {}", max_err(&back, &x));
    }
}

proptest! {
    // The machine-backed cases are heavier; fewer of them.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The parallel factorization with no dropping solves exactly for any
    /// rank count, matching the serial ground truth.
    #[test]
    fn parallel_exactness_any_rank_count(a in diag_dominant(28, 90), p in 1usize..5, seed in 0u64..20) {
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 11) as f64 - 5.0).collect();
        let b_global = a.spmv_owned(&x_true);
        let dm = DistMatrix::from_matrix(a.clone(), p, seed);
        let opts = IlutOptions::new(n, 0.0);
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
            let x = dist_solve(ctx, &local, &rf, &plan, &b);
            (local.nodes.clone(), x)
        });
        let mut x = vec![f64::NAN; n];
        for (nodes, xl) in out.results {
            for (g, v) in nodes.into_iter().zip(xl) {
                x[g] = v;
            }
        }
        prop_assert!(max_err(&x, &x_true) < 1e-5, "p={p} err {}", max_err(&x, &x_true));
    }

    /// Parallel fill caps hold on every rank's rows.
    #[test]
    fn parallel_fill_caps_hold(a in diag_dominant(24, 70), p in 2usize..4, m in 1usize..5) {
        let dm = DistMatrix::from_matrix(a.clone(), p, 3);
        let opts = IlutOptions::star(m, 1e-3, 2);
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            par_ilut(ctx, &dm, &local, &opts).unwrap()
        });
        for rf in &out.results {
            for (v, row) in &rf.rows {
                prop_assert!(row.l.len() <= m, "L row {v} has {}", row.l.len());
                prop_assert!(row.u.len() <= m, "U row {v} has {}", row.u.len());
                prop_assert!(row.diag != 0.0);
            }
        }
    }
}
