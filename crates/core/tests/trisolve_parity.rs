//! Parity tests: the parallel triangular solves against the serial ones on
//! a single rank, and forward/backward sweeps individually across ranks.

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::serial::ilut;
use pilut_core::trisolve::{dist_backward, dist_forward, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::gen;

/// On one rank the parallel forward/backward sweeps must agree with the
/// serial factor solves entry for entry.
#[test]
fn single_rank_sweeps_match_serial() {
    let a = gen::convection_diffusion_2d(9, 9, 5.0, -2.0);
    let opts = IlutOptions::new(6, 1e-3);
    let serial = ilut(&a, &opts).unwrap();
    let b: Vec<f64> = (0..a.n_rows())
        .map(|i| ((i * 13) % 7) as f64 - 3.0)
        .collect();
    let mut y_serial = b.clone();
    serial.forward_solve(&mut y_serial);
    let mut x_serial = y_serial.clone();
    serial.backward_solve(&mut x_serial);

    let dm = DistMatrix::from_matrix(a, 1, 1);
    let b2 = b.clone();
    let out = Machine::run_checked(1, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(0);
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        // On a single rank the local order is the global order.
        let y = dist_forward(ctx, &local, &rf, &plan, &b2);
        let x = dist_backward(ctx, &local, &rf, &plan, &y);
        (y, x)
    });
    let (y, x) = &out.results[0];
    for i in 0..b.len() {
        assert!((y[i] - y_serial[i]).abs() < 1e-13, "forward row {i}");
        assert!((x[i] - x_serial[i]).abs() < 1e-13, "backward row {i}");
    }
}

/// Forward then backward across several ranks inverts the factored
/// operator exactly when nothing is dropped (complete LU).
#[test]
fn multi_rank_forward_backward_compose() {
    let a = gen::fem_torso(10, 4);
    let n = a.n_rows();
    let opts = IlutOptions::new(n, 0.0);
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
    let b_global = a.spmv_owned(&x_true);
    let dm = DistMatrix::from_matrix(a, 4, 13);
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
        let y = dist_forward(ctx, &local, &rf, &plan, &b);
        let x = dist_backward(ctx, &local, &rf, &plan, &y);
        (local.nodes.clone(), x)
    });
    for (nodes, x) in out.results {
        for (g, v) in nodes.into_iter().zip(x) {
            assert!(
                (v - x_true[g]).abs() < 1e-7,
                "node {g}: {v} vs {}",
                x_true[g]
            );
        }
    }
}

/// The solve's simulated cost grows with the level count: the same problem
/// factored with a dense-reduced-matrix ILUT (more levels) must have a
/// costlier substitution than ILUT* (fewer levels) at equal machine model —
/// the paper's Table 2 effect.
#[test]
fn more_levels_cost_more_simulated_time() {
    let a = gen::laplace_3d(10, 10, 10);
    let p = 8;
    let time_of = |opts: IlutOptions| {
        let dm = DistMatrix::from_matrix(a.clone(), p, 17);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b = vec![1.0; local.len()];
            ctx.barrier();
            let t0 = ctx.time();
            let y = dist_forward(ctx, &local, &rf, &plan, &b);
            let _ = dist_backward(ctx, &local, &rf, &plan, &y);
            ctx.barrier();
            (ctx.time() - t0, rf.stats.levels)
        });
        let t = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
        (t, out.results[0].1)
    };
    let (t_ilut, q_ilut) = time_of(IlutOptions::new(10, 1e-6));
    let (t_star, q_star) = time_of(IlutOptions::star(10, 1e-6, 2));
    assert!(
        q_ilut > q_star,
        "expected ILUT to need more levels: {q_ilut} vs {q_star}"
    );
    assert!(
        t_ilut > t_star,
        "substitution with more levels should cost more: {t_ilut} vs {t_star}"
    );
}
