//! Edge cases of the plan-once/replay-many data plane, each pinned down by
//! the machine's per-tag traffic counters: a rank owning nothing, a halo
//! that never leaves the rank, zero-length payload rounds, and the
//! stats-vs-wire tag split of a rebased plan.

use pilut_core::dist::exchange::{tags, CommPlan, DistVector};
use pilut_core::dist::{DistMatrix, Distribution};
use pilut_par::{Machine, MachineModel, Payload};
use pilut_sparse::gen;

fn remote_cols(dm: &DistMatrix, rank: usize) -> Vec<usize> {
    let local = dm.local_view(rank);
    local
        .nodes
        .iter()
        .flat_map(|&i| {
            dm.matrix()
                .row(i)
                .0
                .iter()
                .copied()
                .filter(|&j| !local.owns(j))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn empty_owned_region_rank_counts_no_traffic() {
    // 8 ranks over a 5-row chain: ranks 5..8 own zero rows. They must build
    // idle plans, replay as no-ops, and contribute nothing to the per-tag
    // counters — the owning ranks' chain traffic is all there is.
    let dm = DistMatrix::new(gen::laplace_2d(5, 1), Distribution::block(5, 8));
    let out = Machine::run_checked(8, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let needed = remote_cols(&dm, ctx.rank());
        let plan = CommPlan::build(ctx, tags::SPMV, needed, |j| dm.dist().owner(j));
        let mut v = DistVector::new(local.len(), dm.n());
        for (slot, &g) in v.owned.iter_mut().zip(&local.nodes) {
            *slot = g as f64;
        }
        plan.replay_halo(ctx, &local, &mut v);
        (plan.is_idle(), plan.sent_values())
    });
    assert!(out.results[5..].iter().all(|&(idle, _)| idle));
    // The 5-row chain has 4 ownership boundaries, each crossed once per
    // direction: 8 messages of one f64 each.
    let (msgs, bytes) = out.stats.tag_totals(tags::SPMV);
    assert_eq!(msgs, 8);
    assert_eq!(bytes, 8 * 8);
}

#[test]
fn fully_self_owned_halo_is_silent() {
    // Every rank declares no remote needs: the plan must be idle on every
    // rank and the protocol tag must record zero traffic — a "halo
    // exchange" whose halo is entirely self-owned costs nothing.
    let dm = DistMatrix::new(gen::laplace_2d(4, 4), Distribution::block(16, 4));
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let plan = CommPlan::build(ctx, tags::SPMV, std::iter::empty(), |j| dm.dist().owner(j));
        let mut v = DistVector::new(local.len(), dm.n());
        plan.replay_halo(ctx, &local, &mut v);
        plan.is_idle()
    });
    assert!(out.results.iter().all(|&idle| idle));
    assert_eq!(out.stats.tag_totals(tags::SPMV), (0, 0));
}

#[test]
fn zero_length_payloads_replay_as_counted_messages() {
    // A replay round whose producer ships empty payloads still sends one
    // message per scheduled peer — the round structure is the contract, not
    // the byte count. Counters must show the messages with zero bytes.
    let dist = Distribution::block(4, 4);
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let me = ctx.rank();
        // Ring: rank r needs the node owned by rank r+1.
        let needed = vec![(me + 1) % 4];
        let plan = CommPlan::build(ctx, tags::MIS_TENT, needed, |j| dist.owner(j));
        let mut rounds = 0u64;
        for _ in 0..3 {
            plan.replay(
                ctx,
                |_, _| Payload::Empty,
                |_, _, payload| {
                    assert_eq!(payload, Payload::Empty);
                    rounds += 1;
                },
            );
        }
        rounds
    });
    // Each rank heard its one send-side peer three times.
    assert!(out.results.iter().all(|&r| r == 3));
    // 4 directed edges × 3 rounds, all empty.
    assert_eq!(out.stats.tag_totals(tags::MIS_TENT), (12, 0));
}

#[test]
fn rebased_plan_attributes_stats_to_protocol_tag() {
    // Regression: `replay()` on a rebased plan used to record its traffic
    // under the private wire base instead of the protocol tag, so per-level
    // sub-plans silently vanished from the per-tag breakdown.
    let dist = Distribution::block(4, 4);
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let me = ctx.rank();
        let needed = vec![(me + 1) % 4];
        let plan = CommPlan::build(ctx, tags::FWD, needed, |j| dist.owner(j))
            .rebase(tags::FWD + (3 << 20));
        plan.replay(
            ctx,
            |_, nodes| Payload::u64s(nodes.iter().map(|&g| g as u64).collect()),
            |peer, nodes, payload| {
                assert_eq!(
                    payload.into_u64(),
                    nodes.iter().map(|&g| g as u64).collect::<Vec<_>>(),
                    "from rank {peer}"
                );
            },
        );
    });
    let (msgs, bytes) = out.stats.tag_totals(tags::FWD);
    assert_eq!(msgs, 4);
    assert_eq!(bytes, 4 * 8);
    // Nothing may leak into the counter map under the wire base.
    assert_eq!(out.stats.tag_totals(tags::FWD + (3 << 20)), (0, 0));
}

#[test]
fn plan_rebuilt_after_rebase_starts_fresh_rounds() {
    // A rebase keeps the plan's schedule but its round counters are
    // per-base: replays before and after a restrict+rebase must stay
    // matched on both sides even when interleaved with the parent plan's
    // own rounds.
    let dist = Distribution::block(4, 4);
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let me = ctx.rank();
        let needed = vec![(me + 1) % 4];
        let parent = CommPlan::build(ctx, tags::BWD, needed, |j| dist.owner(j));
        let child = parent
            .restrict(|_| true, |_| true)
            .rebase(tags::BWD + (1 << 20));
        let mut heard = 0u64;
        for _ in 0..2 {
            parent.replay(ctx, |_, _| Payload::Empty, |_, _, _| heard += 1);
            child.replay(ctx, |_, _| Payload::Empty, |_, _, _| heard += 1);
        }
        heard
    });
    assert!(out.results.iter().all(|&h| h == 4));
    // Parent and child rounds both attribute to the protocol tag.
    let (msgs, _) = out.stats.tag_totals(tags::BWD);
    assert_eq!(msgs, 16);
}
