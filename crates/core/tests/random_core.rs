//! Randomized property tests of the factorization invariants, serial and
//! parallel.
//!
//! Formerly proptest strategies; now driven by the in-tree seeded
//! [`SplitMix64`] so the suite runs with zero registry dependencies.

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::serial::{ilu0, iluk, ilut};
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::{CooMatrix, CsrMatrix, SplitMix64, WorkRow};

/// Random strictly diagonally dominant matrix — ILUT never breaks down on
/// these and the exact factorization is well conditioned.
fn diag_dominant(rng: &mut SplitMix64, max_n: usize, extra: usize) -> CsrMatrix {
    let n = 2 + rng.next_usize(max_n - 1);
    let m = rng.next_usize(extra + 1);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sum = vec![0.0f64; n];
    for _ in 0..m {
        let i = rng.next_usize(n);
        let j = rng.next_usize(n);
        if i != j {
            let v = (rng.next_usize(80) as i32 - 40) as f64 / 10.0;
            coo.push(i, j, v);
            row_sum[i] += v.abs();
        }
    }
    for (i, &s) in row_sum.iter().enumerate() {
        coo.push(i, i, s + 1.0 + (i % 3) as f64);
    }
    coo.to_csr()
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// No dropping ⇒ exact LU ⇒ exact solve.
#[test]
fn unbounded_ilut_is_exact() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 24, 80);
        let n = a.n_rows();
        let f = ilut(&a, &IlutOptions::new(n, 0.0)).expect("dominant matrix cannot break down");
        f.check_structure().expect("factors well-formed");
        let seed = rng.next_u64() % 100;
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 9) as f64 - 4.0)
            .collect();
        let b = a.spmv_owned(&x_true);
        let x = f.solve(&b);
        assert!(
            max_err(&x, &x_true) < 1e-6,
            "case {case} err {}",
            max_err(&x, &x_true)
        );
    }
}

/// The m-cap is a hard bound on per-row fill.
#[test]
fn fill_caps_hold() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 30, 120);
        let m = 1 + rng.next_usize(5);
        let f = ilut(&a, &IlutOptions::new(m, 0.0)).expect("dominant matrix cannot break down");
        for i in 0..f.n {
            assert!(f.l[i].len() <= m, "case {case}");
            assert!(f.u[i].len() <= m + 1, "case {case}"); // + diagonal
        }
    }
}

/// Larger thresholds never increase fill.
#[test]
fn threshold_monotonicity() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 20, 70);
        let n = a.n_rows();
        let loose = ilut(&a, &IlutOptions::new(n, 1e-6)).expect("no breakdown");
        let tight = ilut(&a, &IlutOptions::new(n, 1e-1)).expect("no breakdown");
        assert!(tight.nnz() <= loose.nnz(), "case {case}");
    }
}

/// ILU(k) fill grows monotonically with the level, and level 0 = ILU(0).
#[test]
fn iluk_level_monotonicity() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 20, 60);
        let f0 = ilu0(&a).expect("no breakdown");
        let k0 = iluk(&a, 0).expect("no breakdown");
        assert_eq!(f0.nnz(), k0.nnz(), "case {case}");
        let k1 = iluk(&a, 1).expect("no breakdown");
        let k2 = iluk(&a, 2).expect("no breakdown");
        assert!(k0.nnz() <= k1.nnz(), "case {case}");
        assert!(k1.nnz() <= k2.nnz(), "case {case}");
    }
}

/// Triangular solves invert the factored operator: for any factors,
/// solve(multiply(x)) == x. (Uses the dense reconstruction.)
#[test]
fn trisolve_inverts_lu() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 16, 50);
        let f = ilut(&a, &IlutOptions::new(4, 1e-2)).expect("no breakdown");
        let n = f.n;
        let seed = rng.next_u64() % 50;
        let x: Vec<f64> = (0..n)
            .map(|i| ((seed + 3 * i as u64) % 7) as f64 - 3.0)
            .collect();
        // y = L U x via the dense product.
        let dense = f.multiply_dense();
        let y: Vec<f64> = dense
            .iter()
            .map(|row| row.iter().zip(&x).map(|(m, xi)| m * xi).sum())
            .collect();
        let back = f.solve(&y);
        assert!(
            max_err(&back, &x) < 1e-6,
            "case {case} err {}",
            max_err(&back, &x)
        );
    }
}

/// Differential check of the working row against a dense mirror: after any
/// interleaving of set/add/drop operations, `drain_sorted` emits each
/// position at most once, sorted, with the value the dense mirror holds.
/// (Guards the sparse-set bookkeeping — a stale companion-list entry for a
/// re-scattered position would emit a duplicate.)
#[test]
fn workrow_drain_matches_dense_mirror() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(1000 + case);
        let n = 4 + rng.next_usize(60);
        let mut w = WorkRow::new(n);
        let mut dense: Vec<Option<f64>> = vec![None; n];
        for _ in 0..rng.next_usize(200) + 20 {
            let j = rng.next_usize(n);
            match rng.next_usize(4) {
                0 => {
                    let v = rng.range_f64(-2.0, 2.0);
                    w.set(j, v);
                    dense[j] = Some(v);
                }
                1 => {
                    let v = rng.range_f64(-2.0, 2.0);
                    w.add(j, v);
                    dense[j] = Some(dense[j].unwrap_or(0.0) + v);
                }
                2 => {
                    w.drop_pos(j);
                    dense[j] = None;
                }
                _ => {
                    assert_eq!(w.contains(j), dense[j].is_some(), "case {case}");
                }
            }
        }
        let expected: Vec<(usize, f64)> = dense
            .iter()
            .enumerate()
            .filter_map(|(j, v)| v.map(|v| (j, v)))
            .collect();
        assert_eq!(w.nnz(), expected.len(), "case {case}: nnz over-count");
        let drained = w.drain_sorted();
        let cols: Vec<usize> = drained.iter().map(|&(j, _)| j).collect();
        let mut uniq = cols.clone();
        uniq.dedup();
        assert_eq!(cols, uniq, "case {case}: duplicate positions emitted");
        assert_eq!(drained.len(), expected.len(), "case {case}");
        for ((ja, va), (jb, vb)) in drained.iter().zip(&expected) {
            assert_eq!(ja, jb, "case {case}");
            assert!((va - vb).abs() < 1e-12, "case {case}");
        }
        assert!(w.is_empty());
    }
}

/// Differential check against a dense reference LU: with `tau = 0` and
/// `m = n` nothing is dropped, so serial ILUT must agree entry-for-entry
/// with textbook Gaussian elimination (no pivoting) on the dense copy.
#[test]
fn unbounded_ilut_matches_dense_lu() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(2000 + case);
        let a = diag_dominant(&mut rng, 18, 60);
        let n = a.n_rows();
        // Dense reference: in-place LU, L strictly below, U on and above.
        let mut d = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                d[i][j] += v;
            }
        }
        for k in 0..n - 1 {
            assert!(d[k][k] != 0.0, "case {case}: dense pivot vanished");
            for i in k + 1..n {
                let mult = d[i][k] / d[k][k];
                d[i][k] = mult;
                if mult != 0.0 {
                    for j in k + 1..n {
                        d[i][j] -= mult * d[k][j];
                    }
                }
            }
        }
        let f = ilut(&a, &IlutOptions::new(n, 0.0)).expect("no breakdown");
        for i in 0..n {
            for (j, v) in f.l[i].iter() {
                assert!(
                    (v - d[i][j]).abs() < 1e-9,
                    "case {case}: L[{i}][{j}] = {v} vs dense {}",
                    d[i][j]
                );
            }
            for (j, v) in f.u[i].iter() {
                assert!(
                    (v - d[i][j]).abs() < 1e-9,
                    "case {case}: U[{i}][{j}] = {v} vs dense {}",
                    d[i][j]
                );
            }
            // Every structurally nonzero dense entry above the drop
            // threshold must be present in the sparse factors too.
            for j in 0..n {
                if d[i][j].abs() > 1e-9 {
                    let stored = if j < i { f.l[i].get(j) } else { f.u[i].get(j) };
                    assert!(
                        stored.is_some(),
                        "case {case}: dense LU has ({i},{j}) = {} but factors dropped it",
                        d[i][j]
                    );
                }
            }
        }
    }
}

// The machine-backed cases are heavier; fewer of them.

/// The parallel factorization with no dropping solves exactly for any
/// rank count, matching the serial ground truth.
#[test]
fn parallel_exactness_any_rank_count() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 28, 90);
        let p = 1 + rng.next_usize(4);
        let seed = rng.next_u64() % 20;
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 11) as f64 - 5.0)
            .collect();
        let b_global = a.spmv_owned(&x_true);
        let dm = DistMatrix::from_matrix(a.clone(), p, seed);
        let opts = IlutOptions::new(n, 0.0);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("no breakdown");
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
            let x = dist_solve(ctx, &local, &rf, &plan, &b);
            (local.nodes.clone(), x)
        });
        let mut x = vec![f64::NAN; n];
        for (nodes, xl) in out.results {
            for (g, v) in nodes.into_iter().zip(xl) {
                x[g] = v;
            }
        }
        assert!(
            max_err(&x, &x_true) < 1e-5,
            "case {case} p={p} err {}",
            max_err(&x, &x_true)
        );
    }
}

/// Parallel fill caps hold on every rank's rows.
#[test]
fn parallel_fill_caps_hold() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 24, 70);
        let p = 2 + rng.next_usize(2);
        let m = 1 + rng.next_usize(4);
        let dm = DistMatrix::from_matrix(a.clone(), p, 3);
        let opts = IlutOptions::star(m, 1e-3, 2);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            par_ilut(ctx, &dm, &local, &opts).expect("no breakdown")
        });
        for rf in &out.results {
            for (v, row) in &rf.rows {
                assert!(
                    row.l.len() <= m,
                    "case {case}: L row {v} has {}",
                    row.l.len()
                );
                assert!(
                    row.u.len() <= m,
                    "case {case}: U row {v} has {}",
                    row.u.len()
                );
                assert!(row.diag != 0.0, "case {case}");
            }
        }
    }
}
