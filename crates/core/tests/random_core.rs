//! Randomized property tests of the factorization invariants, serial and
//! parallel.
//!
//! Formerly proptest strategies; now driven by the in-tree seeded
//! [`SplitMix64`] so the suite runs with zero registry dependencies.

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::serial::{ilu0, iluk, ilut};
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::{CooMatrix, CsrMatrix, SplitMix64};

/// Random strictly diagonally dominant matrix — ILUT never breaks down on
/// these and the exact factorization is well conditioned.
fn diag_dominant(rng: &mut SplitMix64, max_n: usize, extra: usize) -> CsrMatrix {
    let n = 2 + rng.next_usize(max_n - 1);
    let m = rng.next_usize(extra + 1);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sum = vec![0.0f64; n];
    for _ in 0..m {
        let i = rng.next_usize(n);
        let j = rng.next_usize(n);
        if i != j {
            let v = (rng.next_usize(80) as i32 - 40) as f64 / 10.0;
            coo.push(i, j, v);
            row_sum[i] += v.abs();
        }
    }
    for (i, &s) in row_sum.iter().enumerate() {
        coo.push(i, i, s + 1.0 + (i % 3) as f64);
    }
    coo.to_csr()
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// No dropping ⇒ exact LU ⇒ exact solve.
#[test]
fn unbounded_ilut_is_exact() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 24, 80);
        let n = a.n_rows();
        let f = ilut(&a, &IlutOptions::new(n, 0.0)).expect("dominant matrix cannot break down");
        f.check_structure().expect("factors well-formed");
        let seed = rng.next_u64() % 100;
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 9) as f64 - 4.0)
            .collect();
        let b = a.spmv_owned(&x_true);
        let x = f.solve(&b);
        assert!(
            max_err(&x, &x_true) < 1e-6,
            "case {case} err {}",
            max_err(&x, &x_true)
        );
    }
}

/// The m-cap is a hard bound on per-row fill.
#[test]
fn fill_caps_hold() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 30, 120);
        let m = 1 + rng.next_usize(5);
        let f = ilut(&a, &IlutOptions::new(m, 0.0)).expect("dominant matrix cannot break down");
        for i in 0..f.n {
            assert!(f.l[i].len() <= m, "case {case}");
            assert!(f.u[i].len() <= m + 1, "case {case}"); // + diagonal
        }
    }
}

/// Larger thresholds never increase fill.
#[test]
fn threshold_monotonicity() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 20, 70);
        let n = a.n_rows();
        let loose = ilut(&a, &IlutOptions::new(n, 1e-6)).expect("no breakdown");
        let tight = ilut(&a, &IlutOptions::new(n, 1e-1)).expect("no breakdown");
        assert!(tight.nnz() <= loose.nnz(), "case {case}");
    }
}

/// ILU(k) fill grows monotonically with the level, and level 0 = ILU(0).
#[test]
fn iluk_level_monotonicity() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 20, 60);
        let f0 = ilu0(&a).expect("no breakdown");
        let k0 = iluk(&a, 0).expect("no breakdown");
        assert_eq!(f0.nnz(), k0.nnz(), "case {case}");
        let k1 = iluk(&a, 1).expect("no breakdown");
        let k2 = iluk(&a, 2).expect("no breakdown");
        assert!(k0.nnz() <= k1.nnz(), "case {case}");
        assert!(k1.nnz() <= k2.nnz(), "case {case}");
    }
}

/// Triangular solves invert the factored operator: for any factors,
/// solve(multiply(x)) == x. (Uses the dense reconstruction.)
#[test]
fn trisolve_inverts_lu() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 16, 50);
        let f = ilut(&a, &IlutOptions::new(4, 1e-2)).expect("no breakdown");
        let n = f.n;
        let seed = rng.next_u64() % 50;
        let x: Vec<f64> = (0..n)
            .map(|i| ((seed + 3 * i as u64) % 7) as f64 - 3.0)
            .collect();
        // y = L U x via the dense product.
        let dense = f.multiply_dense();
        let y: Vec<f64> = dense
            .iter()
            .map(|row| row.iter().zip(&x).map(|(m, xi)| m * xi).sum())
            .collect();
        let back = f.solve(&y);
        assert!(
            max_err(&back, &x) < 1e-6,
            "case {case} err {}",
            max_err(&back, &x)
        );
    }
}

// The machine-backed cases are heavier; fewer of them.

/// The parallel factorization with no dropping solves exactly for any
/// rank count, matching the serial ground truth.
#[test]
fn parallel_exactness_any_rank_count() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 28, 90);
        let p = 1 + rng.next_usize(4);
        let seed = rng.next_u64() % 20;
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 11) as f64 - 5.0)
            .collect();
        let b_global = a.spmv_owned(&x_true);
        let dm = DistMatrix::from_matrix(a.clone(), p, seed);
        let opts = IlutOptions::new(n, 0.0);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("no breakdown");
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
            let x = dist_solve(ctx, &local, &rf, &plan, &b);
            (local.nodes.clone(), x)
        });
        let mut x = vec![f64::NAN; n];
        for (nodes, xl) in out.results {
            for (g, v) in nodes.into_iter().zip(xl) {
                x[g] = v;
            }
        }
        assert!(
            max_err(&x, &x_true) < 1e-5,
            "case {case} p={p} err {}",
            max_err(&x, &x_true)
        );
    }
}

/// Parallel fill caps hold on every rank's rows.
#[test]
fn parallel_fill_caps_hold() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(case);
        let a = diag_dominant(&mut rng, 24, 70);
        let p = 2 + rng.next_usize(2);
        let m = 1 + rng.next_usize(4);
        let dm = DistMatrix::from_matrix(a.clone(), p, 3);
        let opts = IlutOptions::star(m, 1e-3, 2);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            par_ilut(ctx, &dm, &local, &opts).expect("no breakdown")
        });
        for rf in &out.results {
            for (v, row) in &rf.rows {
                assert!(
                    row.l.len() <= m,
                    "case {case}: L row {v} has {}",
                    row.l.len()
                );
                assert!(
                    row.u.len() <= m,
                    "case {case}: U row {v} has {}",
                    row.u.len()
                );
                assert!(row.diag != 0.0, "case {case}");
            }
        }
    }
}
