//! Blocked-vs-scalar ILUT differentials at integration scale.
//!
//! The anchor property: at block size 1 the blocked pipeline (BCSR
//! conversion → `block_ilut` → blocked level-scheduled trisolve) is
//! *bitwise* the scalar pipeline (`ilut` → `LuFactors::solve`). At real
//! block sizes the factors differ (tile-granular dropping), so those are
//! checked for quality and internal consistency instead.

use pilut_core::serial::{block_ilut, block_ilut_with_stats, ilut_with_stats};
use pilut_core::IlutOptions;
use pilut_sparse::vec_ops::norm2;
use pilut_sparse::{gen, BcsrMatrix};

#[test]
fn b1_pipeline_is_bitwise_scalar_on_random_matrices() {
    for seed in 0..4u64 {
        let a = gen::random_diag_dominant(200, 6, seed);
        let opts = IlutOptions::new(8, 1e-3);
        let (sf, ss) = ilut_with_stats(&a, &opts).unwrap();
        let ab = BcsrMatrix::from_csr(&a, 1);
        let (bf, bs) = block_ilut_with_stats(&ab, &opts).unwrap();
        assert_eq!(ss.flops.to_bits(), bs.flops.to_bits(), "seed {seed}");
        assert_eq!((ss.nnz_l, ss.nnz_u), (bs.nnz_l, bs.nnz_u));
        let refined = bf.to_lu_factors();
        for i in 0..a.n_rows() {
            assert_eq!(sf.l[i].cols, refined.l[i].cols, "seed {seed} L row {i}");
            assert_eq!(sf.u[i].cols, refined.u[i].cols, "seed {seed} U row {i}");
            for (x, y) in sf.l[i].vals.iter().zip(&refined.l[i].vals) {
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} L row {i}");
            }
            for (x, y) in sf.u[i].vals.iter().zip(&refined.u[i].vals) {
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} U row {i}");
            }
        }
        // The blocked level-scheduled trisolve must also be bitwise the
        // scalar sweep at b = 1 (per-row arithmetic order is unchanged).
        let r: Vec<f64> = (0..a.n_rows())
            .map(|i| ((i * 31) % 17) as f64 - 8.0)
            .collect();
        let (xs, xb) = (sf.solve(&r), bf.solve(&r));
        for (x, y) in xs.iter().zip(&xb) {
            assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} trisolve");
        }
    }
}

#[test]
fn blocked_preconditioner_quality_tracks_scalar() {
    // At real block sizes the tile-granular cap keeps *more* scalar fill
    // per retained unit, so with matched caps the blocked preconditioner
    // should land in the scalar one's quality neighbourhood.
    let a = gen::convection_diffusion_2d(16, 16, 4.0, -3.0);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let rhs = a.spmv_owned(&x_true);
    let resid = |x: &[f64]| {
        let ax = a.spmv_owned(x);
        norm2(&ax.iter().zip(&rhs).map(|(u, v)| u - v).collect::<Vec<_>>())
    };
    let scalar = {
        let f = pilut_core::ilut(&a, &IlutOptions::new(10, 1e-4)).unwrap();
        resid(&f.solve(&rhs))
    };
    let r0 = norm2(&rhs);
    for b in [2usize, 4] {
        let ab = BcsrMatrix::from_csr(&a, b);
        let f = block_ilut(&ab, &IlutOptions::new(10, 1e-4)).unwrap();
        f.check_structure().unwrap();
        let rb = resid(&f.solve(&rhs));
        assert!(
            rb < 0.2 * r0,
            "b={b}: blocked preconditioner barely helps: {rb} vs r0={r0}"
        );
        assert!(
            rb < 50.0 * scalar + 1e-12,
            "b={b}: blocked residual {rb} far off scalar {scalar}"
        );
    }
}

#[test]
fn panel_solve_bitwise_at_scale() {
    let a = gen::laplace_2d(16, 16); // n = 256, divisible by 4
    let ab = BcsrMatrix::from_csr(&a, 4);
    let f = block_ilut(&ab, &IlutOptions::new(6, 1e-3)).unwrap();
    let n = a.n_rows();
    let k = 8;
    let rhs: Vec<f64> = (0..n * k)
        .map(|i| ((i * 131) % 263) as f64 * 0.01 - 1.3)
        .collect();
    let panel = f.solve_panel(&rhs, k);
    for c in 0..k {
        let col: Vec<f64> = (0..n).map(|i| rhs[i * k + c]).collect();
        let single = f.solve(&col);
        for i in 0..n {
            assert_eq!(
                panel[i * k + c].to_bits(),
                single[i].to_bits(),
                "col {c} row {i}"
            );
        }
    }
}

#[test]
fn level_schedules_expose_parallelism() {
    // On a banded problem the dependency levels must be far fewer than the
    // block rows — that's the concurrency a parallel tile sweep would get.
    let a = gen::laplace_2d(24, 24);
    let ab = BcsrMatrix::from_csr(&a, 4);
    let f = block_ilut(&ab, &IlutOptions::new(4, 1e-2)).unwrap();
    let (fwd, bwd) = f.level_counts();
    assert!(fwd < f.n_brows(), "forward levels {fwd} of {}", f.n_brows());
    assert!(
        bwd < f.n_brows(),
        "backward levels {bwd} of {}",
        f.n_brows()
    );
}
