//! Tests of the parallel ILU(0) factorization (the paper's §3 static-pattern
//! contrast case).

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::{par_ilu0, par_ilut};
use pilut_core::serial::ilu0;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::gen;

#[test]
fn single_rank_matches_serial_ilu0() {
    let a = gen::convection_diffusion_2d(7, 7, 4.0, -1.0);
    let serial = ilu0(&a).unwrap();
    let dm = DistMatrix::from_matrix(a.clone(), 1, 1);
    let out = Machine::run_checked(1, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(0);
        par_ilu0(ctx, &dm, &local).unwrap()
    });
    let rf = &out.results[0];
    for i in 0..a.n_rows() {
        let row = &rf.rows[&i];
        let sl: Vec<(usize, f64)> = serial.l[i].iter().collect();
        assert_eq!(row.l, sl, "L row {i}");
        assert!((row.diag - serial.u[i].vals[0]).abs() < 1e-14, "diag {i}");
        let su: Vec<(usize, f64)> = serial.u[i].iter().skip(1).collect();
        assert_eq!(row.u, su, "U row {i}");
    }
}

#[test]
fn pattern_is_preserved_across_ranks() {
    let a = gen::fem_torso(10, 3);
    let dm = DistMatrix::from_matrix(a.clone(), 4, 9);
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        par_ilu0(ctx, &dm, &local).unwrap()
    });
    let mut covered = 0usize;
    for rf in &out.results {
        for (&v, row) in &rf.rows {
            let mut got: Vec<usize> = row.l.iter().chain(row.u.iter()).map(|&(c, _)| c).collect();
            got.push(v);
            got.sort_unstable();
            let expect: Vec<usize> = a.row(v).0.to_vec();
            assert_eq!(got, expect, "node {v}: ILU(0) must keep the exact pattern");
            covered += 1;
        }
    }
    assert_eq!(covered, a.n_rows());
}

#[test]
fn static_schedule_is_much_shorter_than_ilut_levels() {
    // The whole point of Figure 1: the static pattern needs only about as
    // many levels as the interface graph's chromatic number, while ILUT's
    // fill pushes the dynamic level count far higher.
    let a = gen::laplace_3d(10, 10, 10);
    let p = 4;
    let q_of = |use_ilut: bool| {
        let dm = DistMatrix::from_matrix(a.clone(), p, 17);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            if use_ilut {
                par_ilut(ctx, &dm, &local, &IlutOptions::new(10, 1e-6))
                    .unwrap()
                    .stats
                    .levels
            } else {
                par_ilu0(ctx, &dm, &local).unwrap().stats.levels
            }
        });
        out.results[0]
    };
    let q0 = q_of(false);
    let qt = q_of(true);
    assert!(
        q0 * 3 <= qt,
        "ILU(0) schedule {q0} not much shorter than ILUT {qt}"
    );
}

#[test]
fn factors_drive_the_parallel_trisolve() {
    // par_ilu0 output plugs into the same triangular-solve machinery; on a
    // matrix whose permuted factorization stays exact (block-diagonal-ish
    // chains have no cross fill), the solve is exact.
    let a = gen::laplace_2d(12, 12);
    let dm = DistMatrix::from_matrix(a.clone(), 3, 5);
    let b_global = a.spmv_owned(&vec![1.0; a.n_rows()]);
    let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilu0(ctx, &dm, &local).unwrap();
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
        let x = dist_solve(ctx, &local, &rf, &plan, &b);
        (local.nodes.clone(), x)
    });
    // ILU(0) is approximate on a grid; check it acts like a decent
    // preconditioner rather than an exact solve.
    let mut x = vec![0.0; a.n_rows()];
    for (nodes, xl) in out.results {
        for (g, v) in nodes.into_iter().zip(xl) {
            x[g] = v;
        }
    }
    let ax = a.spmv_owned(&x);
    let num: f64 = ax
        .iter()
        .zip(&b_global)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b_global.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(
        num / den < 0.7,
        "one ILU(0) application too weak: {}",
        num / den
    );
}

#[test]
fn deterministic_and_consistent_levels() {
    let a = gen::laplace_2d(10, 10);
    let run = || {
        let dm = DistMatrix::from_matrix(a.clone(), 4, 3);
        Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilu0(ctx, &dm, &local).unwrap();
            (rf.levels.clone(), rf.stats.levels)
        })
    };
    let a1 = run();
    let a2 = run();
    let q = a1.results[0].1;
    for (r1, r2) in a1.results.iter().zip(&a2.results) {
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.1, q, "level counts must agree across ranks");
    }
}
