//! Integration tests of the parallel ILUT/ILUT* factorization and the
//! parallel triangular solves, cross-checked against the serial algorithms.

use pilut_core::dist::DistMatrix;
use pilut_core::options::{FactorError, IlutOptions};
use pilut_core::parallel::{par_ilut, RankFactors};
use pilut_core::serial::ilut;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::vec_ops::norm2;
use pilut_sparse::{gen, CsrMatrix};

/// Runs the parallel factorization and solves `LUx = b`; returns
/// (x in global numbering, per-rank factors).
fn factor_and_solve(
    a: &CsrMatrix,
    p: usize,
    opts: &IlutOptions,
    b_global: &[f64],
) -> (Vec<f64>, Vec<RankFactors>) {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, opts).expect("factorization failed");
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let b_local: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
        let x_local = dist_solve(ctx, &local, &rf, &plan, &b_local);
        (local.nodes.clone(), x_local, rf)
    });
    let mut x = vec![f64::NAN; a.n_rows()];
    let mut factors = Vec::new();
    for (nodes, xl, rf) in out.results {
        for (g, v) in nodes.into_iter().zip(xl) {
            x[g] = v;
        }
        factors.push(rf);
    }
    (x, factors)
}

fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.spmv_owned(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(y, bi)| y - bi).collect();
    norm2(&r) / norm2(b)
}

#[test]
fn single_rank_matches_serial_ilut() {
    let a = gen::convection_diffusion_2d(8, 8, 4.0, -3.0);
    let opts = IlutOptions::new(5, 1e-2);
    let serial = ilut(&a, &opts).unwrap();
    let dm = DistMatrix::from_matrix(a.clone(), 1, 1);
    let out = Machine::run_checked(1, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(0);
        par_ilut(ctx, &dm, &local, &opts).unwrap()
    });
    let rf = &out.results[0];
    assert_eq!(rf.interior.len(), a.n_rows());
    assert!(rf.levels.is_empty(), "no interface nodes on one rank");
    for i in 0..a.n_rows() {
        let row = &rf.rows[&i];
        let sl: Vec<(usize, f64)> = serial.l[i].iter().collect();
        assert_eq!(row.l, sl, "L row {i}");
        assert_eq!(row.diag, serial.u[i].vals[0], "diag {i}");
        let su: Vec<(usize, f64)> = serial.u[i].iter().skip(1).collect();
        assert_eq!(row.u, su, "U row {i}");
    }
}

#[test]
fn no_dropping_gives_exact_solve_2d() {
    let a = gen::laplace_2d(10, 10);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
    let b = a.spmv_owned(&x_true);
    for p in [2, 4] {
        let (x, _) = factor_and_solve(&a, p, &IlutOptions::new(n, 0.0), &b);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "p={p}: max error {err}");
    }
}

#[test]
fn no_dropping_gives_exact_solve_torso() {
    let a = gen::fem_torso(8, 2);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
    let b = a.spmv_owned(&x_true);
    let (x, factors) = factor_and_solve(&a, 3, &IlutOptions::new(n, 0.0), &b);
    let err: f64 = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-7, "max error {err}");
    // Every node factored exactly once across ranks.
    let total: usize = factors.iter().map(|f| f.rows.len()).sum();
    assert_eq!(total, n);
}

#[test]
fn dropped_factorization_is_a_useful_preconditioner() {
    let a = gen::convection_diffusion_2d(14, 14, 8.0, 2.0);
    let n = a.n_rows();
    let x_true = vec![1.0; n];
    let b = a.spmv_owned(&x_true);
    let (x, _) = factor_and_solve(&a, 4, &IlutOptions::new(8, 1e-4), &b);
    // One application of an incomplete factorization is not exact but must
    // be a solid approximation on this well-behaved problem.
    let res = rel_residual(&a, &x, &b);
    assert!(
        res < 0.5,
        "relative residual {res} too poor for a preconditioner"
    );
}

#[test]
fn every_interface_node_lands_in_exactly_one_level() {
    let a = gen::laplace_2d(12, 12);
    let dm = DistMatrix::from_matrix(a, 4, 17);
    let opts = IlutOptions::new(5, 1e-2);
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        (local.interface.clone(), rf)
    });
    let mut q = None;
    for (interface, rf) in &out.results {
        // Same number of global levels on every rank.
        match q {
            None => q = Some(rf.levels.len()),
            Some(q0) => assert_eq!(rf.levels.len(), q0, "level counts disagree"),
        }
        let mut seen: Vec<usize> = rf.levels.iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut expect = interface.clone();
        expect.sort_unstable();
        assert_eq!(seen, expect, "interface nodes must be covered exactly once");
    }
    assert!(
        q.unwrap() >= 1,
        "a 4-way split has interface nodes to factor"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = gen::laplace_2d(10, 10);
    let opts = IlutOptions::new(4, 1e-3);
    let run = || {
        let dm = DistMatrix::from_matrix(a.clone(), 3, 17);
        Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
            (rf.levels.clone(), rf.stats.flops)
        })
    };
    let a1 = run();
    let a2 = run();
    for (r1, r2) in a1.results.iter().zip(&a2.results) {
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.1, r2.1);
    }
    assert_eq!(
        a1.sim_time, a2.sim_time,
        "simulated time must be reproducible"
    );
}

/// Builds the 4×4 matrix whose row 2 has no diagonal and no lower
/// couplings: no elimination can fill its pivot.
fn singular_4x4() -> pilut_sparse::CsrMatrix {
    let mut coo = pilut_sparse::CooMatrix::new(4, 4);
    coo.push(0, 0, 2.0);
    coo.push(0, 1, -1.0);
    coo.push(1, 0, -1.0);
    coo.push(1, 1, 2.0);
    coo.push(2, 3, 1.0);
    coo.push(3, 3, 2.0);
    coo.to_csr()
}

#[test]
fn zero_pivot_reported_on_all_ranks() {
    // The factorization must fail on every rank: the owner of row 2 with
    // the detailed error, its peers with a RankFailure naming the owner.
    let dm = DistMatrix::from_matrix(singular_4x4(), 2, 5);
    let opts = IlutOptions::new(6, 0.0);
    let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        par_ilut(ctx, &dm, &local, &opts)
    });
    let mut owner = None;
    for (rank, r) in out.results.iter().enumerate() {
        match r {
            Err(FactorError::StructurallySingular { row: 2 }) => {
                assert!(owner.replace(rank).is_none(), "one owner expected");
            }
            Err(FactorError::RankFailure { rank: o }) => {
                assert_ne!(*o, rank, "a peer never names itself");
            }
            other => panic!("expected a factorization failure on every rank, got {other:?}"),
        }
    }
    let owner = owner.expect("some rank must report the detailed error");
    for (rank, r) in out.results.iter().enumerate() {
        if rank != owner {
            assert!(
                matches!(r, Err(FactorError::RankFailure { rank: o }) if *o == owner),
                "rank {rank} should name rank {owner}, got {r:?}"
            );
        }
    }
}

#[test]
fn breakdown_policies_recover_the_singular_matrix_in_parallel() {
    use pilut_core::options::BreakdownPolicy;
    for policy in [BreakdownPolicy::shift(), BreakdownPolicy::ReplaceRow] {
        let dm = DistMatrix::from_matrix(singular_4x4(), 2, 5);
        let opts = IlutOptions::new(6, 0.0).with_breakdown(policy);
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            par_ilut(ctx, &dm, &local, &opts).unwrap()
        });
        let repaired: usize = out
            .results
            .iter()
            .map(|rf| rf.stats.breakdowns_repaired)
            .sum();
        assert_eq!(repaired, 1, "{policy:?}: exactly row 2 needed repair");
        for rf in &out.results {
            for (v, row) in &rf.rows {
                assert!(
                    row.diag.is_finite() && row.diag != 0.0,
                    "{policy:?}: row {v} pivot unusable after repair"
                );
            }
        }
    }
}

#[test]
fn ilut_star_uses_no_more_levels_than_ilut() {
    // A 3-D problem with a small threshold generates enough interface fill
    // for the reduced matrices to densify — the regime ILUT* targets.
    let a = gen::laplace_3d(7, 7, 7);
    let run = |opts: IlutOptions| {
        let dm = DistMatrix::from_matrix(a.clone(), 4, 17);
        let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
            (rf.stats.levels, rf.stats.reduced_nnz_peak)
        });
        let levels = out.results[0].0;
        let peak: usize = out.results.iter().map(|r| r.1).sum();
        (levels, peak)
    };
    let (q_ilut, peak_ilut) = run(IlutOptions::new(10, 1e-6));
    let (q_star, peak_star) = run(IlutOptions::star(10, 1e-6, 2));
    assert!(
        q_star <= q_ilut,
        "ILUT* levels {q_star} > ILUT levels {q_ilut}"
    );
    assert!(
        peak_star <= peak_ilut,
        "ILUT* reduced fill {peak_star} > ILUT {peak_ilut}"
    );
}

#[test]
fn solve_roundtrip_repeatable_for_gmres_use() {
    // Two successive dist_solve calls with the same plan must agree —
    // the message protocol has to stay aligned across repeated solves.
    let a = gen::laplace_2d(9, 9);
    let dm = DistMatrix::from_matrix(a.clone(), 3, 7);
    let opts = IlutOptions::new(5, 1e-3);
    let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let b: Vec<f64> = local.nodes.iter().map(|&g| (g as f64).sin()).collect();
        let x1 = dist_solve(ctx, &local, &rf, &plan, &b);
        let x2 = dist_solve(ctx, &local, &rf, &plan, &b);
        (x1, x2)
    });
    for (x1, x2) in out.results {
        assert_eq!(x1, x2);
    }
}
