//! Breakdown-policy property tests: pathological matrices — zero
//! diagonals, exactly singular systems, symmetric indefinite systems —
//! driven through every serial factorization under every
//! [`BreakdownPolicy`]. The contract:
//!
//! * **No kernel ever panics** on these inputs. Under `Abort` the result
//!   may be a typed [`FactorError`]; under `Shift` / `ReplaceRow` the
//!   factorization must complete.
//! * **Whatever factors come back are finite** — the repair policies must
//!   not launder a breakdown into NaN/Inf factors, and the triangular
//!   solves on them must produce finite vectors.
//!
//! Matrices are generated from the in-tree seeded [`SplitMix64`], so every
//! failing case replays from its printed seed.

use pilut_core::options::{BreakdownPolicy, FactorError, IlutOptions};
use pilut_core::serial::{ic0_with, ilu0_with, iluk_with, ilut};
use pilut_sparse::{CooMatrix, CsrMatrix, SplitMix64};

/// The three policies under test.
fn policies() -> Vec<BreakdownPolicy> {
    vec![
        BreakdownPolicy::Abort,
        BreakdownPolicy::shift(),
        BreakdownPolicy::ReplaceRow,
    ]
}

/// Random sparse matrix whose diagonal is sabotaged: roughly a third of
/// the rows get an exactly-zero pivot, a third get no stored diagonal at
/// all, and the rest stay healthy and dominant.
fn zero_diag_matrix(rng: &mut SplitMix64) -> CsrMatrix {
    let n = 4 + rng.next_usize(12);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for _ in 0..1 + rng.next_usize(3) {
            let j = rng.next_usize(n);
            if j != i {
                let v = (rng.next_usize(40) as i32 - 20) as f64 / 10.0;
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        match i % 3 {
            0 => coo.push(i, i, 0.0),
            1 => {} // structurally missing diagonal
            _ => coo.push(i, i, 8.0 + i as f64),
        }
    }
    coo.to_csr()
}

/// Exactly singular matrix: healthy dominant rows except one row copied
/// verbatim onto another (rank deficiency) and one row left entirely zero.
fn singular_matrix(rng: &mut SplitMix64) -> CsrMatrix {
    let n = 5 + rng.next_usize(10);
    let zero_row = rng.next_usize(n);
    let dup_src = (zero_row + 1) % n;
    let dup_dst = (zero_row + 2) % n;
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut r = vec![(i, 6.0 + (i % 4) as f64)];
        for _ in 0..2 {
            let j = rng.next_usize(n);
            if j != i {
                r.push((j, 1.0 + (rng.next_usize(20) as f64) / 10.0));
            }
        }
        rows.push(r);
    }
    rows[zero_row].clear();
    rows[dup_dst] = rows[dup_src].clone();
    let mut coo = CooMatrix::new(n, n);
    for (i, r) in rows.iter().enumerate() {
        let mut seen: Vec<usize> = Vec::new();
        for &(j, v) in r {
            if !seen.contains(&j) {
                seen.push(j);
                coo.push(i, j, v);
            }
        }
    }
    coo.to_csr()
}

/// Symmetric indefinite matrix: symmetric off-diagonal pattern, diagonal
/// entries of alternating sign — IC(0) hits negative pivots immediately,
/// LU kernels see sign flips and small pivots.
fn indefinite_matrix(rng: &mut SplitMix64) -> CsrMatrix {
    let n = 4 + rng.next_usize(10);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        coo.push(i, i, sign * (2.0 + (i % 3) as f64));
    }
    for _ in 0..n {
        let i = rng.next_usize(n);
        let j = rng.next_usize(n);
        if i < j {
            let v = 1.0 + (rng.next_usize(10) as f64) / 5.0;
            coo.push(i, j, v);
            coo.push(j, i, v);
        }
    }
    coo.to_csr()
}

/// Asserts every stored LU value is finite, then drives a solve and
/// asserts the result is finite too.
fn assert_lu_finite(f: &pilut_core::factors::LuFactors, label: &str) {
    for i in 0..f.n {
        for &v in f.l[i].vals.iter().chain(f.u[i].vals.iter()) {
            assert!(v.is_finite(), "{label}: non-finite factor entry in row {i}");
        }
    }
    let b = vec![1.0; f.n];
    let x = f.solve(&b);
    assert!(
        x.iter().all(|v| v.is_finite()),
        "{label}: triangular solve produced non-finite values"
    );
}

/// An `Abort`-policy error must be one of the numerical/structural
/// variants — never `InvalidOptions` (the options here are valid) and
/// never `RankFailure` (these are serial kernels).
fn assert_expected_error(e: &FactorError, label: &str) {
    assert!(
        matches!(
            e,
            FactorError::ZeroPivot { .. }
                | FactorError::NonFinite { .. }
                | FactorError::StructurallySingular { .. }
        ),
        "{label}: unexpected error variant {e:?}"
    );
}

/// Runs one matrix through all four serial kernels under one policy and
/// checks the contract.
fn exercise(a: &CsrMatrix, policy: BreakdownPolicy, label: &str) {
    let repairing = policy != BreakdownPolicy::Abort;
    let opts = IlutOptions::new(4, 1e-3).with_breakdown(policy);
    match ilut(a, &opts) {
        Ok(f) => assert_lu_finite(&f, label),
        Err(e) => {
            assert!(
                !repairing,
                "{label}: ilut failed under a repair policy: {e}"
            );
            assert_expected_error(&e, label);
        }
    }
    match ilu0_with(a, policy) {
        Ok(f) => assert_lu_finite(&f, label),
        Err(e) => {
            assert!(
                !repairing,
                "{label}: ilu0 failed under a repair policy: {e}"
            );
            assert_expected_error(&e, label);
        }
    }
    match iluk_with(a, 1, policy) {
        Ok(f) => assert_lu_finite(&f, label),
        Err(e) => {
            assert!(
                !repairing,
                "{label}: iluk failed under a repair policy: {e}"
            );
            assert_expected_error(&e, label);
        }
    }
    match ic0_with(a, policy) {
        Ok(f) => {
            let x = f.solve(&vec![1.0; a.n_rows()]);
            assert!(
                x.iter().all(|v| v.is_finite()),
                "{label}: ic0 solve produced non-finite values"
            );
        }
        Err(e) => {
            assert!(!repairing, "{label}: ic0 failed under a repair policy: {e}");
            assert_expected_error(&e, label);
        }
    }
}

#[test]
fn zero_diagonal_matrices_never_panic() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let a = zero_diag_matrix(&mut rng);
        for policy in policies() {
            exercise(&a, policy, &format!("zero-diag seed {seed} {policy:?}"));
        }
    }
}

#[test]
fn singular_matrices_never_panic() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let a = singular_matrix(&mut rng);
        for policy in policies() {
            exercise(&a, policy, &format!("singular seed {seed} {policy:?}"));
        }
    }
}

#[test]
fn indefinite_matrices_never_panic() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let a = indefinite_matrix(&mut rng);
        for policy in policies() {
            exercise(&a, policy, &format!("indefinite seed {seed} {policy:?}"));
        }
    }
}

/// The all-zero-rows extreme: every pivot needs repair, and the shift
/// escalation must still produce finite, solvable factors.
#[test]
fn fully_zero_matrix_factors_under_repair_policies() {
    let n = 6;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 0.0);
    }
    let a = coo.to_csr();
    for policy in [BreakdownPolicy::shift(), BreakdownPolicy::ReplaceRow] {
        exercise(&a, policy, &format!("all-zero {policy:?}"));
    }
    let err = ilu0_with(&a, BreakdownPolicy::Abort).expect_err("all-zero matrix must abort");
    assert_expected_error(&err, "all-zero Abort");
}
