//! Randomized property tests of partitioning, MIS, and colouring.
//!
//! Formerly proptest strategies; now driven by the in-tree seeded
//! [`SplitMix64`] so the suite runs with zero registry dependencies.

use pilut_graph::coloring::{greedy_coloring, is_proper_coloring};
use pilut_graph::mis::{is_independent, is_maximal_independent, luby_mis, MisOptions};
use pilut_graph::{partition_kway, Graph, PartitionOptions};
use pilut_sparse::{CooMatrix, CsrMatrix, SplitMix64};

const CASES: u64 = 64;

/// Random undirected graph via a symmetric pattern matrix.
fn undirected(rng: &mut SplitMix64, max_n: usize, max_edges: usize) -> CsrMatrix {
    let n = 2 + rng.next_usize(max_n - 1);
    let m = rng.next_usize(max_edges + 1);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
    }
    for _ in 0..m {
        let i = rng.next_usize(n);
        let j = rng.next_usize(n);
        if i != j {
            coo.push(i, j, -1.0);
            coo.push(j, i, -1.0);
        }
    }
    coo.to_csr()
}

/// Random directed pattern (unsymmetric).
fn directed(rng: &mut SplitMix64, max_n: usize, max_arcs: usize) -> CsrMatrix {
    let n = 2 + rng.next_usize(max_n - 1);
    let m = rng.next_usize(max_arcs + 1);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    for _ in 0..m {
        let i = rng.next_usize(n);
        let j = rng.next_usize(n);
        if i != j {
            coo.push(i, j, 1.0);
        }
    }
    coo.to_csr()
}

#[test]
fn partition_covers_and_balances() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = undirected(&mut rng, 60, 150);
        let k = 1 + rng.next_usize(33);
        let g = Graph::from_csr_pattern(&a);
        let r = partition_kway(&g, &PartitionOptions::new(k));
        assert_eq!(r.part.len(), g.n_vertices(), "case {case}");
        assert!(r.part.iter().all(|&p| p < k), "case {case}");
        assert_eq!(
            r.part_weights.iter().sum::<i64>(),
            g.total_vertex_weight(),
            "case {case}"
        );
        assert_eq!(r.edge_cut, g.edge_cut(&r.part), "case {case}");
        // Loose balance bound: random graphs with singleton matchings can
        // frustrate refinement, but no part may hold nearly everything when
        // k > 1 and the graph has enough vertices.
        if k > 1 && g.n_vertices() >= 4 * k {
            let max = *r.part_weights.iter().max().expect("k >= 1 parts");
            assert!(
                (max as f64) <= 0.9 * g.total_vertex_weight() as f64,
                "case {case}: degenerate partition: {:?}",
                r.part_weights
            );
        }
    }
}

#[test]
fn mis_is_independent_on_any_digraph() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let p = directed(&mut rng, 40, 120);
        let seed = rng.next_u64() % 50;
        let mis = luby_mis(
            &p,
            &MisOptions {
                seed,
                max_rounds: 5,
            },
        );
        assert!(is_independent(&p, &mis), "case {case}");
        assert!(
            !mis.is_empty(),
            "case {case}: at least one vertex always joins"
        );
    }
}

#[test]
fn mis_is_maximal_with_enough_rounds() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let p = directed(&mut rng, 30, 80);
        let seed = rng.next_u64() % 20;
        let mis = luby_mis(
            &p,
            &MisOptions {
                seed,
                max_rounds: 128,
            },
        );
        assert!(is_maximal_independent(&p, &mis), "case {case}");
    }
}

#[test]
fn coloring_is_always_proper() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = undirected(&mut rng, 50, 120);
        let g = Graph::from_csr_pattern(&a);
        let (colors, nc) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors), "case {case}");
        let max_deg = (0..g.n_vertices()).map(|u| g.degree(u)).max().unwrap_or(0);
        assert!(
            nc <= max_deg + 1,
            "case {case}: greedy exceeded Δ+1: {nc} > {}",
            max_deg + 1
        );
    }
}

#[test]
fn edge_cut_zero_iff_parts_disconnect_nothing() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = undirected(&mut rng, 30, 60);
        let g = Graph::from_csr_pattern(&a);
        let all_zero = vec![0usize; g.n_vertices()];
        assert_eq!(g.edge_cut(&all_zero), 0, "case {case}");
    }
}
