//! Property-based tests of partitioning, MIS, and colouring.

use pilut_graph::coloring::{greedy_coloring, is_proper_coloring};
use pilut_graph::mis::{is_independent, is_maximal_independent, luby_mis, MisOptions};
use pilut_graph::{partition_kway, Graph, PartitionOptions};
use pilut_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// Random undirected graph via a symmetric pattern matrix.
fn undirected(max_n: usize, max_edges: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_edges).prop_map(move |edges| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 4.0);
            }
            for (i, j) in edges {
                if i != j {
                    coo.push(i, j, -1.0);
                    coo.push(j, i, -1.0);
                }
            }
            coo.to_csr()
        })
    })
}

/// Random directed pattern (unsymmetric).
fn directed(max_n: usize, max_arcs: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_arcs).prop_map(move |arcs| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0);
            }
            for (i, j) in arcs {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_covers_and_balances(a in undirected(60, 150), k in 1usize..34) {
        let g = Graph::from_csr_pattern(&a);
        let r = partition_kway(&g, &PartitionOptions::new(k));
        prop_assert_eq!(r.part.len(), g.n_vertices());
        prop_assert!(r.part.iter().all(|&p| p < k));
        prop_assert_eq!(r.part_weights.iter().sum::<i64>(), g.total_vertex_weight());
        prop_assert_eq!(r.edge_cut, g.edge_cut(&r.part));
        // Loose balance bound: random graphs with singleton matchings can
        // frustrate refinement, but no part may hold nearly everything when
        // k > 1 and the graph has enough vertices.
        if k > 1 && g.n_vertices() >= 4 * k {
            let max = *r.part_weights.iter().max().unwrap();
            prop_assert!(
                (max as f64) <= 0.9 * g.total_vertex_weight() as f64,
                "degenerate partition: {:?}", r.part_weights
            );
        }
    }

    #[test]
    fn mis_is_independent_on_any_digraph(p in directed(40, 120), seed in 0u64..50) {
        let mis = luby_mis(&p, &MisOptions { seed, max_rounds: 5 });
        prop_assert!(is_independent(&p, &mis));
        prop_assert!(!mis.is_empty(), "at least one vertex always joins");
    }

    #[test]
    fn mis_is_maximal_with_enough_rounds(p in directed(30, 80), seed in 0u64..20) {
        let mis = luby_mis(&p, &MisOptions { seed, max_rounds: 128 });
        prop_assert!(is_maximal_independent(&p, &mis));
    }

    #[test]
    fn coloring_is_always_proper(a in undirected(50, 120)) {
        let g = Graph::from_csr_pattern(&a);
        let (colors, nc) = greedy_coloring(&g);
        prop_assert!(is_proper_coloring(&g, &colors));
        let max_deg = (0..g.n_vertices()).map(|u| g.degree(u)).max().unwrap_or(0);
        prop_assert!(nc <= max_deg + 1, "greedy exceeded Δ+1: {nc} > {}", max_deg + 1);
    }

    #[test]
    fn edge_cut_zero_iff_parts_disconnect_nothing(a in undirected(30, 60)) {
        let g = Graph::from_csr_pattern(&a);
        let all_zero = vec![0usize; g.n_vertices()];
        prop_assert_eq!(g.edge_cut(&all_zero), 0);
    }
}
