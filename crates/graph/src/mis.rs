//! Luby-style maximal independent sets (paper §4.1).
//!
//! The reduced matrices arising during parallel ILUT are *structurally
//! unsymmetric*, so plain Luby (a vertex joins when its random key beats all
//! neighbours it can see) can select both endpoints of a one-directional
//! dependency. The paper fixes this with a two-step insertion: tentatively
//! insert winners, then remove every tentative vertex that sees another
//! tentative vertex along one of its own (out-)edges. The survivor set is
//! independent, and progress is guaranteed because of any conflicting pair
//! only the arc's source is removed.
//!
//! The paper additionally truncates the augmentation loop at **5** rounds —
//! most of the set is found early and the tail rounds aren't worth their
//! synchronisation cost on a distributed machine.

use pilut_sparse::CsrMatrix;
use pilut_sparse::SplitMix64;

/// Options for [`luby_mis`].
#[derive(Clone, Debug)]
pub struct MisOptions {
    /// Maximum number of augmentation rounds (paper: 5).
    pub max_rounds: usize,
    /// RNG seed; the algorithm is deterministic given the seed.
    pub seed: u64,
}

impl Default for MisOptions {
    fn default() -> Self {
        MisOptions {
            max_rounds: 5,
            seed: 1,
        }
    }
}

/// Computes an independent set of the directed graph whose arcs are the
/// off-diagonal entries of `pattern` (row `i` → column `j`), using the
/// two-step modified Luby algorithm. Returns the members in ascending order.
///
/// With `max_rounds` large enough the set is maximal; with the paper's
/// truncation (5) it may fall slightly short of maximal, which is harmless
/// for the factorization (the next level picks the leftovers up).
pub fn luby_mis(pattern: &CsrMatrix, opts: &MisOptions) -> Vec<usize> {
    assert_eq!(pattern.n_rows(), pattern.n_cols());
    let n = pattern.n_rows();
    let t = pattern.transpose();
    let mut rng = SplitMix64::new(opts.seed);
    // Random keys with a deterministic tie-break by vertex id.
    let keys: Vec<(u64, usize)> = (0..n).map(|v| (rng.next_u64(), v)).collect();

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Candidate,
        In,
        Out,
    }
    let mut state = vec![State::Candidate; n];
    let mut chosen: Vec<usize> = Vec::new();

    for _round in 0..opts.max_rounds {
        // Step 1: tentative winners — key smaller than every *candidate*
        // neighbour the vertex can see from its own row.
        let mut tentative: Vec<usize> = Vec::new();
        let mut is_tentative = vec![false; n];
        for v in 0..n {
            if state[v] != State::Candidate {
                continue;
            }
            let mut wins = true;
            for &u in pattern.row(v).0 {
                if u != v && state[u] == State::Candidate && keys[u] < keys[v] {
                    wins = false;
                    break;
                }
            }
            // A vertex must also beat candidates that point *at* it, or two
            // locally-blind winners could conflict more than once per round;
            // the paper resolves this in step 2, but checking the in-edges we
            // have locally (the transpose is precomputed here) loses nothing
            // in the serial setting. We deliberately do NOT do that: the
            // point of the two-step scheme is to work from row data only.
            if wins {
                tentative.push(v);
                is_tentative[v] = true;
            }
        }
        if tentative.is_empty() {
            break;
        }
        // Step 2: drop every tentative vertex whose own row points at another
        // tentative vertex (the arc source loses, the target survives).
        let mut confirmed: Vec<usize> = Vec::new();
        for &v in &tentative {
            let conflict = pattern.row(v).0.iter().any(|&u| u != v && is_tentative[u]);
            if !conflict {
                confirmed.push(v);
            }
        }
        if confirmed.is_empty() {
            // Cannot happen on a loop-free pattern (a maximal key among the
            // tentative set has no outgoing arc to a tentative vertex), but
            // guard against pathological inputs rather than spin.
            break;
        }
        // Commit: members join I; every vertex adjacent to a member in either
        // direction leaves the candidate pool.
        for &v in &confirmed {
            state[v] = State::In;
        }
        for &v in &confirmed {
            for &u in pattern.row(v).0 {
                if state[u] == State::Candidate {
                    state[u] = State::Out;
                }
            }
            for &u in t.row(v).0 {
                if state[u] == State::Candidate {
                    state[u] = State::Out;
                }
            }
        }
        chosen.extend_from_slice(&confirmed);
        if state.iter().all(|&s| s != State::Candidate) {
            break;
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Verifies that `set` is independent in `pattern` (no arc between two
/// members in either direction). Useful in tests and debug assertions.
pub fn is_independent(pattern: &CsrMatrix, set: &[usize]) -> bool {
    let mut member = vec![false; pattern.n_rows()];
    for &v in set {
        member[v] = true;
    }
    for &v in set {
        for &u in pattern.row(v).0 {
            if u != v && member[u] {
                return false;
            }
        }
    }
    true
}

/// True if `set` is a *maximal* independent set: independent, and every
/// non-member has an arc to or from some member.
pub fn is_maximal_independent(pattern: &CsrMatrix, set: &[usize]) -> bool {
    if !is_independent(pattern, set) {
        return false;
    }
    let n = pattern.n_rows();
    let t = pattern.transpose();
    let mut member = vec![false; n];
    for &v in set {
        member[v] = true;
    }
    for v in 0..n {
        if member[v] {
            continue;
        }
        let touches = pattern.row(v).0.iter().any(|&u| u != v && member[u])
            || t.row(v).0.iter().any(|&u| u != v && member[u]);
        if !touches {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::{gen, CooMatrix};

    fn directed(n: usize, arcs: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(i, j) in arcs {
            coo.push(i, j, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn empty_graph_takes_everything() {
        let p = directed(5, &[]);
        let mis = luby_mis(&p, &MisOptions::default());
        assert_eq!(mis, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_directed_edge_keeps_one_endpoint() {
        let p = directed(2, &[(0, 1)]);
        let mis = luby_mis(&p, &MisOptions::default());
        assert!(is_independent(&p, &mis));
        assert_eq!(mis.len(), 1);
    }

    #[test]
    fn independence_on_unsymmetric_pattern() {
        // A chain of one-directional arcs — the failure case for plain Luby.
        let p = directed(6, &[(0, 1), (2, 1), (2, 3), (4, 3), (4, 5), (0, 5)]);
        for seed in 0..20 {
            let mis = luby_mis(
                &p,
                &MisOptions {
                    seed,
                    ..Default::default()
                },
            );
            assert!(
                is_independent(&p, &mis),
                "seed {seed} gave dependent set {mis:?}"
            );
            assert!(!mis.is_empty());
        }
    }

    #[test]
    fn maximal_on_symmetric_grid_with_enough_rounds() {
        let a = gen::laplace_2d(8, 8);
        for seed in 0..5 {
            let mis = luby_mis(
                &a,
                &MisOptions {
                    max_rounds: 64,
                    seed,
                },
            );
            assert!(is_maximal_independent(&a, &mis), "seed {seed}");
        }
    }

    #[test]
    fn truncated_rounds_still_capture_most_vertices() {
        let a = gen::laplace_2d(16, 16);
        let full = luby_mis(
            &a,
            &MisOptions {
                max_rounds: 64,
                seed: 9,
            },
        );
        let trunc = luby_mis(
            &a,
            &MisOptions {
                max_rounds: 5,
                seed: 9,
            },
        );
        assert!(is_independent(&a, &trunc));
        assert!(
            trunc.len() * 10 >= full.len() * 9,
            "5 rounds found {} of {}",
            trunc.len(),
            full.len()
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = gen::laplace_2d(10, 10);
        let o = MisOptions {
            seed: 42,
            ..Default::default()
        };
        assert_eq!(luby_mis(&a, &o), luby_mis(&a, &o));
    }

    #[test]
    fn independence_checker_detects_violations() {
        let p = directed(3, &[(0, 1)]);
        assert!(!is_independent(&p, &[0, 1]));
        assert!(is_independent(&p, &[0, 2]));
        assert!(is_maximal_independent(&p, &[0, 2]));
        assert!(!is_maximal_independent(&p, &[2])); // 0 and 1 untouched? 0-1 arc: {2} leaves 0 untouched
    }

    #[test]
    fn mutual_arcs_behave_like_undirected() {
        let p = directed(2, &[(0, 1), (1, 0)]);
        let mis = luby_mis(&p, &MisOptions::default());
        assert_eq!(mis.len(), 1);
    }
}
