//! Greedy graph colouring.
//!
//! ILU(0) extracts concurrency by colouring the interface nodes once, up
//! front (paper Figure 1a): nodes of equal colour are independent in the
//! *fixed* sparsity pattern and factor concurrently. This module provides
//! that baseline mechanism.

use crate::adj::Graph;

/// Colours the graph greedily in the given vertex order (first-fit).
/// Returns `(colors, n_colors)`.
pub fn greedy_coloring_ordered(g: &Graph, order: &[usize]) -> (Vec<usize>, usize) {
    let n = g.n_vertices();
    assert_eq!(order.len(), n);
    let mut colors = vec![usize::MAX; n];
    let mut n_colors = 0usize;
    let mut forbidden: Vec<usize> = Vec::new(); // color -> marker stamp
    let mut stamp = 0usize;
    for &u in order {
        stamp += 1;
        for (v, _) in g.neighbors(u) {
            let c = colors[v];
            if c != usize::MAX {
                if c >= forbidden.len() {
                    forbidden.resize(c + 1, 0);
                }
                forbidden[c] = stamp;
            }
        }
        let mut c = 0;
        while c < forbidden.len() && forbidden[c] == stamp {
            c += 1;
        }
        colors[u] = c;
        n_colors = n_colors.max(c + 1);
    }
    (colors, n_colors)
}

/// Colours in descending-degree order (a good default heuristic).
pub fn greedy_coloring(g: &Graph) -> (Vec<usize>, usize) {
    let mut order: Vec<usize> = (0..g.n_vertices()).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
    greedy_coloring_ordered(g, &order)
}

/// Groups vertices by colour: `classes[c]` lists the vertices of colour `c`.
pub fn color_classes(colors: &[usize], n_colors: usize) -> Vec<Vec<usize>> {
    let mut classes = vec![Vec::new(); n_colors];
    for (u, &c) in colors.iter().enumerate() {
        classes[c].push(u);
    }
    classes
}

/// Checks that no edge joins two vertices of the same colour.
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    (0..g.n_vertices()).all(|u| g.neighbors(u).all(|(v, _)| colors[u] != colors[v]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;

    #[test]
    fn grid_is_two_colorable() {
        let g = Graph::from_csr_pattern(&gen::laplace_2d(8, 8));
        let (colors, nc) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert_eq!(nc, 2, "5-point grid is bipartite");
    }

    #[test]
    fn classes_partition_vertices() {
        let g = Graph::from_csr_pattern(&gen::laplace_3d(4, 4, 4));
        let (colors, nc) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        let classes = color_classes(&colors, nc);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, 64);
        assert!(classes.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn ordered_coloring_respects_order() {
        let g = Graph::from_csr_pattern(&gen::laplace_2d(3, 1));
        // Path 0-1-2 coloured in natural order: 0,1,0.
        let (colors, nc) = greedy_coloring_ordered(&g, &[0, 1, 2]);
        assert_eq!(colors, vec![0, 1, 0]);
        assert_eq!(nc, 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_raw(vec![0], vec![], vec![], vec![]);
        let (colors, nc) = greedy_coloring(&g);
        assert!(colors.is_empty());
        assert_eq!(nc, 0);
    }
}
