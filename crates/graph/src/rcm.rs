//! Reverse Cuthill–McKee ordering.
//!
//! Bandwidth-reducing orderings interact strongly with incomplete
//! factorizations (Saad, *Iterative Methods*, ch. 10): ILUT on an RCM-
//! ordered matrix typically retains more useful fill for the same `m`.
//! Provided as a library companion to the factorizations; the paper itself
//! orders by partition instead.

use crate::adj::Graph;
use pilut_sparse::Permutation;
use std::collections::VecDeque;

/// Computes the reverse Cuthill–McKee permutation of the graph.
///
/// Returns a [`Permutation`] with `new_of(old) = position`: applying it to
/// the matrix (`permute_symmetric`) produces the RCM-ordered matrix.
/// Disconnected components are handled by restarting from the minimum-degree
/// unvisited vertex.
pub fn reverse_cuthill_mckee(g: &Graph) -> Permutation {
    let n = g.n_vertices();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut nbrs: Vec<usize> = Vec::new();
    while order.len() < n {
        // Start each component from a minimum-degree vertex (a cheap
        // pseudo-peripheral heuristic).
        let start = (0..n)
            .filter(|&u| !visited[u])
            .min_by_key(|&u| g.degree(u))
            // lint: allow(unwrap): while fewer than n vertices are ordered, one is unvisited
            .expect("unvisited vertex must exist");
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            nbrs.clear();
            nbrs.extend(g.neighbor_ids(u).iter().copied().filter(|&v| !visited[v]));
            nbrs.sort_by_key(|&v| g.degree(v));
            for &v in &nbrs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    Permutation::from_old_order(&order)
}

/// The bandwidth of a symmetric pattern under a given ordering:
/// `max |new(i) - new(j)|` over edges.
pub fn bandwidth(g: &Graph, perm: &Permutation) -> usize {
    let mut bw = 0usize;
    for u in 0..g.n_vertices() {
        for (v, _) in g.neighbors(u) {
            bw = bw.max(perm.new_of(u).abs_diff(perm.new_of(v)));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;
    use pilut_sparse::SplitMix64;

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        // Scramble a grid, then check RCM restores a small bandwidth.
        let a = gen::laplace_2d(12, 12);
        let n = a.n_rows();
        let mut rng = SplitMix64::new(5);
        let mut shuffled: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut shuffled);
        let scramble = Permutation::from_new_order(&shuffled);
        let b = a.permute_symmetric(&scramble);
        let g = crate::Graph::from_csr_pattern(&b);
        let ident = Permutation::identity(n);
        let before = bandwidth(&g, &ident);
        let rcm = reverse_cuthill_mckee(&g);
        let after = bandwidth(&g, &rcm);
        assert!(
            after * 3 < before,
            "RCM bandwidth {after} vs scrambled {before}"
        );
        // Sanity: a valid permutation.
        let mut seen = vec![false; n];
        for old in 0..n {
            let p = rcm.new_of(old);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn handles_disconnected_components() {
        // Two disjoint paths as one matrix.
        let mut coo = pilut_sparse::CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0);
        }
        for &(i, j) in &[(0usize, 1usize), (1, 2), (3, 4), (4, 5)] {
            coo.push(i, j, -1.0);
            coo.push(j, i, -1.0);
        }
        let g = crate::Graph::from_csr_pattern(&coo.to_csr());
        let rcm = reverse_cuthill_mckee(&g);
        assert_eq!(rcm.len(), 6);
        assert!(bandwidth(&g, &rcm) <= 2);
    }

    #[test]
    fn path_graph_gets_optimal_bandwidth() {
        let a = gen::laplace_2d(10, 1); // path of 10
        let g = crate::Graph::from_csr_pattern(&a);
        let rcm = reverse_cuthill_mckee(&g);
        assert_eq!(bandwidth(&g, &rcm), 1);
    }
}
