//! Graph substrate for the parallel ILUT factorization.
//!
//! The paper relies on two graph algorithms the Rust ecosystem does not
//! provide: the authors' multilevel k-way partitioner (METIS / ParMETIS
//! [Karypis & Kumar, SC'96]) used to decompose the matrix across processors,
//! and Luby's randomised maximal-independent-set algorithm used to extract
//! concurrency from the interface reduced matrices. Both are implemented
//! here from scratch:
//!
//! * [`Graph`] — undirected adjacency structure (CSR-style) with vertex and
//!   edge weights,
//! * [`partition`] — multilevel k-way partitioning: heavy-edge-matching
//!   coarsening, greedy-growing recursive bisection on the coarsest graph,
//!   boundary Kernighan–Lin/Fiduccia–Mattheyses-style refinement during
//!   uncoarsening,
//! * [`mis`] — Luby's maximal independent set with the paper's two
//!   modifications: the two-step insert/confirm round that stays correct on
//!   *structurally unsymmetric* dependency graphs (paper §4.1), and a cap on
//!   the number of augmentation rounds (the paper uses 5),
//! * [`coloring`] — greedy colouring (the ILU(0) concurrency mechanism the
//!   paper contrasts against, Figure 1),
//! * [`supernode`] — block-structure detection (tile fill measurement,
//!   coarse-pattern supernode runs, RCM-based blocking permutation)
//!   guiding the CSR → BCSR conversion for the blocked factorization.

pub mod adj;
pub mod coloring;
pub mod mis;
pub mod partition;
pub mod rcm;
pub mod supernode;

pub use adj::Graph;
pub use mis::{luby_mis, MisOptions};
pub use partition::{partition_kway, PartitionOptions, PartitionResult};
pub use rcm::reverse_cuthill_mckee;
pub use supernode::{suggest_block_size, tile_fill};
