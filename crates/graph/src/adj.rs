//! Undirected weighted adjacency structure.

use pilut_sparse::CsrMatrix;

/// An undirected graph in CSR-style adjacency storage, with integer vertex
/// weights (partitioning balance) and integer edge weights (collapsed
/// multi-edges during coarsening).
///
/// Invariants: no self-loops; for every arc `(u, v)` the reverse arc
/// `(v, u)` is present with the same weight; neighbour lists are sorted.
#[derive(Clone, Debug)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
    adjwgt: Vec<i64>,
    vwgt: Vec<i64>,
}

impl Graph {
    /// Builds from raw adjacency arrays.
    ///
    /// # Panics
    /// Panics on inconsistent arrays, self-loops, unsorted neighbour lists,
    /// or an asymmetric arc set.
    pub fn from_raw(
        xadj: Vec<usize>,
        adjncy: Vec<usize>,
        adjwgt: Vec<i64>,
        vwgt: Vec<i64>,
    ) -> Self {
        let n = xadj.len().saturating_sub(1);
        assert_eq!(vwgt.len(), n);
        assert_eq!(adjncy.len(), adjwgt.len());
        assert_eq!(*xadj.last().unwrap_or(&0), adjncy.len());
        for u in 0..n {
            let nbrs = &adjncy[xadj[u]..xadj[u + 1]];
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1], "neighbour list of {u} not strictly sorted");
            }
            for &v in nbrs {
                assert_ne!(v, u, "self-loop at {u}");
                assert!(v < n, "neighbour out of range at {u}");
            }
        }
        let g = Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        };
        for u in 0..n {
            for (v, w) in g.neighbors(u) {
                let back = g
                    .edge_weight(v, u)
                    .unwrap_or_else(|| panic!("missing reverse arc ({v},{u})"));
                assert_eq!(back, w, "asymmetric weight on edge ({u},{v})");
            }
        }
        g
    }

    /// The structure graph of a square sparse matrix: vertices are rows,
    /// and `{i, j}` is an edge iff `a_ij != 0` or `a_ji != 0` structurally
    /// (the pattern is symmetrised; the diagonal is ignored). Unit vertex
    /// and edge weights.
    pub fn from_csr_pattern(a: &CsrMatrix) -> Self {
        assert_eq!(
            a.n_rows(),
            a.n_cols(),
            "structure graph needs a square matrix"
        );
        let s = a.symmetrized_pattern();
        let n = s.n_rows();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::with_capacity(s.nnz());
        xadj.push(0);
        for i in 0..n {
            let (cols, _) = s.row(i);
            for &j in cols {
                if j != i {
                    adjncy.push(j);
                }
            }
            xadj.push(adjncy.len());
        }
        let m = adjncy.len();
        Graph {
            xadj,
            adjncy,
            adjwgt: vec![1; m],
            vwgt: vec![1; n],
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of neighbours of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.xadj[u + 1] - self.xadj[u]
    }

    /// The weight of vertex `u`.
    pub fn vertex_weight(&self, u: usize) -> i64 {
        self.vwgt[u]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Iterates `(neighbour, edge_weight)` pairs of `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        let (s, e) = (self.xadj[u], self.xadj[u + 1]);
        self.adjncy[s..e]
            .iter()
            .copied()
            .zip(self.adjwgt[s..e].iter().copied())
    }

    /// Neighbour ids only.
    pub fn neighbor_ids(&self, u: usize) -> &[usize] {
        &self.adjncy[self.xadj[u]..self.xadj[u + 1]]
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<i64> {
        let (s, e) = (self.xadj[u], self.xadj[u + 1]);
        self.adjncy[s..e]
            .binary_search(&v)
            .ok()
            .map(|k| self.adjwgt[s + k])
    }

    /// Sum of the weights of edges crossing the given partition.
    pub fn edge_cut(&self, part: &[usize]) -> i64 {
        assert_eq!(part.len(), self.n_vertices());
        let mut cut = 0;
        for u in 0..self.n_vertices() {
            for (v, w) in self.neighbors(u) {
                if part[u] != part[v] {
                    cut += w;
                }
            }
        }
        cut / 2
    }

    /// Per-part vertex-weight sums.
    pub fn part_weights(&self, part: &[usize], k: usize) -> Vec<i64> {
        let mut w = vec![0i64; k];
        for (u, &p) in part.iter().enumerate() {
            w[p] += self.vwgt[u];
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;

    /// Path graph 0-1-2-3.
    fn path4() -> Graph {
        Graph::from_raw(
            vec![0, 1, 3, 5, 6],
            vec![1, 0, 2, 1, 3, 2],
            vec![1; 6],
            vec![1; 4],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert_eq!(g.edge_weight(0, 3), None);
        assert_eq!(g.total_vertex_weight(), 4);
    }

    #[test]
    fn from_matrix_pattern_drops_diagonal_and_symmetrises() {
        let a = gen::convection_diffusion_2d(3, 3, 5.0, 0.0);
        let g = Graph::from_csr_pattern(&a);
        assert_eq!(g.n_vertices(), 9);
        // 2D grid: 12 edges for 3x3.
        assert_eq!(g.n_edges(), 12);
        // no self loops
        for u in 0..9 {
            assert!(!g.neighbor_ids(u).contains(&u));
        }
    }

    #[test]
    fn edge_cut_counts_crossing_edges() {
        let g = path4();
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 1);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 3);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn part_weights_sum() {
        let g = path4();
        assert_eq!(g.part_weights(&[0, 1, 1, 0], 2), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Graph::from_raw(vec![0, 1], vec![0], vec![1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "missing reverse arc")]
    fn rejects_asymmetric() {
        Graph::from_raw(vec![0, 1, 1], vec![1], vec![1], vec![1, 1]);
    }
}
