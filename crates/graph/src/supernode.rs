//! Supernode / block-structure detection guiding the CSR → BCSR conversion.
//!
//! Blocked incomplete factorizations (BILU-style) only pay off when the
//! dense tiles are reasonably full: every padding slot costs flops and
//! bandwidth in the micro-kernels for no information. This module measures
//! that trade for a candidate block size and picks one:
//!
//! * [`tile_fill`] — the fill ratio a `b`-blocking of a pattern would have
//!   (genuine entries over dense tile slots), computed without building
//!   the BCSR matrix;
//! * [`coarse_pattern_runs`] — maximal runs of consecutive rows whose
//!   block-coarsened column patterns agree: the supernodes of the
//!   `b`-granular structure;
//! * [`suggest_block_size`] — the detection heuristic: the largest
//!   candidate whose fill stays above a threshold;
//! * [`blocking_permutation`] — an RCM reordering (the bandwidth machinery
//!   this crate already has) that clusters couplings near the diagonal,
//!   which is what makes neighbouring rows share tiles in the first place.

use crate::adj::Graph;
use crate::rcm::reverse_cuthill_mckee;
use pilut_sparse::{CsrMatrix, Permutation};

/// Fill ratio of a hypothetical `b × b` blocking of `a`'s pattern: its
/// `nnz` divided by the dense slots of the tiles the pattern touches.
/// Always in `(0, 1]` for a non-empty pattern; 1.0 for an empty one.
pub fn tile_fill(a: &CsrMatrix, b: usize) -> f64 {
    assert!(b >= 1, "block size must be at least 1");
    let n_brows = a.n_rows().div_ceil(b);
    let n_bcols = a.n_cols().div_ceil(b);
    let mut stamp = vec![usize::MAX; n_bcols];
    let mut tiles = 0usize;
    for bi in 0..n_brows {
        for i in bi * b..(bi * b + b).min(a.n_rows()) {
            let (cols, _) = a.row(i);
            for &j in cols {
                let bc = j / b;
                if stamp[bc] != bi {
                    stamp[bc] = bi;
                    tiles += 1;
                }
            }
        }
    }
    if tiles == 0 {
        return 1.0;
    }
    a.nnz() as f64 / (tiles * b * b) as f64
}

/// Maximal runs `(start, len)` of consecutive rows whose column patterns,
/// coarsened to block-column granularity `b`, are identical — the
/// supernodes of the `b`-blocked structure. Rows inside one run fill the
/// same tiles, so longer runs mean denser tiles. Covers `0..n_rows`
/// exactly; every run has `len ≥ 1`.
pub fn coarse_pattern_runs(a: &CsrMatrix, b: usize) -> Vec<(usize, usize)> {
    assert!(b >= 1, "block size must be at least 1");
    let n = a.n_rows();
    let mut runs = Vec::new();
    let coarse = |i: usize| -> Vec<usize> {
        let (cols, _) = a.row(i);
        let mut c: Vec<usize> = cols.iter().map(|&j| j / b).collect();
        c.dedup();
        c
    };
    let mut start = 0usize;
    let mut prev = if n > 0 { coarse(0) } else { Vec::new() };
    for i in 1..n {
        let cur = coarse(i);
        if cur != prev {
            runs.push((start, i - start));
            start = i;
            prev = cur;
        }
    }
    if n > 0 {
        runs.push((start, n - start));
    }
    runs
}

/// Picks a block size for `a` from `candidates`: the largest candidate
/// whose [`tile_fill`] is at least `min_fill`, falling back to 1 (scalar
/// CSR-equivalent blocking) when none qualifies.
///
/// `min_fill` around 0.3–0.5 is the useful range: a `b`-blocking with fill
/// `f` does `1/f` times the flops of scalar sparse code but runs them as
/// dense unit-stride lanes, which on small tiles is worth roughly a 2–4×
/// per-entry speedup.
pub fn suggest_block_size(a: &CsrMatrix, candidates: &[usize], min_fill: f64) -> usize {
    let mut best = 1usize;
    for &b in candidates {
        if b > best && tile_fill(a, b) >= min_fill {
            best = b;
        }
    }
    best
}

/// A symmetric reordering that clusters couplings near the diagonal (RCM
/// on the symmetrized pattern), improving the tile fill of a subsequent
/// blocking. Apply with `CsrMatrix::permute_symmetric` before
/// `BcsrMatrix::from_csr`.
pub fn blocking_permutation(a: &CsrMatrix) -> Permutation {
    reverse_cuthill_mckee(&Graph::from_csr_pattern(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;

    #[test]
    fn tile_fill_exact_on_dense_blocks() {
        // Block-diagonal with two fully dense 2x2 blocks: fill 1.0 at b=2.
        let a = CsrMatrix::from_raw(
            4,
            4,
            vec![0, 2, 4, 6, 8],
            vec![0, 1, 0, 1, 2, 3, 2, 3],
            vec![1.0; 8],
        );
        assert!((tile_fill(&a, 2) - 1.0).abs() < 1e-15);
        assert!((tile_fill(&a, 1) - 1.0).abs() < 1e-15);
        // At b=4 everything lands in one 16-slot tile: fill 0.5.
        assert!((tile_fill(&a, 4) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn runs_cover_all_rows() {
        let a = gen::laplace_2d(5, 4);
        for b in [1, 2, 4] {
            let runs = coarse_pattern_runs(&a, b);
            let total: usize = runs.iter().map(|&(_, len)| len).sum();
            assert_eq!(total, a.n_rows(), "b={b}");
            let mut next = 0;
            for &(s, len) in &runs {
                assert_eq!(s, next);
                assert!(len >= 1);
                next = s + len;
            }
        }
    }

    #[test]
    fn coarsening_merges_what_exact_patterns_split() {
        // Shifted stencils: rows of a 1-D Laplacian never have equal exact
        // patterns, but block-coarsening makes neighbours agree.
        let a = gen::laplace_2d(16, 1);
        let exact: usize = coarse_pattern_runs(&a, 1).len();
        let coarse: usize = coarse_pattern_runs(&a, 4).len();
        assert!(
            coarse < exact,
            "coarse runs {coarse} should merge below exact runs {exact}"
        );
    }

    #[test]
    fn suggest_respects_threshold() {
        let a = gen::laplace_2d(8, 8);
        assert_eq!(
            suggest_block_size(&a, &[2, 4], 0.99),
            1,
            "nothing is that full"
        );
        let b = suggest_block_size(&a, &[2, 4], 0.25);
        assert!(
            b >= 2,
            "a banded pattern supports small blocks at fill 0.25"
        );
    }

    #[test]
    fn rcm_blocking_does_not_hurt_fill() {
        // On a randomly permuted banded matrix, RCM recovers locality and
        // with it tile fill.
        let a = gen::laplace_2d(10, 10);
        let p = blocking_permutation(&a);
        let ra = a.permute_symmetric(&p);
        let (before, after) = (tile_fill(&a, 2), tile_fill(&ra, 2));
        assert!(
            after >= before * 0.9,
            "RCM blocking collapsed fill: {before} -> {after}"
        );
    }
}
