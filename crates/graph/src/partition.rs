//! Multilevel k-way graph partitioning.
//!
//! A from-scratch reimplementation of the scheme the paper depends on
//! (Karypis & Kumar's multilevel k-way partitioner, reference \[6\] of the paper):
//!
//! 1. **Coarsening** — repeated heavy-edge matching (HEM): visit vertices in
//!    random order, match each unmatched vertex with the unmatched neighbour
//!    across the heaviest edge, and collapse matched pairs. Vertex weights
//!    add; parallel edges merge with added weights.
//! 2. **Initial partitioning** — on the coarsest graph, recursive bisection
//!    with greedy region growing (BFS from a random seed until half the
//!    weight is swallowed) over several seeds, keeping the best cut.
//! 3. **Uncoarsening** — project the partition back level by level and apply
//!    greedy boundary refinement (KL/FM-style gains, balance-constrained
//!    moves) after each projection.
//!
//! The paper partitions with the *parallel* formulation of this algorithm;
//! partitioning time does not appear in any reproduced table, so a serial
//! implementation preserves every measured behaviour (DESIGN.md §8).

use crate::adj::Graph;
use pilut_sparse::SplitMix64;

/// Tuning knobs for [`partition_kway`].
#[derive(Clone, Debug)]
pub struct PartitionOptions {
    /// Number of parts.
    pub k: usize,
    /// RNG seed (the whole pipeline is deterministic given the seed).
    pub seed: u64,
    /// Allowed imbalance: max part weight ≤ `imbalance · total / k`.
    pub imbalance: f64,
    /// Stop coarsening once the graph has at most `max(coarsen_to, 4k)` vertices.
    pub coarsen_to: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Number of region-growing attempts per bisection.
    pub bisection_tries: usize,
}

impl PartitionOptions {
    /// Options for a `k`-way partition with default refinement settings.
    pub fn new(k: usize) -> Self {
        PartitionOptions {
            k,
            seed: 1,
            imbalance: 1.05,
            coarsen_to: 200,
            refine_passes: 4,
            bisection_tries: 4,
        }
    }
}

/// The output of [`partition_kway`].
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// Part id per vertex, in `0..k`.
    pub part: Vec<usize>,
    /// Total weight of cut edges.
    pub edge_cut: i64,
    /// Vertex-weight per part.
    pub part_weights: Vec<i64>,
}

/// Partitions `g` into `opts.k` balanced parts minimising the edge cut.
pub fn partition_kway(g: &Graph, opts: &PartitionOptions) -> PartitionResult {
    let n = g.n_vertices();
    let k = opts.k.max(1);
    assert!(k >= 1);
    if k == 1 || n == 0 {
        return finish(g, vec![0; n], k);
    }
    if k >= n {
        // One vertex per part (possibly leaving parts empty).
        let part: Vec<usize> = (0..n).collect();
        return finish(g, part, k);
    }
    let mut rng = SplitMix64::new(opts.seed);

    // --- Coarsening phase -------------------------------------------------
    let mut levels: Vec<(Graph, Vec<usize>)> = Vec::new(); // (finer graph, cmap)
    let mut cur = g.clone();
    let floor = opts.coarsen_to.max(4 * k);
    while cur.n_vertices() > floor {
        let (coarse, cmap) = coarsen_once(&cur, &mut rng);
        // Stalled coarsening (e.g. star graphs): give up and partition as-is.
        if coarse.n_vertices() as f64 > 0.95 * cur.n_vertices() as f64 {
            break;
        }
        levels.push((cur, cmap));
        cur = coarse;
    }

    // --- Initial partitioning on the coarsest graph -----------------------
    let total = cur.total_vertex_weight();
    let mut part = vec![usize::MAX; cur.n_vertices()];
    let targets: Vec<i64> = (0..k)
        .map(|p| {
            // Spread the total weight as evenly as integer division allows.
            total / k as i64 + if (p as i64) < total % k as i64 { 1 } else { 0 }
        })
        .collect();
    let all: Vec<usize> = (0..cur.n_vertices()).collect();
    recursive_bisect(&cur, &all, &targets, 0, &mut part, &mut rng, opts);
    debug_assert!(part.iter().all(|&p| p < k));

    // --- Uncoarsening + refinement ----------------------------------------
    refine_kway(&cur, &mut part, k, opts, &mut rng);
    while let Some((finer, cmap)) = levels.pop() {
        let mut fine_part = vec![0usize; finer.n_vertices()];
        for (u, &c) in cmap.iter().enumerate() {
            fine_part[u] = part[c];
        }
        part = fine_part;
        refine_kway(&finer, &mut part, k, opts, &mut rng);
    }
    finish(g, part, k)
}

fn finish(g: &Graph, part: Vec<usize>, k: usize) -> PartitionResult {
    let edge_cut = g.edge_cut(&part);
    let part_weights = g.part_weights(&part, k);
    PartitionResult {
        part,
        edge_cut,
        part_weights,
    }
}

/// One level of heavy-edge matching coarsening. Returns the coarse graph and
/// the fine→coarse vertex map.
fn coarsen_once(g: &Graph, rng: &mut SplitMix64) -> (Graph, Vec<usize>) {
    let n = g.n_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut mate = vec![usize::MAX; n];
    for &u in &order {
        if mate[u] != usize::MAX {
            continue;
        }
        let mut best = usize::MAX;
        let mut best_w = i64::MIN;
        for (v, w) in g.neighbors(u) {
            if mate[v] == usize::MAX && w > best_w {
                best = v;
                best_w = w;
            }
        }
        if best != usize::MAX {
            mate[u] = best;
            mate[best] = u;
        } else {
            mate[u] = u; // singleton
        }
    }
    // Assign coarse ids: the lower-numbered endpoint of each pair owns the id.
    let mut cmap = vec![usize::MAX; n];
    let mut nc = 0usize;
    for u in 0..n {
        if cmap[u] != usize::MAX {
            continue;
        }
        let v = mate[u];
        cmap[u] = nc;
        if v != u {
            cmap[v] = nc;
        }
        nc += 1;
    }
    // Build the coarse graph with merged parallel edges.
    let mut cvwgt = vec![0i64; nc];
    for u in 0..n {
        cvwgt[cmap[u]] += g.vertex_weight(u);
    }
    // Accumulate coarse adjacency with a dense scratch map (reset per vertex).
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adjncy: Vec<usize> = Vec::new();
    let mut adjwgt: Vec<i64> = Vec::new();
    xadj.push(0);
    let mut pos = vec![usize::MAX; nc]; // coarse nbr -> slot in current row
                                        // Group fine vertices by coarse id.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for u in 0..n {
        members[cmap[u]].push(u);
    }
    for (c, mem) in members.iter().enumerate() {
        let row_start = adjncy.len();
        for &u in mem {
            for (v, w) in g.neighbors(u) {
                let cv = cmap[v];
                if cv == c {
                    continue; // internal edge collapses
                }
                if pos[cv] == usize::MAX {
                    pos[cv] = adjncy.len();
                    adjncy.push(cv);
                    adjwgt.push(w);
                } else {
                    adjwgt[pos[cv]] += w;
                }
            }
        }
        // Reset scratch and sort the row.
        let mut row: Vec<(usize, i64)> = adjncy[row_start..]
            .iter()
            .copied()
            .zip(adjwgt[row_start..].iter().copied())
            .collect();
        for &(v, _) in &row {
            pos[v] = usize::MAX;
        }
        row.sort_unstable_by_key(|&(v, _)| v);
        for (slot, (v, w)) in row.into_iter().enumerate() {
            adjncy[row_start + slot] = v;
            adjwgt[row_start + slot] = w;
        }
        xadj.push(adjncy.len());
    }
    (Graph::from_raw(xadj, adjncy, adjwgt, cvwgt), cmap)
}

/// Recursively bisects the induced subgraph on `vertices` so that parts
/// `base..base + targets.len()` receive weights close to `targets`.
fn recursive_bisect(
    g: &Graph,
    vertices: &[usize],
    targets: &[i64],
    base: usize,
    part: &mut [usize],
    rng: &mut SplitMix64,
    opts: &PartitionOptions,
) {
    let k = targets.len();
    if k == 1 {
        for &u in vertices {
            part[u] = base;
        }
        return;
    }
    if vertices.len() <= k {
        // Degenerate subtree (fewer vertices than parts): round-robin one
        // vertex per part; surplus parts stay empty.
        for (slot, &u) in vertices.iter().enumerate() {
            part[u] = base + slot;
        }
        return;
    }
    let k_left = k / 2;
    let w_left: i64 = targets[..k_left].iter().sum();
    let (left, right) = bisect(g, vertices, w_left, rng, opts);
    recursive_bisect(g, &left, &targets[..k_left], base, part, rng, opts);
    recursive_bisect(
        g,
        &right,
        &targets[k_left..],
        base + k_left,
        part,
        rng,
        opts,
    );
}

/// Splits `vertices` into two sets, the first with weight ≈ `w_left`,
/// minimising the induced cut over several greedy region-growing attempts.
fn bisect(
    g: &Graph,
    vertices: &[usize],
    w_left: i64,
    rng: &mut SplitMix64,
    opts: &PartitionOptions,
) -> (Vec<usize>, Vec<usize>) {
    let mut in_set = vec![false; g.n_vertices()];
    for &u in vertices {
        in_set[u] = true;
    }
    let total: i64 = vertices.iter().map(|&u| g.vertex_weight(u)).sum();
    let tol = ((total as f64 * (opts.imbalance - 1.0)).ceil() as i64).max(1);
    // Rank trials by (balance violation beyond tolerance, cut): a cheap cut
    // is worthless if the split is lopsided, because recursion below this
    // level can never restore weight that landed on the wrong side.
    let mut best: Option<((i64, i64), Vec<bool>)> = None;
    for _ in 0..opts.bisection_tries.max(1) {
        let seed = vertices[rng.next_usize(vertices.len())];
        let mut side = vec![false; g.n_vertices()]; // true = left
        let mut grown = 0i64;
        let mut queue = std::collections::VecDeque::new();
        let mut visited = vec![false; g.n_vertices()];
        queue.push_back(seed);
        visited[seed] = true;
        while let Some(u) = queue.pop_front() {
            if grown >= w_left {
                break;
            }
            side[u] = true;
            grown += g.vertex_weight(u);
            for (v, _) in g.neighbors(u) {
                if in_set[v] && !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
            // If BFS exhausts a component, jump to a fresh unvisited vertex.
            if queue.is_empty() && grown < w_left {
                if let Some(&w) = vertices.iter().find(|&&w| !visited[w]) {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
        refine_bisection(g, vertices, &in_set, &mut side, w_left, opts);
        let cut = cut_within(g, vertices, &side);
        let lw: i64 = vertices
            .iter()
            .filter(|&&u| side[u])
            .map(|&u| g.vertex_weight(u))
            .sum();
        let violation = ((lw - w_left).abs() - tol).max(0);
        let key = (violation, cut);
        if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
            best = Some((key, side));
        }
    }
    // lint: allow(unwrap): the trial loop always records at least one candidate
    let (_, side) = best.unwrap();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &u in vertices {
        if side[u] {
            left.push(u);
        } else {
            right.push(u);
        }
    }
    // Degenerate splits can happen on tiny graphs; force non-emptiness.
    if left.is_empty() && !right.is_empty() {
        // lint: allow(unwrap): pop is guarded by the non-emptiness test
        left.push(right.pop().unwrap());
    } else if right.is_empty() && !left.is_empty() {
        // lint: allow(unwrap): pop is guarded by the non-emptiness test
        right.push(left.pop().unwrap());
    }
    (left, right)
}

fn cut_within(g: &Graph, vertices: &[usize], side: &[bool]) -> i64 {
    let mut cut = 0;
    for &u in vertices {
        for (v, w) in g.neighbors(u) {
            if u < v && side[u] != side[v] {
                cut += w;
            }
        }
    }
    cut
}

/// FM-style single-vertex moves on a bisection, keeping the left-side weight
/// near `w_left`.
fn refine_bisection(
    g: &Graph,
    vertices: &[usize],
    in_set: &[bool],
    side: &mut [bool],
    w_left: i64,
    opts: &PartitionOptions,
) {
    let total: i64 = vertices.iter().map(|&u| g.vertex_weight(u)).sum();
    let tol = ((total as f64 * (opts.imbalance - 1.0)).ceil() as i64).max(1);
    let mut weight_left: i64 = vertices
        .iter()
        .filter(|&&u| side[u])
        .map(|&u| g.vertex_weight(u))
        .sum();
    for _ in 0..opts.refine_passes {
        let mut moved_any = false;
        for &u in vertices {
            // Gain of flipping u = (cut edges) - (uncut edges) incident in-set.
            let mut ext = 0i64;
            let mut int = 0i64;
            for (v, w) in g.neighbors(u) {
                if !in_set[v] {
                    continue;
                }
                if side[v] != side[u] {
                    ext += w;
                } else {
                    int += w;
                }
            }
            let gain = ext - int;
            let wu = g.vertex_weight(u);
            let new_left = if side[u] {
                weight_left - wu
            } else {
                weight_left + wu
            };
            let balance_ok = (new_left - w_left).abs() <= tol;
            let improves_balance = (new_left - w_left).abs() < (weight_left - w_left).abs();
            if (gain > 0 && balance_ok) || (gain == 0 && improves_balance) {
                side[u] = !side[u];
                weight_left = new_left;
                moved_any = true;
            }
        }
        if !moved_any {
            break;
        }
    }
}

/// Greedy balance-constrained k-way boundary refinement.
fn refine_kway(
    g: &Graph,
    part: &mut [usize],
    k: usize,
    opts: &PartitionOptions,
    rng: &mut SplitMix64,
) {
    let n = g.n_vertices();
    let total = g.total_vertex_weight();
    let max_w = ((total as f64 / k as f64) * opts.imbalance).ceil() as i64;
    let mut pw = g.part_weights(part, k);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..opts.refine_passes {
        rng.shuffle(&mut order);
        let mut moved_any = false;
        let mut conn: Vec<i64> = vec![0; k]; // connectivity scratch
        let mut touched: Vec<usize> = Vec::new();
        for &u in &order {
            let pu = part[u];
            // Connectivity of u to each adjacent part.
            touched.clear();
            for (v, w) in g.neighbors(u) {
                let pv = part[v];
                if conn[pv] == 0 {
                    touched.push(pv);
                }
                conn[pv] += w;
            }
            if touched.len() <= 1 && touched.first() == Some(&pu) {
                // Interior vertex.
                for &p in &touched {
                    conn[p] = 0;
                }
                continue;
            }
            let here = conn[pu];
            let wu = g.vertex_weight(u);
            let mut best_p = pu;
            let mut best_gain = 0i64;
            for &p in &touched {
                if p == pu {
                    continue;
                }
                let gain = conn[p] - here;
                let fits = pw[p] + wu <= max_w;
                let helps_balance = pw[p] + wu < pw[pu];
                if fits
                    && (gain > best_gain
                        || (gain == best_gain && gain >= 0 && helps_balance && best_p == pu))
                {
                    best_p = p;
                    best_gain = gain;
                }
            }
            // Balance restoration: an overweight part may shed boundary
            // vertices even at negative gain. Requiring the destination to
            // stay strictly below the source's current weight makes the
            // sorted weight vector decrease on every such move, so the pass
            // cannot oscillate; among admissible parts, take the one that
            // costs the cut least.
            if best_p == pu && pw[pu] > max_w {
                let mut best_relief = i64::MIN;
                for &p in &touched {
                    if p != pu && pw[p] + wu < pw[pu] {
                        let relief = conn[p] - here;
                        if relief > best_relief {
                            best_relief = relief;
                            best_p = p;
                        }
                    }
                }
            }
            if best_p != pu {
                pw[pu] -= wu;
                pw[best_p] += wu;
                part[u] = best_p;
                moved_any = true;
            }
            for &p in &touched {
                conn[p] = 0;
            }
        }
        if !moved_any {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_sparse::gen;

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        Graph::from_csr_pattern(&gen::laplace_2d(nx, ny))
    }

    #[test]
    fn k1_is_trivial() {
        let g = grid_graph(5, 5);
        let r = partition_kway(&g, &PartitionOptions::new(1));
        assert!(r.part.iter().all(|&p| p == 0));
        assert_eq!(r.edge_cut, 0);
    }

    #[test]
    fn bisection_of_grid_is_balanced_and_cheap() {
        let g = grid_graph(16, 16);
        let r = partition_kway(&g, &PartitionOptions::new(2));
        assert_eq!(r.part_weights.iter().sum::<i64>(), 256);
        let max = *r.part_weights.iter().max().unwrap();
        assert!(
            max <= (256.0f64 / 2.0 * 1.06).ceil() as i64,
            "imbalanced: {:?}",
            r.part_weights
        );
        // Perfect bisection of a 16x16 grid cuts 16 edges; allow 2x slack.
        assert!(r.edge_cut <= 32, "cut too high: {}", r.edge_cut);
    }

    #[test]
    fn four_way_grid_partition_quality() {
        let g = grid_graph(20, 20);
        let r = partition_kway(&g, &PartitionOptions::new(4));
        let max = *r.part_weights.iter().max().unwrap();
        assert!(
            max <= (400.0f64 / 4.0 * 1.08).ceil() as i64,
            "imbalanced: {:?}",
            r.part_weights
        );
        // Ideal 4-way cut of 20x20 grid is 40; allow 2.5x slack.
        assert!(r.edge_cut <= 100, "cut too high: {}", r.edge_cut);
        // All parts used.
        let mut used = [false; 4];
        for &p in &r.part {
            used[p] = true;
        }
        assert!(used.iter().all(|&b| b));
    }

    #[test]
    fn many_parts_on_3d() {
        let g = Graph::from_csr_pattern(&gen::laplace_3d(8, 8, 8));
        let r = partition_kway(&g, &PartitionOptions::new(8));
        let max = *r.part_weights.iter().max().unwrap();
        assert!(
            max <= (512.0f64 / 8.0 * 1.10).ceil() as i64,
            "imbalanced: {:?}",
            r.part_weights
        );
        assert!(r.edge_cut > 0);
    }

    #[test]
    fn k_exceeding_n_gives_singletons() {
        let g = grid_graph(2, 2);
        let r = partition_kway(&g, &PartitionOptions::new(10));
        let mut sorted = r.part.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid_graph(12, 12);
        let a = partition_kway(&g, &PartitionOptions::new(4));
        let b = partition_kway(&g, &PartitionOptions::new(4));
        assert_eq!(a.part, b.part);
    }

    #[test]
    fn coarsening_preserves_total_weight() {
        let g = grid_graph(10, 10);
        let mut rng = SplitMix64::new(3);
        let (c, cmap) = coarsen_once(&g, &mut rng);
        assert_eq!(c.total_vertex_weight(), g.total_vertex_weight());
        assert!(c.n_vertices() < g.n_vertices());
        assert!(c.n_vertices() * 2 >= g.n_vertices());
        assert_eq!(cmap.len(), g.n_vertices());
        assert!(cmap.iter().all(|&c_id| c_id < c.n_vertices()));
    }

    /// Regression: a 3-D mesh at a large part count drives the recursive
    /// bisection into subtrees with fewer vertices than parts (the crash
    /// originally surfaced on the TORSO benchmark at p = 32).
    #[test]
    fn large_k_on_irregular_mesh_does_not_panic() {
        let a = gen::fem_torso(14, 9);
        let g = Graph::from_csr_pattern(&a);
        for k in [32usize, 64, 128] {
            let r = partition_kway(&g, &PartitionOptions::new(k));
            assert!(r.part.iter().all(|&p| p < k));
            assert_eq!(r.part_weights.iter().sum::<i64>(), g.total_vertex_weight());
        }
    }

    #[test]
    fn partition_of_torso_is_usable() {
        let a = gen::fem_torso(10, 1);
        let g = Graph::from_csr_pattern(&a);
        let r = partition_kway(&g, &PartitionOptions::new(4));
        let total = g.total_vertex_weight();
        let max = *r.part_weights.iter().max().unwrap();
        assert!(
            max as f64 <= total as f64 / 4.0 * 1.2,
            "imbalanced: {:?}",
            r.part_weights
        );
    }
}
