//! `commcheck` — the verification layer of the virtual machine.
//!
//! Message-passing bugs in the parallel ILUT protocols (a mismatched
//! `(from, tag)` pair, collectives called in different orders on different
//! ranks, a message sent and never received) all have the same production
//! symptom: [`crate::Ctx::recv`] blocks forever and the run hangs with no
//! diagnostic. In checked mode ([`crate::Machine::run_checked`]) every rank
//! publishes its scheduling state to a shared **status board**, and blocked
//! ranks poll a **watchdog predicate**: when every unfinished rank is
//! blocked and no envelope is in flight, no future progress is possible, so
//! the run aborts with the wait-for graph and the deadlock cycle instead of
//! hanging. Two more checks ride on the same machinery:
//!
//! * **message-leak detection** — any envelope still buffered (or still in
//!   a rank's channel) when that rank returns is reported as
//!   `(from, to, tag, bytes)`; a leaked message is a protocol error even
//!   when the run otherwise completes;
//! * **collective-order checking** — every collective piggybacks its
//!   operation kind on the reserved-tag traffic, so a barrier matched
//!   against an all-reduce (or any out-of-order collective pair) panics
//!   with both ranks' collective call sequences.
//!
//! The production path ([`crate::Machine::run`]) carries none of this: no
//! shared board, no timeouts, no checks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Static per-run configuration of the self-healing layers, chosen on the
/// [`crate::MachineBuilder`] and shared by the board and every context.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunFlags {
    /// Per-link sequence/ack/retry delivery (see [`crate::rel`]): injected
    /// drop/duplicate/reorder faults are absorbed transparently.
    pub reliable: bool,
    /// Rank-loss recovery: an injected kill raises a typed [`RankLost`]
    /// unwind on the survivors instead of stranding them until the
    /// watchdog fires.
    pub recovery: bool,
}

/// The typed panic payload raised on survivors when a rank loss is
/// detected in recovery mode. A recovery driver catches the unwind,
/// downcasts to this, calls [`crate::Ctx::adopt_world`] /
/// [`crate::Ctx::recover_sync`], and re-plans on the shrunk world.
#[derive(Clone, Debug)]
pub struct RankLost {
    /// The epoch the survivors will adopt (the total number of kills
    /// observed when this unwind was raised).
    pub epoch: u64,
    /// All ranks dead at detection time, ascending.
    pub dead: Vec<usize>,
}

/// What a rank is doing right now, as published on the commcheck board.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankStatus {
    /// Computing or sending; may still make progress on its own.
    Running,
    /// Blocked in a receive. `from == None` means "any source"
    /// (the sparse all-to-all's completion loop).
    BlockedRecv {
        /// Source rank the receive is matching, if specific.
        from: Option<usize>,
        /// Tag the receive is matching.
        tag: u64,
    },
    /// Returned from the rank closure.
    Finished,
    /// Unwound with a panic; it will never send again.
    Panicked,
    /// Killed by fault injection (see [`crate::fault`]); it will never send
    /// again, and the wait-for graph names it as the cause.
    Killed,
}

/// The collective operations the machine offers, piggybacked on
/// reserved-tag envelopes for order checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollKind {
    /// [`crate::Ctx::barrier`]
    Barrier,
    /// [`crate::Ctx::all_reduce_f64`] and its scalar conveniences.
    AllReduceF64,
    /// [`crate::Ctx::all_reduce_u64`] and its scalar conveniences.
    AllReduceU64,
    /// [`crate::Ctx::all_gather_u64`]
    AllGatherU64,
    /// [`crate::Ctx::all_gather_f64`]
    AllGatherF64,
    /// The data phase of [`crate::Ctx::exchange`].
    Exchange,
}

/// One leaked envelope, reported at rank exit.
#[derive(Clone, Debug)]
pub struct LeakRecord {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank (whose buffer held the leak).
    pub to: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload size on the simulated wire.
    pub bytes: usize,
    /// True when the envelope never reached the wire because the fault
    /// injector dropped it (rather than the program failing to receive it).
    pub injected: bool,
}

/// Mutable board contents, guarded by one mutex: scheduling states, the
/// in-flight envelope count, per-rank collective logs, and the first
/// failure diagnosis.
struct Board {
    status: Vec<RankStatus>,
    /// Envelopes handed to each rank's channel and not yet drained by that
    /// rank. Incremented *before* the channel send and decremented *after*
    /// the channel receive, so it never undercounts: a spurious deadlock can
    /// never be declared while a message could still arrive. Tracked per
    /// destination so traffic stranded at a finished or panicked rank (a
    /// leak, swept separately) cannot mask a deadlock among the live ranks.
    in_flight_to: Vec<u64>,
    coll_logs: Vec<Vec<CollKind>>,
    failure: Option<String>,
    leaks: Vec<LeakRecord>,
    /// Envelopes discarded by the fault injector; folded into deadlock
    /// reports (a drop usually strands the receiver) and the leak sweep.
    injected_drops: Vec<LeakRecord>,
    /// Under reliable delivery: whether each rank's *current* blocked
    /// episode has exhausted its NACK budget. The watchdog may not declare
    /// a deadlock while a blocked rank still has resend requests left — a
    /// dropped frame looks exactly like a deadlock until the NACKs have
    /// had their chance to repair it.
    nack_done: Vec<bool>,
    /// Recovery epoch each rank has registered via
    /// [`CheckState::register_epoch`] — the survivors' adoption barrier.
    reg_epoch: Vec<u64>,
}

/// Shared state of one checked run. One instance per
/// [`crate::Machine::run_checked`] call, shared by all rank threads.
pub struct CheckState {
    board: Mutex<Board>,
    /// Run configuration; the watchdog predicate needs it to know which
    /// progress mechanisms (NACKs, rank-loss adoption) must be exhausted
    /// before a deadlock verdict is sound.
    flags: RunFlags,
    /// Number of ranks killed by fault injection, outside the mutex so the
    /// rank-loss detection poll at every comm op is a plain atomic load.
    killed: AtomicU64,
}

/// Marker prefix for secondary abort panics (ranks killed because another
/// rank already produced the primary diagnosis). `run_checked` suppresses
/// these in favour of the stored failure.
pub(crate) const SECONDARY_ABORT: &str = "commcheck-secondary-abort";

impl CheckState {
    pub(crate) fn new(p: usize, flags: RunFlags) -> Self {
        CheckState {
            board: Mutex::new(Board {
                status: vec![RankStatus::Running; p],
                in_flight_to: vec![0; p],
                coll_logs: vec![Vec::new(); p],
                failure: None,
                leaks: Vec::new(),
                injected_drops: Vec::new(),
                nack_done: vec![false; p],
                reg_epoch: vec![0; p],
            }),
            flags,
            killed: AtomicU64::new(0),
        }
    }

    pub(crate) fn flags(&self) -> RunFlags {
        self.flags
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Board> {
        // A poisoned board means some rank panicked mid-update; the data is
        // plain-old-data and still the best diagnostic we have.
        self.board.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Called by a sender immediately before handing an envelope to rank
    /// `to`'s channel.
    pub(crate) fn note_send(&self, to: usize) {
        self.lock().in_flight_to[to] += 1;
    }

    /// Called by rank `rank` immediately after draining an envelope from
    /// its channel (whether or not it matches the pending receive).
    pub(crate) fn note_drain(&self, rank: usize) {
        let mut b = self.lock();
        debug_assert!(
            b.in_flight_to[rank] > 0,
            "drained more envelopes than were sent"
        );
        b.in_flight_to[rank] = b.in_flight_to[rank].saturating_sub(1);
    }

    /// Called when a drained envelope matched the blocked receive: the
    /// in-flight decrement and the return to `Running` must be one board
    /// transition. Done as two separate locks there is a window in which
    /// the board shows the rank still blocked with nothing in flight, and
    /// a concurrently polling watchdog declares a spurious deadlock.
    pub(crate) fn note_drain_matched(&self, rank: usize) {
        let mut b = self.lock();
        debug_assert!(
            b.in_flight_to[rank] > 0,
            "drained more envelopes than were sent"
        );
        b.in_flight_to[rank] = b.in_flight_to[rank].saturating_sub(1);
        b.status[rank] = RankStatus::Running;
    }

    pub(crate) fn set_status(&self, rank: usize, status: RankStatus) {
        let mut b = self.lock();
        // Count each killed rank exactly once (the kill path sets Killed
        // both at the fault point and again at rank exit).
        if status == RankStatus::Killed && b.status[rank] != RankStatus::Killed {
            self.killed.fetch_add(1, Ordering::SeqCst);
        }
        b.status[rank] = status;
    }

    /// Number of ranks killed by fault injection so far. Lock-free: polled
    /// at the head of every communication op in recovery mode.
    pub(crate) fn killed_count(&self) -> u64 {
        self.killed.load(Ordering::SeqCst)
    }

    /// The killed ranks, ascending.
    pub(crate) fn killed_ranks(&self) -> Vec<usize> {
        let b = self.lock();
        b.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, RankStatus::Killed))
            .map(|(r, _)| r)
            .collect()
    }

    /// Publishes that `rank` has adopted recovery `epoch` (reset its
    /// in-flight state to the post-loss world).
    pub(crate) fn register_epoch(&self, rank: usize, epoch: u64) {
        self.lock().reg_epoch[rank] = epoch;
    }

    /// The survivors' adoption barrier: true when every rank that can
    /// still participate (Running or blocked — not Killed, not Finished,
    /// not Panicked) has registered at least `epoch`.
    pub(crate) fn all_registered(&self, epoch: u64) -> bool {
        let b = self.lock();
        b.status.iter().enumerate().all(|(r, s)| match s {
            RankStatus::Running | RankStatus::BlockedRecv { .. } => b.reg_epoch[r] >= epoch,
            RankStatus::Finished | RankStatus::Panicked | RankStatus::Killed => true,
        })
    }

    /// Opens a fresh blocked-receive episode for `rank` under reliable
    /// delivery: the NACK budget is intact, so the watchdog must wait.
    pub(crate) fn nack_reset(&self, rank: usize) {
        self.lock().nack_done[rank] = false;
    }

    /// Marks `rank`'s current blocked episode as having spent its NACK
    /// budget; the watchdog may now weigh it for a deadlock verdict.
    pub(crate) fn nack_exhausted(&self, rank: usize) {
        self.lock().nack_done[rank] = true;
    }

    /// Appends to the per-rank collective order log. The log is commcheck's
    /// evidence table — pure verification-layer state with no production
    /// counterpart (DESIGN §16) — so its growth is harness-owned and never
    /// charged to an audited steady region.
    pub(crate) fn log_collective(&self, rank: usize, kind: CollKind) {
        let _h = pilut_allocaudit::harness();
        self.lock().coll_logs[rank].push(kind);
    }

    pub(crate) fn record_leaks(&self, leaks: impl IntoIterator<Item = LeakRecord>) {
        self.lock().leaks.extend(leaks);
    }

    /// Records an envelope the fault injector discarded before delivery.
    pub(crate) fn record_injected_drop(&self, drop: LeakRecord) {
        self.lock().injected_drops.push(drop);
    }

    pub(crate) fn take_injected_drops(&self) -> Vec<LeakRecord> {
        std::mem::take(&mut self.lock().injected_drops)
    }

    /// Records the primary failure if none is stored yet and returns the
    /// message the calling rank should panic with.
    pub(crate) fn fail(&self, report: String) -> String {
        let mut b = self.lock();
        if b.failure.is_none() {
            b.failure = Some(report.clone());
            report
        } else {
            format!("{SECONDARY_ABORT}: see primary failure")
        }
    }

    pub(crate) fn take_failure(&self) -> Option<String> {
        self.lock().failure.take()
    }

    pub(crate) fn take_leaks(&self) -> Vec<LeakRecord> {
        std::mem::take(&mut self.lock().leaks)
    }

    pub(crate) fn coll_logs(&self) -> Vec<Vec<CollKind>> {
        self.lock().coll_logs.clone()
    }

    /// The watchdog predicate, polled by blocked ranks: declares a deadlock
    /// when every unfinished rank is blocked and no envelope is in flight.
    /// Returns the message the calling rank must panic with, if any.
    pub(crate) fn check_stuck(&self, _rank: usize) -> Option<String> {
        let mut b = self.lock();
        if b.failure.is_some() {
            // Another rank already diagnosed the run; die quietly.
            return Some(format!("{SECONDARY_ABORT}: see primary failure"));
        }
        let any_running = b.status.iter().any(|s| matches!(s, RankStatus::Running));
        if any_running {
            return None;
        }
        let killed = self.killed.load(Ordering::SeqCst);
        let mut any_blocked = false;
        for (r, s) in b.status.iter().enumerate() {
            if matches!(s, RankStatus::BlockedRecv { .. }) {
                any_blocked = true;
                if b.in_flight_to[r] > 0 {
                    // A blocked rank still has traffic to drain; it will
                    // wake and either match it or buffer it.
                    return None;
                }
                if self.flags.reliable && !b.nack_done[r] {
                    // The blocked rank still has NACK rounds left: a
                    // dropped frame is indistinguishable from a deadlock
                    // until the resend protocol has had its chance.
                    return None;
                }
                if self.flags.recovery && killed > 0 && b.reg_epoch[r] < killed {
                    // The blocked rank has not yet adopted the latest rank
                    // loss; its own detection poll will wake it into
                    // recovery momentarily.
                    return None;
                }
            }
        }
        if !any_blocked {
            return None;
        }
        let report = deadlock_report(&b.status, &b.coll_logs, &b.injected_drops, self.flags);
        b.failure = Some(report.clone());
        Some(report)
    }
}

/// Formats the wait-for graph, the deadlock cycle (if one exists), any
/// envelopes the fault injector dropped, and any collective-sequence
/// divergence between ranks.
fn deadlock_report(
    status: &[RankStatus],
    coll_logs: &[Vec<CollKind>],
    injected_drops: &[LeakRecord],
    flags: RunFlags,
) -> String {
    use std::fmt::Write;
    let any_killed = status.iter().any(|s| matches!(s, RankStatus::Killed));
    let mut out = if any_killed && !flags.recovery {
        // The root cause is the kill, not the waits that followed it: the
        // survivors were recoverable, recovery just was not switched on.
        String::from(
            "commcheck: rank(s) killed by fault injection and recovery not enabled — \
             survivors are stranded (enable with MachineBuilder::recovery(true) \
             to shrink the world and resume)\nwait-for graph:\n",
        )
    } else {
        String::from(
            "commcheck: deadlock — every unfinished rank is blocked and no message is in flight\nwait-for graph:\n",
        )
    };
    for (r, s) in status.iter().enumerate() {
        match s {
            RankStatus::Running => {
                let _ = writeln!(out, "  rank {r}: running (!?)");
            }
            RankStatus::BlockedRecv { from: Some(f), tag } => {
                let _ = writeln!(out, "  rank {r} -> rank {f}  (recv from={f} tag={tag})");
            }
            RankStatus::BlockedRecv { from: None, tag } => {
                let _ = writeln!(out, "  rank {r} -> any rank  (recv from=any tag={tag})");
            }
            RankStatus::Finished => {
                let _ = writeln!(out, "  rank {r}: finished");
            }
            RankStatus::Panicked => {
                let _ = writeln!(out, "  rank {r}: panicked");
            }
            RankStatus::Killed => {
                let _ = writeln!(out, "  rank {r}: killed by fault injection");
            }
        }
    }
    if let Some(cycle) = find_cycle(status) {
        let path: Vec<String> = cycle.iter().map(|r| format!("rank {r}")).collect();
        let _ = writeln!(out, "deadlock cycle: {} -> {}", path.join(" -> "), path[0]);
    } else {
        // No cycle: some rank waits on a rank that can never send again.
        for (r, s) in status.iter().enumerate() {
            if let RankStatus::BlockedRecv { from: Some(f), .. } = s {
                match status[*f] {
                    RankStatus::Finished => {
                        let _ = writeln!(
                            out,
                            "rank {r} waits on rank {f}, which already finished without sending"
                        );
                    }
                    RankStatus::Panicked => {
                        let _ = writeln!(out, "rank {r} waits on rank {f}, which panicked");
                    }
                    RankStatus::Killed => {
                        let _ = writeln!(
                            out,
                            "rank {r} waits on rank {f}, which was killed by fault injection"
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    if !injected_drops.is_empty() {
        let _ = writeln!(
            out,
            "fault injection dropped {} envelope(s) before delivery:",
            injected_drops.len()
        );
        for d in injected_drops {
            let _ = writeln!(
                out,
                "  from rank {} to rank {} tag {:#x} ({} bytes) [injected drop]",
                d.from, d.to, d.tag, d.bytes
            );
        }
    }
    if let Some(divergence) = collective_divergence(coll_logs) {
        let _ = write!(out, "{divergence}");
    }
    out
}

/// Follows single-source wait-for edges looking for a cycle; returns the
/// ranks along it.
fn find_cycle(status: &[RankStatus]) -> Option<Vec<usize>> {
    let next = |r: usize| -> Option<usize> {
        match status[r] {
            RankStatus::BlockedRecv { from: Some(f), .. } => Some(f),
            _ => None,
        }
    };
    let n = status.len();
    let mut mark = vec![0u8; n]; // 0 = unvisited, 1 = on current walk, 2 = done
    for start in 0..n {
        if mark[start] != 0 {
            continue;
        }
        let mut walk = Vec::new();
        let mut cur = start;
        loop {
            if mark[cur] == 1 {
                // Found a cycle: trim the walk's tail leading into it.
                let pos = walk
                    .iter()
                    .position(|&x| x == cur)
                    // lint: allow(unwrap): `cur` was just found marked as on the current walk
                    .expect("on current walk");
                for &w in &walk {
                    mark[w] = 2;
                }
                return Some(walk[pos..].to_vec());
            }
            if mark[cur] == 2 {
                break;
            }
            mark[cur] = 1;
            walk.push(cur);
            match next(cur) {
                Some(f) => cur = f,
                None => break,
            }
        }
        for &w in &walk {
            mark[w] = 2;
        }
    }
    None
}

/// Describes the first point where two ranks' collective call sequences
/// differ, if they do.
pub(crate) fn collective_divergence(coll_logs: &[Vec<CollKind>]) -> Option<String> {
    use std::fmt::Write;
    let (r0, rest) = (0usize, 1..coll_logs.len());
    for r in rest {
        let a = &coll_logs[r0];
        let b = &coll_logs[r];
        if a == b {
            continue;
        }
        let at = a
            .iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len()));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "collective call sequences diverge between rank {r0} and rank {r} at call #{at}:"
        );
        let _ = writeln!(out, "  rank {r0}: {}", fmt_log(a, at));
        let _ = writeln!(out, "  rank {r}: {}", fmt_log(b, at));
        return Some(out);
    }
    None
}

/// Renders a collective log with a marker at the divergence point.
fn fmt_log(log: &[CollKind], at: usize) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(log.len());
    for (i, k) in log.iter().enumerate() {
        if i == at {
            parts.push(format!(">>{k:?}<<"));
        } else {
            parts.push(format!("{k:?}"));
        }
    }
    if at >= log.len() {
        parts.push(">>(end of sequence)<<".to_string());
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked(from: usize, tag: u64) -> RankStatus {
        RankStatus::BlockedRecv {
            from: Some(from),
            tag,
        }
    }

    #[test]
    fn cycle_found_in_simple_ring() {
        let status = vec![blocked(1, 0), blocked(2, 0), blocked(0, 0)];
        let cycle = find_cycle(&status).expect("ring deadlock has a cycle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn self_wait_is_a_cycle() {
        let status = vec![blocked(0, 7)];
        assert_eq!(find_cycle(&status), Some(vec![0]));
    }

    #[test]
    fn waiting_on_finished_rank_has_no_cycle() {
        let status = vec![blocked(1, 0), RankStatus::Finished];
        assert!(find_cycle(&status).is_none());
        let report = deadlock_report(&status, &[Vec::new(), Vec::new()], &[], RunFlags::default());
        assert!(report.contains("already finished"), "{report}");
    }

    #[test]
    fn killed_rank_named_in_report() {
        let status = vec![blocked(1, 0), RankStatus::Killed];
        let report = deadlock_report(&status, &[Vec::new(), Vec::new()], &[], RunFlags::default());
        assert!(
            report.contains("rank 1: killed by fault injection"),
            "{report}"
        );
        assert!(
            report.contains("waits on rank 1, which was killed by fault injection"),
            "{report}"
        );
        // With a kill as root cause and recovery off, the headline names
        // the missed recovery instead of a generic deadlock.
        assert!(report.contains("recovery not enabled"), "{report}");
        assert!(
            report.contains("MachineBuilder::recovery(true)"),
            "{report}"
        );
        // With recovery on, a post-recovery deadlock is a real deadlock.
        let flags = RunFlags {
            reliable: false,
            recovery: true,
        };
        let report = deadlock_report(&status, &[Vec::new(), Vec::new()], &[], flags);
        assert!(report.contains("commcheck: deadlock"), "{report}");
    }

    #[test]
    fn injected_drops_listed_in_report() {
        let status = vec![blocked(1, 3), RankStatus::Finished];
        let drops = vec![LeakRecord {
            from: 1,
            to: 0,
            tag: 3,
            bytes: 16,
            injected: true,
        }];
        let report = deadlock_report(
            &status,
            &[Vec::new(), Vec::new()],
            &drops,
            RunFlags::default(),
        );
        assert!(report.contains("[injected drop]"), "{report}");
        assert!(report.contains("dropped 1 envelope(s)"), "{report}");
    }

    #[test]
    fn divergence_pinpoints_first_difference() {
        let logs = vec![
            vec![CollKind::Barrier, CollKind::AllReduceF64],
            vec![CollKind::Barrier, CollKind::Barrier],
        ];
        let d = collective_divergence(&logs).expect("logs differ");
        assert!(d.contains("call #1"), "{d}");
        assert!(d.contains(">>AllReduceF64<<"), "{d}");
        assert!(d.contains(">>Barrier<<"), "{d}");
    }

    #[test]
    fn equal_logs_have_no_divergence() {
        let logs = vec![vec![CollKind::Barrier]; 4];
        assert!(collective_divergence(&logs).is_none());
    }
}
