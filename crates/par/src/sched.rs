//! Deterministic schedule control for the model checker: forced wildcard
//! match order, plus a trace of every wildcard accept.
//!
//! `xtask modelcheck` proves schedule-independence by *replaying* the SPMD
//! program under every inequivalent delivery order (see DESIGN §12). The
//! mechanism is receiver-side: a [`SchedulePlan`] carries, per
//! `(rank, tag)`, a script of source ranks that the rank's any-source
//! receives must match in order. While a script entry is pending, the
//! receive behaves as if directed at the scripted source — every other
//! candidate envelope stays buffered exactly as a non-matching tag would,
//! the same envelope-hold idea the fault layer's `Reorder` action uses on
//! the send side. Once a tag's script drains, matching is unconstrained
//! again. Directed receives are never affected: their match is already
//! forced by the program.
//!
//! Forcing composes with checked mode rather than replacing it: the
//! happens-before detector still sees the receive's true wildcard mode, so
//! a forced schedule that exposes a match-order race is diagnosed exactly
//! like an organically scheduled one, and the deadlock watchdog treats a
//! forced-but-never-sent source as an ordinary blocked receive.
//!
//! With `record` enabled the machine also logs a [`TraceEvent`] for every
//! wildcard accept, in one global accept order across ranks, carrying the
//! sender's vector clock and the receiver's local event index. Those two
//! stamps are what the model checker's branching oracle consumes: two
//! accepts on the same `(rank, tag)` from different sources commute unless
//! they are causally concurrent, and concurrency is decidable from the
//! recorded clocks alone.

use crate::hb::RecvMode;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// How a traced receive selected its envelope — the public mirror of the
/// crate-private `RecvMode`, minus `Directed` (directed accepts are never
/// traced: their match is program-forced, so they cannot branch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchKind {
    /// Order-sensitive any-source receive (`Ctx::recv_any`).
    AnySource,
    /// Any-source receive whose consumer canonicalizes the batch (the
    /// sparse all-to-all sorts by source), so cross-sender order is
    /// immaterial — but same-sender delivery order still matters.
    AnySourceUnordered,
}

/// Maps an accept's `RecvMode` to its traced [`MatchKind`]; `None` for
/// directed receives, which are not traced.
pub(crate) fn match_kind(mode: RecvMode) -> Option<MatchKind> {
    match mode {
        RecvMode::Directed => None,
        RecvMode::Wildcard => Some(MatchKind::AnySource),
        RecvMode::WildcardUnordered => Some(MatchKind::AnySourceUnordered),
    }
}

/// One recorded wildcard accept. Events are pushed in one global order
/// across all ranks (their index in [`SchedHandle::take_trace`]'s vector
/// is the order the accepts actually happened in this run).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// The accepting rank.
    pub rank: usize,
    /// The matched tag (collective tags appear verbatim, sequence number
    /// and all — a replayed schedule must script them under the same tag).
    pub tag: u64,
    /// The matched envelope's source rank.
    pub from: usize,
    /// How the receive selected the envelope.
    pub mode: MatchKind,
    /// The sender's vector clock stamped on the envelope.
    pub send_vc: Vec<u64>,
    /// The receiver's own clock component right after the accept — its
    /// index in the receiver's local event order. Together with a later
    /// event's `send_vc`, this decides happens-before: the accept precedes
    /// a send iff `send_vc[rank] >= accept_event`.
    pub accept_event: u64,
}

/// A schedule-forcing script plus the trace-recording switch. Built by the
/// model checker, installed via [`crate::MachineBuilder::schedule`]
/// (which implies checked mode — forcing and tracing need vector clocks).
#[derive(Clone, Debug, Default)]
pub struct SchedulePlan {
    /// Per `(rank, tag)`: the sources this rank's wildcard receives on
    /// `tag` must match, in order. Drained scripts impose nothing.
    forced: HashMap<(usize, u64), VecDeque<usize>>,
    record: bool,
}

impl SchedulePlan {
    /// An empty plan: no forcing, no recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables wildcard-accept tracing.
    pub fn record(mut self, on: bool) -> Self {
        self.record = on;
        self
    }

    /// Appends `src` to the script for `rank`'s wildcard receives on `tag`.
    pub fn force(mut self, rank: usize, tag: u64, src: usize) -> Self {
        self.forced.entry((rank, tag)).or_default().push_back(src);
        self
    }

    /// Number of forced entries across all `(rank, tag)` scripts.
    pub fn forced_len(&self) -> usize {
        self.forced.values().map(VecDeque::len).sum()
    }
}

/// Shared run state: the plan (read-only after install) and the global
/// accept trace.
struct SchedShared {
    plan: SchedulePlan,
    trace: Mutex<Vec<TraceEvent>>,
}

/// Handle onto one scheduled run: install a clone via
/// [`crate::MachineBuilder::schedule`], keep one to read the trace back
/// after the run with [`SchedHandle::take_trace`].
pub struct SchedHandle(Arc<SchedShared>);

impl Clone for SchedHandle {
    fn clone(&self) -> Self {
        SchedHandle(Arc::clone(&self.0))
    }
}

impl SchedHandle {
    /// Wraps a plan for installation into a machine run.
    pub fn new(plan: SchedulePlan) -> Self {
        SchedHandle(Arc::new(SchedShared {
            plan,
            trace: Mutex::new(Vec::new()),
        }))
    }

    /// Drains the recorded wildcard-accept trace, in global accept order.
    /// Empty when the plan did not enable recording (or nothing wildcard
    /// was accepted).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        // lint: allow(unwrap): trace pushes never panic while holding the lock
        std::mem::take(&mut *self.0.trace.lock().expect("trace lock poisoned"))
    }
}

/// Per-rank view of the schedule, owned by the rank's `Ctx`. The rank's
/// own forced scripts are extracted at construction so the hot forcing
/// path (`forced_source`) touches no shared state; only trace recording
/// takes the (low-traffic) global lock.
pub(crate) struct SchedSession {
    forced: HashMap<u64, VecDeque<usize>>,
    shared: Arc<SchedShared>,
}

impl SchedSession {
    pub(crate) fn new(handle: &SchedHandle, rank: usize) -> Self {
        let forced = handle
            .0
            .plan
            .forced
            .iter()
            .filter(|((r, _), _)| *r == rank)
            .map(|(&(_, tag), script)| (tag, script.clone()))
            .collect();
        SchedSession {
            forced,
            shared: Arc::clone(&handle.0),
        }
    }

    /// The source this rank's next wildcard receive on `tag` must match,
    /// if a script entry is pending.
    pub(crate) fn forced_source(&self, tag: u64) -> Option<usize> {
        self.forced.get(&tag).and_then(|q| q.front().copied())
    }

    /// Registers a wildcard accept: consumes the pending script entry for
    /// the tag (asserting the forced source was in fact matched) and
    /// appends to the global trace when recording.
    pub(crate) fn on_wildcard_accept(&mut self, ev: TraceEvent) {
        if let Some(script) = self.forced.get_mut(&ev.tag) {
            if let Some(forced) = script.pop_front() {
                assert_eq!(
                    forced, ev.from,
                    "schedule forcing violated: rank {} tag {:#x} matched source {} \
                     while the script demanded {}",
                    ev.rank, ev.tag, ev.from, forced
                );
                if script.is_empty() {
                    self.forced.remove(&ev.tag);
                }
            }
        }
        if self.shared.plan.record {
            let mut trace = self.shared.trace.lock();
            // lint: allow(unwrap): trace pushes never panic while holding the lock
            trace.as_mut().expect("trace lock poisoned").push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_scripts_are_per_rank_and_ordered() {
        let plan = SchedulePlan::new()
            .force(1, 7, 0)
            .force(1, 7, 2)
            .force(0, 7, 3);
        assert_eq!(plan.forced_len(), 3);
        let handle = SchedHandle::new(plan);
        let mut s1 = SchedSession::new(&handle, 1);
        let s0 = SchedSession::new(&handle, 0);
        assert_eq!(s1.forced_source(7), Some(0));
        assert_eq!(s0.forced_source(7), Some(3));
        assert_eq!(s1.forced_source(9), None);
        s1.on_wildcard_accept(TraceEvent {
            rank: 1,
            tag: 7,
            from: 0,
            mode: MatchKind::AnySource,
            send_vc: vec![1, 0],
            accept_event: 1,
        });
        assert_eq!(s1.forced_source(7), Some(2));
    }

    #[test]
    #[should_panic(expected = "schedule forcing violated")]
    fn mismatched_forced_source_panics() {
        let handle = SchedHandle::new(SchedulePlan::new().force(1, 7, 0));
        let mut s1 = SchedSession::new(&handle, 1);
        s1.on_wildcard_accept(TraceEvent {
            rank: 1,
            tag: 7,
            from: 2,
            mode: MatchKind::AnySource,
            send_vc: vec![0, 0, 1],
            accept_event: 1,
        });
    }

    #[test]
    fn recording_collects_events_in_push_order() {
        let handle = SchedHandle::new(SchedulePlan::new().record(true));
        let mut s0 = SchedSession::new(&handle, 0);
        let mut s1 = SchedSession::new(&handle, 1);
        let ev = |rank: usize, from: usize| TraceEvent {
            rank,
            tag: 5,
            from,
            mode: MatchKind::AnySourceUnordered,
            send_vc: vec![0, 0],
            accept_event: 1,
        };
        s0.on_wildcard_accept(ev(0, 1));
        s1.on_wildcard_accept(ev(1, 0));
        let trace = handle.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!((trace[0].rank, trace[0].from), (0, 1));
        assert_eq!((trace[1].rank, trace[1].from), (1, 0));
        assert!(handle.take_trace().is_empty(), "take drains");
    }

    #[test]
    fn unrecorded_plan_traces_nothing() {
        let handle = SchedHandle::new(SchedulePlan::new());
        let mut s0 = SchedSession::new(&handle, 0);
        s0.on_wildcard_accept(TraceEvent {
            rank: 0,
            tag: 5,
            from: 1,
            mode: MatchKind::AnySource,
            send_vc: vec![0, 1],
            accept_event: 1,
        });
        assert!(handle.take_trace().is_empty());
    }
}
