//! Message payloads.

/// The data carried by one message. Index data travels as `u64`, numeric
/// data as `f64`; the mixed variant covers the common "sparse row" shape
/// (column indices + values) without any serialisation layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    Empty,
    U64(Vec<u64>),
    F64(Vec<f64>),
    /// Paired index/value arrays (not necessarily of equal length).
    Mixed(Vec<u64>, Vec<f64>),
}

impl Payload {
    /// Size on the (simulated) wire, in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::U64(v) => 8 * v.len(),
            Payload::F64(v) => 8 * v.len(),
            Payload::Mixed(a, b) => 8 * (a.len() + b.len()),
        }
    }

    /// Unwraps a `U64` payload.
    ///
    /// # Panics
    /// Panics if the variant differs — a protocol error in the caller.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwraps an `F64` payload.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps a `Mixed` payload.
    pub fn into_mixed(self) -> (Vec<u64>, Vec<f64>) {
        match self {
            Payload::Mixed(a, b) => (a, b),
            other => panic!("expected Mixed payload, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counts() {
        assert_eq!(Payload::Empty.bytes(), 0);
        assert_eq!(Payload::U64(vec![1, 2, 3]).bytes(), 24);
        assert_eq!(Payload::Mixed(vec![1], vec![2.0, 3.0]).bytes(), 24);
    }

    #[test]
    fn unwrap_right_variant() {
        assert_eq!(Payload::F64(vec![1.5]).into_f64(), vec![1.5]);
        let (a, b) = Payload::Mixed(vec![7], vec![0.5]).into_mixed();
        assert_eq!(a, vec![7]);
        assert_eq!(b, vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "expected U64")]
    fn unwrap_wrong_variant_panics() {
        Payload::F64(vec![]).into_u64();
    }
}
