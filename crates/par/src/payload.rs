//! Message payloads.

use std::sync::Arc;

/// The data carried by one message. Index data travels as `u64`, numeric
/// data as `f64`; the mixed variant covers the common "sparse row" shape
/// (column indices + values) without any serialisation layer.
///
/// The buffers are `Arc`-backed so that fan-out (a broadcast interior node
/// forwarding the same data to several children) clones a pointer, not the
/// data. `Clone` is therefore always cheap; the deep copy, if one is needed
/// at all, happens at most once per rank inside the `into_*` unwrappers
/// (which hand the buffer over zero-copy when the receiver is the sole
/// owner — the common point-to-point case).
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    Empty,
    U64(Arc<Vec<u64>>),
    F64(Arc<Vec<f64>>),
    /// Paired index/value arrays (not necessarily of equal length).
    Mixed(Arc<Vec<u64>>, Arc<Vec<f64>>),
}

impl Payload {
    /// Wraps an index buffer.
    pub fn u64s(v: Vec<u64>) -> Self {
        Payload::U64(Arc::new(v))
    }

    /// Wraps a numeric buffer.
    pub fn f64s(v: Vec<f64>) -> Self {
        Payload::F64(Arc::new(v))
    }

    /// Wraps paired index/value buffers.
    pub fn mixed(a: Vec<u64>, b: Vec<f64>) -> Self {
        Payload::Mixed(Arc::new(a), Arc::new(b))
    }

    /// Size on the (simulated) wire, in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::U64(v) => 8 * v.len(),
            Payload::F64(v) => 8 * v.len(),
            Payload::Mixed(a, b) => 8 * (a.len() + b.len()),
        }
    }

    /// Unwraps a `U64` payload (zero-copy when this is the last reference).
    ///
    /// # Panics
    /// Panics if the variant differs — a protocol error in the caller.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => unwrap_arc(v),
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwraps an `F64` payload (zero-copy when this is the last reference).
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => unwrap_arc(v),
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps a `Mixed` payload (zero-copy when this is the last reference).
    pub fn into_mixed(self) -> (Vec<u64>, Vec<f64>) {
        match self {
            Payload::Mixed(a, b) => (unwrap_arc(a), unwrap_arc(b)),
            other => panic!("expected Mixed payload, got {other:?}"),
        }
    }
}

/// Takes the buffer out of the `Arc` without copying when the caller holds
/// the only reference; falls back to one clone otherwise (shared fan-out).
fn unwrap_arc<T: Clone>(v: Arc<Vec<T>>) -> Vec<T> {
    Arc::try_unwrap(v).unwrap_or_else(|shared| (*shared).clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counts() {
        assert_eq!(Payload::Empty.bytes(), 0);
        assert_eq!(Payload::u64s(vec![1, 2, 3]).bytes(), 24);
        assert_eq!(Payload::mixed(vec![1], vec![2.0, 3.0]).bytes(), 24);
    }

    #[test]
    fn unwrap_right_variant() {
        assert_eq!(Payload::f64s(vec![1.5]).into_f64(), vec![1.5]);
        let (a, b) = Payload::mixed(vec![7], vec![0.5]).into_mixed();
        assert_eq!(a, vec![7]);
        assert_eq!(b, vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "expected U64")]
    fn unwrap_wrong_variant_panics() {
        Payload::f64s(vec![]).into_u64();
    }

    #[test]
    fn clone_is_shallow_and_unwrap_still_works() {
        let p = Payload::u64s(vec![1, 2]);
        let q = p.clone();
        if let (Payload::U64(a), Payload::U64(b)) = (&p, &q) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            unreachable!();
        }
        drop(p);
        // q is now the sole owner: zero-copy handover.
        assert_eq!(q.into_u64(), vec![1, 2]);
    }
}
