//! Message payloads.

use std::sync::Arc;

/// The data carried by one message. Index data travels as `u64`, numeric
/// data as `f64`; the mixed variant covers the common "sparse row" shape
/// (column indices + values) without any serialisation layer.
///
/// The buffers are `Arc`-backed so that fan-out (a broadcast interior node
/// forwarding the same data to several children) clones a pointer, not the
/// data. `Clone` is therefore always cheap; the deep copy, if one is needed
/// at all, happens at most once per rank inside the `into_*` unwrappers
/// (which hand the buffer over zero-copy when the receiver is the sole
/// owner — the common point-to-point case).
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    Empty,
    U64(Arc<Vec<u64>>),
    F64(Arc<Vec<f64>>),
    /// Paired index/value arrays (not necessarily of equal length).
    Mixed(Arc<Vec<u64>>, Arc<Vec<f64>>),
}

impl Payload {
    /// Wraps an index buffer. The refcount block is harness-owned (it
    /// models the runtime's message descriptor, not user data), so the
    /// allocation audit does not see it; the buffer itself stays the
    /// caller's responsibility.
    pub fn u64s(v: Vec<u64>) -> Self {
        let _h = pilut_allocaudit::harness();
        Payload::U64(Arc::new(v))
    }

    /// Wraps a numeric buffer (refcount block harness-owned; see
    /// [`Payload::u64s`]).
    pub fn f64s(v: Vec<f64>) -> Self {
        let _h = pilut_allocaudit::harness();
        Payload::F64(Arc::new(v))
    }

    /// Wraps paired index/value buffers (refcount blocks harness-owned;
    /// see [`Payload::u64s`]).
    pub fn mixed(a: Vec<u64>, b: Vec<f64>) -> Self {
        let _h = pilut_allocaudit::harness();
        Payload::Mixed(Arc::new(a), Arc::new(b))
    }

    /// Size on the (simulated) wire, in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::U64(v) => 8 * v.len(),
            Payload::F64(v) => 8 * v.len(),
            Payload::Mixed(a, b) => 8 * (a.len() + b.len()),
        }
    }

    /// Unwraps a `U64` payload (zero-copy when this is the last reference).
    ///
    /// # Panics
    /// Panics if the variant differs — a protocol error in the caller.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => unwrap_arc(v),
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwraps an `F64` payload (zero-copy when this is the last reference).
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => unwrap_arc(v),
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps a `Mixed` payload (zero-copy when this is the last reference).
    pub fn into_mixed(self) -> (Vec<u64>, Vec<f64>) {
        match self {
            Payload::Mixed(a, b) => (unwrap_arc(a), unwrap_arc(b)),
            other => panic!("expected Mixed payload, got {other:?}"),
        }
    }

    /// Borrows an `F64` payload's values without unwrapping the `Arc` —
    /// the copy-free read for receivers that scatter the values and hand
    /// the buffer straight back to the pool via [`Payload::recycle`].
    /// Unlike [`Payload::into_f64`], a shared payload (sender-retained
    /// frame, fan-out node) costs nothing here.
    ///
    /// # Panics
    /// Panics if the variant differs — a protocol error in the caller.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Borrows a `U64` payload's values (see [`Payload::as_f64`]).
    pub fn as_u64(&self) -> &[u64] {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Drops this handle, returning the underlying buffer(s) to the
    /// registered pool when it was the last reference. This is how pooled
    /// replay buffers complete their cycle: each holder — the receiver
    /// after scattering, the sender's reliable-delivery retention on
    /// cumulative ACK — recycles its handle, and whichever drops last
    /// actually shelves the buffer. A handle that is not last simply
    /// drops, copy-free (where [`Payload::into_f64`] would have deep-
    /// cloned and the pooled original would have died with the other
    /// reference, draining the pool one buffer per acknowledged frame).
    pub fn recycle(self) {
        match self {
            Payload::Empty => {}
            Payload::U64(v) => {
                if let Ok(buf) = Arc::try_unwrap(v) {
                    crate::pool::give_u64(buf);
                }
            }
            Payload::F64(v) => {
                if let Ok(buf) = Arc::try_unwrap(v) {
                    crate::pool::give_f64(buf);
                }
            }
            Payload::Mixed(a, b) => {
                if let Ok(buf) = Arc::try_unwrap(a) {
                    crate::pool::give_u64(buf);
                }
                if let Ok(buf) = Arc::try_unwrap(b) {
                    crate::pool::give_f64(buf);
                }
            }
        }
    }
}

/// Takes the buffer out of the `Arc` without copying when the caller holds
/// the only reference; falls back to one clone otherwise. The fallback
/// copy is harness-owned (DESIGN §16): it happens only while the
/// *transport* still holds a reference — a broadcast fan-out node, or a
/// sender-retained frame awaiting its cumulative ACK — and stands in for
/// frame memory a real NIC would own. An MPI receiver owns its receive
/// buffer outright; the audited steady state must not be charged for the
/// VM keeping the wire image alive a little longer.
fn unwrap_arc<T: Clone>(v: Arc<Vec<T>>) -> Vec<T> {
    Arc::try_unwrap(v).unwrap_or_else(|shared| {
        let _h = pilut_allocaudit::harness();
        (*shared).clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counts() {
        assert_eq!(Payload::Empty.bytes(), 0);
        assert_eq!(Payload::u64s(vec![1, 2, 3]).bytes(), 24);
        assert_eq!(Payload::mixed(vec![1], vec![2.0, 3.0]).bytes(), 24);
    }

    #[test]
    fn unwrap_right_variant() {
        assert_eq!(Payload::f64s(vec![1.5]).into_f64(), vec![1.5]);
        let (a, b) = Payload::mixed(vec![7], vec![0.5]).into_mixed();
        assert_eq!(a, vec![7]);
        assert_eq!(b, vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "expected U64")]
    fn unwrap_wrong_variant_panics() {
        Payload::f64s(vec![]).into_u64();
    }

    #[test]
    fn clone_is_shallow_and_unwrap_still_works() {
        let p = Payload::u64s(vec![1, 2]);
        let q = p.clone();
        if let (Payload::U64(a), Payload::U64(b)) = (&p, &q) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            unreachable!();
        }
        drop(p);
        // q is now the sole owner: zero-copy handover.
        assert_eq!(q.into_u64(), vec![1, 2]);
    }
}
