//! The virtual machine: model constants, thread launch, and run statistics.

use crate::check::{
    collective_divergence, CheckState, LeakRecord, RankLost, RunFlags, SECONDARY_ABORT,
};
use crate::ctx::{Ctx, Envelope, RankExit, CTRL_TAG, DEFAULT_CHECK_POLL};
use crate::fault::{FaultPlan, FaultSession, FaultShared, InjectedFault, FAULT_KILL_PREFIX};
use crate::sched::{SchedHandle, SchedSession};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Cost-model constants of the simulated machine.
///
/// Times are in seconds. The defaults in [`MachineModel::cray_t3d`] are
/// calibrated from the paper's own reported figures: the matrix–vector
/// product achieves ≈6.7 MFLOP/s per processor (§6), and the T3D's
/// message-passing layer had ≈30 µs latency and ≈50 MB/s achieved
/// point-to-point bandwidth for medium messages.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Seconds per floating-point operation.
    pub flop_time: f64,
    /// Per-message latency (seconds) — the "alpha" term.
    pub latency: f64,
    /// Seconds per byte on the wire — the "beta" term.
    pub inv_bandwidth: f64,
    /// Seconds per 8-byte word for local data motion (building/copying
    /// reduced matrices; the paper calls this "time spent essentially
    /// copying data", §4.2).
    pub word_copy_time: f64,
}

impl MachineModel {
    /// The paper's testbed. The T3D's interconnect had unusually low
    /// latency for its era (a few µs for shmem puts, ~10 µs through the
    /// message-passing layer) and ~120 MB/s achieved link bandwidth.
    pub fn cray_t3d() -> Self {
        MachineModel {
            flop_time: 1.0 / 6.7e6,
            latency: 10e-6,
            inv_bandwidth: 1.0 / 120e6,
            word_copy_time: 1.0 / 25e6,
        }
    }

    /// A machine with free communication — useful to isolate load balance
    /// from communication overhead in ablation benches.
    pub fn zero_comm() -> Self {
        MachineModel {
            latency: 0.0,
            inv_bandwidth: 0.0,
            ..Self::cray_t3d()
        }
    }

    /// A slow-network machine ("workstation cluster" in the paper's
    /// conclusions: ILUT* matters most there).
    pub fn workstation_cluster() -> Self {
        MachineModel {
            flop_time: 1.0 / 6.7e6,
            latency: 500e-6,
            inv_bandwidth: 1.0 / 8e6,
            word_copy_time: 1.0 / 25e6,
        }
    }
}

/// Aggregated run statistics.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Total messages sent across all ranks.
    pub messages: u64,
    /// Total bytes sent across all ranks.
    pub bytes: u64,
    /// Total floating-point operations performed (modelled).
    pub flops: f64,
    /// Total words moved by `copy_words`.
    pub words_copied: f64,
    /// Collective operations entered (each rank's participation counted
    /// once per rank, divided by `p` on aggregation; aggregation asserts
    /// the ranks agree on the count).
    pub collectives: u64,
    /// Per-tag `(messages, bytes)` totals across all ranks. User tags keep
    /// their literal value; all collective traffic is folded under
    /// [`crate::Ctx::RESERVED_TAG_BASE`] (see [`crate::ctx::Counters::by_tag`]).
    pub by_tag: std::collections::BTreeMap<u64, (u64, u64)>,
    /// Per-tag `(messages, bytes, exact)` totals *predicted* by the static
    /// plan analysis before the traffic was sent (see
    /// [`crate::Ctx::note_planned`]). The flag is true only when every
    /// rank's predictions under the tag were byte-exact.
    pub planned_by_tag: std::collections::BTreeMap<u64, (u64, u64, bool)>,
    /// Per-rank final logical clocks.
    pub rank_times: Vec<f64>,
}

impl MachineStats {
    /// `(messages, bytes)` recorded under a specific user tag, `(0, 0)`
    /// when no message ever used it.
    pub fn tag_totals(&self, tag: u64) -> (u64, u64) {
        self.by_tag.get(&tag).copied().unwrap_or((0, 0))
    }
}

/// The result of a [`Machine::run`] call.
#[derive(Clone, Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Simulated parallel time: the maximum logical clock over ranks.
    pub sim_time: f64,
    /// Aggregate counters.
    pub stats: MachineStats,
    /// Faults that actually fired during the run (empty without a
    /// [`FaultPlan`]). Only populated for runs that complete; destructive
    /// faults end in a diagnosis panic instead.
    pub injected_faults: Vec<InjectedFault>,
}

/// Configures a machine run beyond the two standard entry points: checked
/// mode, the commcheck watchdog poll interval, and fault injection.
///
/// ```
/// use pilut_par::{Machine, MachineModel, Payload};
/// let out = Machine::builder(MachineModel::cray_t3d())
///     .checked(true)
///     .run(2, |ctx| ctx.rank());
/// assert_eq!(out.results, vec![0, 1]);
/// ```
pub struct MachineBuilder {
    model: MachineModel,
    checked: bool,
    watchdog_poll: Duration,
    fault_plan: Option<FaultPlan>,
    sched: Option<SchedHandle>,
    flags: RunFlags,
}

impl MachineBuilder {
    /// Enables or disables the commcheck verification layer
    /// (see [`Machine::run_checked`]). Installing a fault plan enables it
    /// implicitly: injection without diagnosis would just be a hang.
    pub fn checked(mut self, on: bool) -> Self {
        self.checked = on;
        self
    }

    /// Sets how often a blocked rank wakes to run the deadlock watchdog.
    ///
    /// The poll interval is pure detection latency/overhead tuning; it can
    /// never cause a false positive, because the watchdog predicate looks
    /// only at the status board (a stalled-but-running rank shows
    /// `Running`, and injected *simulated* delays do not consume wall-clock
    /// time at all). Raise it for long soak runs, lower it for fast failure
    /// in CI. The `PILUT_WATCHDOG_POLL_MS` environment variable overrides
    /// the default for runs that do not call this.
    pub fn watchdog_poll(mut self, poll: Duration) -> Self {
        assert!(!poll.is_zero(), "watchdog poll must be non-zero");
        self.watchdog_poll = poll;
        self
    }

    /// Installs a fault plan (see [`crate::fault`]); implies `checked`.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a schedule-forcing/tracing handle (see [`crate::sched`]);
    /// implies `checked` — forcing and tracing both need the vector
    /// clocks that only checked mode stamps on envelopes.
    pub fn schedule(mut self, handle: SchedHandle) -> Self {
        self.sched = Some(handle);
        self
    }

    /// Enables per-link reliable delivery (see [`crate::rel`]): frames are
    /// sequenced, deduplicated, and retransmitted on demand, so injected
    /// `drop`/`duplicate`/`reorder` faults are absorbed transparently
    /// instead of stranding a receiver until the watchdog fires. Implies
    /// `checked`. The protocol's own traffic is counted under the `ack`
    /// stats tag with exact planned pricing.
    pub fn reliable(mut self, on: bool) -> Self {
        self.flags.reliable = on;
        self
    }

    /// Enables rank-loss recovery: an injected `Kill` raises a typed
    /// [`RankLost`] unwind on every survivor instead of a terminal
    /// deadlock diagnosis. A recovery driver (see
    /// `pilut_solver::dist_solve_robust`) catches it, calls
    /// [`Ctx::adopt_world`] / [`Ctx::recover_sync`], and resumes on the
    /// shrunk world. Implies `checked`.
    pub fn recovery(mut self, on: bool) -> Self {
        self.flags.recovery = on;
        self
    }

    /// Runs `f` on `p` ranks with this configuration.
    ///
    /// # Panics
    /// As [`Machine::run_checked`] when checked (or a fault plan is
    /// installed); as [`Machine::run`] otherwise.
    pub fn run<R, F>(self, p: usize, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        assert!(p > 0, "need at least one rank");
        let checked = self.checked
            || self.fault_plan.is_some()
            || self.sched.is_some()
            || self.flags.reliable
            || self.flags.recovery;
        let check = checked.then(|| Arc::new(CheckState::new(p, self.flags)));
        let fault = self.fault_plan.map(|plan| Arc::new(FaultShared::new(plan)));
        Machine::run_impl(
            p,
            self.model,
            check,
            fault,
            self.sched,
            self.watchdog_poll,
            self.flags,
            f,
        )
    }
}

/// Parses a `PILUT_WATCHDOG_POLL_MS` value; rejects zero (a zero timeout
/// would spin) and garbage.
fn parse_poll_ms(s: &str) -> Option<Duration> {
    match s.trim().parse::<u64>() {
        Ok(ms) if ms > 0 => Some(Duration::from_millis(ms)),
        _ => None,
    }
}

/// The watchdog poll used when the builder was not asked for a specific
/// one: `PILUT_WATCHDOG_POLL_MS` from the environment, or 1 ms.
fn default_watchdog_poll() -> Duration {
    std::env::var("PILUT_WATCHDOG_POLL_MS")
        .ok()
        .as_deref()
        .and_then(parse_poll_ms)
        .unwrap_or(DEFAULT_CHECK_POLL)
}

/// The SPMD launcher.
pub struct Machine;

impl Machine {
    /// Runs `f` on `p` ranks (one OS thread each) and gathers the results.
    ///
    /// The closure receives each rank's [`Ctx`]; ranks communicate only via
    /// the `Ctx`, so `f` must be `Sync` (it is shared) and the per-rank
    /// return values are collected in rank order.
    ///
    /// This is the zero-overhead production path: no verification state is
    /// shared and receives block indefinitely. Use [`Machine::run_checked`]
    /// in tests and protocol bring-up.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank panics (the panic of the
    /// lowest-numbered panicking rank is propagated).
    pub fn run<R, F>(p: usize, model: MachineModel, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        Self::run_impl(
            p,
            model,
            None,
            None,
            None,
            DEFAULT_CHECK_POLL,
            RunFlags::default(),
            f,
        )
    }

    /// Starts a configurable run: checked mode, watchdog poll interval,
    /// fault injection. See [`MachineBuilder`].
    pub fn builder(model: MachineModel) -> MachineBuilder {
        MachineBuilder {
            model,
            checked: false,
            watchdog_poll: default_watchdog_poll(),
            fault_plan: None,
            sched: None,
            flags: RunFlags::default(),
        }
    }

    /// Runs `f` on `p` ranks under the commcheck verification layer
    /// (see [`crate::check`]).
    ///
    /// Functionally identical to [`Machine::run`] for correct programs, with
    /// three extra guarantees for incorrect ones:
    ///
    /// * a deadlocked run **aborts with a wait-for graph and the deadlock
    ///   cycle** instead of hanging forever;
    /// * any envelope left unconsumed at rank exit is reported as a
    ///   **message leak** `(from, to, tag, bytes)` and fails the run;
    /// * collectives called in different orders on different ranks are
    ///   caught (**collective-order check**) and reported with both ranks'
    ///   call sequences.
    ///
    /// All tests run through this entry point; production callers keep the
    /// unchecked path.
    ///
    /// # Panics
    /// Panics on any detected protocol error, with the commcheck report as
    /// the panic message; rank panics propagate as in [`Machine::run`].
    pub fn run_checked<R, F>(p: usize, model: MachineModel, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        assert!(p > 0, "need at least one rank");
        Self::run_impl(
            p,
            model,
            Some(Arc::new(CheckState::new(p, RunFlags::default()))),
            None,
            None,
            default_watchdog_poll(),
            RunFlags::default(),
            f,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_impl<R, F>(
        p: usize,
        model: MachineModel,
        check: Option<Arc<CheckState>>,
        fault: Option<Arc<FaultShared>>,
        sched: Option<SchedHandle>,
        poll: Duration,
        flags: RunFlags,
        f: F,
    ) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        assert!(p > 0, "need at least one rank");
        // Scalar collectives (GMRES dot products) draw single-element
        // buffers from the pool every inner iteration; fill that class
        // before any rank starts so the steady state never misses.
        crate::pool::warm_scalars();
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = mpsc::channel::<Envelope>();
            senders.push(s);
            receivers.push(r);
        }
        let mut result_slots: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let mut exit_slots: Vec<Option<RankExit>> = (0..p).map(|_| None).collect();
        let mut panic_slots: Vec<Option<Box<dyn std::any::Any + Send>>> =
            (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let zipped = receivers
                .into_iter()
                .zip(result_slots.iter_mut())
                .zip(exit_slots.iter_mut())
                .zip(panic_slots.iter_mut());
            for (rank, (((rx, rslot), eslot), pslot)) in zipped.enumerate() {
                let senders = senders.clone();
                let fref = &f;
                let check = check.clone();
                let session = fault
                    .as_ref()
                    .map(|shared| FaultSession::new(Arc::clone(shared), rank));
                let ssched = sched.as_ref().map(|h| SchedSession::new(h, rank));
                scope.spawn(move || {
                    let mut ctx = Ctx::new(
                        rank, p, model, senders, rx, check, poll, session, ssched, flags,
                    );
                    match std::panic::catch_unwind(AssertUnwindSafe(|| fref(&mut ctx))) {
                        Ok(r) => {
                            *rslot = Some(r);
                            *eslot = Some(ctx.into_exit(false));
                        }
                        Err(payload) => {
                            // Publish the panic on the board (and drain the
                            // channel) so blocked peers can diagnose the
                            // run instead of waiting forever.
                            *eslot = Some(ctx.into_exit(true));
                            *pslot = Some(payload);
                        }
                    }
                });
            }
            // The scope joins every rank before returning, so all slots are
            // filled — no join-order dependence survives this point.
        });
        if let Some(check) = &check {
            let fired = fault.as_ref().map(|s| s.snapshot()).unwrap_or_default();
            Self::verdict(check, &mut panic_slots, &exit_slots, &fired);
        }
        // Deterministic propagation: the lowest-numbered panicking rank
        // wins, regardless of the order the threads actually died in.
        if let Some(payload) = panic_slots.iter_mut().find_map(Option::take) {
            std::panic::resume_unwind(payload);
        }
        let mut results = Vec::with_capacity(p);
        let mut stats = MachineStats::default();
        let mut per_rank_collectives = Vec::with_capacity(p);
        for (rank, (rslot, eslot)) in result_slots.into_iter().zip(exit_slots).enumerate() {
            let Some(r) = rslot else {
                // Only reachable when a panic slot was suppressed without a
                // result: under recovery the driver must catch the injected
                // kill on the victim itself and return a tombstone result.
                panic!(
                    "rank {rank} finished without a result — under MachineBuilder::recovery \
                     the workload driver must catch the kill panic on the victim (check \
                     Ctx::killed()) and return a tombstone value instead of re-raising"
                )
            };
            // lint: allow(unwrap): the thread scope joined every rank
            let exit = eslot.expect("rank exit not recorded");
            results.push(r);
            stats.messages += exit.counters.messages;
            stats.bytes += exit.counters.bytes;
            stats.flops += exit.counters.flops;
            stats.words_copied += exit.counters.words_copied;
            for (&tag, &(m, b)) in &exit.counters.by_tag {
                let slot = stats.by_tag.entry(tag).or_insert((0, 0));
                slot.0 += m;
                slot.1 += b;
            }
            for (&tag, &(m, b, exact)) in &exit.counters.planned_by_tag {
                let slot = stats.planned_by_tag.entry(tag).or_insert((0, 0, true));
                slot.0 += m;
                slot.1 += b;
                slot.2 &= exact;
            }
            per_rank_collectives.push(exit.counters.collectives);
            stats.rank_times.push(exit.time);
        }
        let ranks_lost = check
            .as_ref()
            .is_some_and(|c| flags.recovery && c.killed_count() > 0);
        if ranks_lost {
            // After a recovered rank loss the counts legitimately differ:
            // the victim stopped early and the survivors re-ran work on the
            // shrunk world. Report the survivors' count.
            stats.collectives = per_rank_collectives.iter().copied().max().unwrap_or(0);
        } else {
            let total_collectives: u64 = per_rank_collectives.iter().sum();
            assert!(
                total_collectives % p as u64 == 0,
                "ranks disagree on collective participation (per-rank counts: \
                 {per_rank_collectives:?}) — rerun under Machine::run_checked for a diagnosis"
            );
            stats.collectives = total_collectives / p as u64;
        }
        let sim_time = stats.rank_times.iter().copied().fold(0.0, f64::max);
        RunOutput {
            results,
            sim_time,
            stats,
            injected_faults: fault.map(|s| s.take_log()).unwrap_or_default(),
        }
    }

    /// Post-join commcheck verdict: sweep the channels for leaks, surface
    /// the primary diagnosis, and suppress secondary aborts.
    fn verdict(
        check: &Arc<CheckState>,
        panic_slots: &mut [Option<Box<dyn std::any::Any + Send>>],
        exit_slots: &[Option<RankExit>],
        fired: &[crate::fault::InjectedFault],
    ) {
        let flags = check.flags();
        let killed = check.killed_ranks();
        // Late leak sweep: envelopes that arrived after a rank's own exit
        // drain are still sitting in its (kept-alive) channel.
        let mut leaks: Vec<LeakRecord> = check.take_leaks();
        for (to, exit) in exit_slots.iter().enumerate() {
            let Some(exit) = exit else { continue };
            while let Ok(env) = exit.receiver.try_recv() {
                // Reliability control frames are bookkeeping, not data.
                if env.tag == CTRL_TAG {
                    continue;
                }
                // A frame from a world older than the receiver's exit
                // epoch was deliberately discarded, not lost.
                if env.epoch < exit.epoch {
                    continue;
                }
                // A retransmission of something already delivered (seq
                // below the receiver's expectation at exit) was absorbed.
                if let (Some(expected), Some(seq)) = (exit.rel_expected.as_ref(), env.seq) {
                    if seq < expected[env.from] {
                        continue;
                    }
                }
                leaks.push(LeakRecord {
                    from: env.from,
                    to,
                    tag: env.tag,
                    bytes: env.payload.bytes(),
                    injected: false,
                });
            }
        }
        // Envelopes the fault injector discarded join the leak sweep: a
        // run that completed despite a drop still lost a message. Under
        // reliable delivery the drop was absorbed by a retransmission, so
        // it is no longer a loss.
        let injected_drops = check.take_injected_drops();
        if !flags.reliable {
            leaks.extend(injected_drops);
        }
        // Under recovery, traffic stranded at (or buffered by) a killed
        // rank is the expected wreckage of the loss, not a protocol error.
        if flags.recovery {
            leaks.retain(|l| !killed.contains(&l.to));
        }
        let failure = check.take_failure();
        // Drop secondary aborts and the primary's own unwind payload: the
        // stored report carries the diagnosis. User panics stay.
        let is_commcheck_panic = |payload: &Box<dyn std::any::Any + Send>| {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied());
            msg.is_some_and(|m| m.starts_with(SECONDARY_ABORT) || m.starts_with("commcheck:"))
        };
        for slot in panic_slots.iter_mut() {
            if slot.as_ref().is_some_and(is_commcheck_panic) {
                *slot = None;
            }
        }
        if failure.is_some() {
            // An injected kill is the *cause* of the stored diagnosis (the
            // survivors deadlocked on the dead rank); the report, which
            // names the killed rank, is the better message. Without a
            // stored failure the kill panic itself propagates below. The
            // board's status — not the panic-message prefix — identifies
            // the kill: the prefix check is only a fallback for payloads
            // that never reached the board.
            for (r, slot) in panic_slots.iter_mut().enumerate() {
                if killed.contains(&r) {
                    *slot = None;
                    continue;
                }
                let is_fault_kill = slot.as_ref().is_some_and(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .is_some_and(|m| m.starts_with(FAULT_KILL_PREFIX))
                });
                if is_fault_kill {
                    *slot = None;
                }
            }
        }
        // A RankLost unwind that nothing caught means recovery was enabled
        // but no recovery driver was wrapped around the workload; turn the
        // typed payload into an actionable message.
        for (r, slot) in panic_slots.iter_mut().enumerate() {
            let Some(payload) = slot.as_ref() else {
                continue;
            };
            if let Some(lost) = payload.downcast_ref::<RankLost>() {
                *slot = Some(Box::new(format!(
                    "rank {r} observed the loss of rank(s) {:?} (epoch {}) but no recovery \
                     driver caught the RankLost unwind — wrap the workload in a driver that \
                     calls Ctx::adopt_world / Ctx::recover_sync and re-plans",
                    lost.dead, lost.epoch
                )));
            }
        }
        let user_panicked = panic_slots.iter().any(Option::is_some);
        if user_panicked {
            // A genuine rank panic outranks the derived diagnosis (the
            // deadlock/abort was collateral damage of the panic). But when
            // the injector was active the panic may itself be the
            // downstream echo of a consumed fault — a duplicated envelope
            // read as fresh data, say — so annotate the payload with the
            // firing log to keep the root cause attributable.
            if !fired.is_empty() {
                for slot in panic_slots.iter_mut() {
                    let Some(payload) = slot.take() else { continue };
                    let msg = payload.downcast_ref::<String>().cloned().or_else(|| {
                        payload
                            .downcast_ref::<&'static str>()
                            .map(|s| s.to_string())
                    });
                    *slot = Some(match msg {
                        Some(m) => {
                            use std::fmt::Write;
                            let mut out = format!(
                                "{m}\nnote: fault injection fired {} fault(s) this run:\n",
                                fired.len()
                            );
                            for f in fired {
                                let _ = writeln!(
                                    out,
                                    "  rank {} op {}: {} {}",
                                    f.rank, f.op, f.kind, f.detail
                                );
                            }
                            Box::new(out)
                        }
                        None => payload,
                    });
                }
            }
            return;
        }
        if let Some(report) = failure {
            panic!("{report}");
        }
        if !leaks.is_empty() {
            let mut msg = String::from("commcheck: message leak — envelopes never received:\n");
            for l in &leaks {
                use std::fmt::Write;
                let note = if l.injected { " [injected drop]" } else { "" };
                let _ = writeln!(
                    msg,
                    "  from rank {} to rank {} tag {:#x} ({} bytes){note}",
                    l.from, l.to, l.tag, l.bytes
                );
            }
            panic!("{msg}");
        }
        // Backstop: collective sequences must agree even when traffic
        // happened to pair up (e.g. trailing collectives that never
        // exchanged a message at p == 1 cannot occur, but truncated
        // sequences at matching kinds can). Not applicable after a
        // recovered rank loss: the victim's log stops mid-sequence and
        // each survivor re-logs the collectives it aborted and re-ran, so
        // the logs legitimately differ per rank (epoch-tagged wire tags
        // already enforce agreement within each epoch).
        if !(flags.recovery && !killed.is_empty()) {
            if let Some(divergence) = collective_divergence(&check.coll_logs()) {
                panic!("commcheck: {divergence}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    #[test]
    fn ranks_get_distinct_ids_and_results_in_order() {
        let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| ctx.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn work_advances_the_clock() {
        let model = MachineModel::cray_t3d();
        let out = Machine::run_checked(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.work(6.7e6); // one simulated second of flops
            }
        });
        assert!(
            (out.sim_time - 1.0).abs() < 1e-9,
            "sim_time = {}",
            out.sim_time
        );
        assert_eq!(out.stats.flops, 6.7e6);
    }

    #[test]
    fn message_time_includes_latency_and_bandwidth() {
        let model = MachineModel {
            flop_time: 0.0,
            latency: 1.0,
            inv_bandwidth: 0.5,
            word_copy_time: 0.0,
        };
        let out = Machine::run_checked(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Payload::f64s(vec![0.0; 2])); // 16 bytes
                0.0
            } else {
                ctx.recv(0, 7);
                ctx.time()
            }
        });
        // 1.0 latency + 16 * 0.5 bandwidth = 9.0
        assert!(
            (out.results[1] - 9.0).abs() < 1e-12,
            "got {}",
            out.results[1]
        );
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 16);
    }

    #[test]
    fn sim_time_is_deterministic() {
        let run = || {
            Machine::run_checked(8, MachineModel::cray_t3d(), |ctx| {
                ctx.work(1000.0 * (ctx.rank() + 1) as f64);
                ctx.barrier();
                ctx.work(500.0);
                ctx.time()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.rank_times, b.stats.rank_times);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn poll_ms_parser_rejects_zero_and_garbage() {
        assert_eq!(parse_poll_ms("5"), Some(Duration::from_millis(5)));
        assert_eq!(parse_poll_ms(" 12 "), Some(Duration::from_millis(12)));
        assert_eq!(parse_poll_ms("0"), None);
        assert_eq!(parse_poll_ms("fast"), None);
        assert_eq!(parse_poll_ms("-3"), None);
    }

    #[test]
    fn builder_checked_run_matches_run_checked() {
        let out = Machine::builder(MachineModel::cray_t3d())
            .checked(true)
            .watchdog_poll(Duration::from_millis(2))
            .run(3, |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 4, Payload::u64s(vec![9]));
                    0
                } else if ctx.rank() == 1 {
                    ctx.recv(0, 4).into_u64()[0]
                } else {
                    0
                }
            });
        assert_eq!(out.results, vec![0, 9, 0]);
        assert!(out.injected_faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Machine::run(0, MachineModel::cray_t3d(), |_| ());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected_checked() {
        Machine::run_checked(0, MachineModel::cray_t3d(), |_| ());
    }
}
