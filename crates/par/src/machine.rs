//! The virtual machine: model constants, thread launch, and run statistics.

use crate::ctx::{Counters, Ctx, Envelope};
use crossbeam::channel;

/// Cost-model constants of the simulated machine.
///
/// Times are in seconds. The defaults in [`MachineModel::cray_t3d`] are
/// calibrated from the paper's own reported figures: the matrix–vector
/// product achieves ≈6.7 MFLOP/s per processor (§6), and the T3D's
/// message-passing layer had ≈30 µs latency and ≈50 MB/s achieved
/// point-to-point bandwidth for medium messages.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Seconds per floating-point operation.
    pub flop_time: f64,
    /// Per-message latency (seconds) — the "alpha" term.
    pub latency: f64,
    /// Seconds per byte on the wire — the "beta" term.
    pub inv_bandwidth: f64,
    /// Seconds per 8-byte word for local data motion (building/copying
    /// reduced matrices; the paper calls this "time spent essentially
    /// copying data", §4.2).
    pub word_copy_time: f64,
}

impl MachineModel {
    /// The paper's testbed. The T3D's interconnect had unusually low
    /// latency for its era (a few µs for shmem puts, ~10 µs through the
    /// message-passing layer) and ~120 MB/s achieved link bandwidth.
    pub fn cray_t3d() -> Self {
        MachineModel {
            flop_time: 1.0 / 6.7e6,
            latency: 10e-6,
            inv_bandwidth: 1.0 / 120e6,
            word_copy_time: 1.0 / 25e6,
        }
    }

    /// A machine with free communication — useful to isolate load balance
    /// from communication overhead in ablation benches.
    pub fn zero_comm() -> Self {
        MachineModel { latency: 0.0, inv_bandwidth: 0.0, ..Self::cray_t3d() }
    }

    /// A slow-network machine ("workstation cluster" in the paper's
    /// conclusions: ILUT* matters most there).
    pub fn workstation_cluster() -> Self {
        MachineModel {
            flop_time: 1.0 / 6.7e6,
            latency: 500e-6,
            inv_bandwidth: 1.0 / 8e6,
            word_copy_time: 1.0 / 25e6,
        }
    }
}

/// Aggregated run statistics.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Total messages sent across all ranks.
    pub messages: u64,
    /// Total bytes sent across all ranks.
    pub bytes: u64,
    /// Total floating-point operations performed (modelled).
    pub flops: f64,
    /// Total words moved by `copy_words`.
    pub words_copied: f64,
    /// Collective operations entered (each rank's participation counted once
    /// per rank, divided by `p` on aggregation).
    pub collectives: u64,
    /// Per-rank final logical clocks.
    pub rank_times: Vec<f64>,
}

/// The result of a [`Machine::run`] call.
#[derive(Clone, Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Simulated parallel time: the maximum logical clock over ranks.
    pub sim_time: f64,
    /// Aggregate counters.
    pub stats: MachineStats,
}

/// The SPMD launcher.
pub struct Machine;

impl Machine {
    /// Runs `f` on `p` ranks (one OS thread each) and gathers the results.
    ///
    /// The closure receives each rank's [`Ctx`]; ranks communicate only via
    /// the `Ctx`, so `f` must be `Sync` (it is shared) and the per-rank
    /// return values are collected in rank order.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank panics (the panic is propagated).
    pub fn run<R, F>(p: usize, model: MachineModel, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Sync,
    {
        assert!(p > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = channel::unbounded::<Envelope>();
            senders.push(s);
            receivers.push(r);
        }
        let mut slots: Vec<Option<(R, f64, Counters)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (rx, slot)) in receivers.into_iter().zip(slots.iter_mut()).enumerate() {
                let senders = senders.clone();
                let fref = &f;
                handles.push(scope.spawn(move || {
                    let mut ctx = Ctx::new(rank, p, model, senders, rx);
                    let r = fref(&mut ctx);
                    *slot = Some((r, ctx.time(), ctx.into_counters()));
                }));
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
        let mut results = Vec::with_capacity(p);
        let mut stats = MachineStats::default();
        let mut collective_calls = 0u64;
        for slot in slots {
            let (r, time, c) = slot.expect("rank did not finish");
            results.push(r);
            stats.messages += c.messages;
            stats.bytes += c.bytes;
            stats.flops += c.flops;
            stats.words_copied += c.words_copied;
            collective_calls += c.collectives;
            stats.rank_times.push(time);
        }
        stats.collectives = collective_calls / p as u64;
        let sim_time = stats.rank_times.iter().copied().fold(0.0, f64::max);
        RunOutput { results, sim_time, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    #[test]
    fn ranks_get_distinct_ids_and_results_in_order() {
        let out = Machine::run(4, MachineModel::cray_t3d(), |ctx| ctx.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn work_advances_the_clock() {
        let model = MachineModel::cray_t3d();
        let out = Machine::run(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.work(6.7e6); // one simulated second of flops
            }
        });
        assert!((out.sim_time - 1.0).abs() < 1e-9, "sim_time = {}", out.sim_time);
        assert_eq!(out.stats.flops, 6.7e6);
    }

    #[test]
    fn message_time_includes_latency_and_bandwidth() {
        let model = MachineModel { flop_time: 0.0, latency: 1.0, inv_bandwidth: 0.5, word_copy_time: 0.0 };
        let out = Machine::run(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Payload::F64(vec![0.0; 2])); // 16 bytes
                0.0
            } else {
                ctx.recv(0, 7);
                ctx.time()
            }
        });
        // 1.0 latency + 16 * 0.5 bandwidth = 9.0
        assert!((out.results[1] - 9.0).abs() < 1e-12, "got {}", out.results[1]);
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 16);
    }

    #[test]
    fn sim_time_is_deterministic() {
        let run = || {
            Machine::run(8, MachineModel::cray_t3d(), |ctx| {
                ctx.work(1000.0 * (ctx.rank() + 1) as f64);
                ctx.barrier();
                ctx.work(500.0);
                ctx.time()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.rank_times, b.stats.rank_times);
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Machine::run(0, MachineModel::cray_t3d(), |_| ());
    }
}
