//! Reliable delivery: per-link sequencing, receiver-side dedup, and
//! retransmission state.
//!
//! Opt-in via [`crate::MachineBuilder::reliable`]. Every cross-rank data
//! envelope is stamped with a per-`(sender, receiver)` sequence number at
//! send time and retained by the sender until cumulatively acknowledged.
//! The receiver linearizes each link at ingress: duplicates (seq below the
//! next expected) are discarded, out-of-order frames (a gap below them) are
//! parked in a stash, and in-order frames are released together with any
//! consecutive stashed successors. A receiver that waits too long sends a
//! **NACK** naming the sequence number it is missing; the sender re-ships
//! the retained tail. The protocol's own traffic (ACK/NACK control frames
//! and retransmissions) is attributed to the dedicated [`ACK_TAG`] counter
//! and priced exactly in the planned-traffic ledger, so `bench-verify
//! --slack 0` gates it like any data-plane tag.
//!
//! The state machine here is deliberately free of `Ctx` plumbing: it owns
//! the sequence/stash/retention bookkeeping and nothing else, so it can be
//! unit-tested without a machine. The driving logic (when to NACK, how the
//! control frames travel) lives in [`crate::ctx`]; the protocol invariants
//! are documented in DESIGN §14.

use crate::ctx::Envelope;
use std::collections::{BTreeMap, VecDeque};

/// Stats tag for all reliable-delivery traffic: acks, nacks, and resends.
/// Numerically `9 * pilut_core::dist::exchange::tags::STRIDE` — the core
/// crate names it `"ack"`; `par` cannot depend on core, so the value is
/// duplicated here (the tag-namespace test in core pins the two together).
pub const ACK_TAG: u64 = 9 << 40;

/// Stats tag (and wire-tag base — the epoch is added) of the rank-loss
/// recovery agreement ring. Core names it `"recover"`.
pub const RECOVER_TAG: u64 = 10 << 40;

/// How a raw data frame read off the wire relates to its link's sequence.
pub(crate) enum Ingress {
    /// In order: deliver this frame (and any consecutive stashed
    /// successors, returned separately).
    Deliver,
    /// Seq below expected: an absorbed duplicate or retransmission.
    Duplicate,
    /// Seq above expected: parked until the gap below it fills.
    Stashed,
}

/// Per-link sequencing state for one rank. Indexed by peer rank on both
/// the send side (retention) and the receive side (expected/stash).
pub(crate) struct RelState {
    /// Next sequence number to assign per destination (sequences start at 1).
    next_seq: Vec<u64>,
    /// Next expected sequence number per source.
    expected: Vec<u64>,
    /// Out-of-order frames parked per source until the gap below them fills.
    stash: Vec<BTreeMap<u64, Envelope>>,
    /// Sent-and-unacknowledged frames per destination, ascending seq.
    retained: Vec<VecDeque<Envelope>>,
    /// In-order deliveries per source since the last cumulative ACK.
    since_ack: Vec<u64>,
}

/// Cumulative-ACK cadence: one ACK per this many in-order deliveries on a
/// link. Bounds sender retention at roughly this many frames per link —
/// which is also why it is public: the registered-buffer pool must warm
/// each link deep enough to cover the retention window, or the steady
/// state allocates every frame the window holds hostage.
pub const ACK_EVERY: u64 = 64;

impl RelState {
    pub(crate) fn new(p: usize) -> Self {
        RelState {
            next_seq: vec![1; p],
            expected: vec![1; p],
            stash: (0..p).map(|_| BTreeMap::new()).collect(),
            retained: (0..p).map(|_| VecDeque::new()).collect(),
            since_ack: vec![0; p],
        }
    }

    /// Assigns the next sequence number on the link to `to`.
    pub(crate) fn assign(&mut self, to: usize) -> u64 {
        let s = self.next_seq[to];
        self.next_seq[to] += 1;
        s
    }

    /// Retains a sent frame until its link's cumulative ACK passes it.
    pub(crate) fn retain(&mut self, env: Envelope) {
        self.retained[env.to].push_back(env);
    }

    /// Applies a cumulative ACK: everything on the link to `from` with
    /// `seq <= upto` is delivered and can be forgotten. Released frames
    /// are [`recycle`](crate::payload::Payload::recycle)d, not just
    /// dropped: by ACK time the receiver has long read and released its
    /// handle, so retention holds the *last* reference to the payload —
    /// for pooled replay buffers this is the moment the buffer returns to
    /// the registered pool instead of dying with the frame.
    pub(crate) fn on_ack(&mut self, from: usize, upto: u64) {
        let q = &mut self.retained[from];
        while q.front().is_some_and(|e| e.seq.is_some_and(|s| s <= upto)) {
            if let Some(env) = q.pop_front() {
                env.payload.recycle();
            }
        }
    }

    /// Clones of the retained frames on the link to `peer` with
    /// `seq >= from_seq`, in sequence order — the NACK response.
    pub(crate) fn resend_from(&self, peer: usize, from_seq: u64) -> Vec<Envelope> {
        self.retained[peer]
            .iter()
            .filter(|e| e.seq.is_some_and(|s| s >= from_seq))
            .cloned()
            .collect()
    }

    /// All retained (never-acknowledged) frames, for the exit flush: a rank
    /// leaving the machine re-ships its unacknowledged tail so a frame
    /// dropped after the receiver's last NACK window cannot strand it.
    /// Receivers discard the re-shipped frames they already delivered.
    pub(crate) fn unacked(&self) -> Vec<Envelope> {
        self.retained.iter().flatten().cloned().collect()
    }

    /// Classifies a raw data frame against its link sequence and updates
    /// the link state. On [`Ingress::Deliver`] the caller must also drain
    /// [`RelState::release`] for the consecutive stashed successors.
    pub(crate) fn ingress(&mut self, env: &Envelope) -> Ingress {
        let Some(seq) = env.seq else {
            return Ingress::Deliver; // unsequenced (control/self) — pass through
        };
        let from = env.from;
        if seq < self.expected[from] {
            return Ingress::Duplicate;
        }
        if seq > self.expected[from] {
            return Ingress::Stashed;
        }
        self.expected[from] += 1;
        self.since_ack[from] += 1;
        Ingress::Deliver
    }

    /// Parks an out-of-order frame (idempotent for duplicate stashes).
    pub(crate) fn park(&mut self, env: Envelope) {
        // lint: allow(unwrap): ingress classified the frame as Stashed, so seq is present
        let seq = env.seq.expect("stashed frames carry a sequence number");
        self.stash[env.from].entry(seq).or_insert(env);
    }

    /// Releases the consecutive run of stashed frames now deliverable on
    /// the link from `from`, advancing the expectation past each.
    pub(crate) fn release(&mut self, from: usize) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(env) = self.stash[from].remove(&self.expected[from]) {
            self.expected[from] += 1;
            self.since_ack[from] += 1;
            out.push(env);
        }
        out
    }

    /// True when the ACK cadence says the link from `from` deserves a
    /// cumulative ACK now; resets the cadence counter.
    pub(crate) fn ack_due(&mut self, from: usize) -> bool {
        if self.since_ack[from] >= ACK_EVERY {
            self.since_ack[from] = 0;
            true
        } else {
            false
        }
    }

    /// Highest delivered sequence number on the link from `from` — the
    /// cumulative-ACK value.
    pub(crate) fn delivered_upto(&self, from: usize) -> u64 {
        self.expected[from] - 1
    }

    /// Next expected sequence per source — published at rank exit so the
    /// machine's late leak sweep can tell an absorbed retransmission
    /// (seq below expected) from a genuinely undelivered frame.
    pub(crate) fn expected_snapshot(&self) -> Vec<u64> {
        self.expected.clone()
    }

    /// Sources with a parked gap right now.
    pub(crate) fn gapped_sources(&self) -> Vec<usize> {
        (0..self.stash.len())
            .filter(|&s| !self.stash[s].is_empty())
            .collect()
    }

    /// Frames still parked behind a gap — genuine leaks if present at exit.
    pub(crate) fn drain_stash(&mut self) -> Vec<Envelope> {
        let mut out = Vec::new();
        for s in &mut self.stash {
            out.extend(std::mem::take(s).into_values());
        }
        out
    }

    /// Forgets everything: sequences, stashes, retention, cadence. Used by
    /// rank-loss recovery when a new epoch begins — the whole in-flight
    /// state of the old world is garbage by construction.
    pub(crate) fn reset(&mut self) {
        let p = self.next_seq.len();
        *self = RelState::new(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn env(from: usize, to: usize, seq: u64) -> Envelope {
        Envelope {
            from,
            to,
            tag: 7,
            time: 0.0,
            coll_kind: None,
            vclock: None,
            seq: Some(seq),
            epoch: 0,
            payload: Payload::u64s(vec![seq]),
        }
    }

    #[test]
    fn in_order_frames_deliver_and_advance() {
        let mut rel = RelState::new(2);
        assert!(matches!(rel.ingress(&env(1, 0, 1)), Ingress::Deliver));
        assert!(matches!(rel.ingress(&env(1, 0, 2)), Ingress::Deliver));
        assert_eq!(rel.delivered_upto(1), 2);
    }

    #[test]
    fn duplicates_are_discarded_and_gaps_parked() {
        let mut rel = RelState::new(2);
        assert!(matches!(rel.ingress(&env(1, 0, 1)), Ingress::Deliver));
        // Replay of seq 1: duplicate.
        assert!(matches!(rel.ingress(&env(1, 0, 1)), Ingress::Duplicate));
        // Seq 3 with 2 missing: parked; nothing released yet.
        let e3 = env(1, 0, 3);
        assert!(matches!(rel.ingress(&e3), Ingress::Stashed));
        rel.park(e3);
        assert_eq!(rel.gapped_sources(), vec![1]);
        assert!(rel.release(1).is_empty());
        // Seq 2 fills the gap: it delivers and 3 is released behind it.
        assert!(matches!(rel.ingress(&env(1, 0, 2)), Ingress::Deliver));
        let released = rel.release(1);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].seq, Some(3));
        assert!(rel.gapped_sources().is_empty());
        assert_eq!(rel.delivered_upto(1), 3);
    }

    #[test]
    fn retention_serves_nacks_until_acked() {
        let mut rel = RelState::new(3);
        for s in 1..=4 {
            let mut e = env(0, 2, 0);
            e.seq = Some(rel.assign(2));
            assert_eq!(e.seq, Some(s));
            rel.retain(e);
        }
        assert_eq!(rel.resend_from(2, 3).len(), 2);
        rel.on_ack(2, 3);
        assert_eq!(rel.resend_from(2, 1).len(), 1);
        assert_eq!(rel.unacked().len(), 1);
        rel.on_ack(2, 4);
        assert!(rel.unacked().is_empty());
    }

    #[test]
    fn ack_cadence_fires_every_window() {
        let mut rel = RelState::new(2);
        for s in 1..=ACK_EVERY {
            assert!(matches!(rel.ingress(&env(1, 0, s)), Ingress::Deliver));
        }
        assert!(rel.ack_due(1));
        assert!(!rel.ack_due(1), "cadence counter reset after the ack");
    }

    #[test]
    fn reset_forgets_everything() {
        let mut rel = RelState::new(2);
        let mut e = env(0, 1, 0);
        e.seq = Some(rel.assign(1));
        rel.retain(e);
        let g = env(1, 0, 5);
        assert!(matches!(rel.ingress(&g), Ingress::Stashed));
        rel.park(g);
        rel.reset();
        assert!(rel.unacked().is_empty());
        assert!(rel.gapped_sources().is_empty());
        assert_eq!(rel.assign(1), 1, "sequences restart at 1");
    }
}
