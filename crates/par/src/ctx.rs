//! Per-rank execution context: point-to-point messaging and the logical
//! clock.

use crate::check::{CheckState, CollKind, LeakRecord, RankLost, RankStatus, RunFlags};
use crate::fault::{FaultSession, MessageFate, RankFate, FAULT_KILL_PREFIX};
use crate::hb::{HbState, RecvMode};
use crate::machine::MachineModel;
use crate::payload::Payload;
use crate::rel::{Ingress, RelState, ACK_TAG, RECOVER_TAG};
use crate::sched::{match_kind, SchedSession, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Default watchdog poll: how often a blocked rank in checked mode wakes to
/// run the watchdog predicate. Pure overhead tuning: correctness does not
/// depend on it. Overridable per run via
/// [`crate::MachineBuilder::watchdog_poll`] or the `PILUT_WATCHDOG_POLL_MS`
/// environment variable.
pub(crate) const DEFAULT_CHECK_POLL: Duration = Duration::from_millis(1);

/// Idle watchdog polls before a blocked reliable receiver sends its first
/// NACK round asking senders to re-ship what it is missing.
const NACK_START_POLLS: u32 = 4;

/// NACK rounds per blocked-receive episode, with exponential backoff
/// between rounds. Once the budget is exhausted the episode is marked on
/// the board and the deadlock watchdog is allowed to fire: a sender that
/// is alive answers a NACK within about one poll, so an exhausted budget
/// means the frame was never sent — a genuine protocol deadlock.
const MAX_NACKS: u32 = 5;

/// Control-frame kinds for the reliable-delivery protocol: a cumulative
/// acknowledgement ("everything up to seq arrived") and a resend request
/// ("re-ship from seq").
const CTRL_ACK: u64 = 0;
const CTRL_NACK: u64 = 1;

/// Wire tag of reliability control frames (ACK/NACK). Lives in the
/// reserved range so user tags can never collide; bit 47 keeps it clear of
/// the collective sequence-number namespace (which stays far below 2^47
/// even with the recovery epoch folded in).
pub(crate) const CTRL_TAG: u64 = Ctx::RESERVED_TAG_BASE | (1 << 47);

/// One message in flight.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending rank.
    pub from: usize,
    /// Destination rank.
    pub to: usize,
    /// Message tag (reserved range carries collectives).
    pub tag: u64,
    /// Sender's logical clock at send time.
    pub time: f64,
    /// Collective op piggybacked on reserved-tag traffic (order checking).
    pub coll_kind: Option<CollKind>,
    /// Sender's vector clock at send time — the happens-before stamp the
    /// match-order race detector compares (see [`crate::hb`]). `None` on
    /// the zero-overhead production path.
    pub vclock: Option<Vec<u64>>,
    /// Per-link sequence number under reliable delivery (see
    /// [`crate::rel`]); `None` for self-sends, control frames, and
    /// unreliable runs.
    pub seq: Option<u64>,
    /// Sender's recovery epoch at send time. Receivers discard frames from
    /// older epochs (a world that no longer exists) and park frames from
    /// newer ones until they adopt the loss themselves.
    pub epoch: u64,
    /// The data.
    pub payload: Payload,
}

/// Per-rank cost counters, aggregated by the machine after the run.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent (simulated wire size).
    pub bytes: u64,
    /// Floating-point operations charged via [`Ctx::work`].
    pub flops: f64,
    /// Words moved via [`Ctx::copy_words`].
    pub words_copied: f64,
    /// Collective operations entered.
    pub collectives: u64,
    /// Per-tag `(messages, bytes)` breakdown of everything counted in
    /// `messages`/`bytes`. User tags are keyed by their literal value; all
    /// collective traffic (whose tags embed a per-call sequence number) is
    /// folded under the single key [`Ctx::RESERVED_TAG_BASE`].
    pub by_tag: BTreeMap<u64, (u64, u64)>,
    /// Per-tag `(messages, bytes, exact)` *predicted* by the static plan
    /// analysis ([`Ctx::note_planned`]) before the traffic was sent. The
    /// flag records whether every prediction under the tag was byte-exact;
    /// inexact tags (producer-defined payloads) predict message counts
    /// only. The bench harness gates measured counters against this.
    pub planned_by_tag: BTreeMap<u64, (u64, u64, bool)>,
}

impl Counters {
    /// Records one `bytes`-sized message on `tag` in the per-tag breakdown
    /// (the aggregate `messages`/`bytes` fields are bumped by the caller).
    fn note_tag(&mut self, tag: u64, bytes: u64) {
        let key = if tag < Ctx::RESERVED_TAG_BASE {
            tag
        } else {
            Ctx::RESERVED_TAG_BASE
        };
        let slot = self.by_tag.entry(key).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += bytes;
    }
}

/// What a rank hands back to the machine when it finishes: its counters,
/// plus everything needed for the commcheck leak sweep.
pub(crate) struct RankExit {
    pub counters: Counters,
    pub time: f64,
    /// Under reliable delivery, the next expected sequence number per
    /// source at exit — lets the machine's late leak sweep tell an
    /// absorbed retransmission (seq below expected) from a genuinely
    /// undelivered frame.
    pub rel_expected: Option<Vec<u64>>,
    /// The rank's recovery epoch at exit; late frames from older epochs
    /// are not leaks.
    pub epoch: u64,
    /// The rank's channel, kept alive so the machine can sweep late
    /// arrivals after every rank has finished. Buffered-but-unmatched
    /// envelopes were already reported to the board by `into_exit`.
    pub receiver: Receiver<Envelope>,
}

/// A rank's handle onto the virtual machine.
///
/// All communication is matched by `(from, tag)`. Tags below
/// [`Ctx::RESERVED_TAG_BASE`] are free for user protocols; the collectives
/// use tags above it, namespaced by an internal sequence number, so user
/// traffic can never be confused with collective traffic as long as every
/// rank calls the collectives in the same program order (the usual SPMD
/// contract). [`crate::Machine::run_checked`] verifies that contract.
pub struct Ctx {
    rank: usize,
    nprocs: usize,
    model: MachineModel,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Received-but-unmatched messages.
    pending: VecDeque<Envelope>,
    time: f64,
    pub(crate) counters: Counters,
    /// Collective sequence number (same on every rank by SPMD order).
    pub(crate) coll_seq: u64,
    /// The collective currently executing on this rank, if any.
    pub(crate) current_coll: Option<CollKind>,
    /// Source rank of the most recently accepted envelope; the checked
    /// any-source receive learns the source only at accept time.
    last_accepted_from: usize,
    /// Commcheck board; `None` on the zero-overhead production path.
    check: Option<Arc<CheckState>>,
    /// Vector-clock + match-order race state; allocated only in checked
    /// mode, so production runs carry no clocks (see [`crate::hb`]).
    hb: Option<HbState>,
    /// Watchdog poll interval used by the checked receive loop.
    poll: Duration,
    /// Fault-injection session; `None` unless a plan was installed via
    /// [`crate::MachineBuilder::fault_plan`].
    fault: Option<FaultSession>,
    /// Schedule-forcing session; `None` unless a plan was installed via
    /// [`crate::MachineBuilder::schedule`] (see [`crate::sched`]).
    sched: Option<SchedSession>,
    /// Envelopes held back by a `Reorder` fault, flushed at the next
    /// send/receive/exit so injection can never destroy liveness.
    held: Vec<Envelope>,
    /// Set when this rank was killed by injection, so exit reporting can
    /// publish `Killed` instead of a plain panic.
    killed: bool,
    /// Static run configuration: reliable delivery and rank-loss recovery.
    flags: RunFlags,
    /// Per-link sequence/stash/retention state; `Some` iff reliable
    /// delivery is enabled (see [`crate::rel`]).
    rel: Option<RelState>,
    /// Liveness per rank in the current epoch. All-true until a rank loss
    /// is adopted in recovery mode.
    pub(crate) alive: Vec<bool>,
    /// Recovery epoch, equal to the number of adopted rank losses. Stamped
    /// on every envelope so frames from a dead world are discarded at
    /// ingress.
    epoch: u64,
    /// The ranks this rank has adopted as dead.
    dead: Vec<usize>,
    /// Cached slot map for collectives: the sorted alive ranks as of
    /// [`Ctx::slot_cache_epoch`]. Scalar collectives run every GMRES inner
    /// iteration; indexing this cache instead of collecting a fresh map
    /// keeps them off the heap. Rebuilt (under the audit harness — a
    /// topology table, DESIGN §16) whenever the recovery epoch moves.
    pub(crate) slot_cache: Vec<usize>,
    /// Epoch [`Ctx::slot_cache`] was built for; `u64::MAX` = never built.
    pub(crate) slot_cache_epoch: u64,
    /// Frames that arrived stamped with a *future* epoch (their sender
    /// adopted a loss this rank has not yet detected); replayed through
    /// ingress once `adopt_world` resets to the new epoch.
    future_frames: Vec<Envelope>,
}

impl Ctx {
    /// Tags at or above this value are reserved for collectives.
    pub const RESERVED_TAG_BASE: u64 = 1 << 48;

    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        model: MachineModel,
        senders: Vec<Sender<Envelope>>,
        receiver: Receiver<Envelope>,
        check: Option<Arc<CheckState>>,
        poll: Duration,
        fault: Option<FaultSession>,
        sched: Option<SchedSession>,
        flags: RunFlags,
    ) -> Self {
        assert!(
            (!flags.reliable && !flags.recovery) || check.is_some(),
            "reliable delivery and rank-loss recovery require checked mode"
        );
        let mut hb = check.is_some().then(|| HbState::new(rank, nprocs));
        if let (Some(hb), true) = (hb.as_mut(), flags.reliable) {
            // Reliable links are FIFO per (sender, receiver): same-sender
            // match order is fixed, so it is no longer a race.
            hb.set_fifo(true);
        }
        Ctx {
            rank,
            nprocs,
            model,
            senders,
            receiver,
            pending: VecDeque::new(),
            time: 0.0,
            counters: Counters::default(),
            coll_seq: 0,
            current_coll: None,
            last_accepted_from: usize::MAX,
            check,
            hb,
            poll,
            fault,
            sched,
            held: Vec::new(),
            killed: false,
            flags,
            rel: flags.reliable.then(|| RelState::new(nprocs)),
            alive: vec![true; nprocs],
            epoch: 0,
            dead: Vec::new(),
            slot_cache: Vec::new(),
            slot_cache_epoch: u64::MAX,
            future_frames: Vec::new(),
        }
    }

    /// This rank's id, in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The machine's cost-model constants.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// The rank's current logical clock, in simulated seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    pub(crate) fn check(&self) -> Option<&Arc<CheckState>> {
        self.check.as_ref()
    }

    /// Whether this run carries the commcheck verification layer. Protocol
    /// code uses it to gate expensive self-checks (like
    /// `CommPlan::verify`) to checked runs only.
    pub fn is_checked(&self) -> bool {
        self.check.is_some()
    }

    /// True when per-link reliable delivery is armed (see [`crate::rel`]).
    /// Plan builders use this to size registered-buffer warm-up: a
    /// reliable sender retains every frame until the cumulative ACK
    /// passes it, so up to [`ACK_EVERY`](crate::ACK_EVERY) pooled buffers
    /// per link are in flight beyond the plain send/recv skew.
    pub fn is_reliable(&self) -> bool {
        self.rel.is_some()
    }

    /// True when this rank was killed by fault injection. A recovery
    /// driver that catches the kill unwind uses this to tell "I am the
    /// victim" from "a peer died".
    pub fn killed(&self) -> bool {
        self.killed
    }

    /// The current recovery epoch: the number of rank losses this rank has
    /// adopted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether rank `r` is alive in the current epoch.
    pub fn is_alive(&self, r: usize) -> bool {
        self.alive[r]
    }

    /// Number of ranks alive in the current epoch.
    pub fn n_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The ranks this rank has adopted as dead, ascending.
    pub fn dead_ranks(&self) -> &[usize] {
        &self.dead
    }

    /// Tears the context down at rank exit, reporting any leftover
    /// envelopes to the commcheck board. `panicked` records whether the
    /// rank closure unwound instead of returning.
    pub(crate) fn into_exit(mut self, panicked: bool) -> RankExit {
        // Release any reorder-held envelopes so the injector never turns a
        // benign reorder into a lost message.
        self.flush_held();
        // Exit flush: when faults are being injected, a frame may have been
        // dropped after the receiver's last NACK window — and once this
        // rank's thread is gone, no resend can ever happen. Re-ship the
        // whole unacknowledged tail (receivers dedup what they already
        // delivered). Skipped on fault-free runs, where nothing is ever
        // lost, so the steady-state overhead stays zero.
        if !panicked && !self.killed && self.fault.is_some() {
            if let Some(rel) = &self.rel {
                for env in rel.unacked() {
                    self.resend(env);
                }
            }
        }
        // Drain the channel so late-but-already-sent envelopes are visible.
        let ingress = self.rel.is_some() || self.flags.recovery;
        while let Ok(env) = self.receiver.try_recv() {
            if let Some(check) = &self.check {
                check.note_drain(self.rank);
            }
            if ingress {
                // Honour late control frames (a peer's NACK can still
                // trigger a resend here) and dedup late retransmissions.
                let (ready, _) = self.ingress_frame(env);
                self.pending.extend(ready);
            } else {
                self.pending.push_back(env);
            }
        }
        // Frames still parked behind a sequence gap were never delivered:
        // surface them to the leak sweep.
        if let Some(rel) = self.rel.as_mut() {
            let parked = rel.drain_stash();
            self.pending.extend(parked);
        }
        if let Some(check) = &self.check {
            check.record_leaks(self.pending.iter().map(|e| LeakRecord {
                from: e.from,
                to: e.to,
                tag: e.tag,
                bytes: e.payload.bytes(),
                injected: false,
            }));
            let exit_status = if self.killed {
                RankStatus::Killed
            } else if panicked {
                RankStatus::Panicked
            } else {
                RankStatus::Finished
            };
            check.set_status(self.rank, exit_status);
        }
        RankExit {
            counters: self.counters,
            time: self.time,
            rel_expected: self.rel.as_ref().map(RelState::expected_snapshot),
            epoch: self.epoch,
            receiver: self.receiver,
        }
    }

    /// Charges `flops` floating-point operations to the clock.
    pub fn work(&mut self, flops: f64) {
        debug_assert!(flops >= 0.0);
        self.time += flops * self.model.flop_time;
        self.counters.flops += flops;
    }

    /// Charges the motion of `words` 8-byte words (copying rows around while
    /// forming reduced matrices, permuting, etc.).
    pub fn copy_words(&mut self, words: f64) {
        debug_assert!(words >= 0.0);
        self.time += words * self.model.word_copy_time;
        self.counters.words_copied += words;
    }

    /// Advances the clock directly (rarely needed; prefer `work`/`copy_words`).
    pub fn elapse(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.time += seconds;
    }

    /// Records a *prediction* of upcoming traffic under `stats_tag`:
    /// `messages` sends totalling `bytes` bytes from this rank. `exact`
    /// marks the byte count authoritative (values-only rounds whose sizes
    /// the plan fixes); producer-defined rounds pass `exact = false` and
    /// zero bytes, predicting message counts only. The machine aggregates
    /// the ledger into `MachineStats::planned_by_tag`, where the bench
    /// harness cross-checks it against the measured per-tag counters —
    /// the runtime half of the static `CommPlan` analysis.
    pub fn note_planned(&mut self, stats_tag: u64, messages: u64, bytes: u64, exact: bool) {
        let slot = self
            .counters
            .planned_by_tag
            .entry(stats_tag)
            .or_insert((0, 0, true));
        slot.0 += messages;
        slot.1 += bytes;
        slot.2 &= exact;
    }

    /// Sends `payload` to rank `to` with a user `tag`
    /// (`tag < RESERVED_TAG_BASE`).
    pub fn send(&mut self, to: usize, tag: u64, payload: Payload) {
        assert!(
            tag < Self::RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.send_internal(to, tag, tag, payload);
    }

    /// Sends under `wire_tag` while attributing the traffic to `stats_tag`
    /// in the per-tag counters. Protocols that derive a fresh wire tag per
    /// round (so reordered rounds can never be confused — the same trick
    /// the collectives play with their sequence numbers) use this to keep
    /// the whole protocol's volume under one stable counter key.
    pub fn send_as(&mut self, to: usize, wire_tag: u64, stats_tag: u64, payload: Payload) {
        assert!(
            wire_tag < Self::RESERVED_TAG_BASE,
            "tag {wire_tag} is reserved for collectives"
        );
        self.send_internal(to, wire_tag, stats_tag, payload);
    }

    pub(crate) fn send_internal(&mut self, to: usize, tag: u64, stats_tag: u64, payload: Payload) {
        // The whole transport op is harness-owned for the allocation
        // audit: channel nodes, retained-frame clones, and counter maps
        // stand in for MPI/NIC-owned resources a real steady state never
        // allocates (DESIGN §16). Payload *data* buffers are built by the
        // caller, outside this scope, and stay fully audited.
        let _audit = pilut_allocaudit::harness();
        assert!(to < self.nprocs, "rank {to} out of range");
        self.check_rank_loss();
        self.fault_point();
        assert!(
            self.alive[to],
            "send to rank {to}, which was lost in a previous epoch"
        );
        self.counters.messages += 1;
        self.counters.bytes += payload.bytes() as u64;
        self.counters.note_tag(stats_tag, payload.bytes() as u64);
        let coll_kind = if tag >= Self::RESERVED_TAG_BASE {
            self.current_coll
        } else {
            None
        };
        let mut env = Envelope {
            from: self.rank,
            to,
            tag,
            time: self.time,
            coll_kind,
            vclock: self.hb.as_mut().map(HbState::stamp_send),
            seq: None,
            epoch: self.epoch,
            payload,
        };
        if to == self.rank {
            // Self-sends are local queue operations: no wire cost and no
            // injection (message faults model the wire).
            self.pending.push_back(env);
            return;
        }
        if let Some(rel) = self.rel.as_mut() {
            // Sequence the frame and retain a clone until the link's
            // cumulative ACK passes it — even a Drop fate consumes the
            // sequence number, so the receiver sees a gap and NACKs.
            env.seq = Some(rel.assign(to));
            rel.retain(env.clone());
        }
        let fate = match self.fault.as_mut() {
            Some(f) => f.on_send(to, tag),
            None => MessageFate::Deliver,
        };
        match fate {
            MessageFate::Deliver => self.ship(env),
            MessageFate::DeliverDelayed(seconds) => {
                env.time += seconds;
                self.ship(env);
            }
            MessageFate::Drop => {
                // The envelope never reaches the wire; record it on the
                // board so the deadlock report / leak sweep can name it.
                if let Some(check) = &self.check {
                    check.record_injected_drop(LeakRecord {
                        from: self.rank,
                        to,
                        tag,
                        bytes: env.payload.bytes(),
                        injected: true,
                    });
                }
                return;
            }
            MessageFate::Duplicate => {
                // The duplicate carries the same sequence number, so a
                // reliable receiver discards it at ingress.
                let dup = env.clone();
                self.counters.messages += 1;
                self.counters.bytes += dup.payload.bytes() as u64;
                self.counters.note_tag(dup.tag, dup.payload.bytes() as u64);
                self.ship(env);
                self.ship(dup);
            }
            MessageFate::Hold => {
                self.held.push(env);
                return;
            }
        }
        // Anything held back by a Reorder fault departs *after* the
        // envelope just shipped — that is the reordering.
        self.flush_held();
    }

    /// Hands one envelope to the destination channel, keeping the board's
    /// in-flight count ahead of the wire.
    fn ship(&mut self, env: Envelope) {
        if let Some(check) = &self.check {
            // Count the envelope as in flight *before* it enters the
            // channel so the watchdog can never undercount.
            check.note_send(env.to);
        }
        // lint: allow(unwrap): the machine keeps every receiver alive until all ranks join
        self.senders[env.to].send(env).expect("receiver hung up");
    }

    /// Releases reorder-held envelopes. Called after every real send, when
    /// the rank is about to block in a receive, and at rank exit.
    fn flush_held(&mut self) {
        for env in std::mem::take(&mut self.held) {
            self.ship(env);
        }
    }

    /// Sends one reliability control frame (ACK or NACK). Control traffic
    /// bypasses fault injection — the protocol's own frames are the
    /// mechanism that absorbs injected faults, so injecting into them
    /// would only lengthen recovery, never change the outcome — and is
    /// counted (and exactly priced) under [`ACK_TAG`].
    fn send_ctrl(&mut self, to: usize, kind: u64, val: u64) {
        let payload = Payload::u64s(vec![kind, val]);
        let bytes = payload.bytes() as u64;
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.note_tag(ACK_TAG, bytes);
        self.note_planned(ACK_TAG, 1, bytes, true);
        let env = Envelope {
            from: self.rank,
            to,
            tag: CTRL_TAG,
            time: self.time,
            coll_kind: None,
            vclock: None,
            seq: None,
            epoch: self.epoch,
            payload,
        };
        self.ship(env);
    }

    /// Re-ships a retained frame in answer to a NACK (or in the exit
    /// flush). Bypasses fault injection for the same reason control frames
    /// do; the extra traffic is counted and exactly priced under
    /// [`ACK_TAG`] (the original send already paid under its own tag).
    fn resend(&mut self, env: Envelope) {
        let bytes = env.payload.bytes() as u64;
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.note_tag(ACK_TAG, bytes);
        self.note_planned(ACK_TAG, 1, bytes, true);
        self.ship(env);
    }

    /// One NACK round from a blocked receive: ask the most suspicious
    /// senders to re-ship from the first missing sequence number. Sources
    /// with a parked gap are asked first (the gap names the exact missing
    /// frame); a directed receive falls back to its source, a wildcard to
    /// every live peer. A spurious NACK (the frame is merely slow) is
    /// harmless: the sender retains nothing at or past the requested
    /// sequence and resends nothing, or resends frames the receiver then
    /// discards as duplicates.
    fn send_nacks(&mut self, from: Option<usize>) {
        let Some(rel) = self.rel.as_ref() else { return };
        let gapped = rel.gapped_sources();
        let targets: Vec<usize> = if gapped.is_empty() {
            match from {
                Some(f) if f != self.rank => vec![f],
                Some(_) => Vec::new(),
                None => (0..self.nprocs).filter(|&r| r != self.rank).collect(),
            }
        } else {
            gapped
        };
        let wants: Vec<(usize, u64)> = targets
            .iter()
            .filter(|&&t| self.alive[t])
            .map(|&t| (t, rel.delivered_upto(t) + 1))
            .collect();
        for (t, want) in wants {
            self.send_ctrl(t, CTRL_NACK, want);
        }
    }

    /// Classifies one frame read off the channel against the reliability
    /// and recovery layers. Returns the frames now deliverable, in link
    /// order, plus a progress flag: `true` when the frame carried new data
    /// (delivered or parked a gap), `false` for control frames, absorbed
    /// duplicates, and stale-epoch traffic. The caller uses the flag to
    /// decide whether a blocked receive's idle clock resets — control
    /// chatter between two deadlocked ranks must not suppress the
    /// watchdog forever.
    fn ingress_frame(&mut self, env: Envelope) -> (Vec<Envelope>, bool) {
        if env.tag == CTRL_TAG {
            if env.epoch == self.epoch {
                self.handle_ctrl(&env);
            }
            return (Vec::new(), false);
        }
        if env.epoch < self.epoch {
            // A frame from a world that no longer exists.
            return (Vec::new(), false);
        }
        if env.epoch > self.epoch {
            // The sender already adopted a rank loss this rank has not
            // detected yet; park the frame until `adopt_world` catches up.
            self.future_frames.push(env);
            return (Vec::new(), false);
        }
        let verdict = match self.rel.as_mut() {
            None => return (vec![env], true),
            Some(rel) => rel.ingress(&env),
        };
        match verdict {
            Ingress::Deliver => {
                let from = env.from;
                let mut out = vec![env];
                let ack = {
                    // lint: allow(unwrap): verdict came from the same Some(rel)
                    let rel = self.rel.as_mut().expect("rel present");
                    out.extend(rel.release(from));
                    rel.ack_due(from).then(|| rel.delivered_upto(from))
                };
                if let Some(upto) = ack {
                    self.send_ctrl(from, CTRL_ACK, upto);
                }
                (out, true)
            }
            Ingress::Duplicate => (Vec::new(), false),
            Ingress::Stashed => {
                // lint: allow(unwrap): verdict came from the same Some(rel)
                self.rel.as_mut().expect("rel present").park(env);
                (Vec::new(), true)
            }
        }
    }

    /// Processes one ACK/NACK control frame.
    fn handle_ctrl(&mut self, env: &Envelope) {
        let body = match &env.payload {
            Payload::U64(v) => v.as_slice(),
            other => panic!("malformed reliability control frame: {other:?}"),
        };
        let (kind, val) = (body[0], body[1]);
        match kind {
            CTRL_ACK => {
                if let Some(rel) = self.rel.as_mut() {
                    rel.on_ack(env.from, val);
                }
            }
            CTRL_NACK => {
                let frames = self
                    .rel
                    .as_ref()
                    .map(|rel| rel.resend_from(env.from, val))
                    .unwrap_or_default();
                for f in frames {
                    self.resend(f);
                }
            }
            other => panic!("unknown reliability control kind {other}"),
        }
    }

    /// Rank-loss detection point, hit at the head of every communication
    /// op and on every blocked-receive timeout. When the board shows more
    /// kills than this rank has adopted, unwinds with a typed
    /// [`RankLost`] so a recovery driver can catch it, call
    /// [`Ctx::adopt_world`], and re-plan on the shrunk world.
    fn check_rank_loss(&mut self) {
        if !self.flags.recovery {
            return;
        }
        let Some(check) = &self.check else { return };
        if check.killed_count() as usize <= self.dead.len() {
            return;
        }
        let dead = check.killed_ranks();
        // Go back to Running while unwinding: the survivors' registration
        // barrier must see this rank as live-and-recovering, and the
        // watchdog must not treat the unwind window as a blocked state.
        check.set_status(self.rank, RankStatus::Running);
        std::panic::panic_any(RankLost {
            epoch: dead.len() as u64,
            dead,
        });
    }

    /// Adopts the current set of killed ranks and re-synchronizes with the
    /// other survivors: resets every piece of in-flight state (pending
    /// frames, reliability links, vector clocks, collective sequence) to
    /// the new epoch, then waits on a registration barrier until every
    /// other live rank has adopted the same epoch. Returns the dead set.
    ///
    /// Called by a recovery driver after catching a [`RankLost`] unwind.
    /// If another rank dies while waiting, the adoption restarts with the
    /// larger dead set, so sequential losses fold into one barrier.
    pub fn adopt_world(&mut self) -> Vec<usize> {
        assert!(self.flags.recovery, "adopt_world requires recovery mode");
        // lint: allow(unwrap): recovery mode implies checked mode (asserted at construction)
        let check = Arc::clone(self.check.as_ref().expect("recovery implies checked"));
        check.set_status(self.rank, RankStatus::Running);
        loop {
            let dead = check.killed_ranks();
            self.reset_for_epoch(&dead);
            check.register_epoch(self.rank, self.epoch);
            loop {
                if check.killed_count() as usize > dead.len() {
                    break; // another rank died: restart with the larger set
                }
                if check.all_registered(self.epoch) {
                    return dead;
                }
                std::thread::sleep(self.poll);
            }
        }
    }

    /// Confirmation ring after [`Ctx::adopt_world`]: every survivor passes
    /// `(epoch, hash(dead set))` to its successor on the ring of live
    /// ranks and checks the value it receives from its predecessor. All
    /// ranks compute the dead set from the same shared board, so a
    /// neighbour check suffices; the ring's real job is to be a
    /// synchronization point proving every survivor has re-entered normal
    /// messaging in the new epoch. Traffic is counted and exactly priced
    /// under the `recover` stats tag.
    pub fn recover_sync(&mut self) {
        assert!(self.flags.recovery, "recover_sync requires recovery mode");
        let alive: Vec<usize> = (0..self.nprocs).filter(|&r| self.alive[r]).collect();
        if alive.len() <= 1 {
            return;
        }
        let slot = alive
            .iter()
            .position(|&r| r == self.rank)
            // lint: allow(unwrap): a dead rank cannot call recover_sync
            .expect("caller is alive");
        let succ = alive[(slot + 1) % alive.len()];
        let pred = alive[(slot + alive.len() - 1) % alive.len()];
        let wire = RECOVER_TAG + self.epoch;
        let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ self.epoch;
        for &d in &self.dead {
            h = h.wrapping_mul(0x1_0000_0001_b3).wrapping_add(d as u64 + 1);
        }
        let payload = Payload::u64s(vec![self.epoch, h]);
        self.note_planned(RECOVER_TAG, 1, payload.bytes() as u64, true);
        self.send_internal(succ, wire, RECOVER_TAG, payload);
        let got = self.recv_internal(pred, wire).into_u64();
        if got != [self.epoch, h] {
            // lint: allow(unwrap): recovery mode implies checked mode
            let check = Arc::clone(self.check.as_ref().expect("recovery implies checked"));
            let msg = check.fail(format!(
                "recovery agreement mismatch at epoch {}: rank {} disagrees with rank {} about the dead set {:?}",
                self.epoch, self.rank, pred, self.dead
            ));
            check.set_status(self.rank, RankStatus::Panicked);
            panic!("{msg}");
        }
    }

    /// Resets all in-flight state to a new epoch with the given dead set.
    fn reset_for_epoch(&mut self, dead: &[usize]) {
        self.epoch = dead.len() as u64;
        self.dead = dead.to_vec();
        for a in &mut self.alive {
            *a = true;
        }
        for &r in dead {
            self.alive[r] = false;
        }
        // Everything buffered belongs to the old world. Pending frames
        // were already drained off the board; held frames never reached
        // the wire (no in-flight count to repair).
        self.pending.clear();
        self.held.clear();
        if let Some(rel) = self.rel.as_mut() {
            rel.reset();
        }
        if let Some(hb) = self.hb.as_mut() {
            hb.reset();
        }
        // Namespace the collective sequence by epoch so a straggling
        // old-epoch collective frame can never alias a new one (the epoch
        // filter at ingress already discards them; this is belt and
        // braces), and resync the sequence across survivors that had
        // executed different numbers of collectives when the kill hit.
        self.coll_seq = self.epoch << 32;
        self.current_coll = None;
        // Frames from senders that reached this epoch first were parked;
        // replay them now that the link state is reset.
        let future = std::mem::take(&mut self.future_frames);
        for env in future {
            let (ready, _) = self.ingress_frame(env);
            self.pending.extend(ready);
        }
    }

    /// Rank-level injection point (stall / kill), hit at the head of every
    /// communication op.
    fn fault_point(&mut self) {
        let Some(fate) = self.fault.as_mut().and_then(FaultSession::tick) else {
            return;
        };
        match fate {
            RankFate::Stall(millis) => {
                // The board still shows this rank Running, so a correct
                // watchdog never reports a stalled rank as deadlocked.
                std::thread::sleep(Duration::from_millis(millis));
            }
            RankFate::Kill => {
                self.killed = true;
                if let Some(check) = &self.check {
                    check.set_status(self.rank, RankStatus::Killed);
                }
                let op = self.fault.as_ref().map_or(0, FaultSession::ops);
                panic!(
                    "{FAULT_KILL_PREFIX} rank {} killed at comm op {op}",
                    self.rank
                );
            }
        }
    }

    /// Receives the message with the given `(from, tag)`, blocking until it
    /// arrives, and advances the clock by the modelled transfer time.
    ///
    /// Under [`crate::Machine::run_checked`] a receive that can never be
    /// satisfied aborts the run with a deadlock report instead of blocking
    /// forever.
    pub fn recv(&mut self, from: usize, tag: u64) -> Payload {
        assert!(
            tag < Self::RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.recv_internal(from, tag)
    }

    pub(crate) fn recv_internal(&mut self, from: usize, tag: u64) -> Payload {
        // Harness-owned, like `send_internal`: pending-queue growth and
        // ingress bookkeeping model runtime-owned receive machinery.
        let _audit = pilut_allocaudit::harness();
        self.check_rank_loss();
        self.fault_point();
        // About to (possibly) block: release reorder-held envelopes so the
        // injector cannot manufacture a deadlock of its own.
        self.flush_held();
        // Check the pending queue first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            // lint: allow(unwrap): the position came from a search of the same deque
            let env = self.pending.remove(pos).expect("position came from iter");
            return self.accept(env, RecvMode::Directed);
        }
        if self.check.is_some() {
            return self.recv_checked(Some(from), tag, RecvMode::Directed);
        }
        loop {
            let env = self
                .receiver
                .recv()
                // lint: allow(unwrap): every live rank holds a sender to this channel
                .expect("all senders hung up while waiting");
            if env.from == from && env.tag == tag {
                return self.accept(env, RecvMode::Directed);
            }
            self.pending.push_back(env);
        }
    }

    /// Receives the next message with the given `tag` from *any* rank,
    /// blocking until one arrives, and returns `(source, payload)`.
    ///
    /// The matched source depends on arrival order, so a program whose
    /// result depends on it is schedule-dependent. Under checked mode this
    /// receive is treated as **order-sensitive**: the happens-before race
    /// detector reports any pair of concurrent candidate messages for the
    /// same `(rank, tag)` as a match-order race (see [`crate::hb`]). Callers
    /// that canonicalize the result afterwards (like the internal sparse
    /// all-to-all, which sorts by source) use an order-insensitive internal
    /// variant instead.
    pub fn recv_any(&mut self, tag: u64) -> (usize, Payload) {
        assert!(
            tag < Self::RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.recv_any_internal(tag, RecvMode::Wildcard)
    }

    /// Receives the next message with the given `tag` from *any* rank,
    /// blocking until one arrives. Used by the sparse all-to-all, where the
    /// receiver knows how many messages to expect but not their order.
    /// `mode` declares whether the caller is order-sensitive — the race
    /// detector flags concurrent cross-sender candidates only for
    /// [`RecvMode::Wildcard`] consumers (see [`crate::hb`]).
    pub(crate) fn recv_any_internal(&mut self, tag: u64, mode: RecvMode) -> (usize, Payload) {
        // Harness-owned, like `send_internal`.
        let _audit = pilut_allocaudit::harness();
        self.check_rank_loss();
        self.fault_point();
        self.flush_held();
        // A model-checker schedule script can pin which source this
        // wildcard receive must match next; while an entry is pending the
        // receive behaves as if directed at that source and every other
        // candidate stays buffered (see [`crate::sched`]).
        let forced = self.sched.as_ref().and_then(|s| s.forced_source(tag));
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.tag == tag && forced.is_none_or(|src| e.from == src))
        {
            // lint: allow(unwrap): the position came from a search of the same deque
            let env = self.pending.remove(pos).expect("position came from iter");
            let from = env.from;
            return (from, self.accept(env, mode));
        }
        if self.check.is_some() {
            // `forced` narrows the channel match too; the race detector
            // still sees the receive's true wildcard `mode`, so forcing
            // never hides a race it would otherwise report.
            let payload = self.recv_checked(forced, tag, mode);
            let from = self.last_accepted_from;
            return (from, payload);
        }
        loop {
            let env = self
                .receiver
                .recv()
                // lint: allow(unwrap): every live rank holds a sender to this channel
                .expect("all senders hung up while waiting");
            if env.tag == tag {
                let from = env.from;
                return (from, self.accept(env, mode));
            }
            self.pending.push_back(env);
        }
    }

    /// The checked receive loop: publish the blocked state, poll the
    /// channel with a timeout, and run the watchdog predicate on every
    /// timeout. Panics with the commcheck report when the run is stuck.
    ///
    /// Under reliable delivery a timeout also drives the NACK schedule: a
    /// receiver idle for [`NACK_START_POLLS`] polls asks the likely
    /// senders to re-ship, backing off exponentially for up to
    /// [`MAX_NACKS`] rounds before conceding the episode to the watchdog.
    fn recv_checked(&mut self, from: Option<usize>, tag: u64, mode: RecvMode) -> Payload {
        // lint: allow(unwrap): recv_checked is only entered in checked mode
        let check = Arc::clone(self.check.as_ref().expect("checked mode"));
        let reliable = self.rel.is_some();
        let ingress = reliable || self.flags.recovery;
        if reliable {
            // A fresh blocked episode gets a fresh NACK budget; the board
            // suppresses deadlock verdicts until the budget is spent.
            check.nack_reset(self.rank);
        }
        check.set_status(self.rank, RankStatus::BlockedRecv { from, tag });
        let mut idle_polls: u32 = 0;
        let mut nacks_left: u32 = if reliable { MAX_NACKS } else { 0 };
        let mut backoff: u32 = NACK_START_POLLS;
        let mut next_nack: u32 = NACK_START_POLLS;
        loop {
            match self.receiver.recv_timeout(self.poll) {
                Ok(env) => {
                    if !ingress {
                        let matches = env.tag == tag && from.is_none_or(|f| env.from == f);
                        if matches {
                            // One board transition: decrement in-flight and go
                            // back to Running atomically, or a watchdog polling
                            // between the two steps sees "blocked, nothing in
                            // flight" and reports a spurious deadlock.
                            check.note_drain_matched(self.rank);
                            return self.accept(env, mode);
                        }
                        check.note_drain(self.rank);
                        self.pending.push_back(env);
                        continue;
                    }
                    // Reliability/recovery path: linearize the frame first
                    // (dedup, gap parking, epoch filter, control frames),
                    // then match whatever became deliverable.
                    let (ready, progress) = self.ingress_frame(env);
                    if progress {
                        idle_polls = 0;
                    }
                    let mut hit: Option<Envelope> = None;
                    for e in ready {
                        if hit.is_none() && e.tag == tag && from.is_none_or(|f| e.from == f) {
                            hit = Some(e);
                        } else {
                            self.pending.push_back(e);
                        }
                    }
                    if let Some(e) = hit {
                        check.note_drain_matched(self.rank);
                        return self.accept(e, mode);
                    }
                    check.note_drain(self.rank);
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_rank_loss();
                    idle_polls = idle_polls.saturating_add(1);
                    if nacks_left > 0 && idle_polls >= next_nack {
                        self.send_nacks(from);
                        nacks_left -= 1;
                        backoff *= 2;
                        next_nack = idle_polls + backoff;
                        if nacks_left == 0 {
                            check.nack_exhausted(self.rank);
                        }
                        continue;
                    }
                    if let Some(report) = check.check_stuck(self.rank) {
                        check.set_status(self.rank, RankStatus::Panicked);
                        panic!("{report}");
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable in practice: every live rank holds senders
                    // to every channel, including its own.
                    panic!("all senders hung up while waiting");
                }
            }
        }
    }

    fn accept(&mut self, env: Envelope, mode: RecvMode) -> Payload {
        if env.tag >= Self::RESERVED_TAG_BASE {
            self.verify_collective_kind(&env);
        }
        if let Some(hb) = self.hb.as_mut() {
            let report = hb.note_accept(env.tag, env.from, env.vclock.as_deref(), mode);
            if let Some(report) = report {
                // A match-order race is a protocol failure like a collective
                // mismatch: store it as the primary diagnosis and abort.
                // lint: allow(unwrap): hb exists only when check does
                let check = self.check.as_ref().expect("hb implies checked mode");
                let msg = check.fail(report);
                check.set_status(self.rank, RankStatus::Panicked);
                panic!("{msg}");
            }
        }
        if let Some(sched) = self.sched.as_mut() {
            // Only wildcard accepts are scripted/traced: a directed match
            // is already forced by the program and cannot branch.
            if let Some(kind) = match_kind(mode) {
                sched.on_wildcard_accept(TraceEvent {
                    rank: self.rank,
                    tag: env.tag,
                    from: env.from,
                    mode: kind,
                    send_vc: env.vclock.clone().unwrap_or_default(),
                    accept_event: self.hb.as_ref().map_or(0, HbState::local_event),
                });
            }
        }
        let wire = if env.from == self.rank {
            0.0
        } else {
            self.model.latency + env.payload.bytes() as f64 * self.model.inv_bandwidth
        };
        self.time = self.time.max(env.time + wire);
        self.last_accepted_from = env.from;
        env.payload
    }

    /// Collective-order check: the kind piggybacked by the sender must
    /// match the collective this rank is currently executing.
    fn verify_collective_kind(&mut self, env: &Envelope) {
        let Some(check) = &self.check else { return };
        if env.coll_kind == self.current_coll {
            return;
        }
        let logs = check.coll_logs();
        let divergence = crate::check::collective_divergence(&logs)
            .unwrap_or_else(|| "  (call logs still agree — the mismatch is in flight)\n".into());
        let name = |k: &Option<crate::check::CollKind>| match k {
            Some(k) => format!("{k:?}"),
            None => "no collective".to_string(),
        };
        let report = format!(
            "commcheck: collective order mismatch — rank {} is executing {} but received {} traffic from rank {} (tag {:#x})\n{}",
            self.rank,
            name(&self.current_coll),
            name(&env.coll_kind),
            env.from,
            env.tag,
            divergence
        );
        let msg = check.fail(report);
        check.set_status(self.rank, RankStatus::Panicked);
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineModel};

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::u64s(vec![1]));
                ctx.send(1, 2, Payload::u64s(vec![2]));
                vec![]
            } else {
                // Receive in reverse order.
                let b = ctx.recv(0, 2).into_u64();
                let a = ctx.recv(0, 1).into_u64();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out.results[1], vec![1, 2]);
    }

    #[test]
    fn clock_takes_max_of_sender_and_receiver() {
        let model = MachineModel {
            flop_time: 1.0,
            latency: 0.1,
            inv_bandwidth: 0.0,
            word_copy_time: 0.0,
        };
        let out = Machine::run_checked(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.work(5.0); // clock = 5
                ctx.send(1, 0, Payload::Empty);
                ctx.time()
            } else {
                ctx.work(1.0); // clock = 1
                ctx.recv(0, 0);
                ctx.time() // max(1, 5 + 0.1) = 5.1
            }
        });
        assert!((out.results[1] - 5.1).abs() < 1e-12);
    }

    #[test]
    fn self_send_is_free_and_works() {
        let out = Machine::run_checked(1, MachineModel::cray_t3d(), |ctx| {
            ctx.send(0, 3, Payload::f64s(vec![2.5]));
            let v = ctx.recv(0, 3).into_f64();
            (v[0], ctx.time())
        });
        assert_eq!(out.results[0].0, 2.5);
        assert_eq!(out.results[0].1, 0.0);
    }

    #[test]
    fn copy_words_charges_time() {
        let model = MachineModel {
            flop_time: 0.0,
            latency: 0.0,
            inv_bandwidth: 0.0,
            word_copy_time: 2.0,
        };
        let out = Machine::run_checked(1, model, |ctx| {
            ctx.copy_words(3.0);
            ctx.time()
        });
        assert_eq!(out.results[0], 6.0);
        assert_eq!(out.stats.words_copied, 3.0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        Machine::run(1, MachineModel::cray_t3d(), |ctx| {
            ctx.send(0, Ctx::RESERVED_TAG_BASE, Payload::Empty);
        });
    }
}
