//! Per-rank execution context: point-to-point messaging and the logical
//! clock.

use crate::machine::MachineModel;
use crate::payload::Payload;
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;

/// One message in flight.
#[derive(Debug)]
pub struct Envelope {
    pub from: usize,
    pub tag: u64,
    /// Sender's logical clock at send time.
    pub time: f64,
    pub payload: Payload,
}

/// Per-rank cost counters, aggregated by the machine after the run.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    pub messages: u64,
    pub bytes: u64,
    pub flops: f64,
    pub words_copied: f64,
    pub collectives: u64,
}

/// A rank's handle onto the virtual machine.
///
/// All communication is matched by `(from, tag)`. Tags below
/// [`Ctx::RESERVED_TAG_BASE`] are free for user protocols; the collectives
/// use tags above it, namespaced by an internal sequence number, so user
/// traffic can never be confused with collective traffic as long as every
/// rank calls the collectives in the same program order (the usual SPMD
/// contract).
pub struct Ctx {
    rank: usize,
    nprocs: usize,
    model: MachineModel,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Received-but-unmatched messages.
    pending: VecDeque<Envelope>,
    time: f64,
    pub(crate) counters: Counters,
    /// Collective sequence number (same on every rank by SPMD order).
    pub(crate) coll_seq: u64,
}

impl Ctx {
    /// Tags at or above this value are reserved for collectives.
    pub const RESERVED_TAG_BASE: u64 = 1 << 48;

    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        model: MachineModel,
        senders: Vec<Sender<Envelope>>,
        receiver: Receiver<Envelope>,
    ) -> Self {
        Ctx {
            rank,
            nprocs,
            model,
            senders,
            receiver,
            pending: VecDeque::new(),
            time: 0.0,
            counters: Counters::default(),
            coll_seq: 0,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// The rank's current logical clock, in simulated seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    pub(crate) fn into_counters(self) -> Counters {
        self.counters
    }

    /// Charges `flops` floating-point operations to the clock.
    pub fn work(&mut self, flops: f64) {
        debug_assert!(flops >= 0.0);
        self.time += flops * self.model.flop_time;
        self.counters.flops += flops;
    }

    /// Charges the motion of `words` 8-byte words (copying rows around while
    /// forming reduced matrices, permuting, etc.).
    pub fn copy_words(&mut self, words: f64) {
        debug_assert!(words >= 0.0);
        self.time += words * self.model.word_copy_time;
        self.counters.words_copied += words;
    }

    /// Advances the clock directly (rarely needed; prefer `work`/`copy_words`).
    pub fn elapse(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.time += seconds;
    }

    /// Sends `payload` to rank `to` with a user `tag`
    /// (`tag < RESERVED_TAG_BASE`).
    pub fn send(&mut self, to: usize, tag: u64, payload: Payload) {
        assert!(tag < Self::RESERVED_TAG_BASE, "tag {tag} is reserved for collectives");
        self.send_internal(to, tag, payload);
    }

    pub(crate) fn send_internal(&mut self, to: usize, tag: u64, payload: Payload) {
        assert!(to < self.nprocs, "rank {to} out of range");
        self.counters.messages += 1;
        self.counters.bytes += payload.bytes() as u64;
        let env = Envelope { from: self.rank, tag, time: self.time, payload };
        if to == self.rank {
            // Self-sends are local queue operations: no wire cost.
            self.pending.push_back(env);
        } else {
            self.senders[to].send(env).expect("receiver hung up");
        }
    }

    /// Receives the message with the given `(from, tag)`, blocking until it
    /// arrives, and advances the clock by the modelled transfer time.
    pub fn recv(&mut self, from: usize, tag: u64) -> Payload {
        assert!(tag < Self::RESERVED_TAG_BASE, "tag {tag} is reserved for collectives");
        self.recv_internal(from, tag)
    }

    pub(crate) fn recv_internal(&mut self, from: usize, tag: u64) -> Payload {
        // Check the pending queue first.
        if let Some(pos) = self.pending.iter().position(|e| e.from == from && e.tag == tag) {
            let env = self.pending.remove(pos).unwrap();
            return self.accept(env);
        }
        loop {
            let env = self.receiver.recv().expect("all senders hung up while waiting");
            if env.from == from && env.tag == tag {
                return self.accept(env);
            }
            self.pending.push_back(env);
        }
    }

    /// Receives the next message with the given `tag` from *any* rank,
    /// blocking until one arrives. Used by the sparse all-to-all, where the
    /// receiver knows how many messages to expect but not their order.
    pub(crate) fn recv_any_internal(&mut self, tag: u64) -> (usize, Payload) {
        if let Some(pos) = self.pending.iter().position(|e| e.tag == tag) {
            let env = self.pending.remove(pos).unwrap();
            let from = env.from;
            return (from, self.accept(env));
        }
        loop {
            let env = self.receiver.recv().expect("all senders hung up while waiting");
            if env.tag == tag {
                let from = env.from;
                return (from, self.accept(env));
            }
            self.pending.push_back(env);
        }
    }

    fn accept(&mut self, env: Envelope) -> Payload {
        let wire = if env.from == self.rank {
            0.0
        } else {
            self.model.latency + env.payload.bytes() as f64 * self.model.inv_bandwidth
        };
        self.time = self.time.max(env.time + wire);
        env.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineModel};

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Machine::run(2, MachineModel::cray_t3d(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::U64(vec![1]));
                ctx.send(1, 2, Payload::U64(vec![2]));
                vec![]
            } else {
                // Receive in reverse order.
                let b = ctx.recv(0, 2).into_u64();
                let a = ctx.recv(0, 1).into_u64();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out.results[1], vec![1, 2]);
    }

    #[test]
    fn clock_takes_max_of_sender_and_receiver() {
        let model = MachineModel { flop_time: 1.0, latency: 0.1, inv_bandwidth: 0.0, word_copy_time: 0.0 };
        let out = Machine::run(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.work(5.0); // clock = 5
                ctx.send(1, 0, Payload::Empty);
                ctx.time()
            } else {
                ctx.work(1.0); // clock = 1
                ctx.recv(0, 0);
                ctx.time() // max(1, 5 + 0.1) = 5.1
            }
        });
        assert!((out.results[1] - 5.1).abs() < 1e-12);
    }

    #[test]
    fn self_send_is_free_and_works() {
        let out = Machine::run(1, MachineModel::cray_t3d(), |ctx| {
            ctx.send(0, 3, Payload::F64(vec![2.5]));
            let v = ctx.recv(0, 3).into_f64();
            (v[0], ctx.time())
        });
        assert_eq!(out.results[0].0, 2.5);
        assert_eq!(out.results[0].1, 0.0);
    }

    #[test]
    fn copy_words_charges_time() {
        let model = MachineModel { flop_time: 0.0, latency: 0.0, inv_bandwidth: 0.0, word_copy_time: 2.0 };
        let out = Machine::run(1, model, |ctx| {
            ctx.copy_words(3.0);
            ctx.time()
        });
        assert_eq!(out.results[0], 6.0);
        assert_eq!(out.stats.words_copied, 3.0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        Machine::run(1, MachineModel::cray_t3d(), |ctx| {
            ctx.send(0, Ctx::RESERVED_TAG_BASE, Payload::Empty);
        });
    }
}
