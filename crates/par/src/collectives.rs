//! Collective operations over all ranks.
//!
//! Everything is built from point-to-point messages along binomial trees,
//! so the logical-clock cost model charges the realistic `O(log p)` latency
//! depth automatically. The SPMD contract applies: every rank must call each
//! collective in the same program order.
//!
//! Trees are laid out in **slot space**: the sorted list of currently-alive
//! ranks, with the tree rooted at slot 0 (the lowest alive rank). In epoch 0
//! slots and ranks coincide and nothing changes; after a rank loss
//! ([`crate::MachineBuilder::recovery`]) the same code runs the collectives
//! over the shrunk world with no holes in the tree.

use crate::check::CollKind;
use crate::ctx::Ctx;
use crate::hb::RecvMode;
use crate::payload::Payload;

/// Element-wise reduction operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl Ctx {
    /// Opens a collective: allocates its reserved tag, marks the op as the
    /// one currently executing (piggybacked on every reserved-tag envelope
    /// for commcheck's order verification), logs it on the board, and
    /// records `planned_sends` — the exact number of point-to-point
    /// messages this rank is about to send for the collective — in the
    /// planned-traffic ledger (under the shared reserved key, message
    /// counts only: payload sizes are caller-defined, so `coll` stays an
    /// inexact `~` tag).
    fn begin_collective(&mut self, kind: CollKind, planned_sends: u64) -> u64 {
        self.note_planned(Self::RESERVED_TAG_BASE, planned_sends, 0, false);
        let tag = Self::RESERVED_TAG_BASE | self.coll_seq;
        self.coll_seq += 1;
        self.counters.collectives += 1;
        self.current_coll = Some(kind);
        if let Some(check) = self.check() {
            check.log_collective(self.rank(), kind);
        }
        tag
    }

    /// This rank's position in the compacted surviving world: its slot index
    /// and the sorted list of alive ranks. Slot `i` maps to rank `alive[i]`;
    /// in epoch 0 (nobody lost) the map is the identity.
    fn slots(&self) -> (usize, Vec<usize>) {
        let alive: Vec<usize> = (0..self.nprocs()).filter(|&r| self.alive[r]).collect();
        let slot = alive
            .iter()
            .position(|&r| r == self.rank())
            // lint: allow(unwrap): a rank that reached a collective is alive
            .expect("a lost rank cannot run a collective");
        (slot, alive)
    }

    /// Messages this rank sends during one reduce + broadcast pair (every
    /// tree collective is exactly that): each non-root slot forwards one
    /// combined payload up, then every slot feeds its broadcast children.
    fn tree_collective_sends(&self) -> u64 {
        let (slot, alive) = self.slots();
        u64::from(slot != 0) + Self::bcast_children(slot, alive.len()).len() as u64
    }

    /// Rebuilds the slot cache if the recovery epoch moved since the last
    /// collective, then returns `(my slot, alive count)`. The rebuild is
    /// the only allocation and runs under the audit harness: the slot map
    /// is a topology table (DESIGN §16), valid for a whole epoch, and
    /// steady-state collectives merely index it.
    fn slots_cached(&mut self) -> (usize, usize) {
        if self.slot_cache_epoch != self.epoch() {
            let _h = pilut_allocaudit::harness();
            self.slot_cache = (0..self.nprocs()).filter(|&r| self.alive[r]).collect();
            self.slot_cache_epoch = self.epoch();
        }
        let slot = self
            .slot_cache
            .iter()
            .position(|&r| r == self.rank())
            // lint: allow(unwrap): a rank that reached a collective is alive
            .expect("a lost rank cannot run a collective");
        (slot, self.slot_cache.len())
    }

    /// Planned sends for one reduce + broadcast pair, computed from the
    /// cached slot map — the allocation-free twin of
    /// [`Ctx::tree_collective_sends`].
    fn tree_collective_sends_cached(&mut self) -> u64 {
        let (slot, p) = self.slots_cached();
        u64::from(slot != 0) + Self::bcast_children_iter(slot, p).count() as u64
    }

    /// Closes the collective opened by [`Ctx::begin_collective`].
    fn end_collective(&mut self) {
        self.current_coll = None;
    }

    /// Lowest set bit of `s` (its parent distance in the binomial tree).
    fn lowbit(s: usize) -> usize {
        s & s.wrapping_neg()
    }

    /// Reduce-to-root along the binomial tree over the alive slots,
    /// combining with `combine`. `to_payload` consumes the accumulator (a
    /// slot sends exactly once, right before leaving the reduction), so no
    /// copy is taken. Returns `Some` only at slot 0 (the lowest alive rank).
    fn tree_reduce<T, C>(
        &mut self,
        tag: u64,
        mut acc: T,
        to_payload: fn(T) -> Payload,
        from_payload: fn(Payload) -> T,
        combine: C,
    ) -> Option<T>
    where
        C: Fn(&mut T, T),
    {
        let (s, alive) = self.slots();
        let p = alive.len();
        let mut bit = 1usize;
        while bit < p {
            if s & bit != 0 {
                let payload = to_payload(acc);
                self.send_internal(alive[s - bit], tag, tag, payload);
                return None;
            }
            if s + bit < p {
                let got = from_payload(self.recv_internal(alive[s + bit], tag));
                combine(&mut acc, got);
            }
            bit <<= 1;
        }
        Some(acc)
    }

    /// Children of slot `s` in the binomial broadcast tree over `p` slots,
    /// farthest first so the far half of the tree starts as early as
    /// possible. Purely arithmetic (no allocation) so the scalar
    /// collectives can walk it on the steady path; the single source of
    /// truth for the send loops, the planned `coll` message counts, and
    /// the collected [`Ctx::bcast_children`] — they cannot drift.
    fn bcast_children_iter(s: usize, p: usize) -> impl Iterator<Item = usize> {
        // Children: s + 2^j for j below the parent-bit.
        let t = if s == 0 {
            usize::BITS as usize
        } else {
            Self::lowbit(s).trailing_zeros() as usize
        };
        (0..t)
            .rev()
            .map(move |j| (1usize << j, s + (1usize << j)))
            .filter(move |&(step, child)| child < p && (s != 0 || step < p))
            .map(|(_, child)| child)
    }

    /// [`Ctx::bcast_children_iter`], collected — for the vector
    /// collectives, whose per-call allocations are setup-path by contract.
    fn bcast_children(s: usize, p: usize) -> Vec<usize> {
        Self::bcast_children_iter(s, p).collect()
    }

    /// Reduce-to-root for a single scalar, allocation-free: sends travel
    /// in pooled one-element buffers ([`crate::pool::take_f64`]) and
    /// receives borrow the payload ([`Payload::as_f64`]) then
    /// [`Payload::recycle`] it. Combine order is identical to the vector
    /// reduce, so results stay bitwise-equal to the old `vec![x]` path.
    fn tree_reduce_scalar<C>(&mut self, tag: u64, mut acc: f64, combine: C) -> Option<f64>
    where
        C: Fn(f64, f64) -> f64,
    {
        let (s, p) = self.slots_cached();
        let mut bit = 1usize;
        while bit < p {
            if s & bit != 0 {
                let parent = self.slot_cache[s - bit];
                let mut buf = crate::pool::take_f64(1);
                buf.push(acc);
                self.send_internal(parent, tag, tag, Payload::f64s(buf));
                return None;
            }
            if s + bit < p {
                let peer = self.slot_cache[s + bit];
                let payload = self.recv_internal(peer, tag);
                acc = combine(acc, payload.as_f64()[0]);
                payload.recycle();
            }
            bit <<= 1;
        }
        Some(acc)
    }

    /// Broadcast of a single scalar from slot 0, allocation-free (see
    /// [`Ctx::tree_reduce_scalar`]). Each child gets its own pooled
    /// buffer — no `Arc` fan-out sharing — which is also how a real
    /// message-passing runtime ships a scalar to each subtree.
    fn tree_bcast_scalar(&mut self, tag: u64, val: Option<f64>) -> f64 {
        let (s, p) = self.slots_cached();
        let val = if s == 0 {
            // lint: allow(unwrap): only called with Some at the root
            val.expect("root must provide the broadcast value")
        } else {
            let parent = self.slot_cache[s - Self::lowbit(s)];
            let payload = self.recv_internal(parent, tag);
            let v = payload.as_f64()[0];
            payload.recycle();
            v
        };
        for child in Self::bcast_children_iter(s, p) {
            let peer = self.slot_cache[child];
            let mut buf = crate::pool::take_f64(1);
            buf.push(val);
            self.send_internal(peer, tag, tag, Payload::f64s(buf));
        }
        val
    }

    /// Broadcast from slot 0 (the lowest alive rank) along the binomial tree.
    fn tree_bcast(&mut self, tag: u64, data: Option<Payload>) -> Payload {
        let (s, alive) = self.slots();
        let p = alive.len();
        let data = if s == 0 {
            // lint: allow(unwrap): tree_bcast is only called with Some at the root
            data.expect("root must provide the broadcast payload")
        } else {
            let parent = s - Self::lowbit(s);
            self.recv_internal(alive[parent], tag)
        };
        for child in Self::bcast_children(s, p) {
            self.send_internal(alive[child], tag, tag, data.clone());
        }
        data
    }

    /// Synchronises all ranks; every rank leaves with the same logical clock:
    /// the maximum entry clock plus the barrier's modelled cost
    /// (`2·⌈log2 p⌉` message latencies — an up-sweep and a down-sweep).
    pub fn barrier(&mut self) {
        let tag = self.begin_collective(CollKind::Barrier, self.tree_collective_sends());
        let entry = self.time();
        let root = self.tree_reduce(
            tag,
            vec![entry],
            Payload::f64s,
            Payload::into_f64,
            |acc, got| acc[0] = acc[0].max(got[0]),
        );
        let max_entry = self.tree_bcast(tag, root.map(Payload::f64s)).into_f64()[0];
        let levels = self.n_alive().next_power_of_two().trailing_zeros() as f64;
        // Each sweep hop moves one 8-byte clock stamp.
        let hop = self.model().latency + 8.0 * self.model().inv_bandwidth;
        let aligned = max_entry + 2.0 * levels * hop;
        let t = self.time().max(aligned);
        self.elapse(t - self.time());
        self.end_collective();
    }

    /// Element-wise all-reduce over `f64` vectors (same length on all ranks).
    pub fn all_reduce_f64(&mut self, data: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        let tag = self.begin_collective(CollKind::AllReduceF64, self.tree_collective_sends());
        let combine = move |acc: &mut Vec<f64>, got: Vec<f64>| {
            assert_eq!(acc.len(), got.len(), "all_reduce length mismatch");
            for (a, g) in acc.iter_mut().zip(got) {
                match op {
                    ReduceOp::Sum => *a += g,
                    ReduceOp::Max => *a = a.max(g),
                    ReduceOp::Min => *a = a.min(g),
                }
            }
        };
        let root = self.tree_reduce(tag, data, Payload::f64s, Payload::into_f64, combine);
        let out = self.tree_bcast(tag, root.map(Payload::f64s)).into_f64();
        self.end_collective();
        out
    }

    /// Element-wise all-reduce over `u64` vectors.
    pub fn all_reduce_u64(&mut self, data: Vec<u64>, op: ReduceOp) -> Vec<u64> {
        let tag = self.begin_collective(CollKind::AllReduceU64, self.tree_collective_sends());
        let combine = move |acc: &mut Vec<u64>, got: Vec<u64>| {
            assert_eq!(acc.len(), got.len(), "all_reduce length mismatch");
            for (a, g) in acc.iter_mut().zip(got) {
                match op {
                    ReduceOp::Sum => *a += g,
                    ReduceOp::Max => *a = (*a).max(g),
                    ReduceOp::Min => *a = (*a).min(g),
                }
            }
        };
        let root = self.tree_reduce(tag, data, Payload::u64s, Payload::into_u64, combine);
        let out = self.tree_bcast(tag, root.map(Payload::u64s)).into_u64();
        self.end_collective();
        out
    }

    /// Scalar all-reduce: the hot collective (GMRES calls it every inner
    /// iteration, twice per orthogonalisation column), so unlike the
    /// vector forms it runs the pooled zero-allocation tree path. Wire
    /// behaviour — message counts, combine order, `CollKind` — is
    /// identical to `all_reduce_f64(vec![x], op)[0]`.
    fn all_reduce_scalar(&mut self, x: f64, op: ReduceOp) -> f64 {
        let planned = self.tree_collective_sends_cached();
        let tag = self.begin_collective(CollKind::AllReduceF64, planned);
        let combine = move |a: f64, b: f64| match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        };
        let root = self.tree_reduce_scalar(tag, x, combine);
        let out = self.tree_bcast_scalar(tag, root);
        self.end_collective();
        out
    }

    /// Scalar conveniences.
    pub fn all_reduce_sum(&mut self, x: f64) -> f64 {
        self.all_reduce_scalar(x, ReduceOp::Sum)
    }

    /// Scalar max all-reduce.
    pub fn all_reduce_max(&mut self, x: f64) -> f64 {
        self.all_reduce_scalar(x, ReduceOp::Max)
    }

    /// Scalar sum all-reduce over `u64`.
    pub fn all_reduce_sum_u64(&mut self, x: u64) -> u64 {
        self.all_reduce_u64(vec![x], ReduceOp::Sum)[0]
    }

    /// Gathers each rank's (variable-length) `u64` vector; every rank
    /// receives all of them, indexed by rank.
    pub fn all_gather_u64(&mut self, local: &[u64]) -> Vec<Vec<u64>> {
        let tag = self.begin_collective(CollKind::AllGatherU64, self.tree_collective_sends());
        // Encoding: repeated [rank, len, data...]. The tree reduce simply
        // concatenates encodings.
        let mut enc = Vec::with_capacity(local.len() + 2);
        enc.push(self.rank() as u64);
        enc.push(local.len() as u64);
        enc.extend_from_slice(local);
        let root = self.tree_reduce(
            tag,
            enc,
            Payload::u64s,
            Payload::into_u64,
            |acc, mut got| acc.append(&mut got),
        );
        let all = self.tree_bcast(tag, root.map(Payload::u64s)).into_u64();
        self.end_collective();
        decode_u64_blocks(&all, self.nprocs())
    }

    /// Gathers each rank's (variable-length) `f64` vector.
    pub fn all_gather_f64(&mut self, local: &[f64]) -> Vec<Vec<f64>> {
        let tag = self.begin_collective(CollKind::AllGatherF64, self.tree_collective_sends());
        let enc = (vec![self.rank() as u64, local.len() as u64], local.to_vec());
        let root = self.tree_reduce(
            tag,
            enc,
            |(h, d)| Payload::mixed(h, d),
            Payload::into_mixed,
            |acc, mut got| {
                acc.0.append(&mut got.0);
                acc.1.append(&mut got.1);
            },
        );
        let (heads, data) = self
            .tree_bcast(tag, root.map(|(h, d)| Payload::mixed(h, d)))
            .into_mixed();
        self.end_collective();
        let mut out = vec![Vec::new(); self.nprocs()];
        let mut cursor = 0usize;
        let mut i = 0usize;
        while i + 1 < heads.len() + 1 && i < heads.len() {
            let rank = heads[i] as usize;
            let len = heads[i + 1] as usize;
            out[rank] = data[cursor..cursor + len].to_vec();
            cursor += len;
            i += 2;
        }
        out
    }

    /// Sparse all-to-all: each rank supplies `(destination, payload)` pairs
    /// and receives the pairs addressed to it as `(source, payload)`,
    /// ordered by source (and send order within a source).
    ///
    /// Cost: one `O(p)`-payload all-reduce to learn the incoming count,
    /// then **one packed message per destination** — all payloads bound for
    /// one rank travel in a single envelope. Packing is what makes the
    /// per-source order promise structural: the wire contract leaves
    /// same-`(sender, tag)` delivery order undefined, so shipping each
    /// payload separately was a match-order race (found by the
    /// happens-before detector; see EXPERIMENTS.md). Cross-source arrival
    /// order remains free, which is fine — the result is canonicalized by
    /// the source sort, and the any-source receive declares itself
    /// order-insensitive to the race detector.
    pub fn exchange(&mut self, sends: Vec<(usize, Payload)>) -> Vec<(usize, Payload)> {
        let p = self.nprocs();
        let mut by_dest: Vec<Vec<Payload>> = (0..p).map(|_| Vec::new()).collect();
        for (dest, payload) in sends {
            assert!(dest < p, "exchange destination {dest} out of range");
            by_dest[dest].push(payload);
        }
        let counts: Vec<u64> = by_dest.iter().map(|l| u64::from(!l.is_empty())).collect();
        // After the sum-reduce, slot `me` holds how many messages I receive.
        let totals = self.all_reduce_u64(counts, ReduceOp::Sum);
        let incoming = totals[self.rank()] as usize;
        // One packed envelope per non-empty destination — countable before
        // anything ships (the count-learning all-reduce planned itself).
        let outgoing = by_dest.iter().filter(|l| !l.is_empty()).count() as u64;
        let tag = self.begin_collective(CollKind::Exchange, outgoing);
        for (dest, parts) in by_dest.into_iter().enumerate() {
            if parts.is_empty() {
                continue;
            }
            self.send_internal(dest, tag, tag, pack_exchange(parts));
        }
        let mut out = Vec::new();
        for _ in 0..incoming {
            let (src, packed) = self.recv_any_internal(tag, RecvMode::WildcardUnordered);
            for payload in unpack_exchange(packed) {
                out.push((src, payload));
            }
        }
        self.end_collective();
        // Deterministic order regardless of arrival interleaving: sort by
        // source; per-source order is already structural (one message per
        // source), and the stable sort keeps it.
        out.sort_by_key(|&(src, _)| src);
        out
    }

    /// The pre-packing sparse all-to-all, preserved verbatim as a seeded
    /// mutation target for `xtask modelcheck`: every payload ships in its
    /// *own* envelope under one tag, so two payloads from one source are
    /// concurrent same-`(sender, tag)` envelopes — exactly the match-order
    /// race the packed [`Ctx::exchange`] removed. The model checker runs a
    /// workload through this on purpose and asserts the race is diagnosed;
    /// nothing else may call it.
    #[doc(hidden)]
    pub fn exchange_per_payload(&mut self, sends: Vec<(usize, Payload)>) -> Vec<(usize, Payload)> {
        let p = self.nprocs();
        let mut by_dest: Vec<Vec<Payload>> = (0..p).map(|_| Vec::new()).collect();
        for (dest, payload) in sends {
            assert!(dest < p, "exchange destination {dest} out of range");
            by_dest[dest].push(payload);
        }
        let counts: Vec<u64> = by_dest.iter().map(|l| l.len() as u64).collect();
        let totals = self.all_reduce_u64(counts, ReduceOp::Sum);
        let incoming = totals[self.rank()] as usize;
        let outgoing = by_dest.iter().map(|l| l.len() as u64).sum();
        let tag = self.begin_collective(CollKind::Exchange, outgoing);
        for (dest, parts) in by_dest.into_iter().enumerate() {
            for payload in parts {
                self.send_internal(dest, tag, tag, payload);
            }
        }
        let mut out = Vec::new();
        for _ in 0..incoming {
            let (src, payload) = self.recv_any_internal(tag, RecvMode::WildcardUnordered);
            out.push((src, payload));
        }
        self.end_collective();
        out.sort_by_key(|&(src, _)| src);
        out
    }
}

/// Packs one exchange's payload sequence for a single destination into one
/// wire message. Frame (all in the `u64` half of a [`Payload::Mixed`]):
/// `[n, (variant, u64_len, f64_len) × n, u64 bodies…]`; the `f64` bodies are
/// concatenated in the `f64` half. Variants: 0 = Empty, 1 = U64, 2 = F64,
/// 3 = Mixed.
fn pack_exchange(parts: Vec<Payload>) -> Payload {
    let mut header: Vec<u64> = Vec::with_capacity(1 + 3 * parts.len());
    header.push(parts.len() as u64);
    let mut us: Vec<u64> = Vec::new();
    let mut fs: Vec<f64> = Vec::new();
    for part in parts {
        let (variant, u, f): (u64, Vec<u64>, Vec<f64>) = match part {
            Payload::Empty => (0, Vec::new(), Vec::new()),
            p @ Payload::U64(_) => (1, p.into_u64(), Vec::new()),
            p @ Payload::F64(_) => (2, Vec::new(), p.into_f64()),
            p @ Payload::Mixed(..) => {
                let (u, f) = p.into_mixed();
                (3, u, f)
            }
        };
        header.push(variant);
        header.push(u.len() as u64);
        header.push(f.len() as u64);
        us.extend_from_slice(&u);
        fs.extend_from_slice(&f);
    }
    header.append(&mut us);
    Payload::mixed(header, fs)
}

/// Inverse of [`pack_exchange`]: splits one packed envelope back into the
/// sender's payload sequence, in send order.
fn unpack_exchange(packed: Payload) -> Vec<Payload> {
    let (frame, fs) = packed.into_mixed();
    let n = frame[0] as usize;
    let mut out = Vec::with_capacity(n);
    let mut ucur = 1 + 3 * n;
    let mut fcur = 0usize;
    for k in 0..n {
        let variant = frame[1 + 3 * k];
        let ulen = frame[2 + 3 * k] as usize;
        let flen = frame[3 + 3 * k] as usize;
        let u = frame[ucur..ucur + ulen].to_vec();
        let f = fs[fcur..fcur + flen].to_vec();
        ucur += ulen;
        fcur += flen;
        out.push(match variant {
            0 => Payload::Empty,
            1 => Payload::u64s(u),
            2 => Payload::f64s(f),
            _ => Payload::mixed(u, f),
        });
    }
    out
}

fn decode_u64_blocks(all: &[u64], p: usize) -> Vec<Vec<u64>> {
    let mut out = vec![Vec::new(); p];
    let mut i = 0usize;
    while i < all.len() {
        let rank = all[i] as usize;
        let len = all[i + 1] as usize;
        out[rank] = all[i + 2..i + 2 + len].to_vec();
        i += 2 + len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineModel};

    fn model() -> MachineModel {
        MachineModel::cray_t3d()
    }

    #[test]
    fn barrier_aligns_clocks() {
        for p in [1, 2, 3, 5, 8] {
            let out = Machine::run_checked(p, model(), |ctx| {
                ctx.work(1e6 * (ctx.rank() as f64 + 1.0));
                ctx.barrier();
                ctx.time()
            });
            let t0 = out.results[0];
            for (r, &t) in out.results.iter().enumerate() {
                assert!(
                    (t - t0).abs() < 1e-12,
                    "rank {r} clock {t} != {t0} at p={p}"
                );
            }
            // The barrier cannot finish before the slowest rank's work.
            assert!(t0 >= 1e6 * p as f64 * model().flop_time);
        }
    }

    #[test]
    fn all_reduce_sum_and_max() {
        for p in [1, 2, 4, 7] {
            let out = Machine::run_checked(p, model(), |ctx| {
                let s = ctx.all_reduce_sum(ctx.rank() as f64 + 1.0);
                let m = ctx.all_reduce_max(ctx.rank() as f64);
                (s, m)
            });
            let expect_sum = (p * (p + 1)) as f64 / 2.0;
            for &(s, m) in &out.results {
                assert_eq!(s, expect_sum);
                assert_eq!(m, (p - 1) as f64);
            }
        }
    }

    #[test]
    fn all_reduce_vectors_u64() {
        let out = Machine::run_checked(5, model(), |ctx| {
            let v = vec![ctx.rank() as u64, 10 + ctx.rank() as u64];
            ctx.all_reduce_u64(v, ReduceOp::Min)
        });
        for r in &out.results {
            assert_eq!(r, &vec![0, 10]);
        }
    }

    #[test]
    fn all_gather_variable_lengths() {
        let out = Machine::run_checked(4, model(), |ctx| {
            let local: Vec<u64> = (0..ctx.rank() as u64).collect();
            ctx.all_gather_u64(&local)
        });
        for gathered in &out.results {
            assert_eq!(gathered.len(), 4);
            for (r, v) in gathered.iter().enumerate() {
                let expect: Vec<u64> = (0..r as u64).collect();
                assert_eq!(v, &expect, "rank {r}");
            }
        }
    }

    #[test]
    fn all_gather_f64_roundtrip() {
        let out = Machine::run_checked(3, model(), |ctx| {
            let local = vec![ctx.rank() as f64 * 1.5; ctx.rank() + 1];
            ctx.all_gather_f64(&local)
        });
        for gathered in &out.results {
            assert_eq!(gathered[2], vec![3.0, 3.0, 3.0]);
            assert_eq!(gathered[0], vec![0.0]);
        }
    }

    #[test]
    fn exchange_routes_messages() {
        // Ring: each rank sends its rank to the next, two copies to rank 0.
        let out = Machine::run_checked(4, model(), |ctx| {
            let me = ctx.rank();
            let mut sends = vec![((me + 1) % 4, Payload::u64s(vec![me as u64]))];
            if me == 2 {
                sends.push((0, Payload::u64s(vec![100])));
            }
            ctx.exchange(sends)
        });
        // Rank 1 receives exactly one message, from 0.
        assert_eq!(out.results[1], vec![(0, Payload::u64s(vec![0]))]);
        // Rank 0 receives from 2 (the extra) and 3 (the ring), ordered by src.
        assert_eq!(
            out.results[0],
            vec![(2, Payload::u64s(vec![100])), (3, Payload::u64s(vec![3]))]
        );
    }

    #[test]
    fn exchange_preserves_per_source_order() {
        let out = Machine::run_checked(2, model(), |ctx| {
            if ctx.rank() == 0 {
                ctx.exchange(vec![
                    (1, Payload::u64s(vec![1])),
                    (1, Payload::u64s(vec![2])),
                    (1, Payload::u64s(vec![3])),
                ])
            } else {
                ctx.exchange(vec![])
            }
        });
        let got: Vec<u64> = out.results[1]
            .iter()
            .map(|(_, p)| p.clone().into_u64()[0])
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn exchange_pack_roundtrip_all_variants() {
        let parts = vec![
            Payload::Empty,
            Payload::u64s(vec![1, 2, 3]),
            Payload::f64s(vec![0.5, -1.5]),
            Payload::mixed(vec![9], vec![2.25]),
            Payload::u64s(vec![]),
            Payload::f64s(vec![]),
        ];
        assert_eq!(unpack_exchange(pack_exchange(parts.clone())), parts);
        // A lone payload survives too (the common single-send case).
        let one = vec![Payload::mixed(vec![7, 8], vec![])];
        assert_eq!(unpack_exchange(pack_exchange(one.clone())), one);
    }

    #[test]
    fn exchange_mixed_payload_kinds_one_destination() {
        // Regression for the packing frame: heterogeneous payload kinds from
        // one source must arrive intact and in send order.
        let out = Machine::run_checked(2, model(), |ctx| {
            if ctx.rank() == 0 {
                ctx.exchange(vec![
                    (1, Payload::f64s(vec![1.25])),
                    (1, Payload::Empty),
                    (1, Payload::mixed(vec![4], vec![0.5])),
                ])
            } else {
                ctx.exchange(vec![])
            }
        });
        assert_eq!(
            out.results[1],
            vec![
                (0, Payload::f64s(vec![1.25])),
                (0, Payload::Empty),
                (0, Payload::mixed(vec![4], vec![0.5])),
            ]
        );
    }

    #[test]
    fn planned_collective_messages_match_measured() {
        // Every collective predicts its exact point-to-point message count
        // before sending; the reserved-tag bucket must agree with the
        // measured counters at every rank count (bytes stay unpredicted —
        // the `coll` tag is inexact by design).
        for p in [1, 2, 3, 5, 8] {
            let out = Machine::run_checked(p, model(), |ctx| {
                ctx.barrier();
                ctx.all_reduce_sum(ctx.rank() as f64);
                ctx.all_reduce_sum_u64(3);
                ctx.all_gather_u64(&[ctx.rank() as u64]);
                ctx.all_gather_f64(&[1.0; 2]);
                let me = ctx.rank();
                let mut sends = vec![((me + 1) % p, Payload::u64s(vec![me as u64]))];
                if me == 0 {
                    sends.push((p - 1, Payload::Empty));
                }
                ctx.exchange(sends);
            });
            let (measured, _) = out.stats.tag_totals(Ctx::RESERVED_TAG_BASE);
            let &(planned, planned_bytes, exact) = out
                .stats
                .planned_by_tag
                .get(&Ctx::RESERVED_TAG_BASE)
                .expect("collectives record planned message counts");
            assert_eq!(planned, measured, "p={p}");
            assert_eq!(planned_bytes, 0, "p={p}");
            assert!(!exact, "coll bytes are not predicted, p={p}");
        }
    }

    #[test]
    fn collectives_compose_in_sequence() {
        let out = Machine::run_checked(6, model(), |ctx| {
            let a = ctx.all_reduce_sum(1.0);
            ctx.barrier();
            let b = ctx.all_reduce_sum_u64(2);
            let g = ctx.all_gather_u64(&[ctx.rank() as u64]);
            (a, b, g.len())
        });
        for &(a, b, g) in &out.results {
            assert_eq!(a, 6.0);
            assert_eq!(b, 12);
            assert_eq!(g, 6);
        }
    }
}
