//! Happens-before instrumentation for checked mode: per-rank vector clocks
//! and the match-order race detector.
//!
//! Every envelope sent under [`crate::Machine::run_checked`] is stamped with
//! the sender's **vector clock** (one counter per rank, counting that rank's
//! communication events). Receiving joins the stamp into the receiver's
//! clock, so clock dominance is exactly the happens-before relation of the
//! run: event `a` happened-before event `b` iff `VC(a) ≤ VC(b)` component-wise.
//!
//! The property being checked is **match-order determinism**: which envelope
//! a receive matches must be forced by the program, not by the scheduler or
//! the wire. Two envelopes addressed to the same `(receiver, tag)` are a
//! *match-order race* when neither one's **match** happens-before the
//! other's **send** — under some legal schedule both are in flight at once,
//! and then:
//!
//! * if they come from the **same sender**, the VM's wire contract (DESIGN
//!   §2.7/§10: delivery order between two in-flight messages with the same
//!   `(sender, tag)` is undefined — the `reorder` fault exploits it) lets
//!   them swap, so even a directed `recv(from, tag)` can bind the payloads
//!   to the wrong receives;
//! * if they come from **different senders** and at least one was matched by
//!   an order-*sensitive* any-source receive, the wildcard can match either
//!   one first.
//!
//! Either way the bytes each receive returns depend on scheduling — exactly
//! the nondeterminism that breaks the paper's "parallel factor is exactly
//! the serial one" claim and the bitwise-reproducibility contract
//! (DESIGN §11). The detector reports the first such pair with both
//! envelopes, their source ops, and the clock evidence, then aborts the run
//! through the commcheck board like any other protocol violation.
//!
//! Detection is *receiver-local*: each rank compares every accepted envelope
//! against a bounded per-tag history of earlier accepts ([`MAX_PER_TAG`] per
//! tag, [`MAX_TAGS`] tags — far above what any protocol in this repository
//! keeps concurrently in one namespace, since data-plane rounds and
//! collective calls each take a fresh tag). No cross-thread state is
//! involved beyond the stamps already riding the envelopes, so the checked
//! machine gains no new lock traffic. Production [`crate::Machine::run`]
//! never allocates a clock — tracking is confined to checked mode.

use std::collections::{HashMap, VecDeque};

/// Accepted-envelope history kept per tag. Protocols here put at most one
/// message per peer in one namespace round, so 64 covers p ≤ 64 with room;
/// a race separated by more than 64 matched messages on one tag is missed
/// (documented sanitizer bound, not a soundness claim).
const MAX_PER_TAG: usize = 64;

/// Distinct tags tracked before the history resets. Per-round wire tags
/// retire as rounds advance, so stale entries are dead weight; resetting
/// forgets them wholesale rather than growing without bound.
const MAX_TAGS: usize = 8192;

/// How a receive selected the envelope it matched — which concurrent pairs
/// constitute a race depends on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecvMode {
    /// `recv(from, tag)`: matching filters by source; only same-sender
    /// overtaking can change what this receive returns.
    Directed,
    /// Any-source receive whose consumer is order-sensitive: a concurrent
    /// envelope from any other sender could have matched instead.
    Wildcard,
    /// Any-source receive whose consumer canonicalizes the batch (the
    /// sparse all-to-all sorts by source before returning), so cross-sender
    /// arrival order is immaterial. Same-sender overtaking still races.
    WildcardUnordered,
}

impl RecvMode {
    fn describe(self, from: usize) -> String {
        match self {
            RecvMode::Directed => format!("recv(from={from})"),
            RecvMode::Wildcard => "any-source recv".to_string(),
            RecvMode::WildcardUnordered => "any-source recv (order-insensitive)".to_string(),
        }
    }
}

/// One accepted envelope, as remembered for later concurrency checks.
struct AcceptRecord {
    from: usize,
    /// The sender's vector clock stamped on the envelope.
    send_vc: Vec<u64>,
    /// The receiver's own clock component right after this accept — the
    /// accept event's index in the receiver's local event order.
    accept_event: u64,
    mode: RecvMode,
}

/// Per-rank happens-before state. Owned by the rank's `Ctx`; allocated only
/// in checked mode.
pub(crate) struct HbState {
    me: usize,
    /// This rank's vector clock. `clock[me]` counts local communication
    /// events (sends and accepts); other components are the latest known
    /// event counts of the other ranks, learned through received stamps.
    clock: Vec<u64>,
    history: HashMap<u64, VecDeque<AcceptRecord>>,
    /// Links are FIFO per `(sender, receiver)` (reliable delivery
    /// sequences and reorders frames at ingress), so same-sender
    /// overtaking is impossible and no longer a race.
    fifo: bool,
}

impl HbState {
    pub(crate) fn new(me: usize, nprocs: usize) -> Self {
        HbState {
            me,
            clock: vec![0; nprocs],
            history: HashMap::new(),
            fifo: false,
        }
    }

    /// Declares the machine's links FIFO per `(sender, receiver)`; see
    /// the `fifo` field.
    pub(crate) fn set_fifo(&mut self, on: bool) {
        self.fifo = on;
    }

    /// Forgets all accept history (the recovery epoch reset: pre-loss
    /// accepts must not be compared against post-loss traffic). The vector
    /// clock itself stays monotonic across epochs.
    pub(crate) fn reset(&mut self) {
        self.history.clear();
    }

    /// Registers a send event and returns the stamp to ride the envelope.
    pub(crate) fn stamp_send(&mut self) -> Vec<u64> {
        self.clock[self.me] += 1;
        self.clock.clone()
    }

    /// This rank's own clock component — the local index of the most
    /// recent communication event. Read right after [`HbState::note_accept`]
    /// it is that accept's event index (the trace recorder's use).
    pub(crate) fn local_event(&self) -> u64 {
        self.clock[self.me]
    }

    /// Registers the accept of an envelope `(from, tag, send_vc)` matched
    /// under `mode`: joins the stamp into this rank's clock, checks the
    /// tag's accept history for a happens-before-concurrent sibling, and
    /// records the accept. Returns the race report, if any.
    pub(crate) fn note_accept(
        &mut self,
        tag: u64,
        from: usize,
        send_vc: Option<&[u64]>,
        mode: RecvMode,
    ) -> Option<String> {
        let Some(send_vc) = send_vc else {
            // Unstamped envelope: nothing to join or compare (cannot happen
            // for envelopes sent inside one checked run).
            return None;
        };
        for (slot, &got) in self.clock.iter_mut().zip(send_vc) {
            *slot = (*slot).max(got);
        }
        self.clock[self.me] += 1;
        let accept_event = self.clock[self.me];
        let report = self
            .history
            .get(&tag)
            .and_then(|h| {
                h.iter()
                    .find(|h| races(h, from, send_vc, mode, self.me, self.fifo))
            })
            .map(|h| self.report(tag, h, from, send_vc, mode, accept_event));
        if self.history.len() >= MAX_TAGS && !self.history.contains_key(&tag) {
            self.history.clear();
        }
        let entry = self.history.entry(tag).or_default();
        if entry.len() >= MAX_PER_TAG {
            entry.pop_front();
        }
        entry.push_back(AcceptRecord {
            from,
            send_vc: send_vc.to_vec(),
            accept_event,
            mode,
        });
        report
    }

    /// Formats the minimized race report: the two envelopes, their source
    /// ops (the send's index in the sender's local event order), and the
    /// clock evidence that nothing orders the later send after the earlier
    /// match.
    fn report(
        &self,
        tag: u64,
        earlier: &AcceptRecord,
        from: usize,
        send_vc: &[u64],
        mode: RecvMode,
        accept_event: u64,
    ) -> String {
        let me = self.me;
        let cause = if earlier.from == from {
            "same-sender envelopes may be delivered in either order (the wire \
             contract leaves same-(sender, tag) ordering undefined)"
        } else {
            "an order-sensitive any-source receive may match either envelope \
             first"
        };
        format!(
            "commcheck: match-order race on tag {tag:#x} at rank {me} —\n\
             \x20 envelope A: rank {} -> rank {me}, send op #{} on rank {}, matched as rank-{me} event #{} via {}\n\
             \x20 envelope B: rank {} -> rank {me}, send op #{} on rank {}, matched as rank-{me} event #{} via {}\n\
             \x20 happens-before evidence: B's send clock knows only {} of rank {me}'s events,\n\
             \x20   but A was matched at rank-{me} event #{} — neither match happens-before the\n\
             \x20   other's send, so a legal schedule swaps which receive gets which payload; {cause}.\n\
             \x20 A send clock: {:?}\n\
             \x20 B send clock: {:?}\n",
            earlier.from,
            earlier.send_vc.get(earlier.from).copied().unwrap_or(0),
            earlier.from,
            earlier.accept_event,
            earlier.mode.describe(earlier.from),
            from,
            send_vc.get(from).copied().unwrap_or(0),
            from,
            accept_event,
            mode.describe(from),
            send_vc.get(me).copied().unwrap_or(0),
            earlier.accept_event,
            earlier.send_vc,
            send_vc,
        )
    }
}

/// Is the new accept `(from, send_vc, mode)` a match-order race against the
/// earlier accept `h` on the same `(receiver, tag)`?
///
/// Ordered iff the earlier **match** happens-before the new **send**: the
/// new envelope's stamp carries at least `h.accept_event` of the receiver's
/// own events (the accept bumped the receiver's component, and only a
/// causal path through the receiver can teach the sender that value).
/// Otherwise the two envelopes are concurrent, and the pair races when the
/// modes make the match assignment scheduling-dependent.
fn races(
    h: &AcceptRecord,
    from: usize,
    send_vc: &[u64],
    mode: RecvMode,
    me: usize,
    fifo: bool,
) -> bool {
    if send_vc.get(me).copied().unwrap_or(0) >= h.accept_event {
        return false; // h's match happens-before the new send: forced order.
    }
    if h.from == from {
        // Same-sender overtaking — racy on the wire unless it is a local
        // self-send (self-sends bypass the wire and stay FIFO) or the
        // whole machine runs reliable delivery (links sequenced FIFO).
        return from != me && !fifo;
    }
    // Cross-sender: only an order-sensitive wildcard consumer can bind the
    // wrong payload; directed receives filter by source, and the
    // order-insensitive all-to-all canonicalizes its batch.
    matches!(h.mode, RecvMode::Wildcard) || matches!(mode, RecvMode::Wildcard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_sender_concurrent_pair_races() {
        let mut hb = HbState::new(1, 2);
        // Rank 0 sends twice back-to-back: stamps [1,0] then [2,0].
        assert!(hb
            .note_accept(7, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
        let report = hb.note_accept(7, 0, Some(&[2, 0]), RecvMode::Directed);
        let report = report.expect("second concurrent same-sender envelope must race");
        assert!(report.contains("match-order race"), "{report}");
        assert!(report.contains("tag 0x7"), "{report}");
    }

    #[test]
    fn fifo_links_suppress_same_sender_race() {
        let mut hb = HbState::new(1, 2);
        hb.set_fifo(true);
        assert!(hb
            .note_accept(7, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
        // Under reliable delivery the link is sequenced: back-to-back
        // same-sender envelopes cannot overtake, so no race.
        assert!(hb
            .note_accept(7, 0, Some(&[2, 0]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn reset_forgets_history_but_keeps_clock() {
        let mut hb = HbState::new(1, 2);
        assert!(hb
            .note_accept(7, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
        let event = hb.local_event();
        hb.reset();
        assert_eq!(hb.local_event(), event, "clock survives the epoch reset");
        // Without history the old accept cannot race the new one.
        assert!(hb
            .note_accept(7, 0, Some(&[2, 0]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn acknowledged_resend_is_ordered() {
        let mut hb = HbState::new(1, 2);
        assert!(hb
            .note_accept(7, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
        // The accept above was rank 1's event #1; a stamp carrying it proves
        // the sender learned of the match before sending again.
        let ack_vc = hb.stamp_send(); // rank 1 replies (event #2)
        assert!(ack_vc[1] >= 1);
        assert!(hb
            .note_accept(7, 0, Some(&[2, 2]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn cross_sender_directed_pair_is_fine() {
        let mut hb = HbState::new(0, 3);
        assert!(hb
            .note_accept(9, 1, Some(&[0, 1, 0]), RecvMode::Directed)
            .is_none());
        assert!(hb
            .note_accept(9, 2, Some(&[0, 0, 1]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn cross_sender_sensitive_wildcard_races() {
        let mut hb = HbState::new(0, 3);
        assert!(hb
            .note_accept(9, 1, Some(&[0, 1, 0]), RecvMode::Wildcard)
            .is_none());
        let report = hb.note_accept(9, 2, Some(&[0, 0, 1]), RecvMode::Wildcard);
        assert!(report.is_some());
    }

    #[test]
    fn cross_sender_unordered_wildcard_is_suppressed() {
        let mut hb = HbState::new(0, 3);
        assert!(hb
            .note_accept(9, 1, Some(&[0, 1, 0]), RecvMode::WildcardUnordered)
            .is_none());
        assert!(hb
            .note_accept(9, 2, Some(&[0, 0, 1]), RecvMode::WildcardUnordered)
            .is_none());
    }

    #[test]
    fn self_sends_never_race() {
        let mut hb = HbState::new(0, 2);
        assert!(hb
            .note_accept(3, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
        assert!(hb
            .note_accept(3, 0, Some(&[2, 0]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn per_tag_eviction_forgets_the_oldest_accept() {
        // Documented sanitizer bound: a race separated by more than
        // MAX_PER_TAG matched messages on one tag is missed. Set up a pair
        // that races when adjacent, then push the earlier record out of the
        // window and confirm the detector (by design) stays quiet.
        let racy_a = [0u64, 1, 0, 0]; // rank 1's first send, Wildcard-matched
        let racy_b = [0u64, 0, 1, 0]; // rank 2's first send, concurrent with A's match

        let mut control = HbState::new(0, 4);
        assert!(control
            .note_accept(11, 1, Some(&racy_a), RecvMode::Wildcard)
            .is_none());
        assert!(
            control
                .note_accept(11, 2, Some(&racy_b), RecvMode::Directed)
                .is_some(),
            "adjacent in the window, the pair must be reported"
        );

        let mut hb = HbState::new(0, 4);
        assert!(hb
            .note_accept(11, 1, Some(&racy_a), RecvMode::Wildcard)
            .is_none());
        // MAX_PER_TAG order-insensitive accepts from rank 3, each stamped
        // with the latest of rank 0's accept events so none of them races
        // with anything still in the window.
        for i in 0..MAX_PER_TAG as u64 {
            let vc = [i + 1, 0, 0, i + 1];
            assert!(hb
                .note_accept(11, 3, Some(&vc), RecvMode::WildcardUnordered)
                .is_none());
        }
        assert_eq!(hb.history[&11].len(), MAX_PER_TAG, "window stays full");
        assert_eq!(hb.history[&11].front().unwrap().from, 3, "A was evicted");
        assert!(
            hb.note_accept(11, 2, Some(&racy_b), RecvMode::Directed)
                .is_none(),
            "the race partner left the window: missed, per the documented bound"
        );
    }

    #[test]
    fn tag_table_resets_wholesale_at_max_tags() {
        let mut hb = HbState::new(1, 2);
        for tag in 0..MAX_TAGS as u64 {
            assert!(hb
                .note_accept(tag, 0, Some(&[tag + 1, 0]), RecvMode::Directed)
                .is_none());
        }
        assert_eq!(hb.history.len(), MAX_TAGS);
        // An accept on a tag already tracked does not trigger the reset.
        let revisit = MAX_TAGS as u64 / 2;
        let after_all = [0, hb.local_event()]; // ordered after every accept so far
        assert!(hb
            .note_accept(revisit, 0, Some(&after_all), RecvMode::Directed)
            .is_none());
        assert_eq!(hb.history.len(), MAX_TAGS, "existing tag keeps the table");
        // A genuinely new tag past the cap drops the whole table: stale
        // per-round tags are dead weight, and forgetting them wholesale is
        // the documented trade against unbounded growth.
        assert!(hb
            .note_accept(MAX_TAGS as u64 + 7, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
        assert_eq!(hb.history.len(), 1, "table reset to just the new tag");
        assert!(hb.history.contains_key(&(MAX_TAGS as u64 + 7)));
        // The reset also forgets would-be race partners on old tags — the
        // same documented miss as the per-tag window.
        assert!(hb
            .note_accept(0, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn mixed_mode_cross_sender_edges() {
        // A concurrent cross-sender pair races iff at least one side was an
        // order-*sensitive* any-source match — whichever side it is.
        let a = [0u64, 1, 0];
        let b = [0u64, 0, 1];
        let cases = [
            (RecvMode::Wildcard, RecvMode::Directed, true),
            (RecvMode::Directed, RecvMode::Wildcard, true),
            (RecvMode::Wildcard, RecvMode::WildcardUnordered, true),
            (RecvMode::WildcardUnordered, RecvMode::Wildcard, true),
            (RecvMode::Directed, RecvMode::WildcardUnordered, false),
            (RecvMode::WildcardUnordered, RecvMode::Directed, false),
        ];
        for (first, second, expect_race) in cases {
            let mut hb = HbState::new(0, 3);
            assert!(hb.note_accept(9, 1, Some(&a), first).is_none());
            let report = hb.note_accept(9, 2, Some(&b), second);
            assert_eq!(
                report.is_some(),
                expect_race,
                "first={first:?} second={second:?}"
            );
        }
    }

    #[test]
    fn unstamped_envelopes_are_ignored() {
        // Envelopes without a clock (not sent inside this checked run) carry
        // no evidence: nothing joins, nothing is recorded, nothing races.
        let mut hb = HbState::new(1, 2);
        assert!(hb.note_accept(7, 0, None, RecvMode::Wildcard).is_none());
        assert!(hb.history.is_empty());
        assert_eq!(hb.local_event(), 0, "no event was charged");
        // A later stamped pair still gets a clean first-accept baseline.
        assert!(hb
            .note_accept(7, 0, Some(&[1, 0]), RecvMode::Directed)
            .is_none());
    }

    #[test]
    fn history_is_bounded_per_tag() {
        let mut hb = HbState::new(1, 2);
        // Fill the tag history with ordered accepts (each send knows the
        // previous accept), then confirm the deque never exceeds the cap.
        for i in 0..(MAX_PER_TAG as u64 + 10) {
            let vc = vec![i + 1, 2 * i];
            assert!(hb
                .note_accept(5, 0, Some(&vc), RecvMode::Directed)
                .is_none());
        }
        assert!(hb.history[&5].len() <= MAX_PER_TAG);
    }
}
