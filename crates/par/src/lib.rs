//! An SPMD message-passing virtual machine with a logical-clock cost model.
//!
//! **What the paper used →** a 128-processor Cray T3D (150 MHz Alpha EV4
//! processors on a 3-D torus) programmed in a message-passing style.
//! **What this crate provides →** the closest synthetic equivalent that
//! exercises the same code paths: [`Machine::run`] launches `p` OS threads,
//! one per *rank*, each holding a [`Ctx`] with point-to-point `send`/`recv`
//! and the collectives the algorithms need (`barrier`, `all_reduce_*`,
//! `all_gather_*`, `exchange`).
//!
//! Every rank carries a **logical clock**. Compute advances it through
//! [`Ctx::work`] (a flop-cost model) and [`Ctx::copy_words`] (a data-motion
//! model); receiving a message advances it to
//! `max(own, sender_stamp + latency + bytes · inv_bandwidth)`; collectives
//! synchronise clocks along binomial trees, charging one latency per hop.
//! The *simulated time* of a run — [`RunOutput::sim_time`] — is the maximum
//! clock over ranks, and is fully deterministic for a deterministic program,
//! no matter how the host schedules the threads or how many cores it has.
//! This is what lets a laptop reproduce the *shape* of 16–128 processor
//! T3D measurements (speedups, crossovers, algorithm ratios), which depend
//! only on per-rank operation counts, message counts/volumes, and
//! synchronisation depth — exactly the three quantities the model tracks.
//! Real wall-clock time can of course also be measured around `Machine::run`
//! for small `p`; the Criterion benches do that.
//!
//! # Checked mode (`commcheck`)
//!
//! [`Machine::run_checked`] runs the same program under the verification
//! layer in [`check`]: deadlocks abort with a wait-for graph instead of
//! hanging, leaked messages fail the run with `(from, to, tag, bytes)`
//! records, and collectives called in different orders on different ranks
//! are caught at the first mismatched envelope. All in-repo tests use the
//! checked entry point; [`Machine::run`] stays the zero-overhead
//! production path.

//!
//! # Fault injection
//!
//! [`Machine::builder`] can install a seeded [`fault::FaultPlan`] that
//! delays, reorders, duplicates, or drops messages and stalls or kills
//! ranks at their communication ops — with commcheck asserting the right
//! diagnosis for each (see [`fault`]).
//!
//! # Reliable delivery and rank-loss recovery
//!
//! Two opt-in robustness layers ride on the same machinery:
//!
//! * [`MachineBuilder::reliable`] puts every link on a sequence/ack/retry
//!   protocol (see [`rel`]): injected drops, duplicates, and reorders are
//!   absorbed transparently — the program sees exactly the fault-free
//!   delivery order and produces bitwise-identical results.
//! * [`MachineBuilder::recovery`] arms rank-loss detection: when a rank is
//!   killed, survivors observe a [`RankLost`] unwind instead of a watchdog
//!   abort, and a recovery driver (e.g. `pilut_solver::dist_solve_robust`)
//!   calls [`Ctx::adopt_world`] / [`Ctx::recover_sync`] to agree on the
//!   shrunk world and resume; collectives re-root themselves over the
//!   surviving ranks automatically.

pub mod check;
pub mod collectives;
pub mod ctx;
pub mod fault;
pub(crate) mod hb;
pub mod machine;
pub mod payload;
pub mod pool;
pub mod rel;
pub mod sched;

pub use check::{CollKind, LeakRecord, RankLost, RankStatus, RunFlags};
pub use ctx::Ctx;
pub use fault::{FaultAction, FaultPlan, FaultRule, InjectedFault, FAULT_KILL_PREFIX};
pub use machine::{Machine, MachineBuilder, MachineModel, MachineStats, RunOutput};
pub use payload::Payload;
pub use rel::{ACK_EVERY, ACK_TAG, RECOVER_TAG};
pub use sched::{MatchKind, SchedHandle, SchedulePlan, TraceEvent};
