//! Deterministic fault injection for the SPMD virtual machine.
//!
//! A [`FaultPlan`] is a seeded list of rules that perturb a checked run at
//! well-defined injection points: every `send` can be **delayed** (its wire
//! timestamp pushed into the simulated future), **reordered** (held back and
//! released after a later envelope), **duplicated**, or **dropped**, and any
//! rank can be **stalled** (a bounded wall-clock sleep) or **killed** (an
//! induced panic) at its next communication operation. The point of the
//! layer is not chaos for its own sake: every destructive fault must drive
//! the commcheck watchdog (see [`crate::check`]) to a *correct diagnosis* —
//! a kill shows up in the wait-for graph as the killed rank, a drop is
//! called out as injected in the deadlock report or the message-leak sweep,
//! a duplicate surfaces as a leak — instead of a hang or a misattributed
//! failure.
//!
//! Everything is deterministic: rule matching uses a splitmix64 stream
//! seeded per rank from the plan seed, so a given `(plan, program, p)`
//! triple always injects the same faults. Fault plans require checked mode;
//! [`crate::MachineBuilder`] enables it automatically.
//!
//! # Rule grammar
//!
//! A [`FaultRule`] is an action plus a conjunction of filters; a rule fires
//! at an injection point iff **every** filter on it matches (unset filters
//! match everything) and the seeded coin ([`FaultRule::probability`]) comes
//! up. Rules are tried in plan order; the first firing rule wins.
//!
//! ```text
//! rule      := action filter*
//! action    := delay(s) | reorder | duplicate | drop     (message actions)
//!            | stall(ms) | kill                          (rank actions)
//! filter    := sender(r)    — message actions: the sending rank
//!            | receiver(r)  — message actions: the destination rank
//!            | rank(r)      — rank actions: the victim
//!                             (for message actions, alias of sender)
//!            | tag(t)       — message actions: exact wire tag
//!            | after_op(n)  — armed from the acting rank's n-th comm op
//!            | probability(p) | max_fires(n)
//! ```
//!
//! `sender`/`receiver` make a rule **link-scoped**: `drop.sender(1).receiver(3)`
//! perturbs only the 1→3 link, leaving every other link clean — the shape
//! chaos sweeps use to aim faults at one exchange edge. Under reliable
//! delivery ([`crate::MachineBuilder::reliable`]) the protocol's control
//! frames and retransmissions bypass injection: faults model a lossy link,
//! and the recovery traffic is the remedy, not another casualty.

use std::sync::Mutex;

/// Prefix of the panic payload used when a rank is killed by injection.
/// [`crate::Machine`] treats such a panic like a user panic unless the
/// commcheck board holds a primary diagnosis (the usual case: surviving
/// ranks deadlock on the dead one and the watchdog report wins).
pub const FAULT_KILL_PREFIX: &str = "fault-inject:";

/// What a matched rule does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Add `seconds` of simulated time to the envelope's send stamp. The
    /// message still arrives (matching is by `(from, tag)`, not time), so a
    /// correct program completes with an inflated clock — a *benign* fault.
    Delay {
        /// Simulated seconds added to the wire timestamp.
        seconds: f64,
    },
    /// Hold the envelope back and release it after the next envelope leaves
    /// this rank (or when the rank next blocks in a receive, or exits — so
    /// the injector itself can never destroy liveness). Benign for programs
    /// that match on `(from, tag)`.
    Reorder,
    /// Send a second copy of the envelope. The duplicate is never consumed
    /// by a correct program and must surface in the message-leak sweep.
    Duplicate,
    /// Discard the envelope instead of delivering it. The receiver can
    /// never match it: the watchdog must report the resulting deadlock and
    /// name the drop, or — if the run still completes — the leak sweep
    /// must report the dropped envelope.
    Drop,
    /// The matched rank sleeps this many wall-clock milliseconds at its
    /// next communication op. The watchdog must *not* report a stalled
    /// rank as deadlocked (its status stays `Running`).
    Stall {
        /// Wall-clock milliseconds to sleep.
        millis: u64,
    },
    /// The matched rank panics at its next communication op, simulating a
    /// process death. Surviving ranks that wait on it must get a deadlock
    /// report naming the killed rank.
    Kill,
}

impl FaultAction {
    /// True for actions that perturb a message in flight (matched at
    /// `send`), false for rank-level actions (matched at any comm op).
    fn is_message_action(self) -> bool {
        matches!(
            self,
            FaultAction::Delay { .. }
                | FaultAction::Reorder
                | FaultAction::Duplicate
                | FaultAction::Drop
        )
    }
}

/// One injection rule: an action plus the filters deciding where it fires.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// The fault to inject.
    pub action: FaultAction,
    /// Acting rank — the sender for message actions, the victim for
    /// `Stall`/`Kill`. `None` matches every rank.
    pub rank: Option<usize>,
    /// Destination filter (message actions only). `None` matches any.
    pub to: Option<usize>,
    /// Exact tag filter (message actions only). `None` matches any tag,
    /// including reserved collective tags.
    pub tag: Option<u64>,
    /// The rule only fires from the acting rank's `after_op`-th
    /// communication op onwards (ops are counted per rank from 1).
    pub after_op: u64,
    /// Probability in `[0, 1]` that a matching event actually fires, drawn
    /// from the plan's seeded per-rank stream.
    pub probability: f64,
    /// Cap on firings per rank; `None` is unlimited.
    pub max_fires: Option<u64>,
}

impl FaultRule {
    /// A rule that always fires wherever it matches (probability 1, no cap).
    pub fn new(action: FaultAction) -> Self {
        FaultRule {
            action,
            rank: None,
            to: None,
            tag: None,
            after_op: 0,
            probability: 1.0,
            max_fires: None,
        }
    }

    /// Restricts the rule to one acting rank (sender or victim).
    pub fn rank(mut self, r: usize) -> Self {
        self.rank = Some(r);
        self
    }

    /// Restricts a message rule to one destination rank.
    pub fn to(mut self, dest: usize) -> Self {
        self.to = Some(dest);
        self
    }

    /// Link-scoping alias of [`FaultRule::rank`] for message rules: the
    /// sending side of the perturbed link (see the module-level grammar).
    pub fn sender(self, r: usize) -> Self {
        self.rank(r)
    }

    /// Link-scoping alias of [`FaultRule::to`]: the receiving side of the
    /// perturbed link. `sender(a).receiver(b)` scopes a message rule to
    /// exactly the `a → b` link.
    pub fn receiver(self, dest: usize) -> Self {
        self.to(dest)
    }

    /// Restricts a message rule to one exact tag.
    pub fn tag(mut self, t: u64) -> Self {
        self.tag = Some(t);
        self
    }

    /// Arms the rule only from the acting rank's `n`-th comm op (1-based).
    pub fn after_op(mut self, n: u64) -> Self {
        self.after_op = n;
        self
    }

    /// Sets the firing probability (deterministic seeded draw).
    pub fn probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.probability = p;
        self
    }

    /// Caps the number of firings per rank.
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }
}

/// A seeded, ordered set of fault rules for one run. The first matching
/// rule wins at each injection point.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The rules, in matching order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// One fault that actually fired, recorded in the shared log so tests and
/// the chaos runner can assert injection really happened.
#[derive(Clone, Debug)]
pub struct InjectedFault {
    /// The acting rank (sender or victim).
    pub rank: usize,
    /// The acting rank's comm-op count when the fault fired (1-based).
    pub op: u64,
    /// Short action name: `delay`, `reorder`, `duplicate`, `drop`,
    /// `stall`, `kill`.
    pub kind: &'static str,
    /// Human-readable detail (destination, tag, magnitude).
    pub detail: String,
}

/// Plan plus the cross-rank firing log, shared by all rank threads.
pub(crate) struct FaultShared {
    plan: FaultPlan,
    log: Mutex<Vec<InjectedFault>>,
}

impl FaultShared {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultShared {
            plan,
            log: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn record(&self, fault: InjectedFault) {
        // A poisoned log only means some rank panicked mid-push; keep the
        // entries we have.
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(fault);
    }

    pub(crate) fn take_log(&self) -> Vec<InjectedFault> {
        std::mem::take(&mut *self.log.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// A copy of the firing log, for annotating failure reports without
    /// consuming the log that [`crate::RunOutput`] returns.
    pub(crate) fn snapshot(&self) -> Vec<InjectedFault> {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// What the session tells `send_internal` to do with one envelope.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum MessageFate {
    /// Deliver unchanged.
    Deliver,
    /// Deliver with this many simulated seconds added to the send stamp.
    DeliverDelayed(f64),
    /// Discard; record as an injected drop.
    Drop,
    /// Deliver, then deliver a second copy.
    Duplicate,
    /// Hold back until the next flush point.
    Hold,
}

/// Rank-level fate at a communication op.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum RankFate {
    /// Sleep this many wall-clock milliseconds, then continue.
    Stall(u64),
    /// Panic with a [`FAULT_KILL_PREFIX`] payload.
    Kill,
}

/// Per-rank injection state: the seeded RNG stream, the comm-op counter,
/// and per-rule firing counts.
pub(crate) struct FaultSession {
    shared: std::sync::Arc<FaultShared>,
    rank: usize,
    rng: u64,
    ops: u64,
    fires: Vec<u64>,
}

/// splitmix64 step — tiny, seedable, and plenty for fault-coin flips.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSession {
    pub(crate) fn new(shared: std::sync::Arc<FaultShared>, rank: usize) -> Self {
        let nrules = shared.plan.rules.len();
        let mut seed = shared.plan.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Warm the stream so nearby seeds decorrelate.
        splitmix64(&mut seed);
        FaultSession {
            shared,
            rank,
            rng: seed,
            ops: 0,
            fires: vec![0; nrules],
        }
    }

    /// The rank's communication-op count so far (1-based after the first
    /// [`FaultSession::tick`]).
    pub(crate) fn ops(&self) -> u64 {
        self.ops
    }

    fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let draw = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }

    /// True when rule `i` matches the current (rank, op) state; does not
    /// consume a firing.
    fn rule_armed(&self, i: usize, rule: &FaultRule) -> bool {
        if rule.rank.is_some_and(|r| r != self.rank) {
            return false;
        }
        if self.ops < rule.after_op {
            return false;
        }
        if rule.max_fires.is_some_and(|m| self.fires[i] >= m) {
            return false;
        }
        true
    }

    /// Counts one communication op and returns the rank-level fate, if a
    /// `Stall`/`Kill` rule fires. Called at the head of every send/recv.
    pub(crate) fn tick(&mut self) -> Option<RankFate> {
        self.ops += 1;
        for i in 0..self.shared.plan.rules.len() {
            let rule = self.shared.plan.rules[i].clone();
            if rule.action.is_message_action() || !self.rule_armed(i, &rule) {
                continue;
            }
            if !self.chance(rule.probability) {
                continue;
            }
            self.fires[i] += 1;
            match rule.action {
                FaultAction::Stall { millis } => {
                    self.shared.record(InjectedFault {
                        rank: self.rank,
                        op: self.ops,
                        kind: "stall",
                        detail: format!("{millis} ms"),
                    });
                    return Some(RankFate::Stall(millis));
                }
                FaultAction::Kill => {
                    self.shared.record(InjectedFault {
                        rank: self.rank,
                        op: self.ops,
                        kind: "kill",
                        detail: String::new(),
                    });
                    return Some(RankFate::Kill);
                }
                _ => unreachable!("message actions filtered above"),
            }
        }
        None
    }

    /// Decides the fate of one outgoing envelope. Called by
    /// `send_internal` for non-self destinations only (self-sends never
    /// touch the wire).
    pub(crate) fn on_send(&mut self, to: usize, tag: u64) -> MessageFate {
        for i in 0..self.shared.plan.rules.len() {
            let rule = self.shared.plan.rules[i].clone();
            if !rule.action.is_message_action() || !self.rule_armed(i, &rule) {
                continue;
            }
            if rule.to.is_some_and(|d| d != to) || rule.tag.is_some_and(|t| t != tag) {
                continue;
            }
            if !self.chance(rule.probability) {
                continue;
            }
            self.fires[i] += 1;
            let (fate, kind, detail) = match rule.action {
                FaultAction::Delay { seconds } => (
                    MessageFate::DeliverDelayed(seconds),
                    "delay",
                    format!("to rank {to} tag {tag:#x} (+{seconds}s simulated)"),
                ),
                FaultAction::Reorder => (
                    MessageFate::Hold,
                    "reorder",
                    format!("to rank {to} tag {tag:#x}"),
                ),
                FaultAction::Duplicate => (
                    MessageFate::Duplicate,
                    "duplicate",
                    format!("to rank {to} tag {tag:#x}"),
                ),
                FaultAction::Drop => (
                    MessageFate::Drop,
                    "drop",
                    format!("to rank {to} tag {tag:#x}"),
                ),
                _ => unreachable!("rank actions filtered above"),
            };
            self.shared.record(InjectedFault {
                rank: self.rank,
                op: self.ops,
                kind,
                detail,
            });
            return fate;
        }
        MessageFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rules_respect_after_op_and_max_fires() {
        let plan = FaultPlan::new(1).with(
            FaultRule::new(FaultAction::Drop)
                .rank(0)
                .after_op(2)
                .max_fires(1),
        );
        let mut s = FaultSession::new(Arc::new(FaultShared::new(plan)), 0);
        assert_eq!(s.tick(), None); // op 1: not armed yet
        assert_eq!(s.on_send(1, 7), MessageFate::Deliver);
        assert_eq!(s.tick(), None); // op 2: armed
        assert_eq!(s.on_send(1, 7), MessageFate::Drop);
        assert_eq!(s.tick(), None); // op 3: max_fires reached
        assert_eq!(s.on_send(1, 7), MessageFate::Deliver);
    }

    #[test]
    fn rank_filter_selects_victim() {
        let plan = FaultPlan::new(9).with(FaultRule::new(FaultAction::Kill).rank(2));
        let shared = Arc::new(FaultShared::new(plan));
        let mut s0 = FaultSession::new(Arc::clone(&shared), 0);
        let mut s2 = FaultSession::new(Arc::clone(&shared), 2);
        assert_eq!(s0.tick(), None);
        assert_eq!(s2.tick(), Some(RankFate::Kill));
        let log = shared.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].rank, 2);
        assert_eq!(log[0].kind, "kill");
    }

    #[test]
    fn link_scoped_rule_hits_only_its_link() {
        let plan = FaultPlan::new(5).with(FaultRule::new(FaultAction::Drop).sender(1).receiver(3));
        let shared = Arc::new(FaultShared::new(plan));
        let mut s1 = FaultSession::new(Arc::clone(&shared), 1);
        let mut s2 = FaultSession::new(Arc::clone(&shared), 2);
        s1.tick();
        s2.tick();
        assert_eq!(s1.on_send(3, 7), MessageFate::Drop, "the scoped link");
        assert_eq!(s1.on_send(2, 7), MessageFate::Deliver, "other receiver");
        assert_eq!(s2.on_send(3, 7), MessageFate::Deliver, "other sender");
    }

    #[test]
    fn probability_draws_are_deterministic() {
        let draws = |seed: u64| {
            let plan =
                FaultPlan::new(seed).with(FaultRule::new(FaultAction::Drop).probability(0.5));
            let mut s = FaultSession::new(Arc::new(FaultShared::new(plan)), 3);
            (0..32)
                .map(|_| {
                    s.tick();
                    s.on_send(1, 0) == MessageFate::Drop
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43), "different seeds should diverge");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_rejected() {
        let _ = FaultRule::new(FaultAction::Drop).probability(1.5);
    }
}
