//! Registered communication buffers: a cross-rank pool of reusable
//! message payloads.
//!
//! MPI codes register their halo buffers once and reuse them for every
//! exchange; nothing on the steady path touches the heap. The VM's
//! equivalent is this pool: a process-wide shelf of power-of-two size
//! classes holding `Vec<f64>` / `Vec<u64>` payload buffers. A plan warms
//! the classes it needs at build time ([`warm_f64`]); replay then
//! [`take`](take_f64)s an empty buffer, fills and ships it, and the
//! *receiver* — a different rank thread — [`give`](give_f64)s it back
//! after unwrapping, closing the producer/consumer cycle without a
//! single steady-state allocation. The zero-alloc bench gate is what
//! keeps everyone honest: a pool sized too small shows up as a counted
//! allocation inside a steady region, not as silent churn.
//!
//! Misses are deliberate, not hidden: an empty class allocates a fresh
//! buffer (fine during setup/warm-up, a gate failure inside a steady
//! region), and a full class drops the returned buffer (deallocation is
//! not churn — acquiring memory is).

use std::sync::Mutex;

/// Largest class exponent kept: buffers above `2^MAX_CLASS` elements
/// bypass the pool entirely (allocate on take, drop on give).
const MAX_CLASS: usize = 26;

/// Buffers retained per class; beyond this, returned buffers are dropped
/// and warm requests are clamped. The cap must absorb *every* link of a
/// class across all ranks and level sub-plans at full warm depth — under
/// reliable delivery that is `ACK_EVERY + skew` buffers per link, since
/// senders retain each frame until the cumulative ACK passes it. The cap
/// is a count, not a byte bound: it relies on large classes having few
/// links, which holds for halo/sweep schedules (link length scales with
/// the partition interface, link count with the neighbor degree).
const PER_CLASS: usize = 1024;

struct Pool<T> {
    /// `classes[c]` holds empty buffers with `capacity ≥ 2^c`. The spine
    /// and each class vector are pre-reserved at warm time so steady-state
    /// `give`/`take` never grow them.
    classes: Mutex<Vec<Vec<Vec<T>>>>,
}

impl<T> Pool<T> {
    const fn new() -> Self {
        Pool {
            classes: Mutex::new(Vec::new()),
        }
    }

    /// Class exponent serving a request of `len` elements.
    fn class_for_len(len: usize) -> usize {
        len.max(1).next_power_of_two().trailing_zeros() as usize
    }

    /// Class exponent a buffer of `cap` elements belongs to (its capacity
    /// covers every request in that class).
    fn class_for_cap(cap: usize) -> usize {
        (usize::BITS - 1 - cap.leading_zeros()) as usize
    }

    /// Warming is **additive**: each call adds `count` buffers to the
    /// class (up to the `PER_CLASS` shelf cap) rather than topping the
    /// shelf up to `count`. Plans warm once per send link, and links are
    /// fire-and-forget — a shipped buffer stays in flight until the
    /// *receiving* rank thread drains it — so the inventory a class needs
    /// is proportional to the number of links (across every rank, level
    /// sub-plan, and concurrent solve) that drew from it, not a fixed
    /// per-class constant. A top-up policy here left exactly `count`
    /// buffers for *all* links of a class and drained under cross-rank
    /// skew, which the zero-alloc bench gate caught as steady-state
    /// `take` misses.
    fn warm(&self, len: usize, count: usize) {
        let c = Self::class_for_len(len);
        if c > MAX_CLASS {
            return;
        }
        // lint: allow(unwrap): pool lock is never poisoned (no panics under it)
        let mut classes = self.classes.lock().unwrap();
        if classes.len() <= c {
            classes.resize_with(c + 1, || Vec::with_capacity(PER_CLASS));
        }
        let shelf = &mut classes[c];
        let target = (shelf.len() + count).min(PER_CLASS);
        while shelf.len() < target {
            shelf.push(Vec::with_capacity(1 << c));
        }
    }

    fn take(&self, len: usize) -> Vec<T> {
        let c = Self::class_for_len(len);
        if c <= MAX_CLASS {
            // lint: allow(unwrap): pool lock is never poisoned (no panics under it)
            let mut classes = self.classes.lock().unwrap();
            if let Some(buf) = classes.get_mut(c).and_then(Vec::pop) {
                return buf;
            }
        }
        Vec::with_capacity(len.max(1).next_power_of_two())
    }

    fn give(&self, mut buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let c = Self::class_for_cap(buf.capacity());
        if c > MAX_CLASS {
            return; // oversized: drop
        }
        buf.clear();
        // lint: allow(unwrap): pool lock is never poisoned (no panics under it)
        let mut classes = self.classes.lock().unwrap();
        if let Some(shelf) = classes.get_mut(c) {
            if shelf.len() < shelf.capacity() {
                shelf.push(buf);
            }
            // Full shelf (or unwarmed class below): drop the buffer. A
            // drop is a dealloc, which the zero-alloc gate permits.
        }
    }

    fn available(&self, len: usize) -> usize {
        let c = Self::class_for_len(len);
        // lint: allow(unwrap): pool lock is never poisoned (no panics under it)
        let classes = self.classes.lock().unwrap();
        classes.get(c).map_or(0, Vec::len)
    }
}

static F64_POOL: Pool<f64> = Pool::new();
static U64_POOL: Pool<u64> = Pool::new();

/// Adds `count` empty `f64` buffers able to hold `len` values (additive
/// per call, capped at the per-class shelf size — see [`Pool::warm`]).
/// Called at plan-build time, once per send link; replay then runs
/// allocation-free.
pub fn warm_f64(len: usize, count: usize) {
    F64_POOL.warm(len, count);
}

/// Takes an empty `f64` buffer with capacity ≥ `len` from the pool
/// (allocating a fresh one on a miss — setup-only by contract).
pub fn take_f64(len: usize) -> Vec<f64> {
    F64_POOL.take(len)
}

/// Returns a consumed `f64` buffer to the pool for the next replay round.
pub fn give_f64(buf: Vec<f64>) {
    F64_POOL.give(buf);
}

/// Adds `count` empty `u64` buffers able to hold `len` values (additive
/// per call; see [`warm_f64`]).
pub fn warm_u64(len: usize, count: usize) {
    U64_POOL.warm(len, count);
}

/// Takes an empty `u64` buffer with capacity ≥ `len` from the pool.
pub fn take_u64(len: usize) -> Vec<u64> {
    U64_POOL.take(len)
}

/// Returns a consumed `u64` buffer to the pool for the next replay round.
pub fn give_u64(buf: Vec<u64>) {
    U64_POOL.give(buf);
}

/// Tops the scalar class (single-element `f64` buffers) up to its shelf
/// cap. Called once per machine launch: scalar collectives draw from this
/// class on every GMRES inner iteration, and under reliable delivery each
/// link's retention window holds up to [`crate::ACK_EVERY`] of them
/// hostage — far more than any plan-driven warm would request. Warming is
/// additive and capped, so repeated launches are idempotent.
pub fn warm_scalars() {
    F64_POOL.warm(1, PER_CLASS);
}

/// Buffers currently shelved in the class serving `len` (test/diagnostic
/// hook).
pub fn pooled_f64(len: usize) -> usize {
    F64_POOL.available(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineModel};
    use crate::payload::Payload;

    #[test]
    fn take_give_roundtrip_reuses_the_buffer() {
        warm_f64(100, 1);
        let mut a = take_f64(100);
        let ptr = a.as_ptr();
        a.extend((0..100).map(|i| i as f64));
        give_f64(a);
        let b = take_f64(80); // same class (2^7): must get the same buffer
        assert_eq!(b.as_ptr(), ptr, "pool did not recycle the buffer");
        assert!(b.is_empty(), "recycled buffer not cleared");
        give_f64(b);
    }

    #[test]
    fn warmed_classes_serve_steadily_without_allocating() {
        warm_f64(1000, 2);
        warm_u64(500, 2);
        let guard = pilut_allocaudit::zero_alloc("pool_steady");
        for _ in 0..4 {
            let mut f = take_f64(1000);
            let mut u = take_u64(500);
            f.extend(std::iter::repeat(1.5).take(1000));
            u.extend(0..500u64);
            give_f64(f);
            give_u64(u);
        }
        drop(guard);
    }

    #[test]
    fn oversized_and_unwarmed_requests_still_work() {
        let big = take_f64((1 << MAX_CLASS) + 1);
        assert!(big.capacity() > 1 << MAX_CLASS);
        give_f64(big); // dropped, not shelved
        let odd = take_u64(3);
        assert!(odd.capacity() >= 3);
        give_u64(odd);
    }

    /// Differential test for the production path: an *unchecked*
    /// `Machine::run` — the zero-overhead entry point — must leave no
    /// trace in the audit layer. The transport (channel nodes, payload
    /// refcounts, pending queues) is harness-owned by the DESIGN §16
    /// taxonomy, so even with the audit allocator compiled in, a
    /// production exchange inside a `ZeroAllocScope` is silent and no
    /// region is ever recorded.
    #[test]
    fn production_run_records_no_audit_regions() {
        pilut_allocaudit::reset_regions();
        let out = Machine::run(2, MachineModel::cray_t3d(), |ctx| {
            let payload = Payload::f64s(vec![ctx.rank() as f64; 64]);
            let peer = 1 - ctx.rank();
            let guard = pilut_allocaudit::zero_alloc("production_exchange");
            if ctx.rank() == 0 {
                ctx.send(peer, 7, payload);
                let got = ctx.recv(peer, 8);
                drop(guard);
                got.into_f64()[0]
            } else {
                let got = ctx.recv(peer, 7);
                ctx.send(peer, 8, payload);
                drop(guard);
                got.into_f64()[0]
            }
        });
        assert_eq!(out.results, vec![1.0, 0.0]);
        let regions = pilut_allocaudit::region_stats();
        assert!(
            regions.is_empty(),
            "production Machine::run recorded audit regions: {regions:?}"
        );
    }
}
