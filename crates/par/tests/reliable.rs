//! Acceptance tests for the two opt-in robustness layers: reliable
//! delivery (`MachineBuilder::reliable`) and rank-loss recovery
//! (`MachineBuilder::recovery`).
//!
//! The reliability contract is differential: a run under injected
//! drop/duplicate/reorder faults must produce **bitwise-identical** results
//! to the fault-free run — the protocol absorbs the faults instead of
//! letting the watchdog diagnose them. The recovery contract is the
//! driver-loop shape every robust workload uses: catch the [`RankLost`]
//! unwind, adopt the shrunk world, agree on it, and re-run.

use pilut_par::{
    Ctx, FaultAction, FaultPlan, FaultRule, Machine, MachineModel, Payload, RankLost, ACK_TAG,
};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

fn model() -> MachineModel {
    MachineModel::cray_t3d()
}

/// A ring workload with enough traffic for every fault class to bite:
/// directed sends, a wildcard-matched exchange, and a collective.
fn ring_workload(ctx: &mut Ctx) -> Vec<u64> {
    let (me, p) = (ctx.rank(), ctx.nprocs());
    let mut acc = Vec::new();
    for round in 0..12u64 {
        ctx.send(
            (me + 1) % p,
            7,
            Payload::u64s(vec![me as u64 * 1000 + round]),
        );
        acc.push(ctx.recv((me + p - 1) % p, 7).into_u64()[0]);
    }
    let sends = vec![((me + 2) % p, Payload::u64s(vec![me as u64]))];
    for (src, payload) in ctx.exchange(sends) {
        acc.push(src as u64 * 100 + payload.into_u64()[0]);
    }
    acc.push(ctx.all_reduce_sum_u64(me as u64 + 1));
    acc
}

fn faulty_links_plan() -> FaultPlan {
    FaultPlan::new(23)
        .with(
            FaultRule::new(FaultAction::Drop)
                .sender(0)
                .tag(7)
                .max_fires(3),
        )
        .with(
            FaultRule::new(FaultAction::Duplicate)
                .sender(1)
                .receiver(2)
                .tag(7)
                .max_fires(4),
        )
        .with(
            FaultRule::new(FaultAction::Reorder)
                .sender(2)
                .tag(7)
                .max_fires(2),
        )
}

#[test]
fn reliable_delivery_absorbs_drop_duplicate_reorder() {
    let clean = Machine::builder(model())
        .reliable(true)
        .run(4, ring_workload);
    let faulted = Machine::builder(model())
        .reliable(true)
        .fault_plan(faulty_links_plan())
        .run(4, ring_workload);
    assert!(
        !faulted.injected_faults.is_empty(),
        "the plan must actually fire for the test to mean anything"
    );
    assert_eq!(
        clean.results, faulted.results,
        "reliable delivery must make faulted runs bitwise-identical"
    );
}

#[test]
fn reliable_protocol_traffic_is_priced_exactly() {
    let out = Machine::builder(model())
        .reliable(true)
        .fault_plan(faulty_links_plan())
        .run(4, ring_workload);
    let (measured_msgs, measured_bytes) = out.stats.tag_totals(ACK_TAG);
    assert!(measured_msgs > 0, "drops must have provoked nacks/resends");
    let &(planned_msgs, planned_bytes, exact) = out
        .stats
        .planned_by_tag
        .get(&ACK_TAG)
        .expect("reliability traffic must appear in the planned ledger");
    assert!(exact, "ack pricing is byte-exact by construction");
    assert_eq!(planned_msgs, measured_msgs);
    assert_eq!(planned_bytes, measured_bytes);
}

#[test]
fn reliable_no_fault_run_has_zero_protocol_overhead() {
    // Below the cumulative-ACK cadence and with no faults installed, the
    // protocol must stay silent: no control frames, no resends.
    let out = Machine::builder(model())
        .reliable(true)
        .run(4, ring_workload);
    assert_eq!(
        out.stats.tag_totals(ACK_TAG),
        (0, 0),
        "steady-state reliability overhead must be zero on short fault-free runs"
    );
}

/// The canonical recovery driver loop, used by the solver's
/// `dist_solve_robust` and spelled out here at the `par` level: re-run the
/// (idempotent) workload until it completes, adopting the shrunk world on
/// every [`RankLost`] unwind. The victim catches its own kill panic and
/// returns the tombstone.
fn recovery_driver<R: Clone>(
    ctx: &mut Ctx,
    tombstone: R,
    workload: impl Fn(&mut Ctx) -> R,
) -> (R, Vec<(u64, Vec<usize>)>) {
    let mut recoveries = Vec::new();
    loop {
        match catch_unwind(AssertUnwindSafe(|| workload(ctx))) {
            Ok(r) => return (r, recoveries),
            Err(payload) => {
                if ctx.killed() {
                    return (tombstone, recoveries);
                }
                if let Some(lost) = payload.downcast_ref::<RankLost>() {
                    let epoch = lost.epoch;
                    let dead = ctx.adopt_world();
                    ctx.recover_sync();
                    recoveries.push((epoch, dead));
                    continue;
                }
                resume_unwind(payload);
            }
        }
    }
}

#[test]
fn kill_mid_collective_recovers_and_survivors_converge() {
    let plan = FaultPlan::new(41).with(FaultRule::new(FaultAction::Kill).rank(2).after_op(3));
    let out = Machine::builder(model())
        .recovery(true)
        .fault_plan(plan)
        .run(4, |ctx| {
            recovery_driver(ctx, (u64::MAX, u64::MAX), |ctx| {
                let n = ctx.all_reduce_sum_u64(1);
                let s = ctx.all_reduce_sum(ctx.rank() as f64 + 1.0);
                ctx.barrier();
                (n, s.round() as u64)
            })
        });
    assert!(out.injected_faults.iter().any(|f| f.kind == "kill"));
    let expect = (3u64, 1 + 2 + 4); // survivors 0, 1, 3
    for r in [0usize, 1, 3] {
        let ((n, s), recoveries) = out.results[r].clone();
        assert_eq!((n, s), expect, "rank {r} must converge on the shrunk world");
        assert_eq!(recoveries.len(), 1, "rank {r} records exactly one recovery");
        assert_eq!(
            recoveries[0],
            (1, vec![2]),
            "rank {r} names epoch and victim"
        );
    }
    assert_eq!(
        out.results[2].0,
        (u64::MAX, u64::MAX),
        "the victim tombstones"
    );
}

#[test]
fn kill_plus_lossy_links_recover_together() {
    // The full gauntlet: a killed rank *and* dropped/duplicated frames on
    // the surviving links, with both robustness layers on.
    let plan = FaultPlan::new(77)
        .with(FaultRule::new(FaultAction::Kill).rank(1).after_op(4))
        .with(
            FaultRule::new(FaultAction::Drop)
                .sender(0)
                .tag(7)
                .max_fires(2),
        )
        .with(
            FaultRule::new(FaultAction::Duplicate)
                .sender(3)
                .tag(7)
                .max_fires(2),
        );
    let out = Machine::builder(model())
        .reliable(true)
        .recovery(true)
        .fault_plan(plan)
        .run(4, |ctx| {
            recovery_driver(ctx, u64::MAX, |ctx| {
                let (me, p) = (ctx.rank(), ctx.nprocs());
                // Ring over whoever is alive this epoch.
                let alive: Vec<usize> = (0..p).filter(|&r| ctx.is_alive(r)).collect();
                let slot = alive.iter().position(|&r| r == me).unwrap();
                let next = alive[(slot + 1) % alive.len()];
                let prev = alive[(slot + alive.len() - 1) % alive.len()];
                for _ in 0..6u64 {
                    ctx.send(next, 7, Payload::u64s(vec![me as u64]));
                    ctx.recv(prev, 7);
                }
                ctx.all_reduce_sum_u64(1)
            })
        });
    for r in [0usize, 2, 3] {
        let (n, ref recoveries) = out.results[r];
        assert_eq!(n, 3, "rank {r} finishes on the 3-rank world");
        assert_eq!(recoveries.len(), 1, "rank {r}");
    }
    assert_eq!(out.results[1].0, u64::MAX);
}

#[test]
fn unrecovered_rank_lost_is_actionable() {
    // recovery(true) but no driver: the RankLost unwind must surface as a
    // message telling the author what to wrap the workload in.
    let plan = FaultPlan::new(9).with(FaultRule::new(FaultAction::Kill).rank(1).after_op(1));
    let payload = catch_unwind(AssertUnwindSafe(|| {
        Machine::builder(model())
            .recovery(true)
            .fault_plan(plan)
            .run(2, |ctx| {
                if ctx.rank() == 0 {
                    ctx.recv(1, 3);
                } else {
                    ctx.send(0, 3, Payload::Empty);
                }
            });
    }))
    .expect_err("an uncaught RankLost must fail the run");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("typed payload converted to an actionable message");
    assert!(
        msg.contains("no recovery driver caught the RankLost unwind"),
        "{msg}"
    );
    assert!(msg.contains("Ctx::adopt_world"), "{msg}");
}
