//! Regression tests for the commcheck verification layer: every classic
//! message-passing bug must *terminate* with a precise diagnostic instead
//! of hanging the suite.

use pilut_par::collectives::ReduceOp;
use pilut_par::{Machine, MachineModel, Payload};
use std::panic::AssertUnwindSafe;

/// Runs `f` under `run_checked`, expecting a panic, and returns the panic
/// message for inspection.
fn panic_message<R, F>(p: usize, f: F) -> String
where
    R: Send,
    F: Fn(&mut pilut_par::Ctx) -> R + Sync,
{
    let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
        Machine::run_checked(p, MachineModel::cray_t3d(), f);
    }))
    .expect_err("run was expected to be diagnosed as faulty");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .expect("panic payload should be a message")
}

#[test]
fn deadlock_cycle_is_reported() {
    // Classic head-to-head: each rank receives from the other first.
    let msg = panic_message(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.recv(1, 5);
        } else {
            ctx.recv(0, 6);
        }
    });
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("wait-for graph"), "{msg}");
    assert!(msg.contains("rank 0 -> rank 1"), "{msg}");
    assert!(msg.contains("rank 1 -> rank 0"), "{msg}");
    assert!(msg.contains("deadlock cycle"), "{msg}");
}

#[test]
fn recv_with_no_sender_is_reported() {
    // Rank 1 waits for a message rank 0 never sends; rank 0 just exits.
    let msg = panic_message(2, |ctx| {
        if ctx.rank() == 1 {
            ctx.recv(0, 9);
        }
    });
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("finished without sending"), "{msg}");
}

#[test]
fn leaked_message_is_reported() {
    // Rank 0 sends a message nobody ever receives; the run still
    // completes, but the leak must fail it.
    let msg = panic_message(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, Payload::u64s(vec![1, 2, 3]));
        }
    });
    assert!(msg.contains("message leak"), "{msg}");
    assert!(msg.contains("from rank 0 to rank 1"), "{msg}");
    assert!(msg.contains("tag 0x7"), "{msg}");
}

#[test]
fn collective_order_mismatch_is_reported() {
    // Rank 0 enters a barrier while rank 1 enters an all-reduce: the
    // reserved-tag traffic pairs up, so only the piggybacked op kind can
    // expose the divergence.
    let msg = panic_message(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.barrier();
        } else {
            ctx.all_reduce_sum(1.0);
        }
    });
    assert!(msg.contains("collective order mismatch"), "{msg}");
    assert!(msg.contains("Barrier"), "{msg}");
    assert!(msg.contains("AllReduceF64"), "{msg}");
}

#[test]
fn collective_count_mismatch_is_reported() {
    // Rank 0 runs one barrier more than rank 1: its second barrier can
    // never complete, and the report must show both call sequences.
    let msg = panic_message(2, |ctx| {
        ctx.barrier();
        if ctx.rank() == 0 {
            ctx.barrier();
        }
    });
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("collective call sequences diverge"), "{msg}");
    assert!(msg.contains(">>Barrier<<"), "{msg}");
    assert!(msg.contains(">>(end of sequence)<<"), "{msg}");
}

#[test]
fn rank_panic_propagation_is_deterministic() {
    // Several ranks panic; the lowest-numbered one must win every time,
    // no matter how the host schedules the threads.
    for _ in 0..8 {
        let msg = panic_message(4, |ctx| {
            if ctx.rank() >= 1 {
                panic!("boom rank {}", ctx.rank());
            }
        });
        assert_eq!(msg, "boom rank 1");
    }
}

#[test]
fn rank_panic_outranks_derived_deadlock() {
    // Rank 1 panics; rank 0 then blocks forever waiting for it. The user
    // panic is the root cause and must be what propagates, not the
    // watchdog's secondary diagnosis.
    let msg = panic_message(2, |ctx| {
        if ctx.rank() == 1 {
            panic!("root cause");
        }
        ctx.recv(1, 3);
    });
    assert_eq!(msg, "root cause");
}

#[test]
fn clean_runs_pass_all_checks() {
    // A correct protocol with point-to-point traffic and collectives runs
    // through checked mode without any diagnostic, and collective calls
    // aggregate to the per-program count.
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let r = ctx.rank();
        let p = ctx.nprocs();
        ctx.send((r + 1) % p, 1, Payload::u64s(vec![r as u64]));
        let got = ctx.recv((r + p - 1) % p, 1).into_u64();
        ctx.barrier();
        let s = ctx.all_reduce_sum(got[0] as f64);
        ctx.barrier();
        s
    });
    assert_eq!(out.stats.collectives, 3);
    for s in out.results {
        assert_eq!(s, 6.0); // 0 + 1 + 2 + 3
    }
}

#[test]
fn dense_collective_traffic_never_trips_the_watchdog() {
    // Regression: the watchdog once read "blocked, nothing in flight" in
    // the window between an envelope being drained and the receiver's
    // status flipping back to Running, declaring a spurious deadlock on
    // perfectly correct runs. Many short collectives back to back keep
    // every rank cycling through that window; under checked mode this
    // must always complete cleanly.
    for round in 0..40 {
        let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
            let mut acc = ctx.rank() as u64;
            for _ in 0..25 {
                acc = ctx.all_reduce_u64(vec![acc], ReduceOp::Max)[0] + 1;
            }
            acc
        });
        for r in out.results {
            assert_eq!(r, 28, "round {round}");
        }
    }
}
